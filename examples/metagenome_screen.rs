//! Metagenomic screening — the "new sequencing technology" scenario from
//! the paper's introduction.
//!
//! Short-read sequencing produces piles of anonymous DNA contigs; a
//! standard annotation step screens them against a bank of known protein
//! families. Here: 300 synthetic contigs (1–4 kb), a fraction of which
//! carry fragments of genes from a reference protein bank, screened with
//! the bank-vs-bank pipeline. Demonstrates using the pipeline on *many*
//! subject sequences (each contig's six frames) rather than one genome.
//!
//! ```text
//! cargo run --release --example metagenome_screen
//! ```

use psc_core::{Pipeline, PipelineConfig, Step2Backend};
use psc_datagen::{generate_genome, random_bank, BankConfig, GenomeConfig, MutationConfig};
use psc_score::blosum62;
use psc_seqio::{translate_six_frames, Bank, GeneticCode};

fn main() {
    // Reference bank: 80 known protein families' representatives.
    let reference = random_bank(&BankConfig {
        count: 80,
        min_len: 150,
        max_len: 400,
        seed: 31,
    });

    // Contigs: each is a tiny "genome"; roughly half carry a planted
    // gene fragment from the reference bank.
    let code = GeneticCode::standard();
    let mut contig_frames = Vec::new();
    let mut carries_gene = Vec::new();
    for i in 0..300usize {
        let with_gene = i % 2 == 0;
        let synth = generate_genome(
            &GenomeConfig {
                len: 1_000 + (i * 37) % 3_000,
                gene_count: usize::from(with_gene),
                mutation: MutationConfig {
                    divergence: 0.3,
                    indel_rate: 0.005,
                    indel_extend: 0.3,
                },
                max_plant_aa: 200,
                seed: 5_000 + i as u64,
                ..GenomeConfig::default()
            },
            &reference,
        );
        carries_gene.push(with_gene && !synth.plants.is_empty());
        // All six frames of this contig join the subject bank; ids keep
        // the contig number so hits map back.
        let translated = translate_six_frames(&synth.genome, code);
        for f in translated.frames() {
            let mut seq = f.clone();
            seq.id = format!("contig{i:04}|{}", seq.id);
            contig_frames.push(seq);
        }
    }
    let subjects = Bank::from_seqs(contig_frames);
    println!(
        "screening {} contigs ({} translated frames, {} aa) against {} reference proteins",
        300,
        subjects.len(),
        subjects.total_residues(),
        reference.len()
    );

    let pipeline = Pipeline::new(PipelineConfig {
        backend: Step2Backend::SoftwareParallel { threads: 4 },
        index_threads: 4,
        ..PipelineConfig::default()
    });
    let out = pipeline.run(&reference, &subjects, blosum62());

    // Which contigs got at least one hit?
    let mut flagged = vec![false; 300];
    for h in &out.hsps {
        let id = &subjects.get(h.seq1 as usize).id;
        let contig: usize = id[6..10].parse().expect("contig id format");
        flagged[contig] = true;
    }

    let true_pos = flagged
        .iter()
        .zip(&carries_gene)
        .filter(|&(&f, &c)| f && c)
        .count();
    let false_pos = flagged
        .iter()
        .zip(&carries_gene)
        .filter(|&(&f, &c)| f && !c)
        .count();
    let total_coding = carries_gene.iter().filter(|&&c| c).count();

    println!("\nscreen results:");
    println!("  contigs carrying a gene fragment: {total_coding}");
    println!("  detected (true positives):        {true_pos}");
    println!("  flagged without a plant (FP):     {false_pos}");
    println!("  alignments reported:              {}", out.hsps.len());
    println!(
        "  step profile: {:.2}s index / {:.2}s ungapped / {:.2}s gapped",
        out.profile.step1, out.profile.step2_wall, out.profile.step3
    );

    assert!(
        true_pos * 10 >= total_coding * 9,
        "screen should recover ≥90% of coding contigs"
    );
    assert_eq!(
        false_pos, 0,
        "random contigs must not be flagged at E ≤ 1e-3"
    );
}
