//! The scoring substrate end to end: build a BLOSUM-style matrix from
//! alignment blocks (Henikoff & Henikoff, the paper's ref [8]), compute
//! its Karlin–Altschul statistics, and compare with the canonical
//! BLOSUM62.
//!
//! ```text
//! cargo run --release --example build_matrix
//! ```

use psc_score::karlin::ungapped_params;
use psc_score::{blosum62, build_blosum, Block, ROBINSON_FREQS};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Alignment blocks from the BLOSUM62-tilted mutation model: 80
    // families of 6 members at 50% divergence (ungapped, standard
    // residues only — exactly what the BLOCKS database provides).
    let mut rng = StdRng::seed_from_u64(0xb10c);
    let mutation = psc_datagen::MutationConfig {
        divergence: 0.5,
        indel_rate: 0.0,
        indel_extend: 0.0,
    };
    let blocks: Vec<Block> = (0..80)
        .map(|_| {
            let ancestor = psc_datagen::random_protein(&mut rng, 150);
            Block::new(
                (0..6)
                    .map(|_| psc_datagen::mutate_protein(&mut rng, &ancestor, &mutation))
                    .collect(),
            )
        })
        .collect();
    println!(
        "built {} blocks ({} rows × {} columns each)",
        blocks.len(),
        6,
        150
    );

    let rebuilt = build_blosum("REBUILT62", &blocks, 0.62);
    let canonical = blosum62();

    // Correlation with the canonical matrix over standard pairs.
    let (mut sx, mut sy, mut sxx, mut syy, mut sxy, mut n) = (0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
    for i in 0..20u8 {
        for j in 0..=i {
            let (x, y) = (rebuilt.score(i, j) as f64, canonical.score(i, j) as f64);
            sx += x;
            sy += y;
            sxx += x * x;
            syy += y * y;
            sxy += x * y;
            n += 1.0;
        }
    }
    let r = (n * sxy - sx * sy) / ((n * sxx - sx * sx).sqrt() * (n * syy - sy * sy).sqrt());
    println!("correlation with canonical BLOSUM62: r = {r:.3}");

    // Statistics of both scoring systems.
    for (label, m) in [("canonical BLOSUM62", canonical), ("rebuilt", &rebuilt)] {
        let p = ungapped_params(m, &ROBINSON_FREQS).expect("valid scoring system");
        println!(
            "{label:>20}: λ = {:.4}, K = {:.3}, H = {:.3} nats, E[s] = {:.2}",
            p.lambda,
            p.k,
            p.h,
            m.expected_score(&ROBINSON_FREQS)
        );
    }

    // A few familiar exchanges.
    println!("\nscore comparison (rebuilt vs canonical):");
    for (a, b) in [
        (b'I', b'V'),
        (b'K', b'R'),
        (b'W', b'W'),
        (b'C', b'G'),
        (b'A', b'A'),
    ] {
        let (ca, cb) = (
            psc_seqio::Aa::from_ascii_lossy(a),
            psc_seqio::Aa::from_ascii_lossy(b),
        );
        println!(
            "  {}/{}:  {:>3} vs {:>3}",
            a as char,
            b as char,
            rebuilt.score_aa(ca, cb),
            canonical.score_aa(ca, cb)
        );
    }
    assert!(r > 0.6, "rebuilt matrix should correlate with BLOSUM62");
}
