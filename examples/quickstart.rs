//! Quickstart: compare two small protein banks and print the alignments.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use psc_core::{Pipeline, PipelineConfig};
use psc_score::blosum62;
use psc_seqio::{Bank, Seq};

fn main() {
    // Two toy banks: bank 1 contains a diverged copy of one bank-0
    // protein (a few substitutions and a 3-residue deletion) plus an
    // unrelated sequence.
    let bank0 = Bank::from_seqs(vec![
        Seq::protein(
            "lysozyme-like",
            b"MKALIVLGLVLLSVTVQGKVFERCELARTLKRLGMDGYRGISLANWMCLAKWESGYNTRATNYNAGDRSTDYGIFQINSRYWCNDGKTPGAVNACHLSCSALLQDNIADAVACAKRVVRDPQGIRAWVAWRNRCQNRDVRQYVQGCGV",
        ),
        Seq::protein(
            "unrelated",
            b"MSTNPKPQRKTKRNTNRRPQDVKFPGGGQIVGGVYLLPRRGPRLGVRATRKTSERSQPRGRRQPIPKARRPEGRTWAQPGYPWPLYGNEGCGWAGWLLSPRGSRPSWGPTDPRRRSRNLGKVIDTLTCGFADLMGYIPLVGAPLGGAA",
        ),
    ]);
    let bank1 = Bank::from_seqs(vec![Seq::protein(
        "lysozyme-homolog",
        b"MKALIVLGLVLLSVTVQGKVYERCELARTLKRLGMDGYKGISLANWMCLAKWESGYNTRATNYNDRSTDYGIFQINSRYWCNDGKTPGAVNACHLSCSALLQDNIADAVACAKRVVRDPQGIRAWVAWRNHCQNRDVRQYVQGCGV",
    )]);

    let pipeline = Pipeline::new(PipelineConfig::default());
    let out = pipeline.run(&bank0, &bank1, blosum62());

    println!("pipeline profile:");
    println!(
        "  step 1 (indexing):            {:>9.4} s",
        out.profile.step1
    );
    println!(
        "  step 2 (ungapped extension):  {:>9.4} s",
        out.profile.step2_wall
    );
    println!(
        "  step 3 (gapped extension):    {:>9.4} s",
        out.profile.step3
    );
    println!(
        "  pairs scored: {}   candidates: {}   anchors: {}",
        out.stats.step2.pairs, out.stats.step2.candidates, out.stats.anchors
    );
    println!();

    if out.hsps.is_empty() {
        println!("no alignments found");
        return;
    }
    for h in &out.hsps {
        let q = bank0.get(h.seq0 as usize);
        let s = bank1.get(h.seq1 as usize);
        println!(
            "{} [{}..{}] vs {} [{}..{}]  raw={}  bits={:.1}  E={:.2e}",
            q.id, h.start0, h.end0, s.id, h.start1, h.end1, h.score, h.bit_score, h.evalue
        );
        // Recover the alignment operations for display.
        let aln = psc_align::banded_global(
            blosum62(),
            &q.residues[h.start0 as usize..h.end0 as usize],
            &s.residues[h.start1 as usize..h.end1 as usize],
            &psc_align::GapConfig::default(),
            32,
        );
        println!(
            "  identity: {}/{} aligned columns",
            aln.identities(),
            aln.aligned_columns()
        );
        for line in aln
            .render(
                &q.residues[h.start0 as usize..h.end0 as usize],
                &s.residues[h.start1 as usize..h.end1 as usize],
            )
            .lines()
        {
            println!("  {line}");
        }
        println!();
    }
}
