//! Genome annotation — the paper's motivating workload.
//!
//! Generates a synthetic genome with protein-coding regions planted from
//! a known bank (standing in for the Human chromosome 1 + NCBI nr banks
//! the paper used), then locates every region by comparing the protein
//! bank against the six-frame translation, once on the software backend
//! and once on the simulated RASC-100 with 192 PEs.
//!
//! ```text
//! cargo run --release --example genome_annotation
//! ```

use psc_core::{search_genome, PipelineConfig, Step2Backend};
use psc_datagen::{generate_genome, random_bank, BankConfig, GenomeConfig, MutationConfig};
use psc_score::blosum62;

fn main() {
    // A 150 kb genome with 40 planted genes drawn from a 200-protein bank.
    let proteins = random_bank(&BankConfig {
        count: 200,
        min_len: 120,
        max_len: 450,
        seed: 1001,
    });
    let synth = generate_genome(
        &GenomeConfig {
            len: 150_000,
            gene_count: 40,
            mutation: MutationConfig {
                divergence: 0.25,
                indel_rate: 0.004,
                indel_extend: 0.3,
            },
            seed: 1002,
            ..GenomeConfig::default()
        },
        &proteins,
    );
    println!(
        "genome: {} nt, {} planted coding regions; bank: {} proteins ({} aa)",
        synth.genome.len(),
        synth.plants.len(),
        proteins.len(),
        proteins.total_residues()
    );

    // Software pipeline.
    let sw = search_genome(
        &proteins,
        &synth.genome,
        blosum62(),
        PipelineConfig {
            backend: Step2Backend::SoftwareParallel { threads: 4 },
            index_threads: 4,
            ..PipelineConfig::default()
        },
    );

    // Simulated RASC-100, one FPGA, 192 PEs.
    let hw = search_genome(
        &proteins,
        &synth.genome,
        blosum62(),
        PipelineConfig {
            backend: Step2Backend::Rasc {
                pe_count: 192,
                fpga_count: 1,
                host_threads: 4,
            },
            ..PipelineConfig::default()
        },
    );

    // Both backends must agree.
    assert_eq!(sw.output.hsps, hw.output.hsps);

    println!("\nmatches found: {}", sw.matches.len());
    let mut recovered = 0;
    for plant in &synth.plants {
        if sw.matches.iter().any(|m| {
            m.protein_idx == plant.protein_idx
                && m.genome_start < plant.end
                && plant.start < m.genome_end
        }) {
            recovered += 1;
        }
    }
    println!(
        "planted regions recovered: {recovered}/{}",
        synth.plants.len()
    );

    println!("\ntop matches (genome coordinates):");
    for m in sw.matches.iter().take(8) {
        println!(
            "  {:>12}  frame {:>2}  {:>8}..{:<8} {}  bits={:>6.1}  E={:.2e}",
            m.protein_id,
            m.frame.number(),
            m.genome_start,
            m.genome_end,
            if m.forward { "+" } else { "-" },
            m.bit_score,
            m.evalue
        );
    }

    let board = hw.output.board.as_ref().expect("RASC backend ran");
    println!("\nstep-2 accounting:");
    println!(
        "  software (4 threads) wall:     {:>9.3} s",
        sw.output.profile.step2_wall
    );
    println!(
        "  simulated RASC-100 (192 PEs):  {:>9.3} s  ({} cycles, {:.1}% PE utilization)",
        board.accelerated_seconds,
        board.fpga_cycles[0],
        board.utilization(192) * 100.0
    );
    println!(
        "  window pairs scored: {}   survivors: {}",
        hw.output.stats.step2.pairs, hw.output.stats.step2.candidates
    );
}
