//! Driving the PSC operator directly — the hardware view.
//!
//! Shows the `psc-rasc` substrate on its own: resource checking against
//! the Virtex-4 LX200, cycle-accurate vs functional execution of one
//! index entry, array-size scaling, and the result-FIFO backpressure
//! pathology from paper §4.1.
//!
//! ```text
//! cargo run --release --example rasc_simulation
//! ```

use psc_rasc::{FunctionalOperator, OperatorConfig, PscOperator, ResourceModel};
use psc_score::blosum62;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random window stream: `count` windows of `len` residues.
fn windows(rng: &mut StdRng, count: usize, len: usize) -> Vec<u8> {
    (0..count * len).map(|_| rng.gen_range(0..20u8)).collect()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // --- Resource model -----------------------------------------------
    println!("Virtex-4 LX200 resource check (window 60, slots of 16):");
    for pes in [64, 128, 192, 256] {
        let mut cfg = OperatorConfig::new(pes);
        cfg.window_len = 60;
        match ResourceModel::check(&cfg) {
            Ok(u) => println!(
                "  {pes:>4} PEs: {:>6} slices ({:>2}%), {:>3} BRAMs ({:>2}%)",
                u.slices, u.slice_pct, u.brams, u.bram_pct
            ),
            Err(e) => println!("  {pes:>4} PEs: DOES NOT FIT ({e})"),
        }
    }
    println!(
        "  largest array that fits: {} PEs\n",
        ResourceModel::max_pes(60, 16)
    );

    // --- Cycle-accurate vs functional ----------------------------------
    let mut cfg = OperatorConfig::new(64);
    cfg.window_len = 60;
    cfg.threshold = 45;
    let il0 = windows(&mut rng, 100, 60);
    let il1 = windows(&mut rng, 400, 60);

    let mut hw = PscOperator::new(cfg.clone(), blosum62()).unwrap();
    let sw = FunctionalOperator::new(cfg.clone(), blosum62()).unwrap();
    let a = hw.run_entry(&il0, &il1);
    let b = sw.run_entry(&il0, &il1);
    assert_eq!(a, b, "cycle-accurate and functional paths must agree");
    println!("one entry, 100 × 400 windows on 64 PEs:");
    println!(
        "  cycles: {}  (= {:.3} ms at 100 MHz)   hits: {}   stalls: {}",
        a.cycles,
        cfg.cycles_to_seconds(a.cycles) * 1e3,
        a.hits.len(),
        a.stall_cycles
    );
    println!(
        "  PE utilization: {:.1}%  (cycle-accurate ≡ functional ✓)\n",
        a.utilization(64) * 100.0
    );

    // --- Array scaling --------------------------------------------------
    println!("array-size scaling on the same entry:");
    for pes in [32, 64, 128, 192] {
        let mut c = OperatorConfig::new(pes);
        c.window_len = 60;
        c.threshold = 45;
        let op = FunctionalOperator::new(c.clone(), blosum62()).unwrap();
        let r = op.run_entry(&il0, &il1);
        println!(
            "  {pes:>4} PEs: {:>9} cycles  ({:>5.2} ms)  utilization {:>5.1}%",
            r.cycles,
            c.cycles_to_seconds(r.cycles) * 1e3,
            r.utilization(pes) * 100.0
        );
    }

    // --- Backpressure (paper §4.1) --------------------------------------
    println!("\nresult-path backpressure (identical windows, tiny FIFO):");
    let flood0 = vec![0u8; 64 * 60]; // 64 all-Ala windows
    let flood1 = vec![0u8; 256 * 60];
    for (threshold, label) in [(10, "low threshold (floods)"), (400, "raised threshold")] {
        let mut c = OperatorConfig::new(64);
        c.window_len = 60;
        c.threshold = threshold;
        c.fifo_capacity = 32;
        let op = FunctionalOperator::new(c, blosum62()).unwrap();
        let r = op.run_entry(&flood0, &flood1);
        println!(
            "  {label:<26} cycles={:>8}  stalls={:>7}  hits={}",
            r.cycles,
            r.stall_cycles,
            r.hits.len()
        );
    }
    println!("\n(the paper worked around exactly this by raising the ungapped threshold)");
}
