//! Operator configuration shared by the cycle-accurate and functional
//! paths.

use psc_align::Kernel;

/// The paper's bitstreams clock the PE array at 100 MHz.
pub const DEFAULT_CLOCK_HZ: u64 = 100_000_000;

/// Static configuration of a PSC operator instance.
#[derive(Clone, Debug)]
pub struct OperatorConfig {
    /// Number of processing elements (the paper builds 64/128/192).
    pub pe_count: usize,
    /// PEs per slot (slots are separated by register barriers).
    pub slot_size: usize,
    /// Window length `W + 2N` each PE holds and scores.
    pub window_len: usize,
    /// Ungapped score threshold: a pair is reported when its windowed
    /// score is ≥ this value.
    pub threshold: i32,
    /// Which score recurrence the PE datapath implements.
    pub kernel: Kernel,
    /// Total capacity of the cascaded result FIFOs (items).
    pub fifo_capacity: usize,
    /// Clock frequency (Hz), for converting cycles to seconds.
    pub clock_hz: u64,
}

impl OperatorConfig {
    /// The paper's default geometry: seed span 4 with 28 residues of
    /// context per side (window 60), 16-PE slots, and a threshold tuned
    /// for BLOSUM62 selectivity — random 60-residue windows pass at
    /// ≈1e-4 (see `psc-core`'s pipeline defaults).
    pub fn new(pe_count: usize) -> OperatorConfig {
        OperatorConfig {
            pe_count,
            slot_size: 16,
            window_len: 60,
            threshold: 45,
            kernel: Kernel::ClampedSum,
            fifo_capacity: 512,
            clock_hz: DEFAULT_CLOCK_HZ,
        }
    }

    /// Number of slots (register-barrier groups).
    pub fn num_slots(&self) -> usize {
        self.pe_count.div_ceil(self.slot_size)
    }

    /// Validate invariants the simulator relies on.
    pub fn validate(&self) -> Result<(), String> {
        if self.pe_count == 0 {
            return Err("pe_count must be positive".into());
        }
        if self.slot_size == 0 {
            return Err("slot_size must be positive".into());
        }
        if self.window_len == 0 {
            return Err("window_len must be positive".into());
        }
        if self.fifo_capacity == 0 {
            return Err("fifo_capacity must be positive".into());
        }
        if self.clock_hz == 0 {
            return Err("clock_hz must be positive".into());
        }
        Ok(())
    }

    /// Convert a cycle count to seconds at the configured clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        for pes in [1, 64, 128, 192] {
            let c = OperatorConfig::new(pes);
            assert!(c.validate().is_ok());
        }
    }

    #[test]
    fn slot_count_rounds_up() {
        let mut c = OperatorConfig::new(192);
        assert_eq!(c.num_slots(), 12);
        c.pe_count = 100;
        assert_eq!(c.num_slots(), 7);
        c.pe_count = 1;
        assert_eq!(c.num_slots(), 1);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = OperatorConfig::new(64);
        c.pe_count = 0;
        assert!(c.validate().is_err());
        let mut c = OperatorConfig::new(64);
        c.window_len = 0;
        assert!(c.validate().is_err());
        let mut c = OperatorConfig::new(64);
        c.fifo_capacity = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn cycle_conversion() {
        let c = OperatorConfig::new(64);
        assert!((c.cycles_to_seconds(100_000_000) - 1.0).abs() < 1e-12);
        assert_eq!(c.cycles_to_seconds(0), 0.0);
    }
}
