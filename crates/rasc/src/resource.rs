//! Virtex-4 resource model.
//!
//! The RASC-100 carries two Xilinx Virtex-4 LX200 FPGAs. A configuration
//! is only buildable if the PE array, the per-slot result management, and
//! SGI's fixed Core services (DMA engines, NUMAlink interface, algorithm
//! defined registers) fit the device. The numbers below are engineering
//! estimates calibrated so the paper's largest published build (192 PEs)
//! fits with headroom while absurd arrays are rejected — the model's job
//! is to keep simulated configurations honest, not to replace a P&R run.

use crate::config::OperatorConfig;

/// Slice capacity of one Virtex-4 LX200.
pub const LX200_SLICES: u32 = 89_088;
/// Block RAMs (18 kb each) on an LX200.
pub const LX200_BRAMS: u32 = 336;

/// Fixed cost of the SGI Core services wrapper (DMA, TIO link, ADRs).
const SGI_CORE_SLICES: u32 = 9_500;
const SGI_CORE_BRAMS: u32 = 24;

/// Per-PE datapath cost: shift register (window_len × 5 bits), ROM
/// address path, adder, two max gates, control.
fn pe_slices(window_len: usize) -> u32 {
    140 + (window_len as u32 * 5) / 8
}

/// Each PE's substitution ROM is one 18 kb BRAM (24×24 signed bytes fits
/// easily; the BRAM count, not depth, is the binding constraint).
const PE_BRAMS: u32 = 1;

/// Per-slot result management module + FIFO stage.
const SLOT_SLICES: u32 = 220;
const SLOT_BRAMS: u32 = 1;

/// Controllers (input ×2, output, master).
const CONTROLLER_SLICES: u32 = 1_800;

/// Resource usage report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Utilization {
    pub slices: u32,
    pub brams: u32,
    pub slice_pct: u32,
    pub bram_pct: u32,
}

/// Why a configuration does not fit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResourceError {
    SlicesExceeded { needed: u32, available: u32 },
    BramsExceeded { needed: u32, available: u32 },
}

impl std::fmt::Display for ResourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResourceError::SlicesExceeded { needed, available } => {
                write!(f, "design needs {needed} slices, LX200 has {available}")
            }
            ResourceError::BramsExceeded { needed, available } => {
                write!(f, "design needs {needed} BRAMs, LX200 has {available}")
            }
        }
    }
}

impl std::error::Error for ResourceError {}

/// The device model.
#[derive(Clone, Copy, Debug, Default)]
pub struct ResourceModel;

impl ResourceModel {
    /// Estimate utilization of a configuration on one LX200.
    pub fn estimate(config: &OperatorConfig) -> Utilization {
        let slots = config.num_slots() as u32;
        let slices = SGI_CORE_SLICES
            + CONTROLLER_SLICES
            + config.pe_count as u32 * pe_slices(config.window_len)
            + slots * SLOT_SLICES;
        let brams = SGI_CORE_BRAMS + config.pe_count as u32 * PE_BRAMS + slots * SLOT_BRAMS;
        Utilization {
            slices,
            brams,
            slice_pct: slices * 100 / LX200_SLICES,
            bram_pct: brams * 100 / LX200_BRAMS,
        }
    }

    /// Check a configuration fits one FPGA.
    pub fn check(config: &OperatorConfig) -> Result<Utilization, ResourceError> {
        let u = Self::estimate(config);
        if u.slices > LX200_SLICES {
            return Err(ResourceError::SlicesExceeded {
                needed: u.slices,
                available: LX200_SLICES,
            });
        }
        if u.brams > LX200_BRAMS {
            return Err(ResourceError::BramsExceeded {
                needed: u.brams,
                available: LX200_BRAMS,
            });
        }
        Ok(u)
    }

    /// Largest PE array that fits for a given window length and slot
    /// size (binary search over [1, 4096]).
    pub fn max_pes(window_len: usize, slot_size: usize) -> usize {
        let fits = |pes: usize| {
            let mut c = OperatorConfig::new(pes);
            c.window_len = window_len;
            c.slot_size = slot_size;
            Self::check(&c).is_ok()
        };
        if !fits(1) {
            return 0;
        }
        let (mut lo, mut hi) = (1usize, 4096usize);
        while lo < hi {
            let mid = (lo + hi + 1).div_ceil(2);
            if fits(mid) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_builds_fit() {
        for pes in [64, 128, 192] {
            let c = OperatorConfig::new(pes);
            let u = ResourceModel::check(&c).unwrap_or_else(|e| panic!("{pes} PEs: {e}"));
            assert!(u.slice_pct <= 100);
        }
    }

    #[test]
    fn utilization_grows_with_pes() {
        let u64 = ResourceModel::estimate(&OperatorConfig::new(64));
        let u192 = ResourceModel::estimate(&OperatorConfig::new(192));
        assert!(u192.slices > u64.slices);
        assert!(u192.brams > u64.brams);
    }

    #[test]
    fn absurd_array_rejected() {
        let c = OperatorConfig::new(4000);
        match ResourceModel::check(&c) {
            Err(ResourceError::SlicesExceeded { .. })
            | Err(ResourceError::BramsExceeded { .. }) => {}
            Ok(u) => panic!("4000 PEs should not fit: {u:?}"),
        }
    }

    #[test]
    fn bram_constraint_binds_first_for_small_windows() {
        // With 1 BRAM per PE and 336 on chip, ~300 PEs is the ceiling
        // regardless of slices for short windows.
        let max = ResourceModel::max_pes(20, 16);
        assert!(max < 336);
        assert!(max >= 192, "paper's 192-PE build must fit, got {max}");
    }

    #[test]
    fn max_pes_monotone_in_window() {
        assert!(ResourceModel::max_pes(20, 16) >= ResourceModel::max_pes(120, 16));
    }

    #[test]
    fn error_display() {
        let e = ResourceError::SlicesExceeded {
            needed: 10,
            available: 5,
        };
        assert!(e.to_string().contains("10"));
    }
}
