//! The gapped-extension operator — the paper's proposed follow-up design.
//!
//! The conclusion of the paper observes that once step 2 runs on the
//! array, step 3 (gapped extension) dominates (Table 7), and proposes
//! "the design of another reconfigurable operator dedicated to the
//! computation of similarities including gap penalty", running
//! concurrently on the RASC-100's second FPGA.
//!
//! This module simulates that operator as a **banded anti-diagonal
//! systolic array**: `band` PEs hold one anti-diagonal of the affine DP
//! matrix and advance one anti-diagonal per clock, so extending a
//! candidate whose two segments have lengths `m` and `n` costs
//! `m + n + band` cycles, independent of the band width's cell count —
//! the classic systolic Smith–Waterman arrangement (cf. the paper's
//! reference \[6\]). Scores are computed functionally with the same
//! X-drop extension the software pipeline uses, so results are identical
//! by construction and only the *timing* is modelled.

use psc_align::{gapped_extend, GapConfig, GappedHit};
use psc_score::SubstitutionMatrix;

use crate::config::DEFAULT_CLOCK_HZ;
use crate::resource::{ResourceError, LX200_BRAMS, LX200_SLICES};

/// Configuration of the systolic gapped operator.
#[derive(Clone, Debug)]
pub struct GappedOperatorConfig {
    /// Anti-diagonal PE count = DP band width in cells.
    pub band: usize,
    /// Pipeline fill/drain latency per extension job (cycles).
    pub job_latency: u64,
    /// Clock frequency.
    pub clock_hz: u64,
    /// Gap model shared with the software path.
    pub gap: GapConfig,
}

impl Default for GappedOperatorConfig {
    fn default() -> Self {
        GappedOperatorConfig {
            band: 64,
            job_latency: 32,
            clock_hz: DEFAULT_CLOCK_HZ,
            gap: GapConfig::default(),
        }
    }
}

/// A DP-cell PE is heavier than a PSC scoring PE: three affine lanes
/// (H/E/F), a max tree and the substitution lookup.
const GAPPED_PE_SLICES: u32 = 420;
const GAPPED_PE_BRAMS: u32 = 1;
const GAPPED_CORE_SLICES: u32 = 11_000; // SGI core + band controllers

/// Check the gapped array fits one LX200.
pub fn check_gapped_resources(config: &GappedOperatorConfig) -> Result<(), ResourceError> {
    let slices = GAPPED_CORE_SLICES + config.band as u32 * GAPPED_PE_SLICES;
    let brams = 24 + config.band as u32 * GAPPED_PE_BRAMS;
    if slices > LX200_SLICES {
        return Err(ResourceError::SlicesExceeded {
            needed: slices,
            available: LX200_SLICES,
        });
    }
    if brams > LX200_BRAMS {
        return Err(ResourceError::BramsExceeded {
            needed: brams,
            available: LX200_BRAMS,
        });
    }
    Ok(())
}

/// Result of running a batch of extensions through the operator.
#[derive(Clone, Debug, Default)]
pub struct GappedOperatorResult {
    pub hits: Vec<GappedHit>,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Extensions whose optimal path may leave the band (|len₀ − len₁|
    /// of the chosen segments exceeds the band) — the hardware would
    /// fall back to the host for these; counted for honesty.
    pub band_overflows: u64,
}

impl GappedOperatorResult {
    pub fn seconds(&self, config: &GappedOperatorConfig) -> f64 {
        self.cycles as f64 / config.clock_hz as f64
    }
}

/// The simulated gapped-extension operator.
#[derive(Debug)]
pub struct GappedOperator {
    config: GappedOperatorConfig,
    matrix: SubstitutionMatrix,
}

impl GappedOperator {
    pub fn new(
        config: GappedOperatorConfig,
        matrix: &SubstitutionMatrix,
    ) -> Result<GappedOperator, ResourceError> {
        check_gapped_resources(&config)?;
        Ok(GappedOperator {
            config,
            matrix: matrix.clone(),
        })
    }

    pub fn config(&self) -> &GappedOperatorConfig {
        &self.config
    }

    /// Extend one anchored candidate. Returns the hit (identical to the
    /// software `gapped_extend`) and the cycles the systolic array would
    /// spend: one clock per anti-diagonal of the explored rectangle,
    /// plus fixed job latency.
    pub fn extend(
        &self,
        s0: &[u8],
        s1: &[u8],
        anchor0: usize,
        anchor1: usize,
    ) -> (GappedHit, u64, bool) {
        let hit = gapped_extend(&self.matrix, s0, s1, anchor0, anchor1, &self.config.gap);
        let m = (hit.end0 - hit.start0) as u64;
        let n = (hit.end1 - hit.start1) as u64;
        let cycles = m + n + self.config.job_latency;
        let overflow = m.abs_diff(n) > self.config.band as u64;
        (hit, cycles, overflow)
    }

    /// Extend a batch of candidates; jobs stream back-to-back through
    /// the array (the fill of one overlaps the drain of the previous, so
    /// per-job latency is paid once per job, already in `extend`).
    pub fn extend_batch<'a>(
        &self,
        jobs: impl Iterator<Item = (&'a [u8], &'a [u8], usize, usize)>,
    ) -> GappedOperatorResult {
        let mut out = GappedOperatorResult::default();
        for (s0, s1, a0, a1) in jobs {
            let (hit, cycles, overflow) = self.extend(s0, s1, a0, a1);
            out.hits.push(hit);
            out.cycles += cycles;
            out.band_overflows += overflow as u64;
        }
        out
    }
}

/// Banded local Smith–Waterman evaluated in **systolic order**: one
/// anti-diagonal per clock, exactly as the array of DP-cell PEs would
/// compute it. Returns `(best_local_score, cycles)` where cycles is the
/// number of anti-diagonals processed (`m + n − 1` when both inputs are
/// non-empty).
///
/// This is the cycle-accurate counterpart of the analytic model in
/// [`GappedOperator::extend`]: it demonstrates the banded affine DP is
/// computable one anti-diagonal at a time with only the two previous
/// anti-diagonals live — the dependency structure the systolic layout
/// requires — and it validates the `m + n` cycle count.
pub fn systolic_banded_sw(
    matrix: &SubstitutionMatrix,
    a: &[u8],
    b: &[u8],
    band: usize,
    gap: &GapConfig,
) -> (i32, u64) {
    const NEG: i32 = i32::MIN / 4;
    let (m, n) = (a.len(), b.len());
    if m == 0 || n == 0 {
        return (0, 0);
    }
    // Cells live on anti-diagonal d = i + j (0-based residue indices);
    // within a diagonal, index by i. The band restricts |i − j| ≤ band.
    // Three lanes per cell (H, E, F); keep two previous diagonals.
    let width = m + 1;
    let mut h2 = vec![NEG; width]; // H on d-2
    let mut h1 = vec![NEG; width]; // H on d-1
    let mut e1 = vec![NEG; width]; // E on d-1 (gap consuming b)
    let mut f1 = vec![NEG; width]; // F on d-1 (gap consuming a)
    let mut best = 0i32;
    let mut cycles = 0u64;

    for d in 0..(m + n - 1) {
        cycles += 1;
        let mut h_now = vec![NEG; width];
        let mut e_now = vec![NEG; width];
        let mut f_now = vec![NEG; width];
        let i_lo = d.saturating_sub(n - 1);
        let i_hi = d.min(m - 1);
        for i in i_lo..=i_hi {
            let j = d - i;
            if i.abs_diff(j) > band {
                continue;
            }
            // E: gap consuming b — predecessor is (i, j-1), on d-1,
            // same i.
            let e = if j > 0 {
                (h1[i].saturating_add(-(gap.open + gap.extend)))
                    .max(e1[i].saturating_add(-gap.extend))
            } else {
                NEG
            };
            // F: gap consuming a — predecessor (i-1, j), on d-1, i-1.
            let f = if i > 0 {
                (h1[i - 1].saturating_add(-(gap.open + gap.extend)))
                    .max(f1[i - 1].saturating_add(-gap.extend))
            } else {
                NEG
            };
            // Diagonal: (i-1, j-1) on d-2, index i-1; local SW clamps
            // at 0 (a fresh start).
            let diag_base = if i > 0 && j > 0 { h2[i - 1].max(0) } else { 0 };
            let h = (diag_base + matrix.score(a[i], b[j])).max(e).max(f).max(0);
            h_now[i] = h;
            e_now[i] = e;
            f_now[i] = f;
            best = best.max(h);
        }
        h2 = std::mem::replace(&mut h1, h_now);
        e1 = e_now;
        f1 = f_now;
    }
    (best, cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_score::blosum62;
    use psc_seqio::alphabet::encode_protein;

    #[test]
    fn matches_software_extension_exactly() {
        let op = GappedOperator::new(GappedOperatorConfig::default(), blosum62()).unwrap();
        let s0 = encode_protein(b"MKVLAWHHHRNDCQEHFYWGGAML");
        let s1 = encode_protein(b"MKVLAWRNDCQEHFYWGGAML");
        let (hit, cycles, _) = op.extend(&s0, &s1, 0, 0);
        let sw = gapped_extend(blosum62(), &s0, &s1, 0, 0, &GapConfig::default());
        assert_eq!(hit, sw);
        assert_eq!(
            cycles,
            (hit.end0 - hit.start0 + hit.end1 - hit.start1) as u64 + 32
        );
    }

    #[test]
    fn batch_accumulates() {
        let op = GappedOperator::new(GappedOperatorConfig::default(), blosum62()).unwrap();
        let s = encode_protein(b"MKVLAWRNDCQEHFYW");
        let jobs = vec![
            (s.as_slice(), s.as_slice(), 0usize, 0usize),
            (s.as_slice(), s.as_slice(), 8, 8),
        ];
        let r = op.extend_batch(jobs.into_iter());
        assert_eq!(r.hits.len(), 2);
        assert!(r.cycles > 64);
        assert!(r.seconds(op.config()) > 0.0);
        assert_eq!(r.band_overflows, 0);
    }

    #[test]
    fn band_overflow_detected() {
        let cfg = GappedOperatorConfig {
            band: 2, // absurdly narrow
            ..GappedOperatorConfig::default()
        };
        let op = GappedOperator::new(cfg, blosum62()).unwrap();
        // Segments of very different length: a long gap in one sequence.
        let s0 = encode_protein(b"MKVLAWRNDCQEHFYWMKVLAWRNDCQEHFYW");
        let s1 = encode_protein(b"MKVLAWHHHHHHHHHHHHHHHHRNDCQEHFYWMKVLAWRNDCQEHFYW");
        let (_, _, overflow) = op.extend(&s0, &s1, 0, 0);
        assert!(overflow, "16-residue indel must exceed a 2-cell band");
    }

    #[test]
    fn resource_limits() {
        assert!(check_gapped_resources(&GappedOperatorConfig::default()).is_ok());
        let cfg = GappedOperatorConfig {
            band: 100_000,
            ..GappedOperatorConfig::default()
        };
        assert!(check_gapped_resources(&cfg).is_err());
        assert!(GappedOperator::new(cfg, blosum62()).is_err());
    }

    #[test]
    fn systolic_sw_matches_identity_score() {
        let m = blosum62();
        let s = encode_protein(b"MKVLAWRNDCQEHFYW");
        let self_score: i32 = s.iter().map(|&c| m.score(c, c)).sum();
        let (score, cycles) = systolic_banded_sw(m, &s, &s, 64, &GapConfig::default());
        assert_eq!(score, self_score);
        assert_eq!(cycles, (2 * s.len() - 1) as u64);
    }

    #[test]
    fn systolic_sw_dominates_anchored_extension() {
        // Full local SW over the segment pair can only beat (or tie) the
        // anchored X-drop extension on the same segments.
        let m = blosum62();
        let a = encode_protein(b"MKVLAWHHHRNDCQEHFYWGGAML");
        let b = encode_protein(b"MKVLAWRNDCQEHFYWGGAML");
        let cfg = GapConfig::default();
        let anchored = gapped_extend(m, &a, &b, 0, 0, &cfg);
        let (sw, _) = systolic_banded_sw(
            m,
            &a[anchored.start0..anchored.end0],
            &b[anchored.start1..anchored.end1],
            64,
            &cfg,
        );
        assert!(
            sw >= anchored.score,
            "systolic {sw} < anchored {}",
            anchored.score
        );
    }

    #[test]
    fn systolic_band_clamps_score() {
        // With a long indel between the matched halves, a narrow band
        // cannot bridge the gap; a wide one can.
        let m = blosum62();
        let a = encode_protein(b"MKVLAWRNDCQEHFYWMKVLAWRNDCQEHFYW");
        let b = encode_protein(b"MKVLAWRNDCQEHFYWHHHHHHHHHHHHHHHHHHHHHHHHMKVLAWRNDCQEHFYW");
        let cfg = GapConfig::default();
        let (narrow, _) = systolic_banded_sw(m, &a, &b, 4, &cfg);
        let (wide, _) = systolic_banded_sw(m, &a, &b, 48, &cfg);
        assert!(wide > narrow, "wide {wide} vs narrow {narrow}");
    }

    #[test]
    fn systolic_empty_inputs() {
        let m = blosum62();
        assert_eq!(
            systolic_banded_sw(m, &[], &[1, 2], 8, &GapConfig::default()),
            (0, 0)
        );
        assert_eq!(
            systolic_banded_sw(m, &[1], &[], 8, &GapConfig::default()),
            (0, 0)
        );
    }

    #[test]
    fn cycles_scale_with_alignment_size() {
        let op = GappedOperator::new(GappedOperatorConfig::default(), blosum62()).unwrap();
        let small = encode_protein(b"MKVLAWRN");
        let big: Vec<u8> = small.iter().cycle().take(200).copied().collect();
        let (_, c_small, _) = op.extend(&small, &small, 0, 0);
        let (_, c_big, _) = op.extend(&big, &big, 0, 0);
        assert!(c_big > 2 * c_small);
    }
}
