//! # psc-rasc — a simulator of the SGI RASC-100 PSC operator
//!
//! The paper offloads its critical section (step 2, ungapped extension)
//! to a **Parallel Sequence Comparison operator** on the RASC-100: an
//! array of processing elements working SIMD-fashion, grouped into slots
//! separated by register barriers, with threshold filtering and cascaded
//! result FIFOs, fed by DMA over NUMAlink from an Altix host (paper
//! Figures 1–3). The hardware is long gone; this crate reproduces it as
//! a simulator with two execution paths:
//!
//! * [`operator::PscOperator`] — **cycle-accurate**: every PE steps one
//!   residue pair per clock through a shift register + substitution ROM +
//!   accumulator/max datapath; slots fire results at wave boundaries into
//!   a bounded result buffer drained one item per cycle by the output
//!   controller, stalling the array when full (the exact pathology that
//!   limited the paper's dual-FPGA runs, §4.1).
//! * [`functional::FunctionalOperator`] — **functional + analytic**: the
//!   same results computed with the software kernel, and the same cycle
//!   count derived wave-by-wave in closed form. Property tests assert
//!   both paths agree *exactly* (results, order, and cycle count), so the
//!   fast path is safe for the large experiment sweeps.
//!
//! [`board::RascBoard`] wraps one or two simulated FPGAs with the
//! NUMAlink DMA model, host-side dispatch threads, and the result-channel
//! contention that makes the paper's 2-FPGA speedup saturate at 1.8×.
//! [`resource::ResourceModel`] checks that a PE configuration fits a
//! Virtex-4 LX200 (the paper builds 64-, 128- and 192-PE bitstreams).

#![forbid(unsafe_code)]

pub mod adr;
pub mod board;
pub mod config;
pub mod dma;
pub mod fault;
pub mod fifo;
pub mod fleet;
pub mod functional;
pub mod gapped_op;
pub mod operator;
pub mod pe;
pub mod resource;

pub use adr::{run_via_adr, AdrDevice, AdrError};
pub use board::{BoardConfig, BoardReport, BoardSegment, Entry, RascBoard};
pub use config::{OperatorConfig, DEFAULT_CLOCK_HZ};
pub use dma::{DmaModel, NUMALINK_BANDWIDTH};
pub use fault::{
    BoardFault, FaultInjector, FaultKind, FaultPlan, FaultSpec, FaultSummary, RecoveryPolicy,
    DEFAULT_FAULT_RATE_PPM,
};
pub use fleet::{
    FleetConfig, FleetEvent, FleetEventKind, FleetReport, RascFleet, StealPolicy, Topology,
    MAX_BOARDS, MODELED_BOARD_LADDER,
};
pub use functional::FunctionalOperator;
pub use gapped_op::{
    systolic_banded_sw, GappedOperator, GappedOperatorConfig, GappedOperatorResult,
};
pub use operator::{pe_utilization, EntryResult, Hit, PscOperator};
pub use resource::{ResourceError, ResourceModel, Utilization};
