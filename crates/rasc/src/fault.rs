//! Deterministic fault injection and recovery primitives.
//!
//! The paper's speedups assume the RASC blade, the ADR handshake and
//! the NUMAlink DMA path never misbehave; a deployed offload stack
//! cannot. This module supplies the pieces the board model uses to
//! exercise that reality on purpose:
//!
//! * [`FaultPlan`] / [`FaultInjector`] — *what* goes wrong and *when*,
//!   either scripted per entry or drawn from a seeded hash. Everything
//!   is a pure function of `(seed, entry, fpga, attempt)`: no wall
//!   clock, no iteration-order dependence, so a plan replays
//!   identically across runs and host-thread counts.
//! * detection helpers — the stream/result checksums the simulated
//!   board verifies at its DMA commit points, and the software
//!   reference scorer the degraded path falls back to.
//! * [`RecoveryPolicy`] — bounded retries with simulated-time backoff,
//!   a cycle watchdog budget, and the degrade-to-software switch.
//! * [`FaultSummary`] / [`BoardFault`] — what recovery observed, and
//!   the terminal error when it is exhausted.
//!
//! The invariant the whole design serves: under *any* plan, recovered
//! output is bit-identical to the fault-free run — a fault may cost
//! simulated cycles, never results.

use psc_align::ungapped_score;
use psc_score::SubstitutionMatrix;

use crate::config::OperatorConfig;
use crate::operator::Hit;

/// One kind of injectable hardware misbehaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A bit flip on the NUMAlink input stream (caught by the board's
    /// stream checksum before compute starts).
    DmaCorrupt,
    /// The input DMA delivers fewer windows than the ADR count
    /// registers promised (caught by the ADR protocol check).
    DmaTruncate,
    /// The command FSM latches `Status::Fault` on dispatch.
    AdrFault,
    /// The cascaded result FIFOs drop tail results under overflow
    /// (caught by the host-side result checksum).
    FifoOverflow,
    /// The output controller wedges; the run never completes (caught
    /// by the cycle watchdog).
    FifoStall,
    /// One PE reports a corrupted score (caught by the host-side
    /// result checksum, which covers scores).
    PeFlip,
}

/// Every kind, in stable order (seeded plans index into this).
pub const ALL_FAULT_KINDS: [FaultKind; 6] = [
    FaultKind::DmaCorrupt,
    FaultKind::DmaTruncate,
    FaultKind::AdrFault,
    FaultKind::FifoOverflow,
    FaultKind::FifoStall,
    FaultKind::PeFlip,
];

impl FaultKind {
    /// Stable name used by the CLI plan syntax and reports.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::DmaCorrupt => "dma-corrupt",
            FaultKind::DmaTruncate => "dma-truncate",
            FaultKind::AdrFault => "adr-fault",
            FaultKind::FifoOverflow => "fifo-overflow",
            FaultKind::FifoStall => "fifo-stall",
            FaultKind::PeFlip => "pe-flip",
        }
    }

    /// Inverse of [`FaultKind::name`].
    pub fn parse(s: &str) -> Result<FaultKind, String> {
        ALL_FAULT_KINDS
            .iter()
            .copied()
            .find(|k| k.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = ALL_FAULT_KINDS.iter().map(FaultKind::name).collect();
                format!(
                    "unknown fault kind {s:?} (expected one of {})",
                    names.join(", ")
                )
            })
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One scripted fault: fires on the first `attempts` attempts of one
/// entry, on one FPGA or on all of them, on one fleet board or on
/// whichever board the entry lands on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Stream index of the entry to hit.
    pub entry: u64,
    /// Restrict to one FPGA of the board (`None` = every FPGA).
    pub fpga: Option<usize>,
    /// Restrict to one board of a fleet (`None` = any board). A spec
    /// pinned to board `b` follows its entry only while the fleet
    /// dispatcher places it there — the lever the quarantine tests use
    /// to wedge exactly one board.
    pub board: Option<usize>,
    pub kind: FaultKind,
    /// How many consecutive attempts fail before the fault clears; a
    /// value above the retry budget makes the fault persistent.
    pub attempts: u32,
}

/// A complete, replayable description of what goes wrong in a run.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultPlan {
    /// An explicit list of faults (CLI `--fault-plan`).
    Scripted(Vec<FaultSpec>),
    /// Hash-driven faults: each `(entry, fpga)` pair independently
    /// faults with probability `rate_ppm / 1e6`, with a persistence of
    /// 1–6 attempts drawn from the same hash (CLI `--fault-seed`).
    Seeded { seed: u64, rate_ppm: u32 },
    /// Like [`FaultPlan::Seeded`] but with heavy-tailed (Pareto-ish)
    /// persistence: `P(persistence ≥ 2^k) = 2^-k`, capped at
    /// [`MAX_STUCK_ATTEMPTS`]. Most faults clear within a retry or two,
    /// while a seeded few outlast any sane retry budget — the "stuck
    /// board" regime field deployments see (CLI `--fault-tail heavy`).
    SeededHeavyTail { seed: u64, rate_ppm: u32 },
}

/// Default fault probability of seeded plans, parts per million.
pub const DEFAULT_FAULT_RATE_PPM: u32 = 250_000;

/// Persistence ceiling of the heavy-tailed mode: a stuck `(entry,
/// fpga)` pair fails at most this many consecutive attempts
/// (`2^6`; drawn with probability `2^-6` among faulty pairs).
pub const MAX_STUCK_ATTEMPTS: u32 = 64;

impl FaultPlan {
    /// A seeded plan at the default rate.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan::Seeded {
            seed,
            rate_ppm: DEFAULT_FAULT_RATE_PPM,
        }
    }

    /// A heavy-tailed seeded plan at the default rate.
    pub fn seeded_heavy(seed: u64) -> FaultPlan {
        FaultPlan::SeededHeavyTail {
            seed,
            rate_ppm: DEFAULT_FAULT_RATE_PPM,
        }
    }

    /// Parse the CLI plan syntax: comma-separated
    /// `ENTRY:KIND[:ATTEMPTS][@FPGA][#BOARD]` items, e.g.
    /// `0:pe-flip,3:fifo-stall:9@1,5:fifo-stall:99#2`.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut specs = Vec::new();
        for item in text.split(',').filter(|s| !s.trim().is_empty()) {
            let item = item.trim();
            let (item_body, board) = match item.split_once('#') {
                Some((body, b)) => {
                    let b = b
                        .parse::<usize>()
                        .map_err(|_| format!("bad board index in fault spec {item:?}"))?;
                    (body, Some(b))
                }
                None => (item, None),
            };
            let (body, fpga) = match item_body.split_once('@') {
                Some((body, f)) => {
                    let f = f
                        .parse::<usize>()
                        .map_err(|_| format!("bad FPGA index in fault spec {item:?}"))?;
                    (body, Some(f))
                }
                None => (item_body, None),
            };
            let mut parts = body.split(':');
            let entry = parts
                .next()
                .unwrap_or("")
                .parse::<u64>()
                .map_err(|_| format!("bad entry index in fault spec {item:?}"))?;
            let kind = FaultKind::parse(parts.next().ok_or_else(|| {
                format!("fault spec {item:?} is missing a kind (ENTRY:KIND[:ATTEMPTS][@FPGA])")
            })?)?;
            let attempts = match parts.next() {
                None => 1,
                Some(n) => n
                    .parse::<u32>()
                    .map_err(|_| format!("bad attempt count in fault spec {item:?}"))?,
            };
            if parts.next().is_some() {
                return Err(format!("trailing fields in fault spec {item:?}"));
            }
            specs.push(FaultSpec {
                entry,
                fpga,
                board,
                kind,
                attempts,
            });
        }
        if specs.is_empty() {
            return Err("empty fault plan".into());
        }
        Ok(FaultPlan::Scripted(specs))
    }
}

/// SplitMix64 finalizer — the hash behind seeded plans and every
/// "which bit / which hit" choice, so injection is a pure function of
/// its integer inputs.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn mix4(seed: u64, entry: u64, fpga: u64, salt: u64) -> u64 {
    mix(seed ^ mix(entry ^ mix(fpga ^ mix(salt))))
}

/// Evaluates a [`FaultPlan`] at each dispatch attempt.
///
/// An injector is bound to one board of a fleet: seeded draws salt the
/// plan seed with the board id so two boards never share a fault
/// stream (a stuck `(entry, fpga)` pair on board 3 says nothing about
/// the same pair on board 5), and scripted specs pinned with `#BOARD`
/// only fire on that board. [`FaultInjector::new`] binds board 0 with
/// a zero salt, so single-board behaviour — and every pinned seeded
/// count in the test suite — is unchanged.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Fleet board this injector evaluates the plan for.
    board: usize,
    /// `board * φ64`, XORed into the plan seed of seeded draws.
    /// Zero for board 0, so the unsalted stream is preserved exactly.
    board_salt: u64,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector::for_board(plan, 0)
    }

    /// Bind the plan to fleet board `board`.
    pub fn for_board(plan: FaultPlan, board: usize) -> FaultInjector {
        FaultInjector {
            plan,
            board,
            board_salt: (board as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Does attempt `attempt` (0-based) of `entry` on FPGA `fpga`
    /// fault, and how? Deterministic in its arguments.
    pub fn fire(&self, entry: u64, fpga: usize, attempt: u32) -> Option<FaultKind> {
        match &self.plan {
            FaultPlan::Scripted(specs) => specs
                .iter()
                .find(|s| {
                    s.entry == entry
                        && s.fpga.is_none_or(|f| f == fpga)
                        && s.board.is_none_or(|b| b == self.board)
                        && attempt < s.attempts
                })
                .map(|s| s.kind),
            FaultPlan::Seeded { seed, rate_ppm }
            | FaultPlan::SeededHeavyTail { seed, rate_ppm } => {
                let heavy = matches!(&self.plan, FaultPlan::SeededHeavyTail { .. });
                let seed = *seed ^ self.board_salt;
                let faulty = mix4(seed, entry, fpga as u64, 1) % 1_000_000 < *rate_ppm as u64;
                if !faulty {
                    return None;
                }
                let draw = mix4(seed, entry, fpga as u64, 3);
                let persistence = if heavy {
                    // Pareto-ish: the number of trailing zero bits of a
                    // uniform word is geometric, so `2^tz` has
                    // `P(persistence ≥ 2^k) = 2^-k` — a power-law tail
                    // whose rare long draws are the "stuck" boards.
                    1u32 << draw.trailing_zeros().min(MAX_STUCK_ATTEMPTS.ilog2())
                } else {
                    // Uniform 1–6 attempts: short faults exercise the
                    // retry path, long ones the degrade path (the
                    // default retry budget is 3).
                    1 + (draw % 6) as u32
                };
                if attempt >= persistence {
                    return None;
                }
                let kind = ALL_FAULT_KINDS
                    [(mix4(seed, entry, fpga as u64, 2) % ALL_FAULT_KINDS.len() as u64) as usize];
                Some(kind)
            }
        }
    }

    /// Deterministic small integer for corruption choices (which hit,
    /// which bit) — salted separately from the fire decision.
    pub fn roll(&self, entry: u64, fpga: usize, attempt: u32, bound: u64) -> u64 {
        let seed = match &self.plan {
            FaultPlan::Scripted(_) => 0,
            FaultPlan::Seeded { seed, .. } | FaultPlan::SeededHeavyTail { seed, .. } => *seed,
        };
        mix4(
            seed ^ self.board_salt,
            entry,
            fpga as u64,
            100 + attempt as u64,
        ) % bound.max(1)
    }
}

/// Retry / degradation policy of the board's dispatch loop.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryPolicy {
    /// Redispatches after the first failed attempt.
    pub max_retries: u32,
    /// Simulated backoff before retry `n` is `backoff_cycles << n`.
    pub backoff_cycles: u64,
    /// After exhausting retries: recompute the entry with the host
    /// software kernel (`true`) or fail the run (`false`).
    pub degrade: bool,
    /// Watchdog budget multiplier over the entry's no-hit cycle lower
    /// bound (see [`RecoveryPolicy::watchdog_budget`]).
    pub watchdog_factor: u64,
    /// Fixed watchdog slack, cycles.
    pub watchdog_slack: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> RecoveryPolicy {
        RecoveryPolicy {
            max_retries: 3,
            backoff_cycles: 256,
            degrade: true,
            watchdog_factor: 2,
            watchdog_slack: 1024,
        }
    }
}

impl RecoveryPolicy {
    /// Cycle budget the watchdog grants one dispatch: any legitimate
    /// run costs at most `lower_bound + stalls`, and stalls are bounded
    /// by the hit count, itself at most `pairs` — so
    /// `lower_bound * factor + pairs + slack` never trips on a healthy
    /// operator (asserted by tests) while a wedged one exceeds it.
    pub fn watchdog_budget(&self, lower_bound: u64, pairs: u64) -> u64 {
        lower_bound
            .saturating_mul(self.watchdog_factor)
            .saturating_add(pairs)
            .saturating_add(self.watchdog_slack)
    }

    /// Simulated cycles spent backing off before retry `attempt`.
    pub fn backoff(&self, attempt: u32) -> u64 {
        self.backoff_cycles << attempt.min(16)
    }
}

/// What fault handling observed during a run. All counters are pure
/// functions of the workload and the plan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Faults the injector fired.
    pub faults_injected: u64,
    /// Faults a detection point caught (≤ injected: a corruption that
    /// changes nothing — e.g. a FIFO drop on an empty result set — is
    /// harmless and accepted).
    pub faults_detected: u64,
    /// Of which: stream/result checksum mismatches.
    pub checksum_mismatches: u64,
    /// Of which: cycle-watchdog expirations.
    pub watchdog_trips: u64,
    /// Of which: ADR protocol/status faults.
    pub protocol_faults: u64,
    /// Redispatches performed.
    pub retries: u64,
    /// Entry shards recomputed on the host software path.
    pub entries_degraded: u64,
    /// Simulated cycles spent in retry backoff.
    pub backoff_cycles: u64,
}

impl FaultSummary {
    pub fn merge(&mut self, other: &FaultSummary) {
        self.faults_injected += other.faults_injected;
        self.faults_detected += other.faults_detected;
        self.checksum_mismatches += other.checksum_mismatches;
        self.watchdog_trips += other.watchdog_trips;
        self.protocol_faults += other.protocol_faults;
        self.retries += other.retries;
        self.entries_degraded += other.entries_degraded;
        self.backoff_cycles += other.backoff_cycles;
    }

    /// Anything to report?
    pub fn any(&self) -> bool {
        *self != FaultSummary::default()
    }
}

/// Terminal board error: one entry kept faulting past the retry budget
/// and degradation was disabled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoardFault {
    /// Stream index of the failing entry.
    pub entry: u64,
    pub fpga: usize,
    /// The kind observed on the final attempt.
    pub kind: FaultKind,
    /// Attempts made before giving up.
    pub attempts: u32,
}

impl std::fmt::Display for BoardFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "entry {} faulted on FPGA {} ({}) after {} attempts",
            self.entry, self.fpga, self.kind, self.attempts
        )
    }
}

impl std::error::Error for BoardFault {}

/// Fletcher-style checksum over a byte stream — the check the board
/// runs on the DMA'd input before raising "data ready".
pub fn stream_checksum(parts: &[&[u8]]) -> u64 {
    let mut a: u64 = 0xF1EA;
    let mut b: u64 = 0x5EED;
    for part in parts {
        for &byte in *part {
            a = (a + byte as u64 + 1) % 0xFFFF_FFFB;
            b = (b + a) % 0xFFFF_FFFB;
        }
    }
    (b << 32) | a
}

/// Checksum over a result list, covering positions *and* scores — the
/// per-entry value the operator commits alongside its FIFO stream and
/// the host recomputes after the result DMA.
pub fn hits_checksum(hits: &[Hit]) -> u64 {
    let mut a: u64 = 0xF1EA;
    let mut b: u64 = 0x5EED;
    for h in hits {
        let w = ((h.i0 as u64) << 40) ^ ((h.i1 as u64) << 16) ^ (h.score as u32 as u64);
        a = (a + w % 0xFFFF_FFFB + 1) % 0xFFFF_FFFB;
        b = (b + a) % 0xFFFF_FFFB;
    }
    (b << 32) | a
}

/// Host software reference for one entry shard — the kernel the board
/// degrades to. Produces exactly the operator's hit *set* (same
/// windows, same kernel, same threshold); the order is the natural
/// i0-major software order rather than the PE wave order, which every
/// consumer normalizes by sorting.
pub fn score_entry_software(
    matrix: &SubstitutionMatrix,
    config: &OperatorConfig,
    il0: &[u8],
    il1: &[u8],
) -> Vec<Hit> {
    let l = config.window_len;
    let k0 = il0.len() / l;
    let k1 = il1.len() / l;
    let mut hits = Vec::new();
    for i0 in 0..k0 {
        let w0 = &il0[i0 * l..(i0 + 1) * l];
        for i1 in 0..k1 {
            let w1 = &il1[i1 * l..(i1 + 1) * l];
            let score = ungapped_score(config.kernel, matrix, w0, w1);
            if score >= config.threshold {
                hits.push(Hit {
                    i0: i0 as u32,
                    i1: i1 as u32,
                    score,
                });
            }
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_parse_round_trips() {
        let plan = FaultPlan::parse("0:pe-flip,3:fifo-stall:9@1, 7:dma-corrupt:2").unwrap();
        let FaultPlan::Scripted(specs) = &plan else {
            panic!("scripted expected")
        };
        assert_eq!(
            specs[0],
            FaultSpec {
                entry: 0,
                fpga: None,
                board: None,
                kind: FaultKind::PeFlip,
                attempts: 1
            }
        );
        assert_eq!(
            specs[1],
            FaultSpec {
                entry: 3,
                fpga: Some(1),
                board: None,
                kind: FaultKind::FifoStall,
                attempts: 9
            }
        );
        assert_eq!(specs[2].entry, 7);
        assert_eq!(specs[2].attempts, 2);
    }

    #[test]
    fn plan_parse_accepts_board_pin() {
        let plan = FaultPlan::parse("5:fifo-stall:99@1#2").unwrap();
        let FaultPlan::Scripted(specs) = &plan else {
            panic!("scripted expected")
        };
        assert_eq!(
            specs[0],
            FaultSpec {
                entry: 5,
                fpga: Some(1),
                board: Some(2),
                kind: FaultKind::FifoStall,
                attempts: 99
            }
        );
        assert!(FaultPlan::parse("5:fifo-stall#x").is_err());
    }

    #[test]
    fn scripted_board_pin_fires_only_on_that_board() {
        let plan = FaultPlan::parse("2:fifo-stall:99#1").unwrap();
        let b0 = FaultInjector::for_board(plan.clone(), 0);
        let b1 = FaultInjector::for_board(plan, 1);
        assert_eq!(b0.fire(2, 0, 0), None, "pinned to board 1, not 0");
        assert_eq!(b1.fire(2, 0, 0), Some(FaultKind::FifoStall));
        assert_eq!(b1.fire(2, 0, 98), Some(FaultKind::FifoStall));
        assert_eq!(b1.fire(2, 0, 99), None);
    }

    #[test]
    fn plan_parse_rejects_garbage() {
        assert!(FaultPlan::parse("").is_err());
        assert!(FaultPlan::parse("x:pe-flip").is_err());
        assert!(FaultPlan::parse("0:warp-core-breach").is_err());
        assert!(FaultPlan::parse("0:pe-flip:one").is_err());
        assert!(FaultPlan::parse("0:pe-flip:1:2").is_err());
        assert!(FaultPlan::parse("0:pe-flip@x").is_err());
    }

    #[test]
    fn kind_names_round_trip() {
        for k in ALL_FAULT_KINDS {
            assert_eq!(FaultKind::parse(k.name()).unwrap(), k);
        }
        assert!(FaultKind::parse("nope").is_err());
    }

    #[test]
    fn scripted_fire_matches_spec() {
        let inj = FaultInjector::new(FaultPlan::parse("2:adr-fault:2@1").unwrap());
        assert_eq!(inj.fire(2, 1, 0), Some(FaultKind::AdrFault));
        assert_eq!(inj.fire(2, 1, 1), Some(FaultKind::AdrFault));
        assert_eq!(inj.fire(2, 1, 2), None, "fault clears after 2 attempts");
        assert_eq!(inj.fire(2, 0, 0), None, "wrong FPGA");
        assert_eq!(inj.fire(1, 1, 0), None, "wrong entry");
    }

    #[test]
    fn seeded_fire_is_deterministic_and_rate_bounded() {
        let inj = FaultInjector::new(FaultPlan::seeded(42));
        let again = FaultInjector::new(FaultPlan::seeded(42));
        let mut fired = 0u64;
        for entry in 0..2000u64 {
            assert_eq!(inj.fire(entry, 0, 0), again.fire(entry, 0, 0));
            if inj.fire(entry, 0, 0).is_some() {
                fired += 1;
            }
        }
        // 25% nominal rate: accept a generous band.
        assert!((200..800).contains(&fired), "fired {fired}");
        // Different seeds disagree somewhere.
        let other = FaultInjector::new(FaultPlan::seeded(43));
        assert!((0..2000u64).any(|e| inj.fire(e, 0, 0) != other.fire(e, 0, 0)));
    }

    #[test]
    fn seeded_persistence_spans_retry_budget() {
        // Some faults clear within the default 3 retries, some outlast
        // them — both recovery paths stay exercised.
        let inj = FaultInjector::new(FaultPlan::seeded(7));
        let mut cleared = 0;
        let mut persistent = 0;
        for entry in 0..2000u64 {
            if inj.fire(entry, 0, 0).is_none() {
                continue;
            }
            if inj.fire(entry, 0, 3).is_none() {
                cleared += 1;
            } else {
                persistent += 1;
            }
        }
        assert!(cleared > 0);
        assert!(persistent > 0);
    }

    #[test]
    fn heavy_tail_persistence_is_pareto_ish_and_capped() {
        let inj = FaultInjector::new(FaultPlan::seeded_heavy(11));
        // Probe each faulty pair's persistence: the smallest attempt
        // index that no longer fires.
        let probe = |entry: u64| -> Option<u32> {
            inj.fire(entry, 0, 0)?;
            let mut p = 1u32;
            while p < 2 * MAX_STUCK_ATTEMPTS && inj.fire(entry, 0, p).is_some() {
                p += 1;
            }
            Some(p)
        };
        let (mut faulty, mut ge2, mut ge8, mut stuck) = (0u64, 0u64, 0u64, 0u64);
        for entry in 0..4000u64 {
            let Some(p) = probe(entry) else { continue };
            faulty += 1;
            assert!(p.is_power_of_two(), "persistence {p} not a power of two");
            assert!(p <= MAX_STUCK_ATTEMPTS, "persistence {p} above the cap");
            ge2 += (p >= 2) as u64;
            ge8 += (p >= 8) as u64;
            stuck += (p == MAX_STUCK_ATTEMPTS) as u64;
        }
        // ~25% nominal fault rate over 4000 entries.
        assert!((400..1600).contains(&faulty), "faulty {faulty}");
        // Power-law shape: each tail is a strict subset, and the
        // MAX_STUCK_ATTEMPTS bucket (P = 2^-6 of faults) is occupied.
        assert!(ge2 < faulty, "some faults must clear after one attempt");
        assert!(ge8 < ge2, "ge8 {ge8} vs ge2 {ge2}");
        assert!(stuck > 0, "no stuck boards drawn");
        assert!(stuck < ge8, "stuck {stuck} vs ge8 {ge8}");
        // The uniform mode never draws past 6 attempts; the heavy tail
        // must (that is the point).
        let uniform = FaultInjector::new(FaultPlan::seeded(11));
        assert!((0..4000u64).all(|e| uniform.fire(e, 0, 6).is_none()));
        assert!((0..4000u64).any(|e| inj.fire(e, 0, 6).is_some()));
    }

    #[test]
    fn board_salt_decorrelates_seeded_streams() {
        // Board 0 must reproduce the unsalted stream bit-for-bit (every
        // pinned seeded count in the suite depends on it), and distinct
        // boards must draw independent fault/persistence streams — in
        // particular the heavy tail's stuck pairs must not recur on
        // every board of a fleet.
        let plan = FaultPlan::seeded_heavy(11);
        let unsalted = FaultInjector::new(plan.clone());
        let b0 = FaultInjector::for_board(plan.clone(), 0);
        for entry in 0..500u64 {
            for attempt in [0, 1, 3, 7, 63] {
                assert_eq!(unsalted.fire(entry, 0, attempt), b0.fire(entry, 0, attempt));
                assert_eq!(
                    unsalted.roll(entry, 1, attempt, 97),
                    b0.roll(entry, 1, attempt, 97)
                );
            }
        }
        // Deterministic per-board fault totals over 2000 entries at the
        // default 25% rate: pinned so a hash regression is loud.
        let totals: Vec<u64> = (0..4)
            .map(|board| {
                let inj = FaultInjector::for_board(plan.clone(), board);
                (0..2000u64)
                    .filter(|&e| inj.fire(e, 0, 0).is_some())
                    .count() as u64
            })
            .collect();
        assert_eq!(totals, vec![505, 483, 506, 467], "per-board totals moved");
        // Stuck pairs (persistence = MAX_STUCK_ATTEMPTS) on board 0 must
        // not all be stuck on board 1: correlated streams would wedge a
        // whole fleet at once.
        let b1 = FaultInjector::for_board(plan, 1);
        let stuck_on =
            |inj: &FaultInjector, e: u64| inj.fire(e, 0, MAX_STUCK_ATTEMPTS / 2).is_some();
        let stuck0: Vec<u64> = (0..4000u64).filter(|&e| stuck_on(&b0, e)).collect();
        assert!(!stuck0.is_empty(), "no stuck pairs drawn on board 0");
        assert!(
            stuck0.iter().any(|&e| !stuck_on(&b1, e)),
            "every board-0 stuck pair is also stuck on board 1: streams correlated"
        );
    }

    #[test]
    fn checksums_see_single_changes() {
        let hits = vec![
            Hit {
                i0: 1,
                i1: 2,
                score: 30,
            },
            Hit {
                i0: 4,
                i1: 0,
                score: 55,
            },
        ];
        let base = hits_checksum(&hits);
        let mut flipped = hits.clone();
        flipped[1].score ^= 1 << 4;
        assert_ne!(base, hits_checksum(&flipped));
        assert_ne!(base, hits_checksum(&hits[..1]), "truncation detected");
        assert_ne!(
            stream_checksum(&[b"MKVL", b"AWRN"]),
            stream_checksum(&[b"MKVL", b"AWRM"])
        );
        assert_ne!(
            stream_checksum(&[b"MKVL"]),
            stream_checksum(&[b"MKV"]),
            "truncation detected"
        );
    }

    #[test]
    fn index_serial_checksum_matches_board_discipline() {
        // The v2 index artifact reuses this module's checksum discipline
        // (`psc_index::fletcher64` is a dependency-order mirror of
        // `stream_checksum`). Pin the equivalence so the two copies
        // cannot drift apart silently.
        let samples: [&[u8]; 4] = [b"", b"\x07", b"MKVLAWRN\x00\x00", &[0xFF; 300]];
        for bytes in samples {
            assert_eq!(
                psc_index::fletcher64(&[bytes]),
                stream_checksum(&[bytes]),
                "fletcher64 diverged from stream_checksum on {bytes:?}"
            );
        }
        assert_eq!(
            psc_index::fletcher64(&[b"MKVL", b"AWRN"]),
            stream_checksum(&[b"MKVLAWRN"]),
            "part boundaries must not affect the sum"
        );
    }

    #[test]
    fn watchdog_budget_covers_legitimate_runs() {
        let p = RecoveryPolicy::default();
        // lower_bound + stalls (≤ pairs) is the legitimate ceiling.
        assert!(p.watchdog_budget(1000, 50) >= 1000 + 50);
        assert!(
            p.watchdog_budget(0, 0) >= 1,
            "slack keeps empty entries alive"
        );
        assert!(p.backoff(1) > p.backoff(0), "backoff escalates");
        // Huge attempt counts must not shift past the word width.
        assert!(p.backoff(100) >= p.backoff(16));
    }
}
