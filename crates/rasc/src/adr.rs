//! Algorithm Defined Registers — the host-visible control interface.
//!
//! SGI Core exposes a small register file (ADRs) through which the host
//! drives an algorithm build: write configuration, set the start bit,
//! poll status, read back result counts (paper Figure 3). This module
//! models that interface as a register-mapped facade over the
//! functional operator, including the command FSM a real driver has to
//! respect — the same handshake whose per-dispatch cost appears in the
//! DMA model as `dispatch_latency`.

use psc_score::SubstitutionMatrix;

use crate::config::OperatorConfig;
use crate::functional::FunctionalOperator;
use crate::operator::Hit;

/// Register addresses (64-bit registers, word-addressed).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum Reg {
    /// RO: algorithm identifier ("PSC1").
    AlgorithmId = 0x0,
    /// RW: ungapped threshold.
    Threshold = 0x1,
    /// RW: IL0 window count of the staged entry.
    Il0Count = 0x2,
    /// RW: IL1 window count of the staged entry.
    Il1Count = 0x3,
    /// WO: command register (see [`Cmd`]).
    Command = 0x4,
    /// RO: status register (see [`Status`]).
    Status = 0x5,
    /// RO: number of results available after completion.
    ResultCount = 0x6,
    /// RO: simulated cycle counter of the last run.
    CycleCount = 0x7,
    /// RO: pops one result (packed `(i0 << 32) | i1`) per read.
    ResultPop = 0x8,
}

/// Commands accepted by [`Reg::Command`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u64)]
pub enum Cmd {
    Start = 1,
    Reset = 2,
}

/// Status register values.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u64)]
pub enum Status {
    Idle = 0,
    Done = 2,
    /// Host misused the protocol (e.g. Start without staged data).
    Fault = 3,
}

/// Magic value in [`Reg::AlgorithmId`].
pub const ALGORITHM_ID: u64 = 0x5053_4331; // "PSC1"

/// The register-mapped device.
#[derive(Debug)]
pub struct AdrDevice {
    op: FunctionalOperator,
    /// The substitution ROM baked into the bitstream.
    matrix: SubstitutionMatrix,
    threshold: i32,
    il0: Vec<u8>,
    il1: Vec<u8>,
    staged0: u64,
    staged1: u64,
    status: Status,
    results: std::collections::VecDeque<Hit>,
    cycles: u64,
}

impl AdrDevice {
    pub fn new(config: OperatorConfig, matrix: &SubstitutionMatrix) -> Result<AdrDevice, String> {
        let threshold = config.threshold;
        Ok(AdrDevice {
            op: FunctionalOperator::new(config, matrix)?,
            matrix: matrix.clone(),
            threshold,
            il0: Vec::new(),
            il1: Vec::new(),
            staged0: 0,
            staged1: 0,
            status: Status::Idle,
            results: std::collections::VecDeque::new(),
            cycles: 0,
        })
    }

    /// Stage window data into board SRAM (the DMA path; not register
    /// mapped, but required before `Start`).
    pub fn stage(&mut self, il0: &[u8], il1: &[u8]) {
        self.il0 = il0.to_vec();
        self.il1 = il1.to_vec();
    }

    /// Host write to a register.
    pub fn write(&mut self, reg: Reg, value: u64) {
        match reg {
            Reg::Threshold => self.threshold = value as i32,
            Reg::Il0Count => self.staged0 = value,
            Reg::Il1Count => self.staged1 = value,
            Reg::Command if value == Cmd::Reset as u64 => {
                self.results.clear();
                self.cycles = 0;
                self.status = Status::Idle;
            }
            Reg::Command if value == Cmd::Start as u64 => self.start(),
            Reg::Command => self.status = Status::Fault,
            // Writes to RO registers are ignored (bus semantics).
            _ => {}
        }
    }

    /// Host read of a register.
    pub fn read(&mut self, reg: Reg) -> u64 {
        match reg {
            Reg::AlgorithmId => ALGORITHM_ID,
            Reg::Threshold => self.threshold as u64,
            Reg::Il0Count => self.staged0,
            Reg::Il1Count => self.staged1,
            Reg::Command => 0,
            Reg::Status => self.status as u64,
            Reg::ResultCount => self.results.len() as u64,
            Reg::CycleCount => self.cycles,
            Reg::ResultPop => match self.results.pop_front() {
                Some(h) => ((h.i0 as u64) << 32) | h.i1 as u64,
                None => u64::MAX,
            },
        }
    }

    fn start(&mut self) {
        let l = self.op.config().window_len as u64;
        // Protocol checks: staged counts must match the SRAM contents.
        if self.staged0 * l != self.il0.len() as u64 || self.staged1 * l != self.il1.len() as u64 {
            self.status = Status::Fault;
            return;
        }
        // The real hardware reads the threshold register
        // combinationally; here it is part of the operator config, so
        // rebuild when it changed (the ROM stays the bitstream's).
        let mut cfg = self.op.config().clone();
        cfg.threshold = self.threshold;
        if cfg.threshold != self.op.config().threshold {
            match FunctionalOperator::new(cfg, &self.matrix) {
                Ok(op) => self.op = op,
                Err(_) => {
                    // A threshold the operator rejects is a protocol
                    // fault, not a host panic — mirror the hardware's
                    // error register.
                    self.status = Status::Fault;
                    return;
                }
            }
        }
        let r = self.op.run_entry(&self.il0, &self.il1);
        self.cycles = r.cycles;
        self.results = r.hits.into();
        self.status = Status::Done;
    }
}

/// A latched device fault observed during the ADR handshake.
///
/// This is recoverable data, not a host panic: the driver resets the
/// device before returning, so the caller may restage and retry (the
/// board's recovery loop does exactly that).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdrError {
    /// The raw status register value observed (always
    /// [`Status::Fault`] today; kept raw to mirror the bus).
    pub status: u64,
}

impl std::fmt::Display for AdrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ADR device faulted (status register {})", self.status)
    }
}

impl std::error::Error for AdrError {}

/// Convenience driver: the full handshake a host application performs.
///
/// A latched [`Status::Fault`] comes back as [`AdrError`] with the
/// device already reset, ready for redispatch.
pub fn run_via_adr(
    device: &mut AdrDevice,
    il0: &[u8],
    il1: &[u8],
) -> Result<(Vec<Hit>, u64), AdrError> {
    let l = device.op.config().window_len as u64;
    device.stage(il0, il1);
    device.write(Reg::Il0Count, il0.len() as u64 / l);
    device.write(Reg::Il1Count, il1.len() as u64 / l);
    device.write(Reg::Command, Cmd::Start as u64);
    let status = device.read(Reg::Status);
    if status != Status::Done as u64 {
        device.write(Reg::Command, Cmd::Reset as u64);
        return Err(AdrError { status });
    }
    let n = device.read(Reg::ResultCount);
    let mut hits = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let packed = device.read(Reg::ResultPop);
        hits.push(Hit {
            i0: (packed >> 32) as u32,
            i1: packed as u32,
            // Scores stay on the board in this protocol (the paper's
            // operator reports pair numbers; the host rescoring is part
            // of step 3's anchor handling).
            score: 0,
        });
    }
    let cycles = device.read(Reg::CycleCount);
    device.write(Reg::Command, Cmd::Reset as u64);
    Ok((hits, cycles))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_score::blosum62;
    use psc_seqio::alphabet::encode_protein;

    fn device() -> AdrDevice {
        let mut cfg = OperatorConfig::new(8);
        cfg.window_len = 6;
        cfg.threshold = 20;
        cfg.slot_size = 4;
        AdrDevice::new(cfg, blosum62()).unwrap()
    }

    fn windows(words: &[&[u8]]) -> Vec<u8> {
        words.iter().flat_map(|w| encode_protein(w)).collect()
    }

    #[test]
    fn id_register() {
        let mut d = device();
        assert_eq!(d.read(Reg::AlgorithmId), ALGORITHM_ID);
    }

    #[test]
    fn full_handshake_matches_direct_run() {
        let mut d = device();
        let il0 = windows(&[b"MKVLAW", b"PPPPPP", b"MKVLAV"]);
        let il1 = windows(&[b"MKVLAW", b"GGGGGG"]);
        let (hits, cycles) = run_via_adr(&mut d, &il0, &il1).unwrap();

        let direct = FunctionalOperator::new(
            {
                let mut c = OperatorConfig::new(8);
                c.window_len = 6;
                c.threshold = 20;
                c.slot_size = 4;
                c
            },
            blosum62(),
        )
        .unwrap()
        .run_entry(&il0, &il1);
        assert_eq!(cycles, direct.cycles);
        assert_eq!(hits.len(), direct.hits.len());
        for (a, b) in hits.iter().zip(&direct.hits) {
            assert_eq!((a.i0, a.i1), (b.i0, b.i1));
        }
        // After reset the device is reusable.
        assert_eq!(d.read(Reg::Status), Status::Idle as u64);
        assert_eq!(d.read(Reg::ResultCount), 0);
    }

    #[test]
    fn start_with_wrong_counts_faults() {
        let mut d = device();
        d.stage(&windows(&[b"MKVLAW"]), &windows(&[b"MKVLAW"]));
        d.write(Reg::Il0Count, 99); // lies about the staged data
        d.write(Reg::Il1Count, 1);
        d.write(Reg::Command, Cmd::Start as u64);
        assert_eq!(d.read(Reg::Status), Status::Fault as u64);
        // Reset recovers.
        d.write(Reg::Command, Cmd::Reset as u64);
        assert_eq!(d.read(Reg::Status), Status::Idle as u64);
    }

    #[test]
    fn unknown_command_faults() {
        let mut d = device();
        d.write(Reg::Command, 0xDEAD);
        assert_eq!(d.read(Reg::Status), Status::Fault as u64);
    }

    #[test]
    fn threshold_register_reconfigures() {
        let mut d = device();
        let il0 = windows(&[b"MKVLAW"]);
        let il1 = windows(&[b"MKVLAW"]);
        d.write(Reg::Threshold, 1000);
        let (hits, _) = run_via_adr(&mut d, &il0, &il1).unwrap();
        assert!(hits.is_empty(), "threshold 1000 must suppress results");
        d.write(Reg::Threshold, 10);
        let (hits, _) = run_via_adr(&mut d, &il0, &il1).unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn faulted_handshake_is_an_error_not_a_panic() {
        let mut d = device();
        // A window length that is not a whole number of windows makes
        // the count registers disagree with the staged SRAM contents.
        let il0 = windows(&[b"MKVLAW"]);
        let il1 = encode_protein(b"MKV"); // 3 residues: not a window
        let err = run_via_adr(&mut d, &il0, &il1).unwrap_err();
        assert_eq!(err.status, Status::Fault as u64);
        assert!(err.to_string().contains("faulted"), "{err}");
        // The driver reset the device: a valid redispatch succeeds.
        let il1 = windows(&[b"MKVLAW"]);
        let (hits, _) = run_via_adr(&mut d, &il0, &il1).unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn popping_empty_results_returns_sentinel() {
        let mut d = device();
        assert_eq!(d.read(Reg::ResultPop), u64::MAX);
    }

    #[test]
    fn writes_to_read_only_registers_ignored() {
        let mut d = device();
        d.write(Reg::AlgorithmId, 42);
        d.write(Reg::Status, 42);
        d.write(Reg::CycleCount, 42);
        assert_eq!(d.read(Reg::AlgorithmId), ALGORITHM_ID);
        assert_eq!(d.read(Reg::Status), Status::Idle as u64);
        assert_eq!(d.read(Reg::CycleCount), 0);
    }
}
