//! A fleet of simulated RASC-100 boards behind a work-stealing,
//! fault-aware dispatcher.
//!
//! The paper models one blade; Nguyen & Lavenier's fine-grained
//! parallelization report studies the next axis — spreading seed-based
//! comparison across many accelerator nodes. This module generalizes
//! [`RascBoard`](crate::RascBoard) to N identical boards (each with the
//! configured FPGA count) fed from the step-2 entry stream through
//! per-board bounded queues, with steal-from-richest pulls when a board
//! runs dry and quarantine for boards that keep exhausting the retry
//! budget.
//!
//! ## Two-phase execution and the determinism argument
//!
//! Phase A (*functional*, parallel): every entry's fault-free per-shard
//! result — hits, cycles, stalls, byte counts, watchdog budget — is
//! computed once, exactly as a fault-free [`RascBoard`] run would, using
//! `host_threads` simulation workers, and merged by entry index. The hit
//! sink is fed from this phase only, so the emitted hits are the
//! fault-free hits for every entry **by construction**, at any board
//! count, thread count, steal policy, or fault plan. (This is the same
//! invariant the single board guarantees the long way round: recovery is
//! lossless, so recovered output equals fault-free output.)
//!
//! Phase B (*dispatch*, sequential): a discrete-event simulation replays
//! the fleet schedule over the Phase A base costs — per-board clocks,
//! bounded queues, steals, per-board fault streams (the injector is
//! salted with the board id, see [`FaultInjector::for_board`]), retries,
//! backoff, and quarantine. The loop is single-threaded over
//! index-sorted inputs, so the timing report is bit-identical for every
//! `host_threads`.
//!
//! ## Quarantine state machine
//!
//! A board that exhausts the retry budget on an entry takes a *strike*;
//! the entry is re-dispatched to the best other board (deterministic
//! order: pending re-dispatches are kept sorted by entry index and drain
//! before fresh stream entries). A board reaching
//! [`FleetConfig::quarantine_after`] strikes is *drained* — its queued
//! entries go back to the re-dispatch pool in index order — and
//! *quarantined*: it takes no further work and is reported degraded. The
//! last active board is never quarantined. An entry that fails on two
//! distinct boards (or has no viable board left) is recomputed on the
//! host software path, which is lossless, so none of this ever changes
//! output bytes — only the simulated clock.

use std::collections::VecDeque;

use crossbeam::channel;
use crossbeam::thread;
use psc_score::SubstitutionMatrix;

use crate::board::{BoardConfig, BoardReport, BoardSegment, Entry, ADR_HANDSHAKE_CYCLES};
use crate::fault::{BoardFault, FaultInjector, FaultKind, FaultSummary};
use crate::functional::FunctionalOperator;
use crate::operator::Hit;
use crate::resource::{ResourceError, ResourceModel};

/// Hard ceiling on fleet size (the per-entry board bitmask is a `u64`).
pub const MAX_BOARDS: usize = 64;

/// Board counts the modeled cluster-speedup ladder replays
/// (`fleet.modeled_b{N}`), in the style of `step3.modeled_p{N}`.
pub const MODELED_BOARD_LADDER: [usize; 5] = [1, 2, 4, 8, 16];

/// Victim selection when a board's queue runs dry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StealPolicy {
    /// Steal from the reachable board with the longest queue (ties to
    /// the lowest id), taking from the queue tail.
    #[default]
    Richest,
    /// Never steal: a dry board retires once the stream is exhausted.
    None,
}

impl StealPolicy {
    pub fn name(&self) -> &'static str {
        match self {
            StealPolicy::Richest => "richest",
            StealPolicy::None => "none",
        }
    }

    pub fn parse(s: &str) -> Result<StealPolicy, String> {
        match s {
            "richest" => Ok(StealPolicy::Richest),
            "none" => Ok(StealPolicy::None),
            other => Err(format!(
                "unknown steal policy {other:?} (expected richest or none)"
            )),
        }
    }
}

/// Which victims a thief may reach.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Topology {
    /// Any board may steal from any other.
    #[default]
    Crossbar,
    /// Boards form a ring; a board only steals from its two neighbours.
    Ring,
}

impl Topology {
    pub fn name(&self) -> &'static str {
        match self {
            Topology::Crossbar => "crossbar",
            Topology::Ring => "ring",
        }
    }

    pub fn parse(s: &str) -> Result<Topology, String> {
        match s {
            "crossbar" => Ok(Topology::Crossbar),
            "ring" => Ok(Topology::Ring),
            other => Err(format!(
                "unknown topology {other:?} (expected crossbar or ring)"
            )),
        }
    }

    /// May board `thief` steal from board `victim` in a fleet of `n`?
    fn allows(&self, thief: usize, victim: usize, n: usize) -> bool {
        match self {
            Topology::Crossbar => true,
            Topology::Ring => victim == (thief + 1) % n || (victim + 1) % n == thief,
        }
    }
}

/// Fleet-level configuration; rides next to [`BoardConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of simulated boards. `1` means the fleet dispatcher is
    /// bypassed entirely (the pipeline uses the plain single board).
    pub boards: usize,
    pub topology: Topology,
    pub steal_policy: StealPolicy,
    /// Bounded per-board entry queue depth (host prefetch window).
    pub queue_depth: usize,
    /// Strikes (retry-budget exhaustions) before a board is drained and
    /// quarantined.
    pub quarantine_after: u32,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            boards: 1,
            topology: Topology::Crossbar,
            steal_policy: StealPolicy::Richest,
            queue_depth: 4,
            quarantine_after: 2,
        }
    }
}

/// A steal or quarantine event on the fleet timeline, for the flight
/// recorder.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FleetEvent {
    pub board: usize,
    /// Simulated-clock start on the board's lane, seconds.
    pub at: f64,
    /// Simulated duration charged to the board, seconds.
    pub seconds: f64,
    pub kind: FleetEventKind,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FleetEventKind {
    /// The board ran dry and pulled one entry from `victim`'s queue.
    Steal { victim: usize },
    /// The board was quarantined; `drained` queued entries went back to
    /// the re-dispatch pool.
    QuarantineDrain { drained: u64 },
}

/// Timing and health report of a fleet run.
#[derive(Clone, Debug, Default)]
pub struct FleetReport {
    /// Configured board count.
    pub boards: usize,
    /// Work-steal pulls performed.
    pub steals: u64,
    /// Boards drained and quarantined, in quarantine order.
    pub quarantined: Vec<usize>,
    /// Entries re-dispatched after a board exhausted its retry budget.
    pub redispatched: u64,
    /// Entries completed per board (degraded entries count for nobody).
    pub entries_by_board: Vec<u64>,
    /// Seconds each board spent processing entries (faulted attempts and
    /// backoff included; steal waits and drains excluded).
    pub busy_seconds: Vec<f64>,
    /// Retry-budget exhaustions per board.
    pub strikes: Vec<u32>,
    /// Simulated wall time of the dispatch schedule: the slowest board's
    /// final clock. The modeled speedup ladder is ratios of this.
    pub makespan_seconds: f64,
    /// `(boards, makespan_seconds)` for every ladder point, replaying
    /// the same dispatch schedule at that fleet size. The entry at the
    /// configured board count equals `makespan_seconds` exactly. Empty
    /// when degradation is disabled (a ladder replay could fail).
    pub modeled: Vec<(usize, f64)>,
    /// Fleet-wide aggregate in single-board shape: `fpga_cycles[b*nf+f]`
    /// is board `b`'s FPGA `f`; byte/hit/fault counters are summed;
    /// `accelerated_seconds = bitstream_load + makespan + wire_out`.
    /// The fleet DES models dispatch, not double-buffering, so the
    /// overlap fields are zero.
    pub aggregate: BoardReport,
    /// Per-`(board, entry, fpga)` timeline when
    /// [`BoardConfig::record_timeline`] is set, in dispatch order.
    pub timeline: Vec<(usize, BoardSegment)>,
    /// Steal / quarantine events when the timeline is recorded.
    pub events: Vec<FleetEvent>,
}

impl FleetReport {
    /// Fraction of the makespan board `b` spent processing entries.
    pub fn occupancy(&self, board: usize) -> f64 {
        if self.makespan_seconds <= 0.0 {
            return 0.0;
        }
        self.busy_seconds[board] / self.makespan_seconds
    }

    pub fn occupancies(&self) -> Vec<f64> {
        (0..self.boards).map(|b| self.occupancy(b)).collect()
    }
}

/// Fault-free per-shard cost of one entry — everything Phase B needs to
/// replay any fault plan without touching sequence data again.
#[derive(Clone, Copy, Debug)]
struct ShardBase {
    fpga: usize,
    cycles: u64,
    stalls: u64,
    busy: u64,
    fifo_peak: u64,
    /// Bytes one dispatch streams (shard + IL1); every retry re-streams.
    bytes: u64,
    /// Watchdog budget of this shard (for `FifoStall` cost replay).
    budget: u64,
    hit_count: u64,
}

#[derive(Clone, Debug)]
struct EntryBase {
    entry: u64,
    shards: Vec<ShardBase>,
}

/// What one dispatch of one entry on one board cost, after replaying
/// the board's fault stream over the base result.
#[derive(Clone, Debug, Default)]
struct Replay {
    shards: Vec<ShardReplay>,
    /// Seconds the board is occupied by this dispatch (worst shard's
    /// wire + compute, plus dispatch latency and sync overhead).
    elapsed: f64,
    bytes_in: u64,
    faults: FaultSummary,
    /// Set when a shard exhausted the retry budget: `(fpga, kind,
    /// attempts)`. Later shards are not attempted (the host kills the
    /// dispatch).
    wedge: Option<(usize, FaultKind, u32)>,
    hit_count: u64,
}

#[derive(Clone, Copy, Debug)]
struct ShardReplay {
    fpga: usize,
    cycles: u64,
    stalls: u64,
    busy: u64,
    peak: u64,
    backoff_cycles: u64,
    retries: u32,
    wire: f64,
    compute: f64,
    wedged: bool,
}

/// Phase B per-board scheduler state.
#[derive(Clone, Debug, Default)]
struct BoardState {
    clock: f64,
    queue: VecDeque<usize>,
    strikes: u32,
    quarantined: bool,
    /// Dry and out of steal victims; cleared whenever new work appears.
    retired: bool,
}

/// Raw output of one Phase B simulation.
#[derive(Clone, Debug, Default)]
struct Sim {
    makespan: f64,
    steals: u64,
    quarantined: Vec<usize>,
    redispatched: u64,
    entries_by_board: Vec<u64>,
    busy: Vec<f64>,
    strikes: Vec<u32>,
    faults: FaultSummary,
    /// Per `(board, fpga)`, index `b * fpga_count + f`.
    cycles: Vec<u64>,
    stalls: Vec<u64>,
    busy_pe: Vec<u64>,
    peak: Vec<u64>,
    bytes_in: u64,
    hit_count: u64,
    timeline: Vec<(usize, BoardSegment)>,
    events: Vec<FleetEvent>,
}

/// A fleet of identical simulated RASC-100 boards.
#[derive(Debug)]
pub struct RascFleet {
    config: BoardConfig,
    fleet: FleetConfig,
    matrix: SubstitutionMatrix,
}

impl RascFleet {
    pub fn new(
        config: BoardConfig,
        fleet: FleetConfig,
        matrix: &SubstitutionMatrix,
    ) -> Result<RascFleet, ResourceError> {
        assert!(
            (1..=MAX_BOARDS).contains(&fleet.boards),
            "fleet size must be 1..={MAX_BOARDS}"
        );
        assert!(fleet.queue_depth >= 1, "queue depth must be at least 1");
        assert!(
            fleet.quarantine_after >= 1,
            "quarantine threshold must be at least 1 strike"
        );
        assert!(
            (1..=2).contains(&config.fpga_count),
            "RASC-100 has one or two FPGAs"
        );
        config.operator.validate().expect("invalid operator config");
        ResourceModel::check(&config.operator)?;
        Ok(RascFleet {
            config,
            fleet,
            matrix: matrix.clone(),
        })
    }

    pub fn config(&self) -> &BoardConfig {
        &self.config
    }

    pub fn fleet(&self) -> &FleetConfig {
        &self.fleet
    }

    /// Contiguous IL0 shard `[lo, hi)` (in windows) of FPGA `f` — the
    /// same split [`RascBoard`](crate::RascBoard) uses.
    fn shard(&self, k0: usize, f: usize) -> (usize, usize) {
        let per = k0.div_ceil(self.config.fpga_count);
        ((f * per).min(k0), ((f + 1) * per).min(k0))
    }

    /// Run a streamed workload across the fleet with `host_threads`
    /// simulation workers.
    ///
    /// `sink` receives `(entry_index, hits)` — possibly out of entry
    /// order — with exactly the fault-free hit stream of a single-board
    /// run (see the module docs for why). The report is deterministic
    /// in everything but `host_threads`-invariant too. With degradation
    /// disabled, the first retry-budget exhaustion in dispatch order
    /// fails the run.
    pub fn run_stream<I>(
        &self,
        entries: I,
        host_threads: usize,
        mut sink: impl FnMut(u64, Vec<Hit>),
    ) -> Result<FleetReport, BoardFault>
    where
        I: Iterator<Item = Entry> + Send,
    {
        let bases = self.precompute(entries, host_threads, &mut sink);
        let sim = self.simulate(&bases, self.fleet.boards, self.config.record_timeline)?;

        let mut modeled = Vec::new();
        if self.config.recovery.degrade {
            let mut ladder: Vec<usize> = MODELED_BOARD_LADDER.to_vec();
            if !ladder.contains(&self.fleet.boards) {
                ladder.push(self.fleet.boards);
                ladder.sort_unstable();
            }
            for n in ladder {
                let makespan = if n == self.fleet.boards {
                    sim.makespan
                } else {
                    self.simulate(&bases, n, false)?.makespan
                };
                modeled.push((n, makespan));
            }
        }

        let nf = self.config.fpga_count;
        let dma = self.config.dma;
        let mut aggregate = BoardReport {
            entries: bases.len() as u64,
            faults: sim.faults,
            fpga_cycles: sim.cycles,
            stall_cycles: sim.stalls,
            busy_pe_cycles: sim.busy_pe,
            fifo_peak: sim.peak,
            bytes_in: sim.bytes_in,
            hit_count: sim.hit_count,
            ..BoardReport::default()
        };
        aggregate.bytes_out = sim.hit_count * std::mem::size_of::<(u32, u32)>() as u64;
        aggregate.wire_in_seconds = dma.wire_time(aggregate.bytes_in);
        aggregate.wire_out_seconds = dma.wire_time(aggregate.bytes_out);
        aggregate.sync_seconds =
            self.config.sync_per_entry * bases.len() as f64 * (nf as f64 - 1.0);
        aggregate.setup_seconds = dma.bitstream_load;
        aggregate.accelerated_seconds =
            dma.bitstream_load + sim.makespan + aggregate.wire_out_seconds;

        Ok(FleetReport {
            boards: self.fleet.boards,
            steals: sim.steals,
            quarantined: sim.quarantined,
            redispatched: sim.redispatched,
            entries_by_board: sim.entries_by_board,
            busy_seconds: sim.busy,
            strikes: sim.strikes,
            makespan_seconds: sim.makespan,
            modeled,
            aggregate,
            timeline: sim.timeline,
            events: sim.events,
        })
    }

    /// Run a workload held in memory; per-entry hits in entry order.
    pub fn run_workload(
        &self,
        entries: &[Entry],
    ) -> Result<(Vec<Vec<Hit>>, FleetReport), BoardFault> {
        let mut hits: Vec<Vec<Hit>> = vec![Vec::new(); entries.len()];
        let report = self.run_stream(entries.iter().cloned(), 1, |idx, h| {
            hits[idx as usize] = h;
        })?;
        Ok((hits, report))
    }

    fn make_operators(&self) -> Vec<FunctionalOperator> {
        (0..self.config.fpga_count)
            .map(|_| {
                FunctionalOperator::new(self.config.operator.clone(), &self.matrix)
                    .expect("validated at construction")
            })
            .collect()
    }

    /// Phase A: fault-free base result of one entry, plus its merged,
    /// rebased hit list (FPGA 0's shard first — the single board's
    /// fault-free order).
    fn base_of(
        &self,
        ops: &[FunctionalOperator],
        idx: u64,
        entry: &Entry,
    ) -> (EntryBase, Vec<Hit>) {
        let l = self.config.operator.window_len;
        let k0 = entry.il0.len() / l;
        let k1 = entry.il1.len() / l;
        let policy = self.config.recovery;
        let mut shards = Vec::new();
        let mut merged = Vec::new();
        for (f, op) in ops.iter().enumerate() {
            let (lo, hi) = self.shard(k0, f);
            if lo >= hi {
                continue;
            }
            let sh = &entry.il0[lo * l..hi * l];
            let r = op.run_entry(sh, &entry.il1);
            let budget =
                policy.watchdog_budget(op.cycles_lower_bound(hi - lo, k1), ((hi - lo) * k1) as u64);
            shards.push(ShardBase {
                fpga: f,
                cycles: r.cycles,
                stalls: r.stall_cycles,
                busy: r.busy_pe_cycles,
                fifo_peak: r.fifo_peak,
                bytes: (sh.len() + entry.il1.len()) as u64,
                budget,
                hit_count: r.hits.len() as u64,
            });
            merged.extend(r.hits.into_iter().map(|mut h| {
                h.i0 += lo as u32;
                h
            }));
        }
        (EntryBase { entry: idx, shards }, merged)
    }

    /// Phase A over the whole stream: emits hits to `sink` and returns
    /// the index-sorted base costs.
    fn precompute<I>(
        &self,
        entries: I,
        host_threads: usize,
        sink: &mut impl FnMut(u64, Vec<Hit>),
    ) -> Vec<EntryBase>
    where
        I: Iterator<Item = Entry> + Send,
    {
        let host_threads = host_threads.max(1);
        let mut bases: Vec<EntryBase> = Vec::new();
        if host_threads == 1 {
            let ops = self.make_operators();
            for (idx, entry) in entries.enumerate() {
                let (base, hits) = self.base_of(&ops, idx as u64, &entry);
                sink(idx as u64, hits);
                bases.push(base);
            }
            return bases;
        }
        let (entry_tx, entry_rx) = channel::bounded::<(u64, Entry)>(host_threads * 2);
        let (res_tx, res_rx) = channel::bounded::<(EntryBase, Vec<Hit>)>(host_threads * 2);
        thread::scope(|s| {
            for _ in 0..host_threads {
                let rx = entry_rx.clone();
                let tx = res_tx.clone();
                s.spawn(move |_| {
                    let ops = self.make_operators();
                    for (idx, entry) in rx.iter() {
                        if tx.send(self.base_of(&ops, idx, &entry)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(entry_rx);
            drop(res_tx);
            let feeder = s.spawn(move |_| {
                for (idx, entry) in entries.enumerate() {
                    if entry_tx.send((idx as u64, entry)).is_err() {
                        break;
                    }
                }
            });
            for (base, hits) in res_rx.iter() {
                sink(base.entry, hits);
                bases.push(base);
            }
            feeder.join().expect("fleet feeder panicked");
        })
        .expect("fleet scope");
        // Workers interleave; Phase B needs index order.
        bases.sort_unstable_by_key(|b| b.entry);
        bases
    }

    /// Replay board `injector`'s fault stream over one entry's base
    /// cost: the attempt loop of the single board, as arithmetic.
    fn replay_entry(&self, base: &EntryBase, injector: Option<&FaultInjector>) -> Replay {
        let policy = self.config.recovery;
        let clock = self.config.operator.clock_hz as f64;
        let mut rep = Replay::default();
        let mut span = 0.0f64;
        for sb in &base.shards {
            let mut cycles = 0u64;
            let mut stalls = 0u64;
            let mut busy = 0u64;
            let mut peak = 0u64;
            let mut bytes = 0u64;
            let mut backoff = 0u64;
            let mut attempt = 0u32;
            let wedged = loop {
                let fault = injector.and_then(|i| i.fire(base.entry, sb.fpga, attempt));
                // Every dispatch (re-)streams the entry over NUMAlink.
                bytes += sb.bytes;
                let Some(kind) = fault else {
                    cycles += sb.cycles;
                    stalls += sb.stalls;
                    busy += sb.busy;
                    peak = peak.max(sb.fifo_peak);
                    break None;
                };
                rep.faults.faults_injected += 1;
                let harmless = match kind {
                    FaultKind::DmaCorrupt => {
                        cycles += sb.bytes;
                        rep.faults.checksum_mismatches += 1;
                        rep.faults.faults_detected += 1;
                        false
                    }
                    FaultKind::DmaTruncate | FaultKind::AdrFault => {
                        cycles += ADR_HANDSHAKE_CYCLES;
                        rep.faults.protocol_faults += 1;
                        rep.faults.faults_detected += 1;
                        false
                    }
                    FaultKind::FifoStall => {
                        cycles += sb.budget + 1;
                        rep.faults.watchdog_trips += 1;
                        rep.faults.faults_detected += 1;
                        false
                    }
                    FaultKind::FifoOverflow | FaultKind::PeFlip => {
                        // Compute completes; the corruption is caught by
                        // the result checksum — unless there was nothing
                        // to damage, in which case the attempt stands.
                        cycles += sb.cycles;
                        stalls += sb.stalls;
                        peak = peak.max(sb.fifo_peak);
                        if sb.hit_count == 0 {
                            busy += sb.busy;
                            true
                        } else {
                            rep.faults.checksum_mismatches += 1;
                            rep.faults.faults_detected += 1;
                            false
                        }
                    }
                };
                if harmless {
                    break None;
                }
                if attempt >= policy.max_retries {
                    break Some((sb.fpga, kind, attempt + 1));
                }
                rep.faults.retries += 1;
                let bo = policy.backoff(attempt);
                cycles += bo;
                backoff += bo;
                rep.faults.backoff_cycles += bo;
                attempt += 1;
            };
            let wire = self.config.dma.wire_time(bytes);
            let compute = cycles as f64 / clock;
            span = span.max(wire + compute);
            rep.bytes_in += bytes;
            rep.shards.push(ShardReplay {
                fpga: sb.fpga,
                cycles,
                stalls,
                busy,
                peak,
                backoff_cycles: backoff,
                retries: attempt,
                wire,
                compute,
                wedged: wedged.is_some(),
            });
            if let Some(w) = wedged {
                rep.wedge = Some(w);
                break;
            }
            rep.hit_count += sb.hit_count;
        }
        rep.elapsed = span
            + self.config.dma.dispatch_latency
            + self.config.sync_per_entry * (self.config.fpga_count as f64 - 1.0);
        rep
    }

    /// Phase B: the deterministic discrete-event dispatch simulation at
    /// `n_boards` boards. Sequential by design — determinism over speed
    /// (fault replay is hash arithmetic; there is nothing heavy here).
    fn simulate(
        &self,
        bases: &[EntryBase],
        n_boards: usize,
        record: bool,
    ) -> Result<Sim, BoardFault> {
        let n = bases.len();
        let nf = self.config.fpga_count;
        let policy = self.config.recovery;
        let clock = self.config.operator.clock_hz as f64;
        let dma = self.config.dma;
        let depth = self.fleet.queue_depth;
        let injectors: Vec<Option<FaultInjector>> = (0..n_boards)
            .map(|b| {
                self.config
                    .fault_plan
                    .clone()
                    .map(|p| FaultInjector::for_board(p, b))
            })
            .collect();
        let mut st = vec![BoardState::default(); n_boards];
        let mut out = Sim {
            entries_by_board: vec![0; n_boards],
            busy: vec![0.0; n_boards],
            strikes: vec![0; n_boards],
            cycles: vec![0; n_boards * nf],
            stalls: vec![0; n_boards * nf],
            busy_pe: vec![0; n_boards * nf],
            peak: vec![0; n_boards * nf],
            ..Sim::default()
        };
        let mut cursor = 0usize;
        let mut redis: VecDeque<usize> = VecDeque::new();
        let mut failed: Vec<u64> = vec![0; n];
        let mut done = 0usize;

        while done < n {
            // Feed: fill bounded queues, re-dispatches (index order)
            // before fresh stream entries, preferring the healthiest
            // shortest-queued board — fault-aware placement.
            loop {
                let from_redis = !redis.is_empty();
                let e = match (from_redis, cursor < n) {
                    (true, _) => redis[0],
                    (false, true) => cursor,
                    (false, false) => break,
                };
                let mask = failed[e];
                if from_redis
                    && !st
                        .iter()
                        .enumerate()
                        .any(|(i, s)| !s.quarantined && mask & (1u64 << i) == 0)
                {
                    // Every remaining board already exhausted its retry
                    // budget on this entry: host software recomputes it
                    // (losslessly — the sink saw its hits in Phase A).
                    redis.pop_front();
                    done += 1;
                    out.faults.entries_degraded += 1;
                    continue;
                }
                let target = st
                    .iter()
                    .enumerate()
                    .filter(|(i, s)| {
                        !s.quarantined && s.queue.len() < depth && mask & (1u64 << *i) == 0
                    })
                    .min_by_key(|(i, s)| (s.strikes, s.queue.len(), *i))
                    .map(|(i, _)| i);
                let Some(b) = target else {
                    // No queue space anywhere (or none for this
                    // re-dispatch); queues must drain first.
                    break;
                };
                st[b].queue.push_back(e);
                st[b].retired = false;
                if from_redis {
                    redis.pop_front();
                } else {
                    cursor += 1;
                }
            }

            // Earliest-clock active board dispatches next (ties to the
            // lowest id) — the event at the head of simulated time.
            let Some(b) = st
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.quarantined && !s.retired)
                .min_by(|(i, a), (j, c)| a.clock.total_cmp(&c.clock).then(i.cmp(j)))
                .map(|(i, _)| i)
            else {
                unreachable!("fleet scheduler wedged with {} entries pending", n - done)
            };

            let e = match st[b].queue.pop_front() {
                Some(e) => e,
                Option::None => {
                    // Dry board: steal per policy and topology, from the
                    // richest reachable queue, taking the tail entry.
                    let mut victim: Option<(usize, usize)> = None; // (len, id)
                    if self.fleet.steal_policy == StealPolicy::Richest {
                        for (v, s) in st.iter().enumerate() {
                            if v == b
                                || s.quarantined
                                || s.queue.is_empty()
                                || !self.fleet.topology.allows(b, v, n_boards)
                            {
                                continue;
                            }
                            let len = s.queue.len();
                            if victim.is_none_or(|(bl, bv)| len > bl || (len == bl && v < bv)) {
                                victim = Some((len, v));
                            }
                        }
                    }
                    match victim {
                        Some((_, v)) => {
                            let e = st[v].queue.pop_back().expect("victim queue emptied");
                            out.steals += 1;
                            if record {
                                out.events.push(FleetEvent {
                                    board: b,
                                    at: st[b].clock,
                                    seconds: dma.dispatch_latency,
                                    kind: FleetEventKind::Steal { victim: v },
                                });
                            }
                            st[b].clock += dma.dispatch_latency;
                            e
                        }
                        Option::None => {
                            st[b].retired = true;
                            continue;
                        }
                    }
                }
            };

            let rep = self.replay_entry(&bases[e], injectors[b].as_ref());
            let t0 = st[b].clock;
            out.faults.merge(&rep.faults);
            out.bytes_in += rep.bytes_in;
            for s in &rep.shards {
                let slot = b * nf + s.fpga;
                out.cycles[slot] += s.cycles;
                out.stalls[slot] += s.stalls;
                out.busy_pe[slot] += s.busy;
                out.peak[slot] = out.peak[slot].max(s.peak);
                if record {
                    out.timeline.push((
                        b,
                        BoardSegment {
                            entry: bases[e].entry,
                            fpga: s.fpga,
                            dma_start: t0,
                            dma_end: t0 + s.wire,
                            compute_start: t0 + s.wire,
                            compute_end: t0 + s.wire + s.compute,
                            backoff_seconds: s.backoff_cycles as f64 / clock,
                            retries: s.retries,
                            degraded: s.wedged,
                        },
                    ));
                }
            }
            st[b].clock += rep.elapsed;
            out.busy[b] += rep.elapsed;

            match rep.wedge {
                Option::None => {
                    done += 1;
                    out.entries_by_board[b] += 1;
                    out.hit_count += rep.hit_count;
                }
                Some((fpga, kind, attempts)) => {
                    st[b].strikes += 1;
                    failed[e] |= 1u64 << b;
                    if !policy.degrade {
                        return Err(BoardFault {
                            entry: bases[e].entry,
                            fpga,
                            kind,
                            attempts,
                        });
                    }
                    out.redispatched += 1;
                    let viable = st
                        .iter()
                        .enumerate()
                        .any(|(i, s)| !s.quarantined && failed[e] & (1u64 << i) == 0);
                    if !viable || failed[e].count_ones() >= 2 {
                        // Struck out on multiple boards: host software.
                        done += 1;
                        out.faults.entries_degraded += 1;
                    } else {
                        redis.push_back(e);
                        redis.make_contiguous().sort_unstable();
                        for s in st.iter_mut() {
                            if !s.quarantined {
                                s.retired = false;
                            }
                        }
                    }
                    let active = st.iter().filter(|s| !s.quarantined).count();
                    if st[b].strikes >= self.fleet.quarantine_after && active > 1 {
                        let drained = st[b].queue.len() as u64;
                        let cost = dma.dispatch_latency * drained as f64;
                        if record {
                            out.events.push(FleetEvent {
                                board: b,
                                at: st[b].clock,
                                seconds: cost,
                                kind: FleetEventKind::QuarantineDrain { drained },
                            });
                        }
                        st[b].clock += cost;
                        while let Some(q) = st[b].queue.pop_front() {
                            redis.push_back(q);
                        }
                        redis.make_contiguous().sort_unstable();
                        st[b].quarantined = true;
                        out.quarantined.push(b);
                        for s in st.iter_mut() {
                            if !s.quarantined {
                                s.retired = false;
                            }
                        }
                    }
                }
            }
        }

        for (b, s) in st.iter().enumerate() {
            out.makespan = out.makespan.max(s.clock);
            out.strikes[b] = s.strikes;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::board::RascBoard;
    use crate::config::OperatorConfig;
    use crate::fault::FaultPlan;
    use psc_score::blosum62;

    fn test_config(fpgas: usize) -> BoardConfig {
        let mut op = OperatorConfig::new(8);
        op.window_len = 6;
        op.threshold = 20;
        op.slot_size = 4;
        BoardConfig::new(op, fpgas)
    }

    fn workload(n: usize) -> Vec<Entry> {
        (0..n)
            .map(|i| {
                let k0 = i % 9 + 1;
                let k1 = i % 5 + 1;
                Entry {
                    il0: (0..k0 * 6).map(|r| ((r + i) % 20) as u8).collect(),
                    il1: (0..k1 * 6).map(|r| ((r * 3 + i) % 20) as u8).collect(),
                }
            })
            .collect()
    }

    fn fleet(boards: usize, cfg: BoardConfig) -> RascFleet {
        let f = FleetConfig {
            boards,
            ..FleetConfig::default()
        };
        RascFleet::new(cfg, f, blosum62()).unwrap()
    }

    #[test]
    fn fleet_hits_match_fault_free_single_board_at_any_size() {
        let work = workload(30);
        let (want, _) = RascBoard::new(test_config(2), blosum62())
            .unwrap()
            .run_workload(&work)
            .unwrap();
        for boards in [1, 2, 3, 5, 8] {
            let mut cfg = test_config(2);
            cfg.fault_plan = Some(FaultPlan::seeded_heavy(9));
            let (got, rep) = fleet(boards, cfg).run_workload(&work).unwrap();
            assert_eq!(got, want, "boards={boards} changed the hit stream");
            assert_eq!(rep.boards, boards);
            assert_eq!(rep.aggregate.entries, work.len() as u64);
        }
    }

    #[test]
    fn fleet_report_is_host_thread_invariant() {
        let mut cfg = test_config(2);
        cfg.fault_plan = Some(FaultPlan::seeded_heavy(4));
        cfg.record_timeline = true;
        let f = fleet(4, cfg);
        let work = workload(40);
        let (h1, r1) = f.run_workload(&work).unwrap();
        let mut h4: Vec<Vec<Hit>> = vec![Vec::new(); work.len()];
        let r4 = f
            .run_stream(work.iter().cloned(), 4, |i, h| h4[i as usize] = h)
            .unwrap();
        assert_eq!(h1, h4);
        assert_eq!(r1.makespan_seconds, r4.makespan_seconds);
        assert_eq!(r1.aggregate.fpga_cycles, r4.aggregate.fpga_cycles);
        assert_eq!(r1.aggregate.faults, r4.aggregate.faults);
        assert_eq!(r1.steals, r4.steals);
        assert_eq!(r1.quarantined, r4.quarantined);
        assert_eq!(r1.timeline, r4.timeline);
        assert_eq!(r1.events, r4.events);
        assert_eq!(r1.modeled, r4.modeled);
    }

    #[test]
    fn modeled_ladder_is_self_consistent_and_scales() {
        let f = fleet(4, test_config(1));
        let (_, rep) = f.run_workload(&workload(64)).unwrap();
        let at = |n: usize| {
            rep.modeled
                .iter()
                .find(|(b, _)| *b == n)
                .map(|(_, s)| *s)
                .unwrap()
        };
        assert_eq!(at(4), rep.makespan_seconds, "ladder disagrees with run");
        assert!(at(1) > at(2) && at(2) > at(4) && at(4) > at(8));
        // Near-linear region on an even workload.
        assert!(at(1) / at(4) > 3.0, "4-board speedup {:.2}", at(1) / at(4));
    }

    #[test]
    fn stealing_reduces_makespan_on_imbalanced_tails() {
        // One entry dwarfs everything else. The board that draws it is
        // pinned for the whole run while entries queued behind it can
        // only move if somebody steals them.
        let mut work = workload(13);
        work[1] = Entry {
            il0: (0..150 * 6).map(|r| ((r * 5) % 20) as u8).collect(),
            il1: (0..100 * 6).map(|r| ((r * 7) % 20) as u8).collect(),
        };
        let mk = |policy| {
            let f = RascFleet::new(
                test_config(1),
                FleetConfig {
                    boards: 2,
                    steal_policy: policy,
                    ..FleetConfig::default()
                },
                blosum62(),
            )
            .unwrap();
            f.run_workload(&work).unwrap().1
        };
        let rich = mk(StealPolicy::Richest);
        let none = mk(StealPolicy::None);
        assert!(rich.steals > 0, "no steals under an imbalanced tail");
        assert_eq!(none.steals, 0);
        assert!(
            rich.makespan_seconds < none.makespan_seconds,
            "stealing made things worse: {} vs {}",
            rich.makespan_seconds,
            none.makespan_seconds
        );
    }

    #[test]
    fn pinned_stuck_board_is_quarantined_and_entries_complete_elsewhere() {
        // The first four entries board 1 sees (round-robin feed puts
        // entries ≡ 1 mod 3 there) wedge forever — but only on board 1.
        // Protocol faults are cheap (8 cycles/attempt), so board 1 stays
        // at the head of simulated time and strikes out twice before the
        // healthy boards can steal its queue dry. The dispatcher must
        // quarantine it and finish every entry elsewhere with unchanged
        // output.
        let work = workload(24);
        let (want, _) = RascBoard::new(test_config(1), blosum62())
            .unwrap()
            .run_workload(&work)
            .unwrap();
        let mut cfg = test_config(1);
        cfg.fault_plan = Some(
            FaultPlan::parse(
                "1:adr-fault:1000000#1,4:adr-fault:1000000#1,\
                 7:adr-fault:1000000#1,10:adr-fault:1000000#1",
            )
            .unwrap(),
        );
        let f = RascFleet::new(
            cfg,
            FleetConfig {
                boards: 3,
                quarantine_after: 2,
                ..FleetConfig::default()
            },
            blosum62(),
        )
        .unwrap();
        let (got, rep) = f.run_workload(&work).unwrap();
        assert_eq!(got, want, "quarantine changed output bytes");
        assert_eq!(rep.quarantined, vec![1]);
        assert_eq!(rep.strikes[1], 2);
        assert!(rep.redispatched >= 2);
        assert_eq!(
            rep.aggregate.faults.entries_degraded, 0,
            "entries must complete on healthy boards, not degrade"
        );
        let completed: u64 = rep.entries_by_board.iter().sum();
        assert_eq!(completed, work.len() as u64);
    }

    #[test]
    fn degrade_disabled_fails_on_the_wedged_entry() {
        let mut cfg = test_config(1);
        cfg.fault_plan = Some(FaultPlan::parse("5:fifo-stall:1000000").unwrap());
        cfg.recovery.degrade = false;
        let f = fleet(2, cfg);
        let err = f.run_workload(&workload(12)).unwrap_err();
        assert_eq!(err.entry, 5);
        assert_eq!(err.kind, FaultKind::FifoStall);
    }

    #[test]
    fn empty_workload_and_occupancy_edges() {
        let f = fleet(3, test_config(1));
        let (hits, rep) = f.run_workload(&[]).unwrap();
        assert!(hits.is_empty());
        assert_eq!(rep.makespan_seconds, 0.0);
        assert_eq!(rep.occupancies(), vec![0.0; 3]);
        assert_eq!(rep.aggregate.bytes_in, 0);
        // Non-empty: occupancies are sane fractions.
        let (_, rep) = f.run_workload(&workload(20)).unwrap();
        for o in rep.occupancies() {
            assert!((0.0..=1.0 + 1e-12).contains(&o), "occupancy {o}");
        }
        assert!(rep.makespan_seconds > 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_boards_rejected() {
        let _ = RascFleet::new(
            test_config(1),
            FleetConfig {
                boards: 0,
                ..FleetConfig::default()
            },
            blosum62(),
        );
    }

    #[test]
    fn policy_and_topology_names_round_trip() {
        for p in [StealPolicy::Richest, StealPolicy::None] {
            assert_eq!(StealPolicy::parse(p.name()).unwrap(), p);
        }
        for t in [Topology::Crossbar, Topology::Ring] {
            assert_eq!(Topology::parse(t.name()).unwrap(), t);
        }
        assert!(StealPolicy::parse("greedy").is_err());
        assert!(Topology::parse("torus").is_err());
        // Ring reachability: neighbours only.
        assert!(Topology::Ring.allows(0, 1, 4));
        assert!(Topology::Ring.allows(0, 3, 4));
        assert!(!Topology::Ring.allows(0, 2, 4));
        assert!(Topology::Crossbar.allows(0, 2, 4));
    }
}
