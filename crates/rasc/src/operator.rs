//! The cycle-accurate PSC operator (paper Figure 1).
//!
//! For one index entry `k` the operator receives `K0` windows from
//! `IL0` and `K1` windows from `IL1` and reports every pair whose
//! windowed ungapped score reaches the threshold.
//!
//! ## Cycle accounting contract
//!
//! Both this simulator and the fast path in [`crate::functional`]
//! implement *exactly* the following model (property-tested equal), with
//! `P` PEs, window length `L`, `S` slots and result capacity `C`:
//!
//! * empty entries (`K0 == 0 || K1 == 0`) cost nothing;
//! * IL0 is processed in `⌈K0/P⌉` batches; a batch with `P_b` windows
//!   spends `P_b · L` cycles streaming them into the shift registers
//!   (input controller 0 delivers one residue per clock);
//! * `S − 1` cycles of register-barrier fill per batch before the IL1
//!   stream reaches the last slot;
//! * each of the `K1` compute waves takes `L` cycles, during which the
//!   output controller drains up to `L` pending results (one per clock);
//! * at a wave boundary every *active* PE whose maximum reached the
//!   threshold emits one result, in PE order, into the cascaded FIFOs
//!   (aggregate capacity `C`); if occupancy exceeds `C` the array
//!   **stalls** one cycle per excess result — the backpressure that made
//!   the paper raise its threshold for the dual-FPGA runs (§4.1);
//! * at batch end the remaining results drain (one per cycle) plus `S`
//!   cycles of cascade flush.

use psc_score::SubstitutionMatrix;
use psc_seqio::alphabet::AA_ALPHABET_LEN;

use crate::config::OperatorConfig;
use crate::fifo::Fifo;
use crate::pe::Pe;

/// PE array utilization: busy PE·cycles over `pe_count × cycles`.
///
/// The single definition behind [`EntryResult::utilization`] and
/// [`crate::board::BoardReport::utilization`]; `0.0` when no cycles ran.
pub fn pe_utilization(busy_pe_cycles: u64, cycles: u64, pe_count: usize) -> f64 {
    if cycles == 0 || pe_count == 0 {
        0.0
    } else {
        busy_pe_cycles as f64 / (cycles as f64 * pe_count as f64)
    }
}

/// One reported pair: indices into the entry's IL0/IL1 window arrays and
/// the windowed score.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hit {
    pub i0: u32,
    pub i1: u32,
    pub score: i32,
}

/// Result of running one index entry through the operator.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EntryResult {
    /// Hits in hardware drain order (wave-major, PE order within a wave).
    pub hits: Vec<Hit>,
    /// Total cycles spent on the entry.
    pub cycles: u64,
    /// Cycles lost to result-path backpressure (subset of `cycles`).
    pub stall_cycles: u64,
    /// PE·cycles actually scoring (for utilization reporting).
    pub busy_pe_cycles: u64,
    /// High-water occupancy of the cascaded result FIFOs.
    pub fifo_peak: u64,
}

impl EntryResult {
    /// Merge another entry's result into this one (sequential execution).
    pub fn absorb(&mut self, other: EntryResult) {
        self.hits.extend(other.hits);
        self.cycles += other.cycles;
        self.stall_cycles += other.stall_cycles;
        self.busy_pe_cycles += other.busy_pe_cycles;
        // A high-water mark, not a flow: max-merge.
        self.fifo_peak = self.fifo_peak.max(other.fifo_peak);
    }

    /// PE array utilization (see [`pe_utilization`]).
    pub fn utilization(&self, pe_count: usize) -> f64 {
        pe_utilization(self.busy_pe_cycles, self.cycles, pe_count)
    }
}

/// Cycle-accurate PSC operator instance.
#[derive(Debug)]
pub struct PscOperator {
    config: OperatorConfig,
    rom: [i8; AA_ALPHABET_LEN * AA_ALPHABET_LEN],
    pes: Vec<Pe>,
}

impl PscOperator {
    /// Instantiate with a bitstream-time substitution ROM.
    pub fn new(config: OperatorConfig, matrix: &SubstitutionMatrix) -> Result<PscOperator, String> {
        config.validate()?;
        let pes = (0..config.pe_count)
            .map(|_| Pe::new(config.window_len, config.kernel))
            .collect();
        Ok(PscOperator {
            rom: *matrix.flat(),
            config,
            pes,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &OperatorConfig {
        &self.config
    }

    /// Process one index entry. `il0`/`il1` are concatenations of
    /// `window_len`-sized windows.
    pub fn run_entry(&mut self, il0: &[u8], il1: &[u8]) -> EntryResult {
        let l = self.config.window_len;
        assert_eq!(il0.len() % l, 0, "IL0 not a whole number of windows");
        assert_eq!(il1.len() % l, 0, "IL1 not a whole number of windows");
        let k0 = il0.len() / l;
        let k1 = il1.len() / l;
        let mut out = EntryResult::default();
        if k0 == 0 || k1 == 0 {
            return out;
        }

        let p = self.config.pe_count;
        let slots = self.config.num_slots();

        // The cascaded result FIFOs, modelled as one bounded queue of
        // their aggregate capacity. It is drained empty at every batch
        // end, so a single instance serves the whole entry and its
        // high-water mark covers all batches.
        let mut fifo: Fifo<Hit> = Fifo::new(self.config.fifo_capacity);

        let mut batch_start = 0usize;
        while batch_start < k0 {
            let pb = p.min(k0 - batch_start);

            // Load phase: stream P_b windows into the shift registers,
            // one residue per clock.
            for pe in &mut self.pes {
                pe.reset_for_load();
            }
            for (slot, pe) in self.pes.iter_mut().take(pb).enumerate() {
                let w = &il0[(batch_start + slot) * l..(batch_start + slot + 1) * l];
                for &r in w {
                    pe.load_residue(r);
                    out.cycles += 1;
                }
            }

            // Register-barrier fill before the IL1 stream reaches the
            // last slot.
            out.cycles += slots as u64 - 1;

            // Compute waves.
            for wave in 0..k1 {
                let w1 = &il1[wave * l..(wave + 1) * l];
                for pe in self.pes.iter_mut().take(pb) {
                    pe.begin_wave();
                }
                for &r in w1 {
                    for pe in self.pes.iter_mut().take(pb) {
                        pe.step(&self.rom, r);
                    }
                    out.cycles += 1;
                    // Output controller drains one result per clock.
                    if let Some(hit) = fifo.pop() {
                        out.hits.push(hit);
                    }
                }
                out.busy_pe_cycles += (pb * l) as u64;

                // Wave boundary: result-management modules scan their
                // slots in PE order and push into the cascaded FIFOs.
                for (idx, pe) in self.pes.iter().take(pb).enumerate() {
                    debug_assert!(pe.is_active());
                    let score = pe.wave_score();
                    if score >= self.config.threshold {
                        let hit = Hit {
                            i0: (batch_start + idx) as u32,
                            i1: wave as u32,
                            score,
                        };
                        if let Err(hit) = fifo.push(hit) {
                            // Backpressure: the array stalls one cycle,
                            // during which the output controller drains
                            // one slot, making room for the push.
                            out.cycles += 1;
                            out.stall_cycles += 1;
                            // analyzer: allow(hot-path-no-panic) -- pop of a full FIFO cannot fail
                            out.hits.push(fifo.pop().expect("full FIFO drains"));
                            // analyzer: allow(hot-path-no-panic) -- the pop above freed a slot
                            fifo.push(hit).expect("slot just freed");
                        }
                    }
                }
            }

            // Batch end: drain what's left, flush the cascade.
            out.cycles += fifo.len() as u64 + slots as u64;
            while let Some(hit) = fifo.pop() {
                out.hits.push(hit);
            }
            batch_start += pb;
        }
        out.fifo_peak = fifo.peak() as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_align::{ungapped_score, Kernel};
    use psc_score::blosum62;
    use psc_seqio::alphabet::encode_protein;

    fn windows(words: &[&[u8]]) -> Vec<u8> {
        let mut v = Vec::new();
        for w in words {
            v.extend_from_slice(&encode_protein(w));
        }
        v
    }

    fn small_config(pes: usize, window_len: usize, threshold: i32) -> OperatorConfig {
        let mut c = OperatorConfig::new(pes);
        c.window_len = window_len;
        c.threshold = threshold;
        c.slot_size = 2;
        c.fifo_capacity = 8;
        c
    }

    #[test]
    fn finds_matching_pairs_bit_exactly() {
        let cfg = small_config(4, 6, 20);
        let mut op = PscOperator::new(cfg, blosum62()).unwrap();
        let il0 = windows(&[b"MKVLAW", b"PPPPPP", b"MKVLAV"]);
        let il1 = windows(&[b"MKVLAW", b"GGGGGG"]);
        let r = op.run_entry(&il0, &il1);
        // Expected: (0,0) scores 33; (2,0) scores 33-11+... MKVLAV vs
        // MKVLAW: W->V = -3 ⇒ 5+5+4+4+4 = 22 then max stays 22+? compute
        // via the software kernel for truth.
        let m = blosum62();
        let mut expect = Vec::new();
        for wave in 0..2 {
            for i in 0..3 {
                let s = ungapped_score(
                    Kernel::ClampedSum,
                    m,
                    &il0[i * 6..(i + 1) * 6],
                    &il1[wave * 6..(wave + 1) * 6],
                );
                if s >= 20 {
                    expect.push(Hit {
                        i0: i as u32,
                        i1: wave as u32,
                        score: s,
                    });
                }
            }
        }
        assert_eq!(r.hits, expect);
        assert!(!r.hits.is_empty());
    }

    #[test]
    fn empty_entries_cost_nothing() {
        let cfg = small_config(4, 6, 20);
        let mut op = PscOperator::new(cfg, blosum62()).unwrap();
        let il0 = windows(&[b"MKVLAW"]);
        let r = op.run_entry(&il0, &[]);
        assert_eq!(r.cycles, 0);
        assert!(r.hits.is_empty());
        let r = op.run_entry(&[], &il0);
        assert_eq!(r.cycles, 0);
    }

    #[test]
    fn cycle_count_single_batch() {
        // 2 PEs (1 slot of 2), window 6, 2 IL0 windows, 3 IL1 windows, no
        // hits (threshold absurd): load 12 + fill 0 + compute 18 + drain
        // 0 + flush 1 = 31.
        let mut cfg = small_config(2, 6, 1000);
        cfg.slot_size = 2;
        let mut op = PscOperator::new(cfg, blosum62()).unwrap();
        let il0 = windows(&[b"MKVLAW", b"GGGGGG"]);
        let il1 = windows(&[b"MKVLAW", b"PPPPPP", b"AAAAAA"]);
        let r = op.run_entry(&il0, &il1);
        assert_eq!(r.cycles, 12 + 18 + 1);
        assert_eq!(r.stall_cycles, 0);
        assert_eq!(r.busy_pe_cycles, (2 * 6 * 3) as u64);
    }

    #[test]
    fn cycle_count_multiple_batches() {
        // 2 PEs, 5 IL0 windows → batches of 2,2,1.
        let mut cfg = small_config(2, 4, 1000);
        cfg.slot_size = 1; // 2 slots → fill 1, flush 2
        let mut op = PscOperator::new(cfg, blosum62()).unwrap();
        let il0 = windows(&[b"MKVL", b"GGGG", b"AAAA", b"RNDC", b"HFYW"]);
        let il1 = windows(&[b"MKVL", b"PPPP"]);
        let r = op.run_entry(&il0, &il1);
        // Batch 1: load 8 + fill 1 + compute 8 + flush 2 = 19. Batch 2
        // same. Batch 3: load 4 + 1 + 8 + 2 = 15. Total 53.
        assert_eq!(r.cycles, 19 + 19 + 15);
    }

    #[test]
    fn stalls_when_results_flood() {
        // Every pair hits (identical windows, threshold 1) with a tiny
        // FIFO: stalls must appear.
        let mut cfg = small_config(8, 4, 1);
        cfg.fifo_capacity = 2;
        cfg.slot_size = 4;
        let mut op = PscOperator::new(cfg, blosum62()).unwrap();
        let w: Vec<&[u8]> = vec![b"MKVL"; 8];
        let il0 = windows(&w);
        let il1 = windows(&w);
        let r = op.run_entry(&il0, &il1);
        assert_eq!(r.hits.len(), 64);
        assert!(r.stall_cycles > 0, "expected backpressure stalls");
    }

    #[test]
    fn raised_threshold_removes_stalls() {
        // The paper's workaround: raise the threshold, traffic vanishes,
        // compute cost unchanged.
        let mut base = small_config(8, 4, 1);
        base.fifo_capacity = 2;
        let mut flood = PscOperator::new(base.clone(), blosum62()).unwrap();
        let mut quiet_cfg = base;
        quiet_cfg.threshold = 1000;
        let mut quiet = PscOperator::new(quiet_cfg, blosum62()).unwrap();
        let w: Vec<&[u8]> = vec![b"MKVL"; 8];
        let il0 = windows(&w);
        let il1 = windows(&w);
        let rf = flood.run_entry(&il0, &il1);
        let rq = quiet.run_entry(&il0, &il1);
        assert_eq!(rq.stall_cycles, 0);
        assert!(rq.hits.is_empty());
        assert!(rf.cycles > rq.cycles);
        // Same scoring work either way.
        assert_eq!(rf.busy_pe_cycles, rq.busy_pe_cycles);
    }

    #[test]
    fn partial_array_underutilized() {
        // 1 IL0 window on a 8-PE array: utilization ≈ 1/8 of compute.
        let cfg = small_config(8, 4, 1000);
        let mut op = PscOperator::new(cfg, blosum62()).unwrap();
        let il0 = windows(&[b"MKVL"]);
        let il1 = windows(&[b"MKVL", b"GGGG", b"AAAA", b"RNDC"]);
        let r = op.run_entry(&il0, &il1);
        let u = r.utilization(8);
        assert!(u < 0.2, "utilization {u}");
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = EntryResult {
            hits: vec![Hit {
                i0: 0,
                i1: 0,
                score: 5,
            }],
            cycles: 10,
            stall_cycles: 1,
            busy_pe_cycles: 4,
            fifo_peak: 3,
        };
        a.absorb(EntryResult {
            hits: vec![Hit {
                i0: 1,
                i1: 1,
                score: 7,
            }],
            cycles: 20,
            stall_cycles: 2,
            busy_pe_cycles: 8,
            fifo_peak: 2,
        });
        assert_eq!(a.hits.len(), 2);
        assert_eq!(a.cycles, 30);
        assert_eq!(a.stall_cycles, 3);
        assert_eq!(a.busy_pe_cycles, 12);
        // High-water mark, not a flow: max, not sum.
        assert_eq!(a.fifo_peak, 3);
    }

    #[test]
    fn utilization_zero_cycles_is_zero() {
        let r = EntryResult::default();
        assert_eq!(r.utilization(192), 0.0);
        assert_eq!(pe_utilization(0, 0, 192), 0.0);
        assert_eq!(pe_utilization(10, 0, 192), 0.0);
        assert_eq!(pe_utilization(10, 10, 0), 0.0);
        assert!((pe_utilization(96, 100, 8) - 0.12).abs() < 1e-12);
    }

    #[test]
    fn fifo_peak_saturates_at_capacity_under_flood() {
        let mut cfg = small_config(8, 4, 1);
        cfg.fifo_capacity = 2;
        cfg.slot_size = 4;
        let mut op = PscOperator::new(cfg, blosum62()).unwrap();
        let w: Vec<&[u8]> = vec![b"MKVL"; 8];
        let il0 = windows(&w);
        let il1 = windows(&w);
        let r = op.run_entry(&il0, &il1);
        assert!(r.stall_cycles > 0);
        assert_eq!(r.fifo_peak, 2, "a stalled FIFO peaked at capacity");
    }

    #[test]
    fn fifo_peak_zero_without_hits() {
        let cfg = small_config(4, 6, 10_000);
        let mut op = PscOperator::new(cfg, blosum62()).unwrap();
        let il0 = windows(&[b"MKVLAW"]);
        let il1 = windows(&[b"GGGGGG"]);
        let r = op.run_entry(&il0, &il1);
        assert!(r.hits.is_empty());
        assert_eq!(r.fifo_peak, 0);
    }
}
