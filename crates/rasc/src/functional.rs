//! Functional + analytic fast path.
//!
//! Computes exactly the hits, the hit order and the cycle count of
//! [`crate::operator::PscOperator`] — scoring with the software kernel
//! instead of stepping each PE register, and accounting cycles wave by
//! wave in closed form instead of clock by clock. The equivalence is
//! enforced by unit tests here and property tests in
//! `tests/equivalence.rs`; the large experiment sweeps run on this path.

use psc_align::ungapped_score;
use psc_score::SubstitutionMatrix;

use crate::config::OperatorConfig;
use crate::operator::{EntryResult, Hit};

/// Functional PSC operator: same contract as the cycle-accurate one.
#[derive(Debug)]
pub struct FunctionalOperator {
    config: OperatorConfig,
    matrix: SubstitutionMatrix,
}

impl FunctionalOperator {
    pub fn new(
        config: OperatorConfig,
        matrix: &SubstitutionMatrix,
    ) -> Result<FunctionalOperator, String> {
        config.validate()?;
        Ok(FunctionalOperator {
            config,
            matrix: matrix.clone(),
        })
    }

    pub fn config(&self) -> &OperatorConfig {
        &self.config
    }

    /// Process one index entry (see the cycle-accounting contract in
    /// [`crate::operator`]).
    pub fn run_entry(&self, il0: &[u8], il1: &[u8]) -> EntryResult {
        let l = self.config.window_len;
        assert_eq!(il0.len() % l, 0, "IL0 not a whole number of windows");
        assert_eq!(il1.len() % l, 0, "IL1 not a whole number of windows");
        let k0 = il0.len() / l;
        let k1 = il1.len() / l;
        let mut out = EntryResult::default();
        if k0 == 0 || k1 == 0 {
            return out;
        }

        let p = self.config.pe_count;
        let slots = self.config.num_slots() as u64;
        let cap = self.config.fifo_capacity;

        let mut batch_start = 0usize;
        while batch_start < k0 {
            let pb = p.min(k0 - batch_start);
            // Load + barrier fill.
            out.cycles += (pb * l) as u64 + (slots - 1);

            let mut pending = 0usize;
            for wave in 0..k1 {
                let w1 = &il1[wave * l..(wave + 1) * l];
                // Wave compute + concurrent drain (≤ L results).
                out.cycles += l as u64;
                pending -= pending.min(l);
                for idx in 0..pb {
                    let w0 = &il0[(batch_start + idx) * l..(batch_start + idx + 1) * l];
                    let score = ungapped_score(self.config.kernel, &self.matrix, w0, w1);
                    if score >= self.config.threshold {
                        out.hits.push(Hit {
                            i0: (batch_start + idx) as u32,
                            i1: wave as u32,
                            score,
                        });
                        pending += 1;
                    }
                }
                // FIFO high-water: pushes land on top of the carried
                // occupancy; a stalled push drains one first, so the
                // instantaneous maximum is clamped at capacity.
                out.fifo_peak = out.fifo_peak.max(pending.min(cap) as u64);
                if pending > cap {
                    let stall = (pending - cap) as u64;
                    out.cycles += stall;
                    out.stall_cycles += stall;
                    pending = cap;
                }
            }
            out.busy_pe_cycles += (pb * l * k1) as u64;
            out.cycles += pending as u64 + slots;
            batch_start += pb;
        }
        out
    }

    /// Closed-form cycle cost of an entry assuming **no hits** (the
    /// traffic-free lower bound; useful for capacity planning).
    pub fn cycles_lower_bound(&self, k0: usize, k1: usize) -> u64 {
        if k0 == 0 || k1 == 0 {
            return 0;
        }
        let p = self.config.pe_count;
        let l = self.config.window_len as u64;
        let slots = self.config.num_slots() as u64;
        let full_batches = (k0 / p) as u64;
        let tail = (k0 % p) as u64;
        let per_full = p as u64 * l + (slots - 1) + k1 as u64 * l + slots;
        let mut total = full_batches * per_full;
        if tail > 0 {
            total += tail * l + (slots - 1) + k1 as u64 * l + slots;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::PscOperator;
    use psc_score::blosum62;
    use psc_seqio::alphabet::encode_protein;

    fn windows(words: &[&[u8]]) -> Vec<u8> {
        let mut v = Vec::new();
        for w in words {
            v.extend_from_slice(&encode_protein(w));
        }
        v
    }

    fn check_equivalence(cfg: OperatorConfig, il0: &[u8], il1: &[u8]) {
        let mut cycle_accurate = PscOperator::new(cfg.clone(), blosum62()).unwrap();
        let functional = FunctionalOperator::new(cfg, blosum62()).unwrap();
        let a = cycle_accurate.run_entry(il0, il1);
        let b = functional.run_entry(il0, il1);
        assert_eq!(a, b);
    }

    #[test]
    fn equivalent_on_simple_entry() {
        let mut cfg = OperatorConfig::new(4);
        cfg.window_len = 6;
        cfg.threshold = 20;
        cfg.slot_size = 2;
        cfg.fifo_capacity = 8;
        let il0 = windows(&[b"MKVLAW", b"PPPPPP", b"MKVLAV"]);
        let il1 = windows(&[b"MKVLAW", b"GGGGGG", b"MKVLAW"]);
        check_equivalence(cfg, &il0, &il1);
    }

    #[test]
    fn equivalent_under_flood() {
        let mut cfg = OperatorConfig::new(8);
        cfg.window_len = 4;
        cfg.threshold = 1;
        cfg.slot_size = 4;
        cfg.fifo_capacity = 2;
        let w: Vec<&[u8]> = vec![b"MKVL"; 13];
        let il0 = windows(&w);
        let il1 = windows(&w[..7]);
        check_equivalence(cfg, &il0, &il1);
    }

    #[test]
    fn equivalent_with_partial_batches() {
        let mut cfg = OperatorConfig::new(3);
        cfg.window_len = 4;
        cfg.threshold = 12;
        cfg.slot_size = 2;
        cfg.fifo_capacity = 4;
        let il0 = windows(&[
            b"MKVL", b"GGGG", b"MKVL", b"RNDC", b"MKVL", b"HFYW", b"MKVL",
        ]);
        let il1 = windows(&[b"MKVL", b"RNDC"]);
        check_equivalence(cfg, &il0, &il1);
    }

    #[test]
    fn lower_bound_matches_quiet_run() {
        let mut cfg = OperatorConfig::new(3);
        cfg.window_len = 4;
        cfg.threshold = 10_000; // nothing ever hits
        cfg.slot_size = 2;
        let il0 = windows(&[b"MKVL", b"GGGG", b"MKVL", b"RNDC", b"MKVL"]);
        let il1 = windows(&[b"MKVL", b"RNDC", b"AAAA"]);
        let f = FunctionalOperator::new(cfg, blosum62()).unwrap();
        let r = f.run_entry(&il0, &il1);
        assert_eq!(r.cycles, f.cycles_lower_bound(5, 3));
        assert_eq!(f.cycles_lower_bound(0, 3), 0);
        assert_eq!(f.cycles_lower_bound(5, 0), 0);
    }

    #[test]
    fn lower_bound_is_a_lower_bound_under_traffic() {
        let mut cfg = OperatorConfig::new(4);
        cfg.window_len = 4;
        cfg.threshold = 1;
        cfg.fifo_capacity = 2;
        cfg.slot_size = 2;
        let w: Vec<&[u8]> = vec![b"MKVL"; 9];
        let il0 = windows(&w);
        let il1 = windows(&w[..5]);
        let f = FunctionalOperator::new(cfg, blosum62()).unwrap();
        let r = f.run_entry(&il0, &il1);
        assert!(r.cycles >= f.cycles_lower_bound(9, 5));
    }
}
