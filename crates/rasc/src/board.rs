//! The RASC-100 board: one or two FPGAs, NUMAlink, host dispatch.
//!
//! Mirrors the paper's usage: the single-FPGA runs of Table 2/4 use one
//! operator; the dual-FPGA runs of Table 3 split the IL0 side of every
//! entry across two operators driven by independent host processes (the
//! paper's pthread version splits the protein bank the same way), with
//! per-dispatch synchronisation cost and a shared result link — the two
//! effects that cap the measured dual-FPGA speedup at 1.8× instead of 2×.
//!
//! Timing is *simulated* (cycles at the configured clock plus the DMA
//! model); the number of host threads used to crunch the simulation only
//! affects how fast the simulation itself runs, never the reported
//! numbers.
//!
//! ## Fault handling
//!
//! When a [`FaultPlan`] is installed, each per-FPGA dispatch may fault
//! (see [`crate::fault`] for the kinds and their detection points). The
//! board then retries the dispatch under the configured
//! [`RecoveryPolicy`] — charging the wasted attempt plus an escalating
//! simulated backoff to that FPGA's cycle account — and, once retries
//! are exhausted, either recomputes the shard with the host software
//! kernel (degraded mode) or fails the run with [`BoardFault`]. Every
//! decision is a pure function of `(plan, entry, fpga, attempt)`, so
//! results *and* the report are deterministic regardless of
//! `host_threads`, and recovered output is bit-identical to the
//! fault-free run.

use std::sync::atomic::{AtomicBool, Ordering};

use crossbeam::channel;
use crossbeam::thread;
use psc_score::SubstitutionMatrix;

use crate::config::OperatorConfig;
use crate::dma::DmaModel;
use crate::fault::{
    self, BoardFault, FaultInjector, FaultKind, FaultPlan, FaultSummary, RecoveryPolicy,
};
use crate::functional::FunctionalOperator;
use crate::operator::{pe_utilization, Hit};
use crate::resource::{ResourceError, ResourceModel};

/// Simulated cycles an ADR dispatch handshake burns before the
/// protocol check rejects it (shared with the fleet replay).
pub(crate) const ADR_HANDSHAKE_CYCLES: u64 = 8;

/// Board-level configuration.
#[derive(Clone, Debug)]
pub struct BoardConfig {
    pub operator: OperatorConfig,
    /// 1 or 2 (the RASC-100 carries two LX200s).
    pub fpga_count: usize,
    pub dma: DmaModel,
    /// Host-side synchronisation cost per dispatched entry *per extra
    /// FPGA* (pthread coordination, paper §4.1), seconds.
    pub sync_per_entry: f64,
    /// Fault injection plan; `None` (the default) runs fault-free.
    pub fault_plan: Option<FaultPlan>,
    /// Retry / degradation policy applied when a dispatch faults.
    pub recovery: RecoveryPolicy,
    /// Emit the per-`(entry, fpga)` DMA/compute timeline on the report
    /// (`BoardReport::timeline`) for flight-recorder export. Off by
    /// default: plain runs should not grow a segment per entry.
    pub record_timeline: bool,
}

impl BoardConfig {
    pub fn new(operator: OperatorConfig, fpga_count: usize) -> BoardConfig {
        BoardConfig {
            operator,
            fpga_count,
            dma: DmaModel::default(),
            sync_per_entry: 1.5e-6,
            fault_plan: None,
            recovery: RecoveryPolicy::default(),
            record_timeline: false,
        }
    }
}

/// One unit of work: the window streams of one index entry.
#[derive(Clone, Debug, Default)]
pub struct Entry {
    /// Concatenated IL0 windows.
    pub il0: Vec<u8>,
    /// Concatenated IL1 windows.
    pub il1: Vec<u8>,
}

/// Timing report of a workload run.
#[derive(Clone, Debug, Default)]
pub struct BoardReport {
    /// Hardware cycles per FPGA.
    pub fpga_cycles: Vec<u64>,
    /// Stall cycles per FPGA (result-path backpressure).
    pub stall_cycles: Vec<u64>,
    /// Busy PE·cycles per FPGA (utilization reporting). Only useful
    /// work counts: cycles burned by faulted attempts and backoff
    /// depress utilization, as they would on real hardware.
    pub busy_pe_cycles: Vec<u64>,
    /// Result-FIFO high-water mark per FPGA (max over entries).
    pub fifo_peak: Vec<u64>,
    /// Bytes streamed to / from the board (every retry re-streams its
    /// entry over NUMAlink).
    pub bytes_in: u64,
    pub bytes_out: u64,
    /// Pure NUMAlink wire time of the input / output byte streams.
    pub wire_in_seconds: f64,
    pub wire_out_seconds: f64,
    /// Entries dispatched.
    pub entries: u64,
    /// Hits delivered over the board's result link (degraded entries
    /// are recomputed host-side and do not cross it).
    pub hit_count: u64,
    /// Simulated wall time of the accelerated section: the slowest
    /// FPGA's double-buffered DMA/compute timeline (input streaming of
    /// entry *k+1* overlaps compute of entry *k*), plus the shared
    /// result link, plus host synchronisation and the one-time
    /// bitstream load.
    pub accelerated_seconds: f64,
    /// Seconds of the slowest FPGA's timeline during which its DMA
    /// engine and its PE array were busy *simultaneously* (the
    /// double-buffer payoff).
    pub overlap_seconds: f64,
    /// `overlap_seconds` as a fraction of that FPGA's total timeline
    /// (0 when the board did no work).
    pub overlap_occupancy: f64,
    /// Of which: host synchronisation overhead.
    pub sync_seconds: f64,
    /// Of which: one-time setup and dispatch handshakes.
    pub setup_seconds: f64,
    /// Fault injection / recovery counters for the run.
    pub faults: FaultSummary,
    /// Per-`(entry, fpga)` double-buffer timeline, in dispatch order.
    /// Empty unless [`BoardConfig::record_timeline`] is set. On the
    /// simulated device clock (seconds from the accelerated section's
    /// start), deterministic for every `host_threads`.
    pub timeline: Vec<BoardSegment>,
}

/// One `(entry, fpga)` record of the double-buffered board timeline:
/// when its input DMA ran, when its compute ran (including retry
/// attempts and backoff), and what its recovery path did.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BoardSegment {
    pub entry: u64,
    pub fpga: usize,
    /// Input-stream window on the DMA engine, seconds.
    pub dma_start: f64,
    pub dma_end: f64,
    /// PE-array window, seconds. Includes cycles burned by faulted
    /// attempts and `backoff_seconds` of retry backoff.
    pub compute_start: f64,
    pub compute_end: f64,
    /// Of the compute window: simulated retry backoff.
    pub backoff_seconds: f64,
    /// Fault-recovery retries this record took.
    pub retries: u32,
    /// Whether recovery exhausted retries and fell back to software.
    pub degraded: bool,
}

impl BoardReport {
    /// Utilization of the best-utilized FPGA's PE array
    /// (see [`crate::operator::pe_utilization`] for the formula).
    pub fn utilization(&self, pe_count: usize) -> f64 {
        self.fpga_cycles
            .iter()
            .zip(&self.busy_pe_cycles)
            .map(|(&c, &b)| pe_utilization(b, c, pe_count))
            .fold(0.0, f64::max)
    }
}

/// Per-FPGA accumulation while streaming.
#[derive(Clone, Copy, Debug, Default)]
struct FpgaTally {
    cycles: u64,
    stalls: u64,
    busy: u64,
    bytes_in: u64,
    hits: u64,
    /// Result-FIFO high-water mark (max over entries).
    peak: u64,
}

/// What one entry cost one FPGA (cycles across all attempts plus every
/// byte re-streamed) — the input of the double-buffered timeline in
/// [`RascBoard::report_from`]. Collected per worker and merged in
/// `(entry, fpga)` order, so the timeline fold is independent of
/// `host_threads`.
#[derive(Clone, Copy, Debug)]
struct EntryCost {
    entry: u64,
    fpga: usize,
    cycles: u64,
    bytes_in: u64,
    /// Recovery activity of this record, for the timeline.
    retries: u32,
    backoff_cycles: u64,
    degraded: bool,
}

/// A simulated RASC-100 board.
#[derive(Debug)]
pub struct RascBoard {
    config: BoardConfig,
    matrix: SubstitutionMatrix,
}

impl RascBoard {
    /// Build a board; every FPGA must fit the configured operator.
    pub fn new(
        config: BoardConfig,
        matrix: &SubstitutionMatrix,
    ) -> Result<RascBoard, ResourceError> {
        assert!(
            (1..=2).contains(&config.fpga_count),
            "RASC-100 has one or two FPGAs"
        );
        config.operator.validate().expect("invalid operator config");
        ResourceModel::check(&config.operator)?;
        Ok(RascBoard {
            config,
            matrix: matrix.clone(),
        })
    }

    pub fn config(&self) -> &BoardConfig {
        &self.config
    }

    /// Contiguous IL0 shard `[lo, hi)` (in windows) assigned to FPGA `f`
    /// for an entry of `k0` windows.
    fn shard(&self, k0: usize, f: usize) -> (usize, usize) {
        let per = k0.div_ceil(self.config.fpga_count);
        ((f * per).min(k0), ((f + 1) * per).min(k0))
    }

    /// Process one entry on all FPGAs (used by the streaming workers),
    /// retrying and degrading per the recovery policy. Returns the
    /// merged hit list (FPGA 0's hits first, `i0` rebased to the full
    /// entry) and updates the tallies and fault counters.
    #[allow(clippy::too_many_arguments)]
    fn process_entry(
        &self,
        ops: &[FunctionalOperator],
        entry_idx: u64,
        entry: &Entry,
        tallies: &mut [FpgaTally],
        injector: Option<&FaultInjector>,
        faults: &mut FaultSummary,
        costs: &mut Vec<EntryCost>,
    ) -> Result<Vec<Hit>, BoardFault> {
        let l = self.config.operator.window_len;
        let k0 = entry.il0.len() / l;
        let k1 = entry.il1.len() / l;
        let policy = self.config.recovery;
        let mut merged = Vec::new();
        for (f, op) in ops.iter().enumerate() {
            let (lo, hi) = self.shard(k0, f);
            if lo >= hi {
                continue;
            }
            // Snapshot the tally so everything this entry charges the
            // FPGA (all attempts, backoff, re-streamed bytes) lands in
            // one timeline record.
            let (cycles_before, bytes_before) = (tallies[f].cycles, tallies[f].bytes_in);
            let shard = &entry.il0[lo * l..hi * l];
            let budget =
                policy.watchdog_budget(op.cycles_lower_bound(hi - lo, k1), ((hi - lo) * k1) as u64);
            let mut attempt = 0u32;
            let mut record_backoff = 0u64;
            let mut record_degraded = false;
            let mut hits = loop {
                let fault = injector.and_then(|i| i.fire(entry_idx, f, attempt));
                let ctx = (entry_idx, f, attempt);
                match self.run_attempt(
                    op,
                    shard,
                    &entry.il1,
                    fault,
                    injector,
                    ctx,
                    budget,
                    &mut tallies[f],
                    faults,
                ) {
                    Ok(hits) => break hits,
                    Err(kind) => {
                        if attempt >= policy.max_retries {
                            if policy.degrade {
                                faults.entries_degraded += 1;
                                record_degraded = true;
                                break fault::score_entry_software(
                                    &self.matrix,
                                    &self.config.operator,
                                    shard,
                                    &entry.il1,
                                );
                            }
                            return Err(BoardFault {
                                entry: entry_idx,
                                fpga: f,
                                kind,
                                attempts: attempt + 1,
                            });
                        }
                        faults.retries += 1;
                        let backoff = policy.backoff(attempt);
                        tallies[f].cycles += backoff;
                        faults.backoff_cycles += backoff;
                        record_backoff += backoff;
                        attempt += 1;
                    }
                }
            };
            for h in &mut hits {
                h.i0 += lo as u32;
            }
            merged.extend(hits);
            costs.push(EntryCost {
                entry: entry_idx,
                fpga: f,
                cycles: tallies[f].cycles - cycles_before,
                bytes_in: tallies[f].bytes_in - bytes_before,
                retries: attempt,
                backoff_cycles: record_backoff,
                degraded: record_degraded,
            });
        }
        Ok(merged)
    }

    /// One dispatch attempt of one shard, with `fault` injected.
    /// `Ok(hits)` charges the successful run to the tally; `Err(kind)`
    /// charges whatever the failure burned before its detection point.
    #[allow(clippy::too_many_arguments)]
    fn run_attempt(
        &self,
        op: &FunctionalOperator,
        shard: &[u8],
        il1: &[u8],
        fault: Option<FaultKind>,
        injector: Option<&FaultInjector>,
        ctx: (u64, usize, u32),
        budget: u64,
        t: &mut FpgaTally,
        fs: &mut FaultSummary,
    ) -> Result<Vec<Hit>, FaultKind> {
        // Every dispatch (re-)streams the entry over NUMAlink.
        t.bytes_in += (shard.len() + il1.len()) as u64;
        let Some(kind) = fault else {
            let r = op.run_entry(shard, il1);
            t.cycles += r.cycles;
            t.stalls += r.stall_cycles;
            t.busy += r.busy_pe_cycles;
            t.hits += r.hits.len() as u64;
            t.peak = t.peak.max(r.fifo_peak);
            return Ok(r.hits);
        };
        fs.faults_injected += 1;
        match kind {
            FaultKind::DmaCorrupt => {
                // The board checksums the input stream before raising
                // "data ready": a wire flip is caught after the
                // stream-in cycles, before any PE turns over.
                let sent = fault::stream_checksum(&[shard, il1]);
                let bit = injector.map_or(0, |i| i.roll(ctx.0, ctx.1, ctx.2, 32)) as u32;
                let received = sent ^ (1u64 << bit);
                debug_assert_ne!(sent, received);
                t.cycles += (shard.len() + il1.len()) as u64;
                fs.checksum_mismatches += 1;
                fs.faults_detected += 1;
                Err(kind)
            }
            FaultKind::DmaTruncate | FaultKind::AdrFault => {
                // The ADR count registers disagree with what arrived,
                // or the command FSM latched `Status::Fault`: caught at
                // the dispatch handshake before any data streams.
                t.cycles += ADR_HANDSHAKE_CYCLES;
                fs.protocol_faults += 1;
                fs.faults_detected += 1;
                Err(kind)
            }
            FaultKind::FifoStall => {
                // The output controller wedges mid-entry; the host
                // watchdog kills the dispatch when its budget expires.
                t.cycles += budget + 1;
                fs.watchdog_trips += 1;
                fs.faults_detected += 1;
                Err(kind)
            }
            FaultKind::FifoOverflow | FaultKind::PeFlip => {
                // Compute completes; the corruption rides the result
                // stream and the host checks the received results
                // against the checksum the operator committed.
                let r = op.run_entry(shard, il1);
                t.cycles += r.cycles;
                t.stalls += r.stall_cycles;
                t.peak = t.peak.max(r.fifo_peak);
                let committed = fault::hits_checksum(&r.hits);
                let mut received = r.hits;
                if kind == FaultKind::FifoOverflow {
                    // Overflow sheds the freshest (tail) results.
                    let keep = received.len() - received.len().min(1 + received.len() / 8);
                    received.truncate(keep);
                } else if let (Some(i), false) = (injector, received.is_empty()) {
                    let idx = i.roll(ctx.0, ctx.1, ctx.2, received.len() as u64) as usize;
                    received[idx].score ^= 1 << 4;
                }
                if fault::hits_checksum(&received) == committed {
                    // Nothing to damage (empty result set): the fault
                    // was harmless and the attempt stands.
                    t.busy += r.busy_pe_cycles;
                    t.hits += received.len() as u64;
                    return Ok(received);
                }
                fs.checksum_mismatches += 1;
                fs.faults_detected += 1;
                Err(kind)
            }
        }
    }

    /// Run a streamed workload with `host_threads` simulation workers.
    ///
    /// `sink` receives `(entry_index, hits)` — possibly out of entry
    /// order when `host_threads > 1`. The returned report is
    /// deterministic regardless of thread count, and so is the error:
    /// when recovery is exhausted with degradation disabled, the fault
    /// of the earliest failing entry is returned (the sink may already
    /// have seen other entries by then).
    pub fn run_stream<I>(
        &self,
        entries: I,
        host_threads: usize,
        mut sink: impl FnMut(u64, Vec<Hit>),
    ) -> Result<BoardReport, BoardFault>
    where
        I: Iterator<Item = Entry> + Send,
    {
        let nf = self.config.fpga_count;
        let host_threads = host_threads.max(1);
        let injector = self.config.fault_plan.clone().map(FaultInjector::new);
        let injector = injector.as_ref();
        let mut tallies = vec![FpgaTally::default(); nf];
        let mut faults = FaultSummary::default();
        let mut costs: Vec<EntryCost> = Vec::new();
        let mut n_entries = 0u64;

        if host_threads == 1 {
            let ops = self.make_operators();
            for entry in entries {
                let hits = self.process_entry(
                    &ops,
                    n_entries,
                    &entry,
                    &mut tallies,
                    injector,
                    &mut faults,
                    &mut costs,
                )?;
                sink(n_entries, hits);
                n_entries += 1;
            }
        } else {
            let (entry_tx, entry_rx) = channel::bounded::<(u64, Entry)>(host_threads * 2);
            let (res_tx, res_rx) =
                channel::bounded::<Result<(u64, Vec<Hit>), BoardFault>>(host_threads * 2);
            let abort = AtomicBool::new(false);
            let mut first_err: Option<BoardFault> = None;
            let worker_out: Vec<(Vec<FpgaTally>, FaultSummary, Vec<EntryCost>)> =
                thread::scope(|s| {
                    let abort = &abort;
                    let handles: Vec<_> = (0..host_threads)
                        .map(|_| {
                            let rx = entry_rx.clone();
                            let tx = res_tx.clone();
                            s.spawn(move |_| {
                                let ops = self.make_operators();
                                let mut local = vec![FpgaTally::default(); nf];
                                let mut lf = FaultSummary::default();
                                let mut lc: Vec<EntryCost> = Vec::new();
                                for (idx, entry) in rx.iter() {
                                    let out = self
                                        .process_entry(
                                            &ops, idx, &entry, &mut local, injector, &mut lf,
                                            &mut lc,
                                        )
                                        .map(|hits| (idx, hits));
                                    if out.is_err() {
                                        abort.store(true, Ordering::Relaxed);
                                    }
                                    if tx.send(out).is_err() {
                                        break;
                                    }
                                }
                                (local, lf, lc)
                            })
                        })
                        .collect();
                    drop(entry_rx);
                    drop(res_tx);

                    // Feed from a dedicated thread so the main thread can
                    // drain results without deadlocking on the bounded
                    // queue. The feeder must bail — not block or panic —
                    // when the workers are gone (a worker panic drops every
                    // `entry_rx` clone, turning `send` into an `Err`) or a
                    // fault aborted the run.
                    let feeder = s.spawn(move |_| {
                        let mut count = 0u64;
                        for entry in entries {
                            if abort.load(Ordering::Relaxed) {
                                break;
                            }
                            if entry_tx.send((count, entry)).is_err() {
                                break;
                            }
                            count += 1;
                        }
                        count
                    });

                    for res in res_rx.iter() {
                        match res {
                            Ok((idx, hits)) => sink(idx, hits),
                            // Keep the earliest failing entry. The feeder
                            // dispatches in index order and workers drain
                            // everything dispatched, so the globally
                            // earliest failure is always among the errors
                            // collected here — whichever thread won the
                            // race to the abort flag.
                            Err(e) => {
                                if first_err.is_none_or(|p| e.entry < p.entry) {
                                    first_err = Some(e);
                                }
                            }
                        }
                    }
                    n_entries = feeder.join().expect("feeder panicked");
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("worker panicked"))
                        .collect()
                })
                .expect("board scope");
            if let Some(e) = first_err {
                return Err(e);
            }
            for (local, lf, lc) in worker_out {
                faults.merge(&lf);
                costs.extend(lc);
                for (t, l) in tallies.iter_mut().zip(local) {
                    t.cycles += l.cycles;
                    t.stalls += l.stalls;
                    t.busy += l.busy;
                    t.bytes_in += l.bytes_in;
                    t.hits += l.hits;
                    t.peak = t.peak.max(l.peak);
                }
            }
            // Workers interleave entries; the timeline fold must see
            // them in dispatch order to stay thread-count invariant.
            costs.sort_unstable_by_key(|c| (c.entry, c.fpga));
        }

        Ok(self.report_from(&tallies, n_entries, faults, &costs))
    }

    /// Run a workload held in memory; returns per-entry hits in entry
    /// order plus the report.
    pub fn run_workload(
        &self,
        entries: &[Entry],
    ) -> Result<(Vec<Vec<Hit>>, BoardReport), BoardFault> {
        let mut hits: Vec<Vec<Hit>> = vec![Vec::new(); entries.len()];
        let report = self.run_stream(entries.iter().cloned(), 1, |idx, h| {
            hits[idx as usize] = h;
        })?;
        Ok((hits, report))
    }

    fn make_operators(&self) -> Vec<FunctionalOperator> {
        (0..self.config.fpga_count)
            .map(|_| {
                FunctionalOperator::new(self.config.operator.clone(), &self.matrix)
                    .expect("validated at construction")
            })
            .collect()
    }

    fn report_from(
        &self,
        tallies: &[FpgaTally],
        n_entries: u64,
        faults: FaultSummary,
        costs: &[EntryCost],
    ) -> BoardReport {
        let clock = self.config.operator.clock_hz as f64;
        let nf = self.config.fpga_count;
        let mut report = BoardReport {
            entries: n_entries,
            faults,
            ..BoardReport::default()
        };
        let mut total_hits = 0u64;
        for t in tallies {
            report.fpga_cycles.push(t.cycles);
            report.stall_cycles.push(t.stalls);
            report.busy_pe_cycles.push(t.busy);
            report.fifo_peak.push(t.peak);
            report.bytes_in += t.bytes_in;
            total_hits += t.hits;
        }
        // Double-buffered dispatch timeline, per FPGA: the DMA engine
        // streams entry k+1 into the idle half of the entry buffer while
        // the PEs chew on entry k. DMA of record k may start once the
        // engine is free *and* the buffer half last filled two records
        // ago has been consumed; compute follows its own DMA completion
        // and the previous compute. `costs` arrives in (entry, fpga)
        // order, so this f64 fold is identical for every host thread
        // count.
        let mut worst_span = 0.0f64;
        for f in 0..nf {
            let mut dma_end = 0.0f64;
            let mut compute_end = 0.0f64;
            let mut compute_end_prev = 0.0f64; // two records back
            let mut dma_busy: Vec<(f64, f64)> = Vec::new();
            let mut compute_busy: Vec<(f64, f64)> = Vec::new();
            for r in costs.iter().filter(|r| r.fpga == f) {
                let d = self.config.dma.wire_time(r.bytes_in);
                let c = r.cycles as f64 / clock;
                let dma_start = dma_end.max(compute_end_prev);
                dma_end = dma_start + d;
                let compute_start = dma_end.max(compute_end);
                compute_end_prev = compute_end;
                compute_end = compute_start + c;
                dma_busy.push((dma_start, dma_end));
                compute_busy.push((compute_start, compute_end));
                if self.config.record_timeline {
                    report.timeline.push(BoardSegment {
                        entry: r.entry,
                        fpga: f,
                        dma_start,
                        dma_end,
                        compute_start,
                        compute_end,
                        backoff_seconds: r.backoff_cycles as f64 / clock,
                        retries: r.retries,
                        degraded: r.degraded,
                    });
                }
            }
            if compute_end > worst_span {
                worst_span = compute_end;
                report.overlap_seconds = busy_intersection(&dma_busy, &compute_busy);
                report.overlap_occupancy = report.overlap_seconds / compute_end;
            }
        }
        if self.config.record_timeline {
            // Per-FPGA folds interleave; hand the flight recorder
            // dispatch order.
            report.timeline.sort_by_key(|a| (a.entry, a.fpga));
        }
        report.hit_count = total_hits;
        report.bytes_out = total_hits * std::mem::size_of::<(u32, u32)>() as u64;
        report.wire_in_seconds = self.config.dma.wire_time(report.bytes_in);
        report.wire_out_seconds = self.config.dma.wire_time(report.bytes_out);
        report.sync_seconds = self.config.sync_per_entry * n_entries as f64 * (nf as f64 - 1.0);
        report.setup_seconds =
            self.config.dma.bitstream_load + self.config.dma.dispatch_latency * n_entries as f64;
        report.accelerated_seconds =
            worst_span + report.wire_out_seconds + report.sync_seconds + report.setup_seconds;
        report
    }
}

/// Total time two sets of busy intervals are active simultaneously.
/// Both sets are ascending and internally disjoint (each engine is
/// serial), so a two-pointer sweep suffices.
fn busy_intersection(a: &[(f64, f64)], b: &[(f64, f64)]) -> f64 {
    let (mut i, mut j, mut total) = (0usize, 0usize, 0.0f64);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            total += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_score::blosum62;
    use psc_seqio::alphabet::encode_protein;

    fn windows(words: &[&[u8]]) -> Vec<u8> {
        let mut v = Vec::new();
        for w in words {
            v.extend_from_slice(&encode_protein(w));
        }
        v
    }

    fn test_config(fpgas: usize) -> BoardConfig {
        let mut op = OperatorConfig::new(8);
        op.window_len = 6;
        op.threshold = 20;
        op.slot_size = 4;
        BoardConfig::new(op, fpgas)
    }

    fn entries() -> Vec<Entry> {
        let e1 = Entry {
            il0: windows(&[b"MKVLAW", b"PPPPPP", b"MKVLAV", b"GGGGGG", b"MKVLAW"]),
            il1: windows(&[b"MKVLAW", b"GGGGGG", b"MKVLAW"]),
        };
        let e2 = Entry {
            il0: windows(&[b"RNDCQE", b"RNDCQE"]),
            il1: windows(&[b"RNDCQE"]),
        };
        vec![e1, e2]
    }

    #[test]
    fn one_and_two_fpgas_find_same_hits() {
        let m = blosum62();
        let b1 = RascBoard::new(test_config(1), m).unwrap();
        let b2 = RascBoard::new(test_config(2), m).unwrap();
        let (h1, _) = b1.run_workload(&entries()).unwrap();
        let (h2, _) = b2.run_workload(&entries()).unwrap();
        for (a, b) in h1.iter().zip(&h2) {
            let mut a = a.clone();
            let mut b = b.clone();
            a.sort_by_key(|h| (h.i0, h.i1));
            b.sort_by_key(|h| (h.i0, h.i1));
            assert_eq!(a, b);
        }
        assert!(!h1[0].is_empty());
        assert!(!h1[1].is_empty());
    }

    #[test]
    fn two_fpgas_split_the_cycles() {
        let m = blosum62();
        let (_, r1) = RascBoard::new(test_config(1), m)
            .unwrap()
            .run_workload(&entries())
            .unwrap();
        let (_, r2) = RascBoard::new(test_config(2), m)
            .unwrap()
            .run_workload(&entries())
            .unwrap();
        assert_eq!(r1.fpga_cycles.len(), 1);
        assert_eq!(r2.fpga_cycles.len(), 2);
        let worst2 = *r2.fpga_cycles.iter().max().unwrap();
        assert!(
            worst2 < r1.fpga_cycles[0],
            "two FPGAs should each do less hardware work"
        );
    }

    #[test]
    fn multithreaded_stream_matches_sequential() {
        let m = blosum62();
        let board = RascBoard::new(test_config(2), m).unwrap();
        // A workload big enough to exercise the channels.
        let work: Vec<Entry> = (0..40)
            .map(|i| {
                let w0: Vec<Vec<u8>> = (0..(i % 7 + 1))
                    .map(|j| (0..6u8).map(|r| (r + j as u8 + i as u8) % 20).collect())
                    .collect();
                let w1: Vec<Vec<u8>> = (0..(i % 5 + 1))
                    .map(|j| (0..6u8).map(|r| (r * 2 + j as u8) % 20).collect())
                    .collect();
                Entry {
                    il0: w0.concat(),
                    il1: w1.concat(),
                }
            })
            .collect();
        let (seq_hits, seq_rep) = board.run_workload(&work).unwrap();
        let mut par_hits: Vec<Vec<Hit>> = vec![Vec::new(); work.len()];
        let par_rep = board
            .run_stream(work.iter().cloned(), 4, |idx, h| {
                par_hits[idx as usize] = h;
            })
            .unwrap();
        assert_eq!(seq_hits, par_hits);
        assert_eq!(seq_rep.fpga_cycles, par_rep.fpga_cycles);
        assert_eq!(seq_rep.fifo_peak, par_rep.fifo_peak);
        assert_eq!(seq_rep.bytes_in, par_rep.bytes_in);
        assert_eq!(seq_rep.bytes_out, par_rep.bytes_out);
        assert_eq!(seq_rep.hit_count, par_rep.hit_count);
        assert_eq!(seq_rep.faults, par_rep.faults);
        assert!((seq_rep.accelerated_seconds - par_rep.accelerated_seconds).abs() < 1e-12);
        // The timeline fold sees the same record order either way, so
        // the double-buffer numbers are bit-identical, not just close.
        assert_eq!(seq_rep.overlap_seconds, par_rep.overlap_seconds);
        assert_eq!(seq_rep.overlap_occupancy, par_rep.overlap_occupancy);
    }

    #[test]
    fn double_buffer_overlaps_dma_with_compute() {
        let m = blosum62();
        // Many same-shaped entries: in steady state the DMA-in of entry
        // k+1 hides entirely under compute of entry k.
        let work: Vec<Entry> = (0..30)
            .map(|i| Entry {
                il0: (0..20 * 6u32).map(|r| ((r + i) % 20) as u8).collect(),
                il1: (0..16 * 6u32).map(|r| ((r * 3 + i) % 20) as u8).collect(),
            })
            .collect();
        let (_, r) = RascBoard::new(test_config(1), m)
            .unwrap()
            .run_workload(&work)
            .unwrap();
        assert!(r.overlap_seconds > 0.0, "{r:?}");
        assert!(
            r.overlap_occupancy > 0.0 && r.overlap_occupancy <= 1.0,
            "{r:?}"
        );
        // The overlapped span can never beat pure compute time or pure
        // wire time, and never exceeds their sum.
        let clock = test_config(1).operator.clock_hz as f64;
        let compute = r.fpga_cycles[0] as f64 / clock;
        let span = r.accelerated_seconds - r.wire_out_seconds - r.sync_seconds - r.setup_seconds;
        assert!(span >= compute.max(r.wire_in_seconds) - 1e-15, "{r:?}");
        assert!(span <= compute + r.wire_in_seconds + 1e-15, "{r:?}");
        // A single entry has nothing to overlap with.
        let (_, one) = RascBoard::new(test_config(1), m)
            .unwrap()
            .run_workload(&work[..1])
            .unwrap();
        assert_eq!(one.overlap_seconds, 0.0);
        assert_eq!(one.overlap_occupancy, 0.0);
    }

    #[test]
    fn timeline_records_match_the_fold_and_stay_thread_invariant() {
        let m = blosum62();
        let mut cfg = test_config(2);
        cfg.record_timeline = true;
        let board = RascBoard::new(cfg, m).unwrap();
        let work: Vec<Entry> = (0..12)
            .map(|i| Entry {
                il0: (0..8 * 6u32).map(|r| ((r + i) % 20) as u8).collect(),
                il1: (0..5 * 6u32).map(|r| ((r * 3 + i) % 20) as u8).collect(),
            })
            .collect();
        let (_, seq) = board.run_workload(&work).unwrap();
        let par = board
            .run_stream(work.iter().cloned(), 4, |_, _| {})
            .unwrap();
        assert_eq!(seq.timeline, par.timeline);
        assert_eq!(seq.timeline.len(), work.len() * 2); // two FPGAs
                                                        // Dispatch order, per-lane monotonic, DMA precedes compute.
        let mut last_end = [0.0f64; 2];
        for (i, s) in seq.timeline.iter().enumerate() {
            assert_eq!(s.entry, (i / 2) as u64);
            assert_eq!(s.fpga, i % 2);
            assert!(s.dma_end >= s.dma_start, "{s:?}");
            assert!(s.compute_start >= s.dma_end, "{s:?}");
            assert!(s.compute_end >= s.compute_start, "{s:?}");
            assert!(s.compute_end >= last_end[s.fpga], "{s:?}");
            last_end[s.fpga] = s.compute_end;
            assert_eq!(s.retries, 0);
            assert!(!s.degraded);
            assert_eq!(s.backoff_seconds, 0.0);
        }
        // The slowest lane's last compute_end is the fold's worst span.
        let span =
            seq.accelerated_seconds - seq.wire_out_seconds - seq.sync_seconds - seq.setup_seconds;
        let worst = seq
            .timeline
            .iter()
            .map(|s| s.compute_end)
            .fold(0.0f64, f64::max);
        assert!((span - worst).abs() < 1e-15, "{span} vs {worst}");
        // Off by default: no segments on a plain config.
        let plain = RascBoard::new(test_config(2), m).unwrap();
        let (_, r) = plain.run_workload(&work).unwrap();
        assert!(r.timeline.is_empty());
    }

    #[test]
    fn timeline_exposes_recovery_activity() {
        use crate::fault::FaultPlan;
        let m = blosum62();
        let mut cfg = test_config(1);
        cfg.record_timeline = true;
        // Entry 1 faults twice then succeeds; entry 0 is clean.
        cfg.fault_plan = Some(FaultPlan::parse("1:pe-flip:2").unwrap());
        let board = RascBoard::new(cfg, m).unwrap();
        let (_, r) = board.run_workload(&entries()).unwrap();
        assert_eq!(r.timeline.len(), 2);
        assert_eq!(r.timeline[0].retries, 0);
        assert_eq!(r.timeline[1].retries, 2);
        assert!(r.timeline[1].backoff_seconds > 0.0);
        assert!(!r.timeline[1].degraded);
        // The segment's backoff matches the summary's cycle account.
        let clock = test_config(1).operator.clock_hz as f64;
        assert!(
            (r.timeline[1].backoff_seconds - r.faults.backoff_cycles as f64 / clock).abs() < 1e-18
        );
    }

    #[test]
    fn sync_overhead_only_with_two_fpgas() {
        let m = blosum62();
        let (_, r1) = RascBoard::new(test_config(1), m)
            .unwrap()
            .run_workload(&entries())
            .unwrap();
        let (_, r2) = RascBoard::new(test_config(2), m)
            .unwrap()
            .run_workload(&entries())
            .unwrap();
        assert_eq!(r1.sync_seconds, 0.0);
        assert!(r2.sync_seconds > 0.0);
    }

    #[test]
    fn oversized_operator_rejected() {
        let m = blosum62();
        let cfg = BoardConfig::new(OperatorConfig::new(4000), 1);
        assert!(RascBoard::new(cfg, m).is_err());
    }

    #[test]
    #[should_panic]
    fn three_fpgas_rejected() {
        let m = blosum62();
        let _ = RascBoard::new(test_config(3), m);
    }

    #[test]
    fn report_accounts_bytes() {
        let m = blosum62();
        let (hits, r) = RascBoard::new(test_config(1), m)
            .unwrap()
            .run_workload(&entries())
            .unwrap();
        let total_hits: usize = hits.iter().map(Vec::len).sum();
        assert_eq!(r.bytes_out, (total_hits * 8) as u64);
        assert_eq!(r.hit_count, total_hits as u64);
        // Input: all IL0 + IL1 bytes of both entries (single FPGA).
        let expect: u64 = entries()
            .iter()
            .map(|e| (e.il0.len() + e.il1.len()) as u64)
            .sum();
        assert_eq!(r.bytes_in, expect);
        assert!(r.accelerated_seconds > 0.0);
        assert_eq!(r.entries, 2);
        assert!(r.utilization(8) > 0.0);
        // A fault-free run reports no fault activity.
        assert!(!r.faults.any());
        // The wire-time split follows the byte counts through the DMA
        // model, and hits were reported so the FIFOs saw occupancy.
        let cfg = test_config(1);
        assert!((r.wire_in_seconds - cfg.dma.wire_time(r.bytes_in)).abs() < 1e-15);
        assert!((r.wire_out_seconds - cfg.dma.wire_time(r.bytes_out)).abs() < 1e-15);
        assert_eq!(r.fifo_peak.len(), 1);
        assert!(r.fifo_peak[0] > 0);
    }

    #[test]
    fn utilization_is_zero_on_empty_report() {
        let r = BoardReport::default();
        assert_eq!(r.utilization(192), 0.0);
        let r = BoardReport {
            fpga_cycles: vec![0, 0],
            busy_pe_cycles: vec![0, 0],
            ..BoardReport::default()
        };
        assert_eq!(r.utilization(192), 0.0);
    }

    #[test]
    fn empty_workload() {
        let m = blosum62();
        let (hits, r) = RascBoard::new(test_config(2), m)
            .unwrap()
            .run_workload(&[])
            .unwrap();
        assert!(hits.is_empty());
        assert_eq!(r.bytes_in, 0);
        assert_eq!(r.sync_seconds, 0.0);
        assert_eq!(r.entries, 0);
    }
}
