//! Bounded hardware-style FIFO.
//!
//! The PSC operator's result path is a chain of small FIFOs, one per PE
//! slot, cascaded toward the output controller. What matters behaviourally
//! is bounded capacity (full FIFOs exert backpressure that stalls the PE
//! array) and strict arrival order — both captured here.

use std::collections::VecDeque;

/// A bounded FIFO. `push` on a full FIFO is a *caller* error in the
/// simulator (hardware would stall instead), so it returns the rejected
/// item and the caller models the stall.
#[derive(Clone, Debug)]
pub struct Fifo<T> {
    items: VecDeque<T>,
    capacity: usize,
    /// High-water mark, for occupancy reporting.
    peak: usize,
}

impl<T> Fifo<T> {
    pub fn new(capacity: usize) -> Fifo<T> {
        assert!(capacity > 0, "FIFO needs positive capacity");
        Fifo {
            items: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            peak: 0,
        }
    }

    /// Try to enqueue; `Err(item)` when full.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() == self.capacity {
            return Err(item);
        }
        self.items.push_back(item);
        self.peak = self.peak.max(self.items.len());
        Ok(())
    }

    /// Dequeue the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    #[inline]
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    #[inline]
    pub fn free(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// High-water mark since construction.
    #[inline]
    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut f = Fifo::new(4);
        for i in 0..4 {
            f.push(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(f.pop(), Some(i));
        }
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn full_fifo_rejects() {
        let mut f = Fifo::new(2);
        f.push(1).unwrap();
        f.push(2).unwrap();
        assert!(f.is_full());
        assert_eq!(f.push(3), Err(3));
        f.pop();
        assert_eq!(f.free(), 1);
        f.push(3).unwrap();
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), Some(3));
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut f = Fifo::new(8);
        f.push(1).unwrap();
        f.push(2).unwrap();
        f.pop();
        f.push(3).unwrap();
        assert_eq!(f.peak(), 2);
        assert_eq!(f.len(), 2);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        Fifo::<u32>::new(0);
    }
}
