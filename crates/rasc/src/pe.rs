//! The processing element (paper Figure 2).
//!
//! One PE holds an IL0 window in a feedback shift register. During a
//! compute wave it consumes one amino-acid pair per clock: its own
//! residue (recirculated from the shift register) and the broadcast IL1
//! residue, looks up the substitution cost in its ROM, adds it to the
//! running score and updates the running maximum. After `window_len`
//! cycles the maximum is handed to the slot's result-management module.

use psc_align::Kernel;
use psc_seqio::alphabet::AA_ALPHABET_LEN;

/// One processing element.
#[derive(Clone, Debug)]
pub struct Pe {
    /// Shift-register contents (the stored IL0 window).
    window: Vec<u8>,
    /// Recirculation pointer.
    head: usize,
    /// Residues loaded so far (load phase).
    loaded: usize,
    /// Accumulator and maximum registers.
    score: i32,
    max_score: i32,
    kernel: Kernel,
    /// Disabled PEs (array not fully filled) never report.
    active: bool,
}

impl Pe {
    /// A fresh, inactive PE with an empty shift register.
    pub fn new(window_len: usize, kernel: Kernel) -> Pe {
        Pe {
            window: vec![0u8; window_len],
            head: 0,
            loaded: 0,
            score: 0,
            max_score: 0,
            kernel,
            active: false,
        }
    }

    /// Begin the initialization phase: forget the stored window.
    pub fn reset_for_load(&mut self) {
        self.loaded = 0;
        self.active = false;
    }

    /// Shift one residue of the IL0 window in (one per clock during the
    /// load phase). The PE activates once the register is full.
    pub fn load_residue(&mut self, residue: u8) {
        debug_assert!(self.loaded < self.window.len(), "overfilled shift register");
        self.window[self.loaded] = residue;
        self.loaded += 1;
        if self.loaded == self.window.len() {
            self.active = true;
        }
    }

    /// True once a full window is stored.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Start a compute wave: clear accumulator/maximum, rewind the
    /// recirculation pointer.
    pub fn begin_wave(&mut self) {
        self.score = 0;
        self.max_score = 0;
        self.head = 0;
    }

    /// One compute clock: combine the recirculated IL0 residue with the
    /// arriving IL1 residue through the ROM and the accumulator/max
    /// datapath.
    #[inline]
    pub fn step(&mut self, rom: &[i8; AA_ALPHABET_LEN * AA_ALPHABET_LEN], il1_residue: u8) {
        let own = self.window[self.head];
        self.head += 1;
        if self.head == self.window.len() {
            self.head = 0; // feedback loop
        }
        let sub = rom[own as usize * AA_ALPHABET_LEN + il1_residue as usize] as i32;
        self.score = match self.kernel {
            Kernel::ClampedSum => (self.score + sub).max(0),
            Kernel::PaperLiteral => self.score.max(self.score + sub),
        };
        self.max_score = self.max_score.max(self.score);
    }

    /// Maximum score register at the end of a wave.
    #[inline]
    pub fn wave_score(&self) -> i32 {
        self.max_score
    }

    /// The stored window (diagnostics/tests).
    pub fn stored_window(&self) -> &[u8] {
        &self.window[..self.loaded]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_align::ungapped_score;
    use psc_score::blosum62;
    use psc_seqio::alphabet::encode_protein;

    fn run_wave(pe: &mut Pe, il1: &[u8]) -> i32 {
        let rom = blosum62().flat();
        pe.begin_wave();
        for &r in il1 {
            pe.step(rom, r);
        }
        pe.wave_score()
    }

    #[test]
    fn pe_matches_software_kernel() {
        let w0 = encode_protein(b"MKVLAWRNDCQE");
        let w1 = encode_protein(b"MKVLAWRNDCQE");
        let mut pe = Pe::new(w0.len(), Kernel::ClampedSum);
        pe.reset_for_load();
        for &r in &w0 {
            pe.load_residue(r);
        }
        assert!(pe.is_active());
        let hw = run_wave(&mut pe, &w1);
        let sw = ungapped_score(Kernel::ClampedSum, blosum62(), &w0, &w1);
        assert_eq!(hw, sw);
    }

    #[test]
    fn feedback_register_replays_for_many_waves() {
        let w0 = encode_protein(b"MKVLAW");
        let waves = [
            encode_protein(b"MKVLAW"),
            encode_protein(b"PPPPPP"),
            encode_protein(b"MKVLAW"),
        ];
        let mut pe = Pe::new(6, Kernel::ClampedSum);
        pe.reset_for_load();
        for &r in &w0 {
            pe.load_residue(r);
        }
        let scores: Vec<i32> = waves.iter().map(|w| run_wave(&mut pe, w)).collect();
        assert_eq!(scores[0], 33);
        assert_eq!(scores[2], 33, "shift register must recirculate intact");
        assert!(scores[1] < 33);
    }

    #[test]
    fn inactive_until_fully_loaded() {
        let mut pe = Pe::new(4, Kernel::ClampedSum);
        pe.reset_for_load();
        pe.load_residue(0);
        pe.load_residue(1);
        assert!(!pe.is_active());
        pe.load_residue(2);
        pe.load_residue(3);
        assert!(pe.is_active());
        assert_eq!(pe.stored_window(), &[0, 1, 2, 3]);
        pe.reset_for_load();
        assert!(!pe.is_active());
        assert!(pe.stored_window().is_empty());
    }

    #[test]
    fn paper_literal_datapath() {
        let w0 = encode_protein(b"WPWP");
        let w1 = encode_protein(b"WWWW");
        let mut pe = Pe::new(4, Kernel::PaperLiteral);
        pe.reset_for_load();
        for &r in &w0 {
            pe.load_residue(r);
        }
        assert_eq!(run_wave(&mut pe, &w1), 22); // two +11, negatives gated
    }
}
