//! Host ⇄ FPGA transfer model (NUMAlink + SGI Core DMA, paper Figure 3).
//!
//! The RASC-100 connects to the Altix host over NUMAlink through SGI's
//! TIO modules; SGI Core provides DMA engines, SRAM staging and algorithm
//! defined registers (ADRs) for control. For performance accounting what
//! matters is: sustained link bandwidth, a fixed per-dispatch handshake
//! cost (ADR writes, DMA descriptor setup), and the fact that the *input*
//! streams overlap computation while results are only credited once the
//! run drains.

/// Sustained NUMAlink-4 bandwidth per direction (bytes/second).
pub const NUMALINK_BANDWIDTH: f64 = 3.2e9;

/// Transfer model parameters.
#[derive(Clone, Copy, Debug)]
pub struct DmaModel {
    /// Link bandwidth, bytes per second.
    pub bandwidth: f64,
    /// Fixed cost of one dispatch (ADR handshake + DMA setup), seconds.
    pub dispatch_latency: f64,
    /// One-time cost of configuring the FPGA with the bitstream, seconds.
    pub bitstream_load: f64,
}

impl Default for DmaModel {
    fn default() -> Self {
        DmaModel {
            bandwidth: NUMALINK_BANDWIDTH,
            dispatch_latency: 2.0e-6,
            bitstream_load: 0.8,
        }
    }
}

impl DmaModel {
    /// Pure wire time for `bytes`.
    #[inline]
    pub fn wire_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bandwidth
    }

    /// Effective wall time of one FPGA job whose input streaming overlaps
    /// computation: `max(compute, input) + output`.
    pub fn job_time(&self, compute_sec: f64, bytes_in: u64, bytes_out: u64) -> f64 {
        compute_sec.max(self.wire_time(bytes_in)) + self.wire_time(bytes_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_scales_linearly() {
        let d = DmaModel::default();
        let t1 = d.wire_time(1_000_000);
        let t2 = d.wire_time(2_000_000);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn compute_bound_job_hides_input() {
        let d = DmaModel::default();
        // 1 s of compute vs 1 ms of input: job ≈ compute.
        let t = d.job_time(1.0, 3_200_000, 0);
        assert!((t - 1.0).abs() < 1e-6);
    }

    #[test]
    fn io_bound_job_pays_the_wire() {
        let d = DmaModel::default();
        // 1 µs of compute, 3.2 GB of input: job ≈ 1 s.
        let t = d.job_time(1e-6, 3_200_000_000, 0);
        assert!((t - 1.0).abs() < 1e-3);
    }

    #[test]
    fn output_always_serializes() {
        let d = DmaModel::default();
        let quiet = d.job_time(1.0, 0, 0);
        let chatty = d.job_time(1.0, 0, 3_200_000_000);
        assert!((chatty - quiet - 1.0).abs() < 1e-3);
    }
}
