//! Property test: the cycle-accurate PSC operator and the functional +
//! analytic fast path agree exactly — same hits, same order, same cycle
//! count, same stall count — across randomized configurations and window
//! streams. This is what licenses running the paper's experiment sweeps
//! on the fast path.

use proptest::prelude::*;
use psc_align::Kernel;
use psc_rasc::{FunctionalOperator, OperatorConfig, PscOperator};
use psc_score::blosum62;

#[derive(Clone, Debug)]
struct Case {
    pe_count: usize,
    slot_size: usize,
    window_len: usize,
    threshold: i32,
    fifo_capacity: usize,
    kernel: Kernel,
    il0: Vec<u8>,
    il1: Vec<u8>,
}

fn case() -> impl Strategy<Value = Case> {
    (
        1usize..12,      // pe_count
        1usize..6,       // slot_size
        2usize..14,      // window_len
        0i32..40,        // threshold
        1usize..12,      // fifo_capacity
        prop::bool::ANY, // kernel select
        0usize..20,      // k0
        0usize..20,      // k1
    )
        .prop_flat_map(
            |(pe_count, slot_size, window_len, threshold, fifo_capacity, literal, k0, k1)| {
                let res = proptest::collection::vec(0u8..24, window_len * k0);
                let res1 = proptest::collection::vec(0u8..24, window_len * k1);
                (res, res1).prop_map(move |(il0, il1)| Case {
                    pe_count,
                    slot_size,
                    window_len,
                    threshold,
                    fifo_capacity,
                    kernel: if literal {
                        Kernel::PaperLiteral
                    } else {
                        Kernel::ClampedSum
                    },
                    il0,
                    il1,
                })
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cycle_accurate_equals_functional(c in case()) {
        let mut cfg = OperatorConfig::new(c.pe_count);
        cfg.slot_size = c.slot_size;
        cfg.window_len = c.window_len;
        cfg.threshold = c.threshold;
        cfg.fifo_capacity = c.fifo_capacity;
        cfg.kernel = c.kernel;

        let mut hw = PscOperator::new(cfg.clone(), blosum62()).unwrap();
        let sw = FunctionalOperator::new(cfg, blosum62()).unwrap();

        let a = hw.run_entry(&c.il0, &c.il1);
        let b = sw.run_entry(&c.il0, &c.il1);
        prop_assert_eq!(&a.hits, &b.hits, "hit stream diverged");
        prop_assert_eq!(a.cycles, b.cycles, "cycle count diverged");
        prop_assert_eq!(a.stall_cycles, b.stall_cycles, "stalls diverged");
        prop_assert_eq!(a.busy_pe_cycles, b.busy_pe_cycles, "busy accounting diverged");

        // And the no-traffic lower bound really is a lower bound.
        let k0 = c.il0.len() / c.window_len;
        let k1 = c.il1.len() / c.window_len;
        prop_assert!(b.cycles >= sw.cycles_lower_bound(k0, k1));
    }

    /// The hit set is exactly the pairs the software kernel scores at or
    /// above threshold, independent of array geometry.
    #[test]
    fn hits_independent_of_geometry(c in case()) {
        let mut cfg_a = OperatorConfig::new(c.pe_count);
        cfg_a.slot_size = c.slot_size;
        cfg_a.window_len = c.window_len;
        cfg_a.threshold = c.threshold;
        cfg_a.fifo_capacity = c.fifo_capacity;
        cfg_a.kernel = c.kernel;
        let mut cfg_b = cfg_a.clone();
        cfg_b.pe_count = 1;
        cfg_b.slot_size = 1;
        cfg_b.fifo_capacity = 1;

        let a = FunctionalOperator::new(cfg_a, blosum62()).unwrap().run_entry(&c.il0, &c.il1);
        let b = FunctionalOperator::new(cfg_b, blosum62()).unwrap().run_entry(&c.il0, &c.il1);
        let mut ha = a.hits.clone();
        let mut hb = b.hits.clone();
        ha.sort_by_key(|h| (h.i0, h.i1));
        hb.sort_by_key(|h| (h.i0, h.i1));
        prop_assert_eq!(ha, hb);
    }
}
