//! Integration tests of the board's fault-injection and recovery path.
//!
//! The tentpole invariant: under *any* fault plan, the hit sets the
//! board delivers are bit-identical to the fault-free run — faults cost
//! simulated cycles and bytes, never results. Reports (including the
//! fault counters) must also be independent of `host_threads`.

use std::panic::{catch_unwind, AssertUnwindSafe};

use psc_rasc::fault::ALL_FAULT_KINDS;
use psc_rasc::{
    BoardConfig, Entry, FaultKind, FaultPlan, FaultSpec, Hit, OperatorConfig, RascBoard,
    RecoveryPolicy,
};
use psc_score::blosum62;
use psc_seqio::alphabet::encode_protein;

fn windows(words: &[&[u8]]) -> Vec<u8> {
    let mut v = Vec::new();
    for w in words {
        v.extend_from_slice(&encode_protein(w));
    }
    v
}

fn test_config(fpgas: usize) -> BoardConfig {
    let mut op = OperatorConfig::new(8);
    op.window_len = 6;
    op.threshold = 20;
    op.slot_size = 4;
    BoardConfig::new(op, fpgas)
}

/// Entries whose IL0 shards produce hits on *both* FPGAs of a 2-FPGA
/// board (so result-path faults always have something to damage), plus
/// some per-entry variation.
fn workload(n: usize) -> Vec<Entry> {
    (0..n)
        .map(|i| {
            let spice: Vec<u8> = (0..6u8).map(|r| (r * 3 + i as u8) % 20).collect();
            Entry {
                il0: [
                    windows(&[b"MKVLAW", b"RNDCQE", b"MKVLAW", b"RNDCQE"]),
                    spice.clone(),
                ]
                .concat(),
                il1: [windows(&[b"MKVLAW", b"RNDCQE"]), spice].concat(),
            }
        })
        .collect()
}

fn sorted(mut hits: Vec<Vec<Hit>>) -> Vec<Vec<Hit>> {
    for h in &mut hits {
        h.sort_by_key(|h| (h.i0, h.i1, h.score));
    }
    hits
}

#[test]
fn every_fault_kind_recovers_bit_identical() {
    let m = blosum62();
    let work = workload(6);
    let (base_hits, base_rep) = RascBoard::new(test_config(2), m)
        .unwrap()
        .run_workload(&work)
        .unwrap();
    let base_hits = sorted(base_hits);
    for kind in ALL_FAULT_KINDS {
        let mut cfg = test_config(2);
        cfg.fault_plan = Some(FaultPlan::Scripted(vec![FaultSpec {
            entry: 1,
            fpga: None,
            board: None,
            kind,
            attempts: 2,
        }]));
        let (hits, rep) = RascBoard::new(cfg, m).unwrap().run_workload(&work).unwrap();
        assert_eq!(sorted(hits), base_hits, "{kind}: results must not change");
        // Two FPGAs, two failing attempts each.
        assert_eq!(rep.faults.faults_injected, 4, "{kind}");
        assert_eq!(rep.faults.faults_detected, 4, "{kind}");
        assert_eq!(rep.faults.retries, 4, "{kind}");
        assert_eq!(rep.faults.entries_degraded, 0, "{kind}");
        match kind {
            FaultKind::DmaCorrupt | FaultKind::FifoOverflow | FaultKind::PeFlip => {
                assert_eq!(rep.faults.checksum_mismatches, 4, "{kind}")
            }
            FaultKind::DmaTruncate | FaultKind::AdrFault => {
                assert_eq!(rep.faults.protocol_faults, 4, "{kind}")
            }
            FaultKind::FifoStall => assert_eq!(rep.faults.watchdog_trips, 4, "{kind}"),
        }
        // Every retry re-streams the entry and burns cycles.
        assert!(rep.bytes_in > base_rep.bytes_in, "{kind}");
        let cycles: u64 = rep.fpga_cycles.iter().sum();
        let base_cycles: u64 = base_rep.fpga_cycles.iter().sum();
        assert!(cycles > base_cycles, "{kind}");
        // Faulted attempts never count as useful PE work.
        assert_eq!(rep.busy_pe_cycles, base_rep.busy_pe_cycles, "{kind}");
        assert_eq!(rep.hit_count, base_rep.hit_count, "{kind}");
    }
}

#[test]
fn backoff_escalates_deterministically() {
    let m = blosum62();
    let work = workload(4);
    let mut cfg = test_config(2);
    cfg.fault_plan = Some(FaultPlan::Scripted(vec![FaultSpec {
        entry: 2,
        fpga: None,
        board: None,
        kind: FaultKind::AdrFault,
        attempts: 3,
    }]));
    let (_, rep) = RascBoard::new(cfg, m).unwrap().run_workload(&work).unwrap();
    // Three retries per FPGA: 256 + 512 + 1024 cycles of backoff each.
    assert_eq!(rep.faults.retries, 6);
    assert_eq!(rep.faults.backoff_cycles, 2 * (256 + 512 + 1024));
}

#[test]
fn watchdog_trip_costs_simulated_time() {
    let m = blosum62();
    let work = workload(4);
    let (_, base) = RascBoard::new(test_config(1), m)
        .unwrap()
        .run_workload(&work)
        .unwrap();
    let mut cfg = test_config(1);
    cfg.fault_plan = Some(FaultPlan::Scripted(vec![FaultSpec {
        entry: 0,
        fpga: Some(0),
        board: None,
        kind: FaultKind::FifoStall,
        attempts: 1,
    }]));
    let (_, rep) = RascBoard::new(cfg, m).unwrap().run_workload(&work).unwrap();
    assert_eq!(rep.faults.watchdog_trips, 1);
    // The wedged dispatch burned its whole watchdog budget, so the
    // simulated accelerated section is strictly longer.
    assert!(rep.fpga_cycles[0] > base.fpga_cycles[0]);
    assert!(rep.accelerated_seconds > base.accelerated_seconds);
}

#[test]
fn persistent_fault_degrades_to_software_with_identical_results() {
    let m = blosum62();
    let work = workload(6);
    let (base_hits, _) = RascBoard::new(test_config(2), m)
        .unwrap()
        .run_workload(&work)
        .unwrap();
    let mut cfg = test_config(2);
    // Outlasts the default 3-retry budget on FPGA 1 only.
    cfg.fault_plan = Some(FaultPlan::Scripted(vec![FaultSpec {
        entry: 4,
        fpga: Some(1),
        board: None,
        kind: FaultKind::PeFlip,
        attempts: 100,
    }]));
    let (hits, rep) = RascBoard::new(cfg, m).unwrap().run_workload(&work).unwrap();
    assert_eq!(sorted(hits), sorted(base_hits));
    assert_eq!(rep.faults.entries_degraded, 1);
    assert_eq!(rep.faults.retries, 3);
    assert_eq!(rep.faults.faults_injected, 4);
}

#[test]
fn exhausted_recovery_without_degradation_is_an_error() {
    let m = blosum62();
    let work = workload(8);
    let mut cfg = test_config(2);
    cfg.recovery = RecoveryPolicy {
        degrade: false,
        ..RecoveryPolicy::default()
    };
    // Two persistently failing entries; the earliest must be reported.
    cfg.fault_plan = Some(FaultPlan::Scripted(vec![
        FaultSpec {
            entry: 5,
            fpga: None,
            board: None,
            kind: FaultKind::DmaCorrupt,
            attempts: 100,
        },
        FaultSpec {
            entry: 3,
            fpga: Some(1),
            board: None,
            kind: FaultKind::AdrFault,
            attempts: 100,
        },
    ]));
    let board = RascBoard::new(cfg, m).unwrap();
    for threads in [1, 4] {
        let err = board
            .run_stream(work.iter().cloned(), threads, |_, _| {})
            .unwrap_err();
        assert_eq!(err.entry, 3, "threads={threads}");
        assert_eq!(err.fpga, 1, "threads={threads}");
        assert_eq!(err.kind, FaultKind::AdrFault, "threads={threads}");
        assert_eq!(err.attempts, 4, "threads={threads}");
        assert!(err.to_string().contains("entry 3"), "{err}");
    }
}

#[test]
fn seeded_plan_is_thread_count_invariant_and_lossless() {
    let m = blosum62();
    let work = workload(20);
    let (base_hits, _) = RascBoard::new(test_config(2), m)
        .unwrap()
        .run_workload(&work)
        .unwrap();
    let mut cfg = test_config(2);
    cfg.fault_plan = Some(FaultPlan::seeded(42));
    let board = RascBoard::new(cfg, m).unwrap();
    let (seq_hits, seq_rep) = board.run_workload(&work).unwrap();
    // The seeded plan actually does something on this workload…
    assert!(seq_rep.faults.faults_injected > 0);
    assert!(seq_rep.faults.retries > 0);
    // …and costs nothing in results.
    assert_eq!(sorted(seq_hits.clone()), sorted(base_hits));
    for threads in [2, 4] {
        let mut par_hits: Vec<Vec<Hit>> = vec![Vec::new(); work.len()];
        let par_rep = board
            .run_stream(work.iter().cloned(), threads, |idx, h| {
                par_hits[idx as usize] = h;
            })
            .unwrap();
        assert_eq!(seq_hits, par_hits, "threads={threads}");
        assert_eq!(seq_rep.faults, par_rep.faults, "threads={threads}");
        assert_eq!(
            seq_rep.fpga_cycles, par_rep.fpga_cycles,
            "threads={threads}"
        );
        assert_eq!(seq_rep.bytes_in, par_rep.bytes_in, "threads={threads}");
        assert_eq!(seq_rep.hit_count, par_rep.hit_count, "threads={threads}");
    }
}

#[test]
fn seeded_plan_exercises_degradation() {
    let m = blosum62();
    let work = workload(40);
    let (base_hits, _) = RascBoard::new(test_config(2), m)
        .unwrap()
        .run_workload(&work)
        .unwrap();
    let mut cfg = test_config(2);
    cfg.fault_plan = Some(FaultPlan::seeded(7));
    let (hits, rep) = RascBoard::new(cfg, m).unwrap().run_workload(&work).unwrap();
    // Seeded persistence spans 1–6 attempts, so a 40-entry run sees
    // both recovered retries and software-degraded shards.
    assert!(rep.faults.entries_degraded > 0);
    assert!(rep.faults.retries > rep.faults.entries_degraded * 3);
    assert_eq!(sorted(hits), sorted(base_hits));
}

#[test]
fn heavy_tail_plan_counts_match_injector_and_stay_lossless() {
    let m = blosum62();
    let work = workload(40);
    let (base_hits, _) = RascBoard::new(test_config(2), m)
        .unwrap()
        .run_workload(&work)
        .unwrap();
    let mut cfg = test_config(2);
    cfg.fault_plan = Some(FaultPlan::seeded_heavy(42));
    let board = RascBoard::new(cfg, m).unwrap();
    let (hits, rep) = board.run_workload(&work).unwrap();
    // Lossless under stuck boards too.
    assert_eq!(sorted(hits.clone()), sorted(base_hits));

    // The exact counters are derivable from the plan alone: every entry
    // dispatches one shard per FPGA, this workload damages something on
    // every fired fault, and a shard degrades after the initial attempt
    // plus 3 retries all fail.
    let inj = psc_rasc::FaultInjector::new(FaultPlan::seeded_heavy(42));
    let (mut injected, mut retries, mut degraded) = (0u64, 0u64, 0u64);
    for entry in 0..work.len() as u64 {
        for fpga in 0..2usize {
            let mut failed = 0u32;
            while failed < 4 && inj.fire(entry, fpga, failed).is_some() {
                failed += 1;
            }
            injected += failed as u64;
            retries += failed.min(3) as u64;
            degraded += (failed == 4) as u64;
        }
    }
    assert!(injected > 0, "seed 42 must fault this workload");
    assert!(degraded > 0, "heavy tail must outlast the retry budget");
    assert_eq!(rep.faults.faults_injected, injected);
    assert_eq!(rep.faults.faults_detected, injected);
    assert_eq!(rep.faults.retries, retries);
    assert_eq!(rep.faults.entries_degraded, degraded);
    // Persistence above the uniform mode's 1–6 ceiling is drawn — the
    // regime this plan exists for.
    assert!(
        (0..work.len() as u64).any(|e| (0..2).any(|f| inj.fire(e, f, 6).is_some())),
        "no stuck pair drawn for seed 42"
    );

    // And the whole thing is host-thread invariant.
    for threads in [2, 4] {
        let mut par_hits: Vec<Vec<Hit>> = vec![Vec::new(); work.len()];
        let par_rep = board
            .run_stream(work.iter().cloned(), threads, |idx, h| {
                par_hits[idx as usize] = h;
            })
            .unwrap();
        assert_eq!(hits, par_hits, "threads={threads}");
        assert_eq!(rep.faults, par_rep.faults, "threads={threads}");
        assert_eq!(rep.fpga_cycles, par_rep.fpga_cycles, "threads={threads}");
    }
}

/// Regression for the feeder-thread deadlock: a worker that panics
/// mid-workload (here: entries whose streams are not whole windows trip
/// the operator's input assertion) used to leave the feeder blocked
/// forever on the bounded entry channel once every worker was gone.
/// The feeder must bail on channel disconnect so the panic propagates.
#[test]
fn worker_panic_propagates_instead_of_deadlocking() {
    let m = blosum62();
    // Every entry is malformed (IL1 is not a whole number of windows),
    // so every worker dies on its first item.
    let work: Vec<Entry> = (0..64)
        .map(|_| Entry {
            il0: vec![0u8; 6],
            il1: vec![0u8; 7],
        })
        .collect();
    let board = RascBoard::new(test_config(1), m).unwrap();
    let result = catch_unwind(AssertUnwindSafe(|| {
        board.run_stream(work.iter().cloned(), 2, |_, _| {})
    }));
    assert!(result.is_err(), "worker panic must surface, not hang");
}
