//! Ungapped extension kernels (the paper's step 2).
//!
//! The critical section the RASC-100 accelerates is a fixed-length
//! windowed score: two substrings of length `W + 2N` (seed plus left and
//! right context) are compared position by position, accumulating
//! substitution scores and tracking a running maximum.
//!
//! ## The two kernel variants
//!
//! The paper's pseudocode reads
//!
//! ```text
//! score = max(score, score + Sub[S0[k]][S1[k]])
//! max_score = max(score, max_score)
//! ```
//!
//! which, taken literally, accumulates only the *positive part* of each
//! substitution score ([`Kernel::PaperLiteral`]). The prose and the PE
//! datapath ("the result is added to the current score and a maximum
//! value is computed") describe the standard one-dimensional
//! Smith–Waterman recurrence `score = max(0, score + sub)`
//! ([`Kernel::ClampedSum`], the default — it is what an actual BLAST-like
//! filter needs, because the literal variant's score never decreases and
//! therefore cannot "forget" a noisy prefix). Both are implemented; the
//! PSC-operator simulator is tested bit-identical against whichever is
//! configured, and `experiments ablation-kernel` measures the
//! sensitivity difference.

use psc_score::SubstitutionMatrix;

/// Which recurrence the ungapped window score uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Kernel {
    /// `score = max(0, score + sub)` — 1-D Smith–Waterman (default).
    #[default]
    ClampedSum,
    /// `score = max(score, score + sub)` — the pseudocode as printed.
    PaperLiteral,
}

/// Maximum windowed score of two equal-length windows under a kernel.
///
/// This function *is* the PE datapath: one table lookup, one add, one or
/// two max gates per residue pair. The simulator's processing element is
/// tested to produce exactly these values cycle by cycle.
#[inline]
pub fn ungapped_score(kernel: Kernel, matrix: &SubstitutionMatrix, s0: &[u8], s1: &[u8]) -> i32 {
    debug_assert_eq!(s0.len(), s1.len());
    let mut score = 0i32;
    let mut max_score = 0i32;
    match kernel {
        Kernel::ClampedSum => {
            for (&a, &b) in s0.iter().zip(s1) {
                score = (score + matrix.score(a, b)).max(0);
                max_score = max_score.max(score);
            }
        }
        Kernel::PaperLiteral => {
            for (&a, &b) in s0.iter().zip(s1) {
                score = score.max(score + matrix.score(a, b));
                max_score = max_score.max(score);
            }
        }
    }
    max_score
}

/// Result of an X-drop ungapped extension.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UngappedHit {
    /// Raw score of the best ungapped segment found.
    pub score: i32,
    /// Start offsets of the segment in the two sequences.
    pub start0: usize,
    pub start1: usize,
    /// Segment length (equal in both sequences — no gaps).
    pub len: usize,
}

impl UngappedHit {
    /// Diagonal of the hit (`start1 - start0`), the key BLAST uses for
    /// two-hit bookkeeping and duplicate suppression.
    #[inline]
    pub fn diagonal(&self) -> i64 {
        self.start1 as i64 - self.start0 as i64
    }
}

/// NCBI-style X-drop ungapped extension from a word hit.
///
/// Starting from the word at `(pos0, pos1)` of length `word_len`, extend
/// right then left, abandoning a direction when the running score falls
/// more than `xdrop` below the best seen. Unlike the fixed-window kernel
/// this is unbounded (it can extend to the sequence ends); it is the
/// reference the baseline uses and the fixed-window kernel approximates.
pub fn xdrop_ungapped(
    matrix: &SubstitutionMatrix,
    seq0: &[u8],
    seq1: &[u8],
    pos0: usize,
    pos1: usize,
    word_len: usize,
    xdrop: i32,
) -> UngappedHit {
    debug_assert!(pos0 + word_len <= seq0.len());
    debug_assert!(pos1 + word_len <= seq1.len());

    // Score of the word itself.
    let word_score: i32 = (0..word_len)
        .map(|k| matrix.score(seq0[pos0 + k], seq1[pos1 + k]))
        .sum();

    // Extend right.
    let mut best = word_score;
    let mut running = word_score;
    let mut best_right = 0usize; // residues beyond the word
    {
        let mut k = 0usize;
        loop {
            let (i, j) = (pos0 + word_len + k, pos1 + word_len + k);
            if i >= seq0.len() || j >= seq1.len() {
                break;
            }
            running += matrix.score(seq0[i], seq1[j]);
            k += 1;
            if running > best {
                best = running;
                best_right = k;
            } else if running <= best - xdrop {
                break;
            }
        }
    }

    // Extend left from the word start, on top of the best-right total.
    let mut running = best;
    let mut best_left = 0usize;
    {
        let mut k = 0usize;
        loop {
            if k >= pos0 || k >= pos1 {
                break;
            }
            let (i, j) = (pos0 - k - 1, pos1 - k - 1);
            running += matrix.score(seq0[i], seq1[j]);
            k += 1;
            if running > best {
                best = running;
                best_left = k;
            } else if running <= best - xdrop {
                break;
            }
        }
    }

    UngappedHit {
        score: best,
        start0: pos0 - best_left,
        start1: pos1 - best_left,
        len: word_len + best_left + best_right,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_score::blosum62;
    use psc_seqio::alphabet::encode_protein;

    fn score(kernel: Kernel, a: &[u8], b: &[u8]) -> i32 {
        ungapped_score(kernel, blosum62(), &encode_protein(a), &encode_protein(b))
    }

    #[test]
    fn identical_windows_score_self() {
        let w = b"MKVLAWMKVLAW";
        // Self-score of MKVLAW = 5+5+4+4+4+11 = 33, doubled = 66.
        assert_eq!(score(Kernel::ClampedSum, w, w), 66);
        assert_eq!(score(Kernel::PaperLiteral, w, w), 66);
    }

    #[test]
    fn clamped_sum_forgets_bad_prefix() {
        // Bad prefix (W vs P = -4, repeated) then a strong identical tail:
        // ClampedSum resets to 0 and scores the tail fully.
        let a = b"WWWWMKVLAW";
        let b = b"PPPPMKVLAW";
        let tail = 33;
        assert_eq!(score(Kernel::ClampedSum, a, b), tail);
        // PaperLiteral never decreases, so it also reaches 33 here —
        // the variants differ on *interleaved* noise, tested below.
        assert_eq!(score(Kernel::PaperLiteral, a, b), tail);
    }

    #[test]
    fn kernels_differ_on_interleaved_noise() {
        // Alternating good/bad pairs: PaperLiteral sums only positives,
        // ClampedSum pays for the negatives.
        let a = b"WPWPWPWP";
        let b = b"WWWWWWWW"; // W/W = +11, P/W = -4
        let literal = score(Kernel::PaperLiteral, a, b);
        let clamped = score(Kernel::ClampedSum, a, b);
        assert_eq!(literal, 44); // four +11, negatives ignored
        assert_eq!(clamped, 32); // 11-4+11-4+11-4+11 = 32
        assert!(literal > clamped);
    }

    #[test]
    fn empty_window_scores_zero() {
        assert_eq!(score(Kernel::ClampedSum, b"", b""), 0);
        assert_eq!(score(Kernel::PaperLiteral, b"", b""), 0);
    }

    #[test]
    fn all_mismatch_scores_zero() {
        // max_score starts at 0 and nothing positive ever accumulates.
        let a = b"WWWW";
        let b = b"PPPP";
        assert_eq!(score(Kernel::ClampedSum, a, b), 0);
        assert_eq!(score(Kernel::PaperLiteral, a, b), 0);
    }

    #[test]
    fn max_is_over_prefixes_not_final() {
        // Strong start, weak finish: max must remember the peak.
        let a = b"MKVLAWPPPP";
        let b = b"MKVLAWGGGG"; // P/G = -2 each
        let peak = 33;
        assert_eq!(score(Kernel::ClampedSum, a, b), peak);
    }

    #[test]
    fn xdrop_extends_over_full_identity() {
        let m = blosum62();
        let s = encode_protein(b"MKVLAWRNDCQE");
        let hit = xdrop_ungapped(m, &s, &s, 4, 4, 3, 10);
        assert_eq!(hit.start0, 0);
        assert_eq!(hit.start1, 0);
        assert_eq!(hit.len, s.len());
        let self_score: i32 = s.iter().map(|&c| m.score(c, c)).sum();
        assert_eq!(hit.score, self_score);
        assert_eq!(hit.diagonal(), 0);
    }

    #[test]
    fn xdrop_stops_at_noise() {
        let m = blosum62();
        // Identical core flanked by strong mismatches.
        let a = encode_protein(b"PPPPPPMKVLAWPPPPPP");
        let b = encode_protein(b"WWWWWWMKVLAWWWWWWW");
        let hit = xdrop_ungapped(m, &a, &b, 6, 6, 4, 7);
        assert_eq!(hit.start0, 6);
        assert_eq!(hit.len, 6);
        assert_eq!(hit.score, 33);
    }

    #[test]
    fn xdrop_respects_sequence_bounds() {
        let m = blosum62();
        let a = encode_protein(b"MKV");
        let b = encode_protein(b"AAMKV");
        let hit = xdrop_ungapped(m, &a, &b, 0, 2, 3, 100);
        assert_eq!(hit.start0, 0);
        assert_eq!(hit.start1, 2);
        assert_eq!(hit.len, 3);
        assert_eq!(hit.diagonal(), 2);
    }

    #[test]
    fn xdrop_finds_peak_not_endpoint() {
        let m = blosum62();
        // After the core, one +ve then many -ves: the peak is the core.
        let a = encode_protein(b"MKVLAWA");
        let b = encode_protein(b"MKVLAWV"); // A/V = 0
        let hit = xdrop_ungapped(m, &a, &b, 0, 0, 6, 50);
        assert_eq!(hit.score, 33);
        assert_eq!(hit.len, 6); // A/V adds 0, not > best, len stays 6
    }
}
