//! Batched ungapped-extension engine — inter-pair vectorization of the
//! paper's step-2 kernel.
//!
//! The PSC operator wins on the RASC-100 by keeping one `IL0` window
//! resident per processing element and streaming every `IL1` window past
//! it. The software analogue of that data flow is implemented here:
//!
//! * a **score profile** ([`ScoreProfile`]) turns one `IL0` window into a
//!   per-position table of substitution scores indexed by residue code,
//!   built once and amortized over the whole of `IL1` (the table plays
//!   the role of the PE's substitution ROM preloaded with one row);
//! * an **interleaved layout** ([`InterleavedWindows`]) transposes the
//!   `IL1` windows so that position `p` of [`LANES`] consecutive windows
//!   is one contiguous 16-byte load — the byte stream an input
//!   controller would broadcast across the PE array;
//! * [`score_lanes`] then scores [`LANES`] window pairs per recurrence
//!   step in 16-bit SIMD lanes (AVX2 on x86-64, an autovectorizable
//!   lane-array fallback elsewhere), and [`profile_score`] is the
//!   profile-based scalar kernel used when the batch is too small or the
//!   accumulator could overflow 16 bits.
//!
//! Every path returns max scores **bit-identical** to
//! [`ungapped_score`](crate::ungapped_score) for both [`Kernel`]
//! variants; the property tests in `tests/batch_prop.rs` pin that down.

use psc_score::SubstitutionMatrix;
use psc_seqio::alphabet::AA_ALPHABET_LEN;

use crate::ungapped::Kernel;

/// Window pairs scored per 16-lane SIMD recurrence step.
pub const LANES: usize = 16;

/// Window pairs scored per wide (32-lane) recurrence step. The
/// interleaved layout pads its stride to this, so every narrower path
/// divides it evenly.
pub const WIDE_LANES: usize = 32;

/// Bytes per profile position: two 16-byte shuffle tables (codes 0–15
/// and 16–23; the upper 8 slots of the second table stay zero).
const PROFILE_STRIDE: usize = 2 * LANES;

/// A concrete step-2 kernel implementation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelBackend {
    /// Per-pair scalar `ungapped_score` (the original baseline).
    Scalar,
    /// Score-profile scalar kernel: one table build per `IL0` window,
    /// then a single indexed load per residue pair.
    Profile,
    /// Batched SIMD kernel: score profiles plus 16 i16 lanes over the
    /// interleaved `IL1` stream.
    Simd,
    /// Wide batched kernel: 32 i16 lanes per step (AVX-512BW on hosts
    /// that have it, an autovectorizable 32-lane array elsewhere).
    Wide,
    /// Split accumulator kernel for short windows: 32 saturating i8
    /// lanes per 256-bit op, exact while the whole window fits the i8
    /// guard (see [`split_window_fits`]).
    Split,
}

impl KernelBackend {
    /// Short stable name, for stats and profile output.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Profile => "profile",
            KernelBackend::Simd => "simd",
            KernelBackend::Wide => "wide",
            KernelBackend::Split => "split",
        }
    }

    /// Window pairs consumed per recurrence step — the denominator of
    /// the lane-occupancy accounting.
    pub fn lane_width(self) -> usize {
        match self {
            KernelBackend::Scalar | KernelBackend::Profile => 1,
            KernelBackend::Simd => LANES,
            KernelBackend::Wide | KernelBackend::Split => WIDE_LANES,
        }
    }
}

/// User-facing kernel selection, resolved once per run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum KernelChoice {
    /// Pick the fastest backend this host and window support.
    #[default]
    Auto,
    Scalar,
    Profile,
    Simd,
    Wide,
    Split,
}

impl KernelChoice {
    /// Parse a CLI-style name.
    pub fn parse(s: &str) -> Option<KernelChoice> {
        Some(match s {
            "auto" => KernelChoice::Auto,
            "scalar" => KernelChoice::Scalar,
            "profile" => KernelChoice::Profile,
            "simd" => KernelChoice::Simd,
            "wide" => KernelChoice::Wide,
            "split" => KernelChoice::Split,
            _ => return None,
        })
    }

    /// Resolve to a concrete backend for windows of `window_len` scored
    /// under `matrix`.
    ///
    /// The 16- and 32-lane paths accumulate in 16-bit lanes, so they
    /// are only selected (or honoured when requested) while
    /// `window_len * max_score` fits an `i16`; the split kernel's i8
    /// lanes demand the tighter [`split_window_fits`] bound. `Auto`
    /// prefers the widest path the host's instruction set and the
    /// window's overflow guards allow.
    pub fn resolve(self, window_len: usize, matrix: &SubstitutionMatrix) -> KernelBackend {
        self.resolve_with_reason(window_len, matrix).0
    }

    /// [`resolve`](KernelChoice::resolve), plus the reason when the
    /// requested backend could not be honoured (`None` means the choice
    /// resolved without a downgrade; `Auto` never downgrades — whatever
    /// it picks is the policy).
    pub fn resolve_with_reason(
        self,
        window_len: usize,
        matrix: &SubstitutionMatrix,
    ) -> (KernelBackend, Option<&'static str>) {
        let fits_i16 = simd_window_fits(window_len, matrix);
        let fits_i8 = split_window_fits(window_len, matrix);
        match self {
            KernelChoice::Scalar => (KernelBackend::Scalar, None),
            KernelChoice::Profile => (KernelBackend::Profile, None),
            KernelChoice::Simd if fits_i16 => (KernelBackend::Simd, None),
            KernelChoice::Simd => (
                KernelBackend::Profile,
                Some("window overflows the i16 lane accumulator"),
            ),
            KernelChoice::Wide if fits_i16 => (KernelBackend::Wide, None),
            KernelChoice::Wide => (
                KernelBackend::Profile,
                Some("window overflows the i16 lane accumulator"),
            ),
            KernelChoice::Split if fits_i8 => (KernelBackend::Split, None),
            KernelChoice::Split if fits_i16 => (
                KernelBackend::Simd,
                Some("window overflows the saturating i8 accumulator"),
            ),
            KernelChoice::Split => (
                KernelBackend::Profile,
                Some("window overflows both the i8 and i16 lane accumulators"),
            ),
            KernelChoice::Auto if fits_i16 && wide_available() => (KernelBackend::Wide, None),
            KernelChoice::Auto if fits_i16 && simd_available() => (KernelBackend::Simd, None),
            KernelChoice::Auto => (KernelBackend::Profile, None),
        }
    }
}

/// True when the i16 accumulator cannot overflow for this window/matrix
/// combination (scores are clamped at 0 below, so only the positive side
/// can grow).
fn simd_window_fits(window_len: usize, matrix: &SubstitutionMatrix) -> bool {
    let max = matrix.max_score().max(0) as i64;
    (window_len as i64) * max <= i16::MAX as i64
}

/// True when the split kernel's saturating i8 lanes are exact for this
/// window/matrix combination.
///
/// The running clamped score after `k` steps is at most `k * max_score`,
/// so while `window_len * max_score <= i8::MAX` no lane ever saturates
/// upward; downward saturation at -128 is erased by the `max(0)` clamp.
/// That makes the i8 path bit-identical to the scalar kernels — it is a
/// short-window variant, not an approximation.
pub fn split_window_fits(window_len: usize, matrix: &SubstitutionMatrix) -> bool {
    let max = matrix.max_score().max(0) as i64;
    (window_len as i64) * max <= i8::MAX as i64
}

/// Does this host have the SIMD instructions the 16-lane fast path
/// wants?
///
/// Without them [`score_lanes`] still works (the lane-array fallback is
/// plain safe Rust the compiler autovectorizes), so this only steers
/// `Auto` away from a path with no hardware win.
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Does this host have the AVX-512BW instructions the 32-lane wide path
/// wants? Same contract as [`simd_available`]: the wide fallback is
/// portable, this only informs `Auto` and the recorded profile.
pub fn wide_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx512bw")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Per-position substitution-score table for one `IL0` window.
///
/// Row `p` holds `matrix.score(window[p], c)` for every residue code
/// `c`, laid out as two 16-byte halves so the SIMD path can use them as
/// byte-shuffle tables directly. Building a profile costs one row copy
/// per position and is amortized over every `IL1` window scored against
/// it — the software analogue of loading a PE's substitution ROM once
/// and streaming the bank past it.
#[derive(Clone, Debug, Default)]
pub struct ScoreProfile {
    data: Vec<i8>,
    len: usize,
}

impl ScoreProfile {
    pub fn new() -> ScoreProfile {
        ScoreProfile::default()
    }

    /// (Re)build the profile for `window`, reusing the allocation.
    pub fn build(&mut self, matrix: &SubstitutionMatrix, window: &[u8]) {
        self.len = window.len();
        self.data.clear();
        self.data.resize(window.len() * PROFILE_STRIDE, 0);
        let flat = matrix.flat();
        for (p, &a) in window.iter().enumerate() {
            debug_assert!((a as usize) < AA_ALPHABET_LEN);
            let row = &mut self.data[p * PROFILE_STRIDE..][..AA_ALPHABET_LEN];
            row.copy_from_slice(&flat[a as usize * AA_ALPHABET_LEN..][..AA_ALPHABET_LEN]);
        }
    }

    /// Window length this profile was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Substitution score at window position `p` against residue `c`.
    #[cfg(test)]
    fn score(&self, p: usize, c: u8) -> i32 {
        self.data[p * PROFILE_STRIDE + c as usize] as i32
    }
}

/// Profile-based scalar kernel: bit-identical to
/// [`ungapped_score`](crate::ungapped_score) on the window the profile
/// was built from, one indexed byte load per residue pair.
///
/// The row walk keeps the whole lookup inside one 32-byte profile row
/// (`chunks_exact` + a masked index, so the compiler drops every bounds
/// check) and carries no dependence on the `IL0` residues — the two
/// things that make it faster than the `matrix.score(a, b)` baseline.
#[inline]
pub fn profile_score(kernel: Kernel, profile: &ScoreProfile, w1: &[u8]) -> i32 {
    debug_assert_eq!(profile.len(), w1.len());
    let mut score = 0i32;
    let mut max_score = 0i32;
    let rows = profile.data.chunks_exact(PROFILE_STRIDE);
    match kernel {
        Kernel::ClampedSum => {
            for (row, &b) in rows.zip(w1) {
                // The mask keeps the index inside the 32-byte row
                // (residue codes are < 24 by construction).
                let sub = row[(b & 0x1f) as usize] as i32;
                score = (score + sub).max(0);
                max_score = max_score.max(score);
            }
        }
        Kernel::PaperLiteral => {
            for (row, &b) in rows.zip(w1) {
                let sub = row[(b & 0x1f) as usize] as i32;
                score = score.max(score + sub);
                max_score = max_score.max(score);
            }
        }
    }
    max_score
}

/// Profile kernel over two windows at once.
///
/// The two recurrences are independent, so the CPU overlaps their
/// latency chains — this is what makes the profile *backend* faster
/// than the per-pair baseline even without SIMD, and it is the shape
/// the batch scorer feeds when it falls back to scalar code.
#[inline]
pub fn profile_score2(
    kernel: Kernel,
    profile: &ScoreProfile,
    w1a: &[u8],
    w1b: &[u8],
) -> (i32, i32) {
    debug_assert_eq!(profile.len(), w1a.len());
    debug_assert_eq!(profile.len(), w1b.len());
    let mut sa = 0i32;
    let mut ma = 0i32;
    let mut sb = 0i32;
    let mut mb = 0i32;
    let rows = profile.data.chunks_exact(PROFILE_STRIDE);
    match kernel {
        Kernel::ClampedSum => {
            for ((row, &a), &b) in rows.zip(w1a).zip(w1b) {
                sa = (sa + row[(a & 0x1f) as usize] as i32).max(0);
                sb = (sb + row[(b & 0x1f) as usize] as i32).max(0);
                ma = ma.max(sa);
                mb = mb.max(sb);
            }
        }
        Kernel::PaperLiteral => {
            for ((row, &a), &b) in rows.zip(w1a).zip(w1b) {
                sa = sa.max(sa + row[(a & 0x1f) as usize] as i32);
                sb = sb.max(sb + row[(b & 0x1f) as usize] as i32);
                ma = ma.max(sa);
                mb = mb.max(sb);
            }
        }
    }
    (ma, mb)
}

/// `IL1` windows transposed into position-major (interleaved) order.
///
/// `data[p * stride + j]` is residue `p` of window `j`; the lane stride
/// is padded up to a multiple of [`WIDE_LANES`] (pad windows read as
/// residue 0 and their scores are simply never consumed), so both the
/// 16- and 32-lane kernels can load full blocks. This is the transpose
/// an input controller performs when it broadcasts the `IL1` byte stream
/// across the PE array one residue per cycle.
#[derive(Clone, Debug, Default)]
pub struct InterleavedWindows {
    data: Vec<u8>,
    len: usize,
    count: usize,
    stride: usize,
}

impl InterleavedWindows {
    pub fn new() -> InterleavedWindows {
        InterleavedWindows::default()
    }

    /// (Re)fill from `count` row-major windows of length `len` packed
    /// back to back in `windows` (the `gather_windows` layout).
    pub fn build(&mut self, windows: &[u8], len: usize) {
        let count = windows.len().checked_div(len).unwrap_or(0);
        debug_assert_eq!(count * len, windows.len());
        self.len = len;
        self.count = count;
        self.stride = count.div_ceil(WIDE_LANES) * WIDE_LANES;
        self.data.clear();
        self.data.resize(len * self.stride, 0);
        if len == 0 {
            return;
        }
        for (j, w) in windows.chunks_exact(len).enumerate() {
            for (p, &c) in w.iter().enumerate() {
                self.data[p * self.stride + j] = c;
            }
        }
    }

    /// Number of real (non-pad) windows.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Window length.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Residues of lane block `j0..j0+LANES` at window position `p`.
    /// Lane `j` holds window `j0 + j`'s residue (0 for pad lanes).
    #[inline(always)]
    pub fn lane_codes(&self, p: usize, j0: usize) -> &[u8] {
        &self.data[p * self.stride + j0..][..LANES]
    }

    /// Residues of wide lane block `j0..j0+WIDE_LANES` at position `p`.
    #[inline(always)]
    pub fn wide_lane_codes(&self, p: usize, j0: usize) -> &[u8] {
        &self.data[p * self.stride + j0..][..WIDE_LANES]
    }
}

/// Score one lane block: windows `j0 .. j0+LANES` of `il1` against
/// `profile`, writing [`LANES`] max scores into `out`.
///
/// `j0` must be a multiple of [`LANES`] and within the padded stride;
/// scores of pad lanes are meaningless and must be ignored by the
/// caller. Results are bit-identical to the scalar kernels as long as
/// `profile.len() * matrix.max_score()` fits an `i16` (see
/// [`KernelChoice::resolve`]).
#[inline]
pub fn score_lanes(
    kernel: Kernel,
    profile: &ScoreProfile,
    il1: &InterleavedWindows,
    j0: usize,
    out: &mut [i32; LANES],
) {
    debug_assert_eq!(profile.len(), il1.len());
    debug_assert_eq!(j0 % LANES, 0);
    debug_assert!(j0 + LANES <= il1.stride);
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 confirmed present at runtime.
            unsafe { x86::score_lanes_avx2(kernel, profile, il1, j0, out) };
            return;
        }
    }
    score_lanes_fallback(kernel, profile, il1, j0, out);
}

/// Portable lane-array kernel: the same 16-lane recurrence written as
/// plain array arithmetic for the compiler to autovectorize. Used when
/// the host lacks AVX2 but a SIMD backend was requested explicitly.
fn score_lanes_fallback(
    kernel: Kernel,
    profile: &ScoreProfile,
    il1: &InterleavedWindows,
    j0: usize,
    out: &mut [i32; LANES],
) {
    let mut score = [0i16; LANES];
    let mut max_score = [0i16; LANES];
    for p in 0..profile.len() {
        let codes = il1.lane_codes(p, j0);
        let row = &profile.data[p * PROFILE_STRIDE..][..PROFILE_STRIDE];
        match kernel {
            Kernel::ClampedSum => {
                for l in 0..LANES {
                    let s = (score[l] + row[codes[l] as usize] as i16).max(0);
                    score[l] = s;
                    max_score[l] = max_score[l].max(s);
                }
            }
            Kernel::PaperLiteral => {
                // `score = max(score, score + sub)` only ever adds the
                // positive part, so the running score is the maximum.
                for l in 0..LANES {
                    score[l] += (row[codes[l] as usize] as i16).max(0);
                }
            }
        }
    }
    let final_v = match kernel {
        Kernel::ClampedSum => max_score,
        Kernel::PaperLiteral => score,
    };
    for l in 0..LANES {
        out[l] = final_v[l] as i32;
    }
}

/// Score one wide lane block: windows `j0 .. j0+WIDE_LANES` of `il1`
/// against `profile`, writing [`WIDE_LANES`] max scores into `out`.
///
/// Same contract as [`score_lanes`] with `j0` a multiple of
/// [`WIDE_LANES`]: pad-lane scores are meaningless, results are
/// bit-identical to the scalar kernels while the window passes the i16
/// guard of [`KernelChoice::resolve`].
#[inline]
pub fn score_lanes_wide(
    kernel: Kernel,
    profile: &ScoreProfile,
    il1: &InterleavedWindows,
    j0: usize,
    out: &mut [i32; WIDE_LANES],
) {
    debug_assert_eq!(profile.len(), il1.len());
    debug_assert_eq!(j0 % WIDE_LANES, 0);
    debug_assert!(j0 + WIDE_LANES <= il1.stride);
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512bw") {
            // SAFETY: AVX-512F/BW confirmed present at runtime.
            unsafe { x86::score_lanes_avx512(kernel, profile, il1, j0, out) };
            return;
        }
    }
    score_lanes_wide_fallback(kernel, profile, il1, j0, out);
}

/// Portable 32-lane i16 kernel for hosts without AVX-512BW.
fn score_lanes_wide_fallback(
    kernel: Kernel,
    profile: &ScoreProfile,
    il1: &InterleavedWindows,
    j0: usize,
    out: &mut [i32; WIDE_LANES],
) {
    let mut score = [0i16; WIDE_LANES];
    let mut max_score = [0i16; WIDE_LANES];
    for p in 0..profile.len() {
        let codes = il1.wide_lane_codes(p, j0);
        let row = &profile.data[p * PROFILE_STRIDE..][..PROFILE_STRIDE];
        match kernel {
            Kernel::ClampedSum => {
                for l in 0..WIDE_LANES {
                    let s = (score[l] + row[codes[l] as usize] as i16).max(0);
                    score[l] = s;
                    max_score[l] = max_score[l].max(s);
                }
            }
            Kernel::PaperLiteral => {
                for l in 0..WIDE_LANES {
                    score[l] += (row[codes[l] as usize] as i16).max(0);
                }
            }
        }
    }
    let final_v = match kernel {
        Kernel::ClampedSum => max_score,
        Kernel::PaperLiteral => score,
    };
    for l in 0..WIDE_LANES {
        out[l] = final_v[l] as i32;
    }
}

/// Score one wide lane block with the split (saturating i8) kernel:
/// 32 window pairs per 256-bit op, twice the lanes of the i16 paths
/// per vector register.
///
/// Only exact while [`split_window_fits`] holds for the profile's
/// window — [`KernelChoice::resolve`] enforces that guard; callers
/// going through [`score_batch`] inherit it.
#[inline]
pub fn score_lanes_split(
    kernel: Kernel,
    profile: &ScoreProfile,
    il1: &InterleavedWindows,
    j0: usize,
    out: &mut [i32; WIDE_LANES],
) {
    debug_assert_eq!(profile.len(), il1.len());
    debug_assert_eq!(j0 % WIDE_LANES, 0);
    debug_assert!(j0 + WIDE_LANES <= il1.stride);
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 confirmed present at runtime.
            unsafe { x86::score_lanes_split_avx2(kernel, profile, il1, j0, out) };
            return;
        }
    }
    score_lanes_split_fallback(kernel, profile, il1, j0, out);
}

/// Portable saturating-i8 lane kernel, bit-identical to the AVX2 split
/// path (both saturate at ±127/-128 the same way).
fn score_lanes_split_fallback(
    kernel: Kernel,
    profile: &ScoreProfile,
    il1: &InterleavedWindows,
    j0: usize,
    out: &mut [i32; WIDE_LANES],
) {
    let mut score = [0i8; WIDE_LANES];
    let mut max_score = [0i8; WIDE_LANES];
    for p in 0..profile.len() {
        let codes = il1.wide_lane_codes(p, j0);
        let row = &profile.data[p * PROFILE_STRIDE..][..PROFILE_STRIDE];
        match kernel {
            Kernel::ClampedSum => {
                for l in 0..WIDE_LANES {
                    let s = score[l].saturating_add(row[codes[l] as usize]).max(0);
                    score[l] = s;
                    max_score[l] = max_score[l].max(s);
                }
            }
            Kernel::PaperLiteral => {
                for l in 0..WIDE_LANES {
                    score[l] = score[l].saturating_add(row[codes[l] as usize].max(0));
                }
            }
        }
    }
    let final_v = match kernel {
        Kernel::ClampedSum => max_score,
        Kernel::PaperLiteral => score,
    };
    for l in 0..WIDE_LANES {
        out[l] = final_v[l] as i32;
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::*;
    use core::arch::x86_64::*;

    /// AVX2 16-lane kernel. One recurrence step is: a 16-byte load of
    /// residue codes, a two-table byte shuffle against the profile row
    /// (codes 0–15 from the low table, 16–23 from the high table), a
    /// sign-extend to i16, then the add/max gates of the PE datapath —
    /// for 16 window pairs at once.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn score_lanes_avx2(
        kernel: Kernel,
        profile: &ScoreProfile,
        il1: &InterleavedWindows,
        j0: usize,
        out: &mut [i32; LANES],
    ) {
        let l = profile.len();
        let stride = il1.stride;
        let codes_base = il1.data.as_ptr().add(j0);
        let prof_base = profile.data.as_ptr();
        let zero = _mm256_setzero_si256();
        let fifteen = _mm_set1_epi8(15);
        let mut score = zero;
        let mut max_score = zero;
        for p in 0..l {
            let codes = _mm_loadu_si128(codes_base.add(p * stride) as *const __m128i);
            let row = prof_base.add(p * PROFILE_STRIDE);
            let lo = _mm_loadu_si128(row as *const __m128i);
            let hi = _mm_loadu_si128(row.add(LANES) as *const __m128i);
            // pshufb indexes by the low 4 bits, which for codes 16..24
            // is exactly `code - 16` — select the matching table.
            let from_hi = _mm_cmpgt_epi8(codes, fifteen);
            let sub8 = _mm_blendv_epi8(
                _mm_shuffle_epi8(lo, codes),
                _mm_shuffle_epi8(hi, codes),
                from_hi,
            );
            let sub = _mm256_cvtepi8_epi16(sub8);
            match kernel {
                Kernel::ClampedSum => {
                    score = _mm256_max_epi16(_mm256_add_epi16(score, sub), zero);
                    max_score = _mm256_max_epi16(max_score, score);
                }
                Kernel::PaperLiteral => {
                    score = _mm256_add_epi16(score, _mm256_max_epi16(sub, zero));
                }
            }
        }
        let final_v = match kernel {
            Kernel::ClampedSum => max_score,
            Kernel::PaperLiteral => score,
        };
        let lo32 = _mm256_cvtepi16_epi32(_mm256_castsi256_si128(final_v));
        let hi32 = _mm256_cvtepi16_epi32(_mm256_extracti128_si256(final_v, 1));
        _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, lo32);
        _mm256_storeu_si256(out.as_mut_ptr().add(8) as *mut __m256i, hi32);
    }

    /// AVX-512BW 32-lane kernel. The recurrence step widens the AVX2
    /// one: a 32-byte load of residue codes, the same two-table byte
    /// shuffle done per 128-bit half of a 256-bit register (the shuffle
    /// tables broadcast to both halves), a sign-extend of all 32 i8
    /// substitution scores into one `__m512i` of i16 lanes, then the
    /// add/max gates — 32 window pairs per step.
    ///
    /// # Safety
    /// Caller must ensure AVX-512F and AVX-512BW are available.
    #[target_feature(enable = "avx512f,avx512bw")]
    pub(super) unsafe fn score_lanes_avx512(
        kernel: Kernel,
        profile: &ScoreProfile,
        il1: &InterleavedWindows,
        j0: usize,
        out: &mut [i32; WIDE_LANES],
    ) {
        let l = profile.len();
        let stride = il1.stride;
        let codes_base = il1.data.as_ptr().add(j0);
        let prof_base = profile.data.as_ptr();
        let zero = _mm512_setzero_si512();
        let fifteen = _mm256_set1_epi8(15);
        let mut score = zero;
        let mut max_score = zero;
        for p in 0..l {
            let codes = _mm256_loadu_si256(codes_base.add(p * stride) as *const __m256i);
            let row = prof_base.add(p * PROFILE_STRIDE);
            // Broadcast each 16-byte table to both 128-bit halves so
            // `_mm256_shuffle_epi8` (which shuffles per half) sees the
            // full table against either half of the code vector.
            let lo = _mm256_broadcastsi128_si256(_mm_loadu_si128(row as *const __m128i));
            let hi = _mm256_broadcastsi128_si256(_mm_loadu_si128(row.add(LANES) as *const __m128i));
            let from_hi = _mm256_cmpgt_epi8(codes, fifteen);
            let sub8 = _mm256_blendv_epi8(
                _mm256_shuffle_epi8(lo, codes),
                _mm256_shuffle_epi8(hi, codes),
                from_hi,
            );
            let sub = _mm512_cvtepi8_epi16(sub8);
            match kernel {
                Kernel::ClampedSum => {
                    score = _mm512_max_epi16(_mm512_add_epi16(score, sub), zero);
                    max_score = _mm512_max_epi16(max_score, score);
                }
                Kernel::PaperLiteral => {
                    score = _mm512_add_epi16(score, _mm512_max_epi16(sub, zero));
                }
            }
        }
        let final_v = match kernel {
            Kernel::ClampedSum => max_score,
            Kernel::PaperLiteral => score,
        };
        let lo32 = _mm512_cvtepi16_epi32(_mm512_castsi512_si256(final_v));
        let hi32 = _mm512_cvtepi16_epi32(_mm512_extracti64x4_epi64(final_v, 1));
        _mm512_storeu_si512(out.as_mut_ptr() as *mut _, lo32);
        _mm512_storeu_si512(out.as_mut_ptr().add(16) as *mut _, hi32);
    }

    /// AVX2 split-accumulator kernel: the whole recurrence stays in
    /// saturating i8 lanes, so one 256-bit register carries 32 window
    /// pairs — double the lanes of the i16 paths per op. Exact only
    /// under [`split_window_fits`] (no upward saturation possible;
    /// downward saturation is erased by the `max(0)` clamp).
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn score_lanes_split_avx2(
        kernel: Kernel,
        profile: &ScoreProfile,
        il1: &InterleavedWindows,
        j0: usize,
        out: &mut [i32; WIDE_LANES],
    ) {
        let l = profile.len();
        let stride = il1.stride;
        let codes_base = il1.data.as_ptr().add(j0);
        let prof_base = profile.data.as_ptr();
        let zero = _mm256_setzero_si256();
        let fifteen = _mm256_set1_epi8(15);
        let mut score = zero;
        let mut max_score = zero;
        for p in 0..l {
            let codes = _mm256_loadu_si256(codes_base.add(p * stride) as *const __m256i);
            let row = prof_base.add(p * PROFILE_STRIDE);
            let lo = _mm256_broadcastsi128_si256(_mm_loadu_si128(row as *const __m128i));
            let hi = _mm256_broadcastsi128_si256(_mm_loadu_si128(row.add(LANES) as *const __m128i));
            let from_hi = _mm256_cmpgt_epi8(codes, fifteen);
            let sub8 = _mm256_blendv_epi8(
                _mm256_shuffle_epi8(lo, codes),
                _mm256_shuffle_epi8(hi, codes),
                from_hi,
            );
            match kernel {
                Kernel::ClampedSum => {
                    score = _mm256_max_epi8(_mm256_adds_epi8(score, sub8), zero);
                    max_score = _mm256_max_epi8(max_score, score);
                }
                Kernel::PaperLiteral => {
                    score = _mm256_adds_epi8(score, _mm256_max_epi8(sub8, zero));
                }
            }
        }
        let final_v = match kernel {
            Kernel::ClampedSum => max_score,
            Kernel::PaperLiteral => score,
        };
        let q0 = _mm256_castsi256_si128(final_v);
        let q1 = _mm256_extracti128_si256(final_v, 1);
        for (i, q) in [q0, q1].into_iter().enumerate() {
            let a = _mm256_cvtepi8_epi32(q);
            let b = _mm256_cvtepi8_epi32(_mm_srli_si128(q, 8));
            _mm256_storeu_si256(out.as_mut_ptr().add(16 * i) as *mut __m256i, a);
            _mm256_storeu_si256(out.as_mut_ptr().add(16 * i + 8) as *mut __m256i, b);
        }
    }
}

/// Score every window of `il1` against `profile` under `backend`,
/// appending one max score per window to `out` in window order.
///
/// This is the convenience entry point (tests, benches, small batches);
/// the tiled step-2 loop drives [`score_lanes`] directly.
#[allow(clippy::too_many_arguments)]
pub fn score_batch(
    backend: KernelBackend,
    kernel: Kernel,
    matrix: &SubstitutionMatrix,
    w0: &[u8],
    profile: &ScoreProfile,
    il1_rowmajor: &[u8],
    il1: &InterleavedWindows,
    out: &mut Vec<i32>,
) {
    match backend {
        KernelBackend::Scalar => {
            let l = w0.len();
            if l == 0 {
                out.extend(std::iter::repeat_n(0, il1.count()));
                return;
            }
            for w1 in il1_rowmajor.chunks_exact(l) {
                out.push(crate::ungapped_score(kernel, matrix, w0, w1));
            }
        }
        KernelBackend::Profile => {
            let l = profile.len();
            if l == 0 {
                out.extend(std::iter::repeat_n(0, il1.count()));
                return;
            }
            let mut pairs = il1_rowmajor.chunks_exact(2 * l);
            for two in &mut pairs {
                let (a, b) = profile_score2(kernel, profile, &two[..l], &two[l..]);
                out.push(a);
                out.push(b);
            }
            let rem = pairs.remainder();
            if !rem.is_empty() {
                out.push(profile_score(kernel, profile, rem));
            }
        }
        KernelBackend::Simd => {
            let mut lanes = [0i32; LANES];
            let mut j = 0;
            while j < il1.count() {
                score_lanes(kernel, profile, il1, j, &mut lanes);
                let take = LANES.min(il1.count() - j);
                out.extend_from_slice(&lanes[..take]);
                j += LANES;
            }
        }
        KernelBackend::Wide => {
            let mut lanes = [0i32; WIDE_LANES];
            let mut j = 0;
            while j < il1.count() {
                score_lanes_wide(kernel, profile, il1, j, &mut lanes);
                let take = WIDE_LANES.min(il1.count() - j);
                out.extend_from_slice(&lanes[..take]);
                j += WIDE_LANES;
            }
        }
        KernelBackend::Split => {
            let mut lanes = [0i32; WIDE_LANES];
            let mut j = 0;
            while j < il1.count() {
                score_lanes_split(kernel, profile, il1, j, &mut lanes);
                let take = WIDE_LANES.min(il1.count() - j);
                out.extend_from_slice(&lanes[..take]);
                j += WIDE_LANES;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ungapped_score;
    use psc_score::blosum62;
    use psc_score::matrix::match_mismatch;

    fn windows(seed: u64, count: usize, len: usize) -> Vec<u8> {
        // Simple deterministic LCG residue stream over the full alphabet.
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        (0..count * len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) % AA_ALPHABET_LEN as u64) as u8
            })
            .collect()
    }

    fn check_all_backends(w0: &[u8], il1_rows: &[u8], len: usize) {
        let m = blosum62();
        let mut profile = ScoreProfile::new();
        profile.build(m, w0);
        let mut il1 = InterleavedWindows::new();
        il1.build(il1_rows, len);
        for kernel in [Kernel::ClampedSum, Kernel::PaperLiteral] {
            let expect: Vec<i32> = if len == 0 {
                vec![0; il1.count()]
            } else {
                il1_rows
                    .chunks_exact(len)
                    .map(|w1| ungapped_score(kernel, m, w0, w1))
                    .collect()
            };
            for backend in [
                KernelBackend::Scalar,
                KernelBackend::Profile,
                KernelBackend::Simd,
                KernelBackend::Wide,
            ] {
                let mut got = Vec::new();
                score_batch(backend, kernel, m, w0, &profile, il1_rows, &il1, &mut got);
                assert_eq!(got, expect, "{backend:?} {kernel:?} len={len}");
            }
        }
    }

    #[test]
    fn backends_agree_across_shapes() {
        for (seed, count, len) in [
            (1, 1, 1),
            (2, 16, 60),
            (3, 17, 60), // one lane block + 1 tail window
            (4, 5, 7),   // sub-lane batch, odd length
            (5, 48, 33), // several blocks, non-lane-multiple length
            (6, 3, 0),   // empty windows
            (7, 0, 12),  // empty IL1
            (8, 33, 21), // one wide block + 1 tail window
            (9, 95, 14), // several wide blocks, ragged tail
        ] {
            let w0 = windows(seed, 1, len);
            let il1 = windows(seed ^ 0xff, count, len);
            check_all_backends(&w0, &il1, len);
        }
    }

    #[test]
    fn split_backend_agrees_under_its_guard() {
        // blosum62's max score is 11, so windows up to 11 residues pass
        // the i8 guard; a ±3 matrix stretches the length to 42.
        let cases: [(&SubstitutionMatrix, u64, usize, usize); 4] = [
            (blosum62(), 41, 70, 11),
            (blosum62(), 42, 7, 5),
            (&match_mismatch("PM3", 3, -3), 43, 65, 42),
            (&match_mismatch("PM2", 2, -2), 44, 33, 63),
        ];
        for (m, seed, count, len) in cases {
            assert!(split_window_fits(len, m), "case must satisfy the guard");
            let w0 = windows(seed, 1, len);
            let rows = windows(seed ^ 0xff, count, len);
            let mut profile = ScoreProfile::new();
            profile.build(m, &w0);
            let mut il1 = InterleavedWindows::new();
            il1.build(&rows, len);
            for kernel in [Kernel::ClampedSum, Kernel::PaperLiteral] {
                let expect: Vec<i32> = rows
                    .chunks_exact(len)
                    .map(|w1| ungapped_score(kernel, m, &w0, w1))
                    .collect();
                let mut got = Vec::new();
                score_batch(
                    KernelBackend::Split,
                    kernel,
                    m,
                    &w0,
                    &profile,
                    &rows,
                    &il1,
                    &mut got,
                );
                assert_eq!(got, expect, "{kernel:?} len={len} matrix={}", m.name);
            }
        }
    }

    #[test]
    fn profile_matches_matrix_rows() {
        let m = blosum62();
        let w0 = windows(11, 1, 24);
        let mut p = ScoreProfile::new();
        p.build(m, &w0);
        for (pos, &a) in w0.iter().enumerate() {
            for c in 0..AA_ALPHABET_LEN as u8 {
                assert_eq!(p.score(pos, c), m.score(a, c));
            }
        }
    }

    #[test]
    fn interleave_round_trips() {
        let len = 9;
        let rows = windows(21, 20, len);
        let mut il = InterleavedWindows::new();
        il.build(&rows, len);
        assert_eq!(il.count(), 20);
        assert_eq!(il.stride, 32);
        for (j, w) in rows.chunks_exact(len).enumerate() {
            for (p, &c) in w.iter().enumerate() {
                assert_eq!(il.data[p * il.stride + j], c);
            }
        }
        // Pad lanes read as residue 0.
        assert_eq!(il.data[20], 0);
    }

    #[test]
    fn resolve_honours_overflow_guard() {
        let m = blosum62(); // max score 11
        assert_eq!(KernelChoice::Simd.resolve(60, m), KernelBackend::Simd);
        // 4000 * 11 > i16::MAX → profile fallback.
        assert_eq!(KernelChoice::Simd.resolve(4000, m), KernelBackend::Profile);
        assert_eq!(KernelChoice::Scalar.resolve(60, m), KernelBackend::Scalar);
        let auto = KernelChoice::Auto.resolve(60, m);
        assert_ne!(auto, KernelBackend::Scalar);
        // A pathological matrix can force the fallback at any length.
        let hot = match_mismatch("HOT", 127, -1);
        assert_eq!(
            KernelChoice::Simd.resolve(300, &hot),
            KernelBackend::Profile
        );
    }

    #[test]
    fn resolve_reports_downgrades_with_reasons() {
        let m = blosum62(); // max score 11
                            // Honoured requests carry no reason.
        assert_eq!(
            KernelChoice::Wide.resolve_with_reason(60, m),
            (KernelBackend::Wide, None)
        );
        assert_eq!(
            KernelChoice::Split.resolve_with_reason(11, m),
            (KernelBackend::Split, None)
        );
        // Wide shares the i16 guard with Simd.
        let (b, why) = KernelChoice::Wide.resolve_with_reason(4000, m);
        assert_eq!(b, KernelBackend::Profile);
        assert!(why.is_some_and(|r| r.contains("i16")));
        // Split degrades to Simd first, then Profile.
        let (b, why) = KernelChoice::Split.resolve_with_reason(60, m);
        assert_eq!(b, KernelBackend::Simd);
        assert!(why.is_some_and(|r| r.contains("i8")));
        let (b, why) = KernelChoice::Split.resolve_with_reason(4000, m);
        assert_eq!(b, KernelBackend::Profile);
        assert!(why.is_some_and(|r| r.contains("i16")));
        // Auto never reports a downgrade, and picks the widest lane
        // count the host supports when the window fits i16.
        let (auto, why) = KernelChoice::Auto.resolve_with_reason(60, m);
        assert_eq!(why, None);
        if wide_available() {
            assert_eq!(auto, KernelBackend::Wide);
        } else if simd_available() {
            assert_eq!(auto, KernelBackend::Simd);
        } else {
            assert_eq!(auto, KernelBackend::Profile);
        }
    }

    #[test]
    fn lane_widths_are_consistent() {
        assert_eq!(KernelBackend::Scalar.lane_width(), 1);
        assert_eq!(KernelBackend::Profile.lane_width(), 1);
        assert_eq!(KernelBackend::Simd.lane_width(), LANES);
        assert_eq!(KernelBackend::Wide.lane_width(), WIDE_LANES);
        assert_eq!(KernelBackend::Split.lane_width(), WIDE_LANES);
        assert_eq!(WIDE_LANES % LANES, 0);
    }

    #[test]
    fn extreme_matrix_scores_stay_exact() {
        // ±127 scores stress the i8 tables and i16 accumulation paths.
        let m = match_mismatch("MM", 127, -128);
        let len = 40;
        let w0 = windows(31, 1, len);
        let rows = windows(32, 33, len);
        let mut profile = ScoreProfile::new();
        profile.build(&m, &w0);
        let mut il1 = InterleavedWindows::new();
        il1.build(&rows, len);
        for kernel in [Kernel::ClampedSum, Kernel::PaperLiteral] {
            let expect: Vec<i32> = rows
                .chunks_exact(len)
                .map(|w1| ungapped_score(kernel, &m, &w0, w1))
                .collect();
            for backend in [
                KernelBackend::Profile,
                KernelBackend::Simd,
                KernelBackend::Wide,
            ] {
                let mut got = Vec::new();
                score_batch(backend, kernel, &m, &w0, &profile, &rows, &il1, &mut got);
                assert_eq!(got, expect, "{backend:?} {kernel:?}");
            }
        }
    }

    #[test]
    fn choice_parses() {
        assert_eq!(KernelChoice::parse("auto"), Some(KernelChoice::Auto));
        assert_eq!(KernelChoice::parse("scalar"), Some(KernelChoice::Scalar));
        assert_eq!(KernelChoice::parse("profile"), Some(KernelChoice::Profile));
        assert_eq!(KernelChoice::parse("simd"), Some(KernelChoice::Simd));
        assert_eq!(KernelChoice::parse("wide"), Some(KernelChoice::Wide));
        assert_eq!(KernelChoice::parse("split"), Some(KernelChoice::Split));
        assert_eq!(KernelChoice::parse("fpga"), None);
    }
}
