//! Gapped extension (the paper's step 3).
//!
//! Two cooperating algorithms, mirroring NCBI BLAST's structure:
//!
//! * [`gapped_extend`] — affine-gap **X-drop extension** from a seed
//!   anchor, one dynamic-programming sweep to the right of the anchor and
//!   one to the left (on the reversed prefixes). It finds the maximal
//!   scoring gapped segment pair and its coordinate ranges without
//!   storing a traceback, so memory stays linear in the band.
//! * [`banded_global`] — **banded global alignment with traceback** over
//!   the ranges the extension chose, used when the actual alignment
//!   (match/substitution/indel operations) must be reported.

use psc_score::SubstitutionMatrix;

/// Affine gap model and X-drop control.
///
/// A gap of length `L` costs `open + extend·L` (NCBI convention: the
/// default "11/1" means `open = 11`, `extend = 1`, so a 1-residue gap
/// costs 12).
#[derive(Clone, Copy, Debug)]
pub struct GapConfig {
    pub open: i32,
    pub extend: i32,
    /// Abandon a DP cell when it falls this far below the best score.
    pub xdrop: i32,
    /// Hard cap on extension length per direction (bounds memory/time on
    /// pathological inputs).
    pub max_extent: usize,
}

impl Default for GapConfig {
    fn default() -> Self {
        GapConfig {
            open: 11,
            extend: 1,
            xdrop: 38,
            max_extent: 2000,
        }
    }
}

/// Result of a gapped extension around an anchor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GappedHit {
    /// Total raw score.
    pub score: i32,
    /// Half-open ranges of the aligned segments.
    pub start0: usize,
    pub end0: usize,
    pub start1: usize,
    pub end1: usize,
}

const NEG_INF: i32 = i32::MIN / 4;

/// One direction of affine X-drop extension: align prefixes of `a`
/// against prefixes of `b`, anchored at `(0,0)`, returning
/// `(best_score, a_consumed, b_consumed)`.
fn xdrop_half(
    matrix: &SubstitutionMatrix,
    a: &[u8],
    b: &[u8],
    cfg: &GapConfig,
) -> (i32, usize, usize) {
    let n = a.len().min(cfg.max_extent);
    let m = b.len().min(cfg.max_extent);
    if n == 0 || m == 0 {
        return (0, 0, 0);
    }

    // Row-sweep DP over `a` (i), columns over `b` (j), with a live column
    // window [lo, hi) that the X-drop test narrows as rows advance.
    let width = m + 1;
    let mut h_prev = vec![NEG_INF; width];
    let mut e_prev = vec![NEG_INF; width]; // gap open in `a` (consumes b)
    let mut h_cur = vec![NEG_INF; width];
    let mut e_cur = vec![NEG_INF; width];
    let mut f_col = vec![NEG_INF; width]; // gap open in `b` (consumes a)

    let mut best = 0i32;
    let (mut best_i, mut best_j) = (0usize, 0usize);

    // Row 0: leading gaps in `b`.
    h_prev[0] = 0;
    let mut hi = 1usize;
    while hi <= m {
        let s = -(cfg.open + cfg.extend * hi as i32);
        if s < -cfg.xdrop {
            break;
        }
        h_prev[hi] = s;
        e_prev[hi] = s;
        hi += 1;
    }
    let mut lo = 0usize;

    for i in 1..=n {
        let ai = a[i - 1];
        let mut new_lo = usize::MAX;
        let mut new_hi = 0usize;
        // Column 0 of this row: leading gap in `a`.
        if lo == 0 {
            let s = -(cfg.open + cfg.extend * i as i32);
            if s >= best - cfg.xdrop {
                h_cur[0] = s;
                f_col[0] = s;
                new_lo = 0;
                new_hi = 1;
            } else {
                h_cur[0] = NEG_INF;
                f_col[0] = NEG_INF;
            }
        } else {
            h_cur[lo.saturating_sub(1)] = NEG_INF;
        }
        e_cur[lo] = NEG_INF;

        let row_hi = (hi + 1).min(m + 1);
        for j in lo.max(1)..row_hi {
            // F: gap in `b` (vertical move).
            let f = (h_prev[j] - cfg.open - cfg.extend).max(f_col[j] - cfg.extend);
            f_col[j] = f;
            // E: gap in `a` (horizontal move).
            let e = if j > 0 {
                (h_cur[j - 1] - cfg.open - cfg.extend).max(e_cur[j - 1] - cfg.extend)
            } else {
                NEG_INF
            };
            e_cur[j] = e;
            // H: diagonal.
            let diag = if h_prev[j - 1] > NEG_INF {
                h_prev[j - 1] + matrix.score(ai, b[j - 1])
            } else {
                NEG_INF
            };
            let h = diag.max(e).max(f);
            if h >= best - cfg.xdrop {
                h_cur[j] = h;
                if h > best {
                    best = h;
                    best_i = i;
                    best_j = j;
                }
                if new_lo == usize::MAX {
                    new_lo = j;
                }
                new_hi = j + 1;
            } else {
                h_cur[j] = NEG_INF;
            }
        }
        if new_lo == usize::MAX {
            // Every cell of the row died: extension is over.
            break;
        }
        lo = new_lo;
        hi = new_hi;
        std::mem::swap(&mut h_prev, &mut h_cur);
        std::mem::swap(&mut e_prev, &mut e_cur);
        // Reset the slice of the new current row we may touch.
        let reset_hi = (hi + 2).min(width);
        for v in &mut h_cur[lo.saturating_sub(1)..reset_hi] {
            *v = NEG_INF;
        }
        for v in &mut e_cur[lo.saturating_sub(1)..reset_hi] {
            *v = NEG_INF;
        }
        if lo >= hi {
            break;
        }
    }

    (best, best_i, best_j)
}

/// Affine-gap X-drop extension around an anchor pair.
///
/// `anchor0`/`anchor1` is a position pair known to be similar (in the
/// pipeline: the seed start). The right sweep aligns
/// `s0[anchor0..] × s1[anchor1..]`; the left sweep aligns the reversed
/// prefixes `s0[..anchor0] × s1[..anchor1]`. Scores add because the two
/// halves share only the anchor boundary.
pub fn gapped_extend(
    matrix: &SubstitutionMatrix,
    s0: &[u8],
    s1: &[u8],
    anchor0: usize,
    anchor1: usize,
    cfg: &GapConfig,
) -> GappedHit {
    assert!(anchor0 <= s0.len() && anchor1 <= s1.len());
    let (right, ri, rj) = xdrop_half(matrix, &s0[anchor0..], &s1[anchor1..], cfg);

    let left_a: Vec<u8> = s0[..anchor0].iter().rev().copied().collect();
    let left_b: Vec<u8> = s1[..anchor1].iter().rev().copied().collect();
    let (left, li, lj) = xdrop_half(matrix, &left_a, &left_b, cfg);

    GappedHit {
        score: left + right,
        start0: anchor0 - li,
        end0: anchor0 + ri,
        start1: anchor1 - lj,
        end1: anchor1 + rj,
    }
}

/// One alignment operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AlignOp {
    /// Aligned pair, identical residues.
    Match,
    /// Aligned pair, different residues.
    Sub,
    /// Residue of sequence 0 aligned to a gap.
    Del,
    /// Residue of sequence 1 aligned to a gap.
    Ins,
}

/// A scored alignment with its operation string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Alignment {
    pub score: i32,
    pub ops: Vec<AlignOp>,
}

impl Alignment {
    /// Number of identically aligned residues.
    pub fn identities(&self) -> usize {
        self.ops.iter().filter(|&&o| o == AlignOp::Match).count()
    }

    /// Number of aligned (non-gap) columns.
    pub fn aligned_columns(&self) -> usize {
        self.ops
            .iter()
            .filter(|&&o| matches!(o, AlignOp::Match | AlignOp::Sub))
            .count()
    }

    /// Render the classic three-line alignment view.
    pub fn render(&self, s0: &[u8], s1: &[u8]) -> String {
        let mut l0 = String::new();
        let mut mid = String::new();
        let mut l1 = String::new();
        let (mut i, mut j) = (0usize, 0usize);
        for &op in &self.ops {
            match op {
                AlignOp::Match | AlignOp::Sub => {
                    l0.push(psc_seqio::Aa(s0[i]).to_ascii() as char);
                    l1.push(psc_seqio::Aa(s1[j]).to_ascii() as char);
                    mid.push(if op == AlignOp::Match { '|' } else { ' ' });
                    i += 1;
                    j += 1;
                }
                AlignOp::Del => {
                    l0.push(psc_seqio::Aa(s0[i]).to_ascii() as char);
                    l1.push('-');
                    mid.push(' ');
                    i += 1;
                }
                AlignOp::Ins => {
                    l0.push('-');
                    l1.push(psc_seqio::Aa(s1[j]).to_ascii() as char);
                    mid.push(' ');
                    j += 1;
                }
            }
        }
        format!("{l0}\n{mid}\n{l1}")
    }
}

/// Banded global alignment with affine gaps and traceback.
///
/// Aligns all of `a` against all of `b`, restricting the DP to cells
/// within `band_pad` of the corner-to-corner diagonal corridor. Used to
/// recover the operations for ranges that [`gapped_extend`] selected —
/// with a `band_pad` comfortably above the indel count the optimal path
/// stays inside the band and the returned score equals the extension's.
pub fn banded_global(
    matrix: &SubstitutionMatrix,
    a: &[u8],
    b: &[u8],
    cfg: &GapConfig,
    band_pad: usize,
) -> Alignment {
    let n = a.len();
    let m = b.len();
    // Band: j - i ∈ [dlo, dhi].
    let dlo = (m as i64 - n as i64).min(0) - band_pad as i64;
    let dhi = (m as i64 - n as i64).max(0) + band_pad as i64;
    let width = (dhi - dlo + 1) as usize;

    // Traceback codes per (i, banded j): 2 bits for H's source, plus gap
    // run continuation bits for E and F.
    const TB_DIAG: u8 = 0;
    const TB_E: u8 = 1; // came from E (gap in a / Ins)
    const TB_F: u8 = 2; // came from F (gap in b / Del)
    const TB_E_EXT: u8 = 4; // E continued an existing gap
    const TB_F_EXT: u8 = 8; // F continued an existing gap
    let mut tb = vec![0u8; (n + 1) * width];

    let col = |i: usize, j: usize| -> Option<usize> {
        let d = j as i64 - i as i64;
        if d < dlo || d > dhi {
            None
        } else {
            Some((d - dlo) as usize)
        }
    };

    let mut h_prev = vec![NEG_INF; width + 1];
    let mut h_cur = vec![NEG_INF; width + 1];
    let mut e_prev = vec![NEG_INF; width + 1];
    let mut e_cur = vec![NEG_INF; width + 1];
    let mut f_prev = vec![NEG_INF; width + 1];
    let mut f_cur = vec![NEG_INF; width + 1];

    // Row 0.
    for j in 0..=m {
        if let Some(c) = col(0, j) {
            let s = if j == 0 {
                0
            } else {
                -(cfg.open + cfg.extend * j as i32)
            };
            h_prev[c] = s;
            e_prev[c] = s;
            if j > 0 {
                tb[c] = TB_E | if j > 1 { TB_E_EXT } else { 0 };
            }
        }
    }

    for i in 1..=n {
        h_cur.fill(NEG_INF);
        e_cur.fill(NEG_INF);
        f_cur.fill(NEG_INF);
        let jlo = ((i as i64 + dlo).max(0)) as usize;
        let jhi = ((i as i64 + dhi).min(m as i64)) as usize;
        for j in jlo..=jhi {
            let c = col(i, j).expect("j within band by construction");
            // In banded diagonal coordinates, (i-1, j) is column c+1 of
            // the previous row, (i-1, j-1) is column c, and (i, j-1) is
            // column c-1 of the current row.
            let up = if c + 1 < width {
                h_prev[c + 1]
            } else {
                NEG_INF
            };
            let up_f = if c + 1 < width {
                f_prev[c + 1]
            } else {
                NEG_INF
            };
            let f_open = up.saturating_add(-(cfg.open + cfg.extend));
            let f_ext = up_f.saturating_add(-cfg.extend);
            let f = f_open.max(f_ext);

            let (left, left_e) = if c > 0 {
                (h_cur[c - 1], e_cur[c - 1])
            } else {
                (NEG_INF, NEG_INF)
            };
            let e_open = left.saturating_add(-(cfg.open + cfg.extend));
            let e_ext = left_e.saturating_add(-cfg.extend);
            let e = e_open.max(e_ext);

            let diag = if j >= 1 {
                h_prev[c].saturating_add(matrix.score(a[i - 1], b[j - 1]))
            } else {
                NEG_INF
            };

            let h = diag.max(e).max(f);
            h_cur[c] = h;
            e_cur[c] = e;
            f_cur[c] = f;
            let mut code = if h == diag && j >= 1 {
                TB_DIAG
            } else if h == f {
                TB_F
            } else {
                TB_E
            };
            if f_ext >= f_open {
                code |= TB_F_EXT;
            }
            if e_ext >= e_open {
                code |= TB_E_EXT;
            }
            tb[i * width + c] = code;
        }
        std::mem::swap(&mut h_prev, &mut h_cur);
        std::mem::swap(&mut e_prev, &mut e_cur);
        std::mem::swap(&mut f_prev, &mut f_cur);
    }

    let end_c = col(n, m).expect("corner inside band");
    let score = h_prev[end_c];

    // Traceback.
    let mut ops = Vec::with_capacity(n + m);
    let (mut i, mut j) = (n, m);
    // Which layer we are in: 0 = H, 1 = E-run, 2 = F-run.
    let mut layer = 0u8;
    while i > 0 || j > 0 {
        let c = col(i, j).expect("traceback inside band");
        let code = tb[i * width + c];
        match layer {
            0 => match code & 3 {
                TB_DIAG => {
                    ops.push(if a[i - 1] == b[j - 1] {
                        AlignOp::Match
                    } else {
                        AlignOp::Sub
                    });
                    i -= 1;
                    j -= 1;
                }
                TB_E => {
                    layer = 1;
                }
                _ => {
                    layer = 2;
                }
            },
            1 => {
                ops.push(AlignOp::Ins);
                let cont = code & TB_E_EXT != 0;
                j -= 1;
                if !cont {
                    layer = 0;
                }
            }
            _ => {
                ops.push(AlignOp::Del);
                let cont = code & TB_F_EXT != 0;
                i -= 1;
                if !cont {
                    layer = 0;
                }
            }
        }
    }
    ops.reverse();
    Alignment { score, ops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_score::blosum62;
    use psc_seqio::alphabet::encode_protein;

    fn cfg() -> GapConfig {
        GapConfig::default()
    }

    #[test]
    fn extend_identical_sequences() {
        let m = blosum62();
        let s = encode_protein(b"MKVLAWRNDCQEHFY");
        let self_score: i32 = s.iter().map(|&c| m.score(c, c)).sum();
        let hit = gapped_extend(m, &s, &s, 7, 7, &cfg());
        assert_eq!(hit.score, self_score);
        assert_eq!((hit.start0, hit.end0), (0, s.len()));
        assert_eq!((hit.start1, hit.end1), (0, s.len()));
    }

    #[test]
    fn extend_bridges_a_gap() {
        let m = blosum62();
        // s1 = s0 with three residues deleted in the middle.
        let s0 = encode_protein(b"MKVLAWHHHRNDCQEHFYW");
        let s1 = encode_protein(b"MKVLAWRNDCQEHFYW");
        let hit = gapped_extend(m, &s0, &s1, 0, 0, &cfg());
        let full_match: i32 = s1.iter().map(|&c| m.score(c, c)).sum::<i32>();
        // Expected: all of s1 matched (score of its self-alignment)
        // minus the cost of a 3-residue gap (11 + 3×1).
        let expect = full_match - (11 + 3);
        assert_eq!(hit.score, expect);
        assert_eq!((hit.start0, hit.end0), (0, s0.len()));
        assert_eq!((hit.start1, hit.end1), (0, s1.len()));
    }

    #[test]
    fn extend_does_not_cross_heavy_noise() {
        let m = blosum62();
        let s0 = encode_protein(b"MKVLAWWWWWWW");
        let s1 = encode_protein(b"MKVLAWPPPPPP");
        let hit = gapped_extend(m, &s0, &s1, 0, 0, &cfg());
        // The W-vs-P tail only hurts; best is the identical head.
        assert_eq!(hit.score, 33);
        assert_eq!(hit.end0, 6);
        assert_eq!(hit.end1, 6);
    }

    #[test]
    fn extend_from_mid_anchor_reaches_left() {
        let m = blosum62();
        let s = encode_protein(b"RNDCQEMKVLAW");
        let hit = gapped_extend(m, &s, &s, 9, 9, &cfg());
        let self_score: i32 = s.iter().map(|&c| m.score(c, c)).sum();
        assert_eq!(hit.score, self_score);
        assert_eq!(hit.start0, 0);
    }

    #[test]
    fn empty_anchor_edges() {
        let m = blosum62();
        let s = encode_protein(b"MKV");
        let e: Vec<u8> = vec![];
        let hit = gapped_extend(m, &s, &e, 0, 0, &cfg());
        assert_eq!(hit.score, 0);
        // Anchor at the very end: right half is empty, the left half
        // aligns the whole prefix (self-score of MKV = 14).
        let hit = gapped_extend(m, &s, &s, 3, 3, &cfg());
        assert_eq!(hit.score, 14);
        assert_eq!((hit.start0, hit.end0), (0, 3));
    }

    #[test]
    fn banded_global_identity() {
        let m = blosum62();
        let s = encode_protein(b"MKVLAW");
        let aln = banded_global(m, &s, &s, &cfg(), 8);
        assert_eq!(aln.score, 33);
        assert_eq!(aln.identities(), 6);
        assert_eq!(aln.aligned_columns(), 6);
        assert!(aln.ops.iter().all(|&o| o == AlignOp::Match));
    }

    #[test]
    fn banded_global_with_gap() {
        let m = blosum62();
        let a = encode_protein(b"MKVLAWRND");
        let b = encode_protein(b"MKVRND"); // LAW deleted
        let aln = banded_global(m, &a, &b, &cfg(), 8);
        let matched: i32 = b.iter().map(|&c| m.score(c, c)).sum();
        assert_eq!(aln.score, matched - 14);
        assert_eq!(aln.identities(), 6);
        let dels = aln.ops.iter().filter(|&&o| o == AlignOp::Del).count();
        assert_eq!(dels, 3);
        // Gap must be one run of 3, not three separate opens.
        let rendered = aln.render(&a, &b);
        assert!(rendered.contains("---"), "{rendered}");
    }

    #[test]
    fn banded_global_substitution() {
        let m = blosum62();
        let a = encode_protein(b"MKVLAW");
        let b = encode_protein(b"MKILAW"); // V->I, score +3
        let aln = banded_global(m, &a, &b, &cfg(), 4);
        assert_eq!(aln.score, 33 - 4 + 3);
        assert_eq!(aln.identities(), 5);
        assert_eq!(aln.ops[2], AlignOp::Sub);
    }

    #[test]
    fn banded_global_agrees_with_extension_score() {
        // On ranges chosen by gapped_extend, banded_global with a generous
        // band reproduces the same score.
        let m = blosum62();
        let s0 = encode_protein(b"MKVLAWHHHRNDCQEHFYWGGAML");
        let s1 = encode_protein(b"MKVLAWRNDCQEHFYWGGAML");
        let hit = gapped_extend(m, &s0, &s1, 0, 0, &cfg());
        let aln = banded_global(
            m,
            &s0[hit.start0..hit.end0],
            &s1[hit.start1..hit.end1],
            &cfg(),
            16,
        );
        assert_eq!(aln.score, hit.score);
    }

    #[test]
    fn render_shapes() {
        let m = blosum62();
        let a = encode_protein(b"MKV");
        let b = encode_protein(b"MKV");
        let aln = banded_global(m, &a, &b, &cfg(), 2);
        assert_eq!(aln.render(&a, &b), "MKV\n|||\nMKV");
    }
}
