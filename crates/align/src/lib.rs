//! # psc-align — extension kernels and alignment algorithms
//!
//! The compute layer of the reproduction:
//!
//! * [`ungapped`]: the paper's fixed-window ungapped extension kernel
//!   (step 2 — the code the PSC operator implements in hardware), in the
//!   two published variants, plus the X-drop ungapped extension NCBI
//!   BLAST uses (for the baseline);
//! * [`batch`]: the batched ungapped engine — score profiles,
//!   interleaved window layout and 16/32-lane SIMD scoring of many
//!   window pairs at once (the software analogue of the PE array's data
//!   flow), with runtime dispatch over AVX2 / AVX-512BW / portable
//!   lane arrays;
//! * [`gapped`]: gapped extension (step 3) — affine-gap X-drop extension
//!   to find high-scoring ranges, banded global alignment for traceback;
//! * [`hsp`]: high-scoring segment pair bookkeeping — scores, E-values,
//!   deduplication and culling.

pub mod batch;
pub mod gapped;
pub mod hsp;
pub mod report;
pub mod ungapped;

pub use batch::{
    profile_score, profile_score2, score_batch, score_lanes, score_lanes_split, score_lanes_wide,
    simd_available, split_window_fits, wide_available, InterleavedWindows, KernelBackend,
    KernelChoice, ScoreProfile, LANES, WIDE_LANES,
};
pub use gapped::{banded_global, gapped_extend, AlignOp, Alignment, GapConfig, GappedHit};
pub use hsp::{cull_hsps, Hsp};
pub use report::{format_pairwise, AlignmentSummary};
pub use ungapped::{ungapped_score, xdrop_ungapped, Kernel, UngappedHit};
