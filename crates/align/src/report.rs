//! BLAST-style pairwise alignment reports.
//!
//! Renders an [`crate::Alignment`] the way `tblastn` prints its HSPs:
//! a scoring header (bits, E-value, identities/positives/gaps) followed
//! by wrapped `Query:`/`Sbjct:` blocks with 1-based coordinates. Both
//! the pipeline and the baseline produce the same [`crate::Hsp`] type,
//! so either tool's results can be rendered.

use psc_score::SubstitutionMatrix;

use crate::gapped::{AlignOp, Alignment};

/// Summary statistics of an alignment under a matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AlignmentSummary {
    pub identities: usize,
    /// Pairs with positive substitution score ("positives" in BLAST).
    pub positives: usize,
    pub gaps: usize,
    pub columns: usize,
}

impl AlignmentSummary {
    pub fn of(aln: &Alignment, s0: &[u8], s1: &[u8], matrix: &SubstitutionMatrix) -> Self {
        let (mut i, mut j) = (0usize, 0usize);
        let mut out = AlignmentSummary {
            identities: 0,
            positives: 0,
            gaps: 0,
            columns: aln.ops.len(),
        };
        for &op in &aln.ops {
            match op {
                AlignOp::Match | AlignOp::Sub => {
                    if s0[i] == s1[j] {
                        out.identities += 1;
                    }
                    if matrix.score(s0[i], s1[j]) > 0 {
                        out.positives += 1;
                    }
                    i += 1;
                    j += 1;
                }
                AlignOp::Del => {
                    out.gaps += 1;
                    i += 1;
                }
                AlignOp::Ins => {
                    out.gaps += 1;
                    j += 1;
                }
            }
        }
        out
    }
}

/// Render one HSP in classic BLAST pairwise style.
///
/// `s0`/`s1` are the *aligned segments* (already sliced to the HSP's
/// ranges); `start0`/`start1` are the 1-based coordinates of the first
/// residue of each segment in its parent sequence; `width` is the wrap
/// column (BLAST uses 60).
#[allow(clippy::too_many_arguments)]
pub fn format_pairwise(
    aln: &Alignment,
    s0: &[u8],
    s1: &[u8],
    start0: usize,
    start1: usize,
    matrix: &SubstitutionMatrix,
    bit_score: f64,
    evalue: f64,
    width: usize,
) -> String {
    let summary = AlignmentSummary::of(aln, s0, s1, matrix);
    let pct = |n: usize| (n * 100).checked_div(summary.columns).unwrap_or(0);
    let mut out = format!(
        " Score = {:.1} bits ({}), Expect = {:.1e}\n Identities = {}/{} ({}%), Positives = {}/{} ({}%), Gaps = {}/{} ({}%)\n\n",
        bit_score,
        aln.score,
        evalue,
        summary.identities,
        summary.columns,
        pct(summary.identities),
        summary.positives,
        summary.columns,
        pct(summary.positives),
        summary.gaps,
        summary.columns,
        pct(summary.gaps),
    );

    // Build the three full lines, then wrap.
    let mut q_line = Vec::with_capacity(aln.ops.len());
    let mut m_line = Vec::with_capacity(aln.ops.len());
    let mut s_line = Vec::with_capacity(aln.ops.len());
    let (mut i, mut j) = (0usize, 0usize);
    for &op in &aln.ops {
        match op {
            AlignOp::Match | AlignOp::Sub => {
                let (a, b) = (s0[i], s1[j]);
                q_line.push(psc_seqio::Aa(a).to_ascii());
                s_line.push(psc_seqio::Aa(b).to_ascii());
                m_line.push(if a == b {
                    psc_seqio::Aa(a).to_ascii()
                } else if matrix.score(a, b) > 0 {
                    b'+'
                } else {
                    b' '
                });
                i += 1;
                j += 1;
            }
            AlignOp::Del => {
                q_line.push(psc_seqio::Aa(s0[i]).to_ascii());
                s_line.push(b'-');
                m_line.push(b' ');
                i += 1;
            }
            AlignOp::Ins => {
                q_line.push(b'-');
                s_line.push(psc_seqio::Aa(s1[j]).to_ascii());
                m_line.push(b' ');
                j += 1;
            }
        }
    }

    let coord_width = (start0 + s0.len()).max(start1 + s1.len()).to_string().len();
    let (mut q_pos, mut s_pos) = (start0, start1);
    let mut offset = 0usize;
    while offset < q_line.len() {
        let end = (offset + width).min(q_line.len());
        let q_chunk = &q_line[offset..end];
        let m_chunk = &m_line[offset..end];
        let s_chunk = &s_line[offset..end];
        let q_used = q_chunk.iter().filter(|&&c| c != b'-').count();
        let s_used = s_chunk.iter().filter(|&&c| c != b'-').count();
        out.push_str(&format!(
            "Query  {:>cw$}  {}  {}\n",
            q_pos,
            String::from_utf8_lossy(q_chunk),
            q_pos + q_used.saturating_sub(1),
            cw = coord_width
        ));
        out.push_str(&format!(
            "       {:>cw$}  {}\n",
            "",
            String::from_utf8_lossy(m_chunk),
            cw = coord_width
        ));
        out.push_str(&format!(
            "Sbjct  {:>cw$}  {}  {}\n\n",
            s_pos,
            String::from_utf8_lossy(s_chunk),
            s_pos + s_used.saturating_sub(1),
            cw = coord_width
        ));
        q_pos += q_used;
        s_pos += s_used;
        offset = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gapped::{banded_global, GapConfig};
    use psc_score::blosum62;
    use psc_seqio::alphabet::encode_protein;

    #[test]
    fn summary_counts() {
        let m = blosum62();
        let a = encode_protein(b"MKVLAWRND");
        let b = encode_protein(b"MKIRND"); // V->I sub-ish + deletion
        let aln = banded_global(m, &a, &b, &GapConfig::default(), 8);
        let s = AlignmentSummary::of(&aln, &a, &b, m);
        assert_eq!(s.columns, aln.ops.len());
        assert!(s.identities >= 5);
        assert!(s.positives >= s.identities);
        assert_eq!(s.gaps, 3);
    }

    #[test]
    fn pairwise_renders_blast_style() {
        let m = blosum62();
        let a = encode_protein(b"MKVLAWRNDCQEHFYW");
        let b = encode_protein(b"MKILAWRNDCQEHFYW");
        let aln = banded_global(m, &a, &b, &GapConfig::default(), 8);
        let text = format_pairwise(&aln, &a, &b, 1, 101, m, 35.4, 1.2e-8, 60);
        assert!(text.contains("Score = 35.4 bits"), "{text}");
        assert!(text.contains("Expect = 1.2e-8"), "{text}");
        assert!(text.contains("Identities = 15/16 (93%)"), "{text}");
        assert!(text.contains("Query    1  MKVLAW"), "{text}");
        assert!(text.contains("Sbjct  101  MKILAW"), "{text}");
        // The middle line shows '+' for the positive-scoring V/I pair.
        assert!(text.lines().any(|l| l.contains('+')), "{text}");
    }

    #[test]
    fn wrapping_advances_coordinates() {
        let m = blosum62();
        let a: Vec<u8> = encode_protein(b"MKVLAWRNDC").repeat(10); // 100 aa
        let aln = banded_global(m, &a, &a, &GapConfig::default(), 4);
        let text = format_pairwise(&aln, &a, &a, 1, 1, m, 200.0, 1e-50, 60);
        // Two blocks: 1..60 and 61..100.
        assert!(text.contains("Query    1  "), "{text}");
        assert!(text.contains("Query   61  "), "{text}");
        assert!(text.contains("  100\n"), "{text}");
    }

    #[test]
    fn gaps_do_not_advance_the_gapped_side() {
        let m = blosum62();
        let a = encode_protein(b"MKVLAWRND");
        let b = encode_protein(b"MKVRND");
        let aln = banded_global(m, &a, &b, &GapConfig::default(), 8);
        let text = format_pairwise(&aln, &a, &b, 1, 1, m, 10.0, 1.0, 60);
        // Subject consumed 6 residues: final coordinate 6.
        assert!(text.contains("  6\n"), "{text}");
        // Query consumed 9.
        assert!(text.contains("  9\n"), "{text}");
        assert!(text.contains("---"), "{text}");
    }
}
