//! High-scoring segment pairs: the currency of steps 2 → 3 → report.

use std::cmp::Reverse;

/// A high-scoring segment pair between a query-bank sequence and a
/// subject-bank sequence, in *sequence-local* coordinates.
#[derive(Clone, Debug, PartialEq)]
pub struct Hsp {
    /// Query sequence index in bank 0.
    pub seq0: u32,
    /// Subject sequence index in bank 1.
    pub seq1: u32,
    /// Half-open residue ranges of the aligned segments.
    pub start0: u32,
    pub end0: u32,
    pub start1: u32,
    pub end1: u32,
    /// Raw (matrix-unit) score.
    pub score: i32,
    /// Bit score (0 until statistics are applied).
    pub bit_score: f64,
    /// E-value (∞ until statistics are applied).
    pub evalue: f64,
}

impl Hsp {
    /// Diagonal in the (seq0, seq1) plane.
    #[inline]
    pub fn diagonal(&self) -> i64 {
        self.start1 as i64 - self.start0 as i64
    }

    /// Fraction of `other`'s query range covered by `self`'s.
    fn overlap0(&self, other: &Hsp) -> f64 {
        let lo = self.start0.max(other.start0);
        let hi = self.end0.min(other.end0);
        if hi <= lo || other.end0 == other.start0 {
            0.0
        } else {
            (hi - lo) as f64 / (other.end0 - other.start0) as f64
        }
    }

    fn overlap1(&self, other: &Hsp) -> f64 {
        let lo = self.start1.max(other.start1);
        let hi = self.end1.min(other.end1);
        if hi <= lo || other.end1 == other.start1 {
            0.0
        } else {
            (hi - lo) as f64 / (other.end1 - other.start1) as f64
        }
    }
}

/// Remove redundant HSPs: within each `(seq0, seq1)` pair, keep HSPs in
/// descending score order and drop any whose ranges are covered at least
/// `max_overlap` (on both sequences) by an already-kept, higher-scoring
/// HSP. This is the duplicate suppression BLAST applies when many seeds
/// land inside one alignment.
pub fn cull_hsps(mut hsps: Vec<Hsp>, max_overlap: f64) -> Vec<Hsp> {
    // The sort key is a *total* order over the fields the cull reads:
    // equal-score HSPs used to keep their input order, which made the
    // kept set depend on how the caller happened to order its input.
    // Overlapped/parallel step 3 feeds this in merge order, so the
    // coordinate tie-break is what makes the result order-invariant.
    hsps.sort_by_key(|h| {
        (
            h.seq0,
            h.seq1,
            Reverse(h.score),
            h.start0,
            h.end0,
            h.start1,
            h.end1,
        )
    });
    let mut kept: Vec<Hsp> = Vec::with_capacity(hsps.len());
    let mut group_start = 0usize;
    for h in hsps {
        // New (seq0, seq1) group?
        if kept[group_start..]
            .first()
            .map(|k| (k.seq0, k.seq1) != (h.seq0, h.seq1))
            .unwrap_or(false)
        {
            group_start = kept.len();
        }
        let redundant = kept[group_start..].iter().any(|k| {
            (k.seq0, k.seq1) == (h.seq0, h.seq1)
                && k.overlap0(&h) >= max_overlap
                && k.overlap1(&h) >= max_overlap
        });
        if !redundant {
            kept.push(h);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hsp(seq0: u32, seq1: u32, s0: u32, e0: u32, s1: u32, e1: u32, score: i32) -> Hsp {
        Hsp {
            seq0,
            seq1,
            start0: s0,
            end0: e0,
            start1: s1,
            end1: e1,
            score,
            bit_score: 0.0,
            evalue: f64::INFINITY,
        }
    }

    #[test]
    fn diagonal_math() {
        assert_eq!(hsp(0, 0, 5, 10, 8, 13, 1).diagonal(), 3);
        assert_eq!(hsp(0, 0, 8, 13, 5, 10, 1).diagonal(), -3);
    }

    #[test]
    fn cull_drops_contained_duplicates() {
        let hsps = vec![
            hsp(0, 0, 0, 100, 0, 100, 80),
            hsp(0, 0, 10, 90, 10, 90, 50),     // fully inside the first
            hsp(0, 0, 200, 250, 200, 250, 40), // disjoint: kept
        ];
        let kept = cull_hsps(hsps, 0.9);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].score, 80);
        assert_eq!(kept[1].score, 40);
    }

    #[test]
    fn cull_keeps_different_sequence_pairs() {
        let hsps = vec![
            hsp(0, 0, 0, 100, 0, 100, 80),
            hsp(0, 1, 0, 100, 0, 100, 50),
            hsp(1, 0, 0, 100, 0, 100, 50),
        ];
        assert_eq!(cull_hsps(hsps, 0.5).len(), 3);
    }

    #[test]
    fn cull_respects_overlap_threshold() {
        let hsps = vec![
            hsp(0, 0, 0, 100, 0, 100, 80),
            hsp(0, 0, 60, 160, 60, 160, 50), // 40% covered
        ];
        assert_eq!(cull_hsps(hsps.clone(), 0.9).len(), 2);
        assert_eq!(cull_hsps(hsps, 0.3).len(), 1);
    }

    #[test]
    fn cull_keeps_higher_scoring_on_tie_ranges() {
        let hsps = vec![hsp(0, 0, 0, 50, 0, 50, 10), hsp(0, 0, 0, 50, 0, 50, 90)];
        let kept = cull_hsps(hsps, 0.9);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].score, 90);
    }

    #[test]
    fn cull_empty() {
        assert!(cull_hsps(Vec::new(), 0.5).is_empty());
    }

    #[test]
    fn cull_is_invariant_under_input_permutation() {
        // A deliberately nasty set: equal-score ties inside one
        // (seq0, seq1) group, partial overlaps on both axes, and
        // several groups. Every permutation must keep the same set.
        let base = vec![
            hsp(0, 0, 0, 100, 0, 100, 80),
            hsp(0, 0, 10, 90, 10, 90, 80),   // same score, nested range
            hsp(0, 0, 60, 160, 60, 160, 80), // same score, 40% covered
            hsp(0, 0, 0, 50, 500, 550, 70),
            hsp(0, 1, 0, 100, 0, 100, 50),
            hsp(1, 0, 0, 40, 0, 40, 50),
            hsp(1, 0, 5, 45, 5, 45, 50),
        ];
        let reference = cull_hsps(base.clone(), 0.5);
        // Walk a deterministic set of permutations: rotations plus
        // LCG-driven Fisher–Yates shuffles.
        let mut state = 0x9e37_79b9u64;
        for trial in 0..32 {
            let mut v = base.clone();
            let shift = trial % v.len();
            v.rotate_left(shift);
            for i in (1..v.len()).rev() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                v.swap(i, (state >> 33) as usize % (i + 1));
            }
            assert_eq!(cull_hsps(v, 0.5), reference, "trial {trial}");
        }
    }

    #[test]
    fn cull_requires_overlap_on_both_axes() {
        // Same query range, disjoint subject ranges (repeat in subject):
        // both must be kept.
        let hsps = vec![hsp(0, 0, 0, 50, 0, 50, 90), hsp(0, 0, 0, 50, 500, 550, 70)];
        assert_eq!(cull_hsps(hsps, 0.5).len(), 2);
    }
}
