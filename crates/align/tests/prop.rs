//! Property tests for extension kernels and gapped alignment.

use proptest::prelude::*;
use psc_align::{banded_global, gapped_extend, ungapped_score, xdrop_ungapped, GapConfig, Kernel};
use psc_score::blosum62;

fn residues(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..20, len)
}

proptest! {
    /// The windowed score is bounded by 0 below and by the sum of
    /// positive pair scores above, for both kernels.
    #[test]
    fn window_score_bounds(s0 in residues(0..80), s1 in residues(0..80)) {
        let n = s0.len().min(s1.len());
        let (s0, s1) = (&s0[..n], &s1[..n]);
        let m = blosum62();
        let pos_sum: i32 = s0.iter().zip(s1).map(|(&a, &b)| m.score(a, b).max(0)).sum();
        for kernel in [Kernel::ClampedSum, Kernel::PaperLiteral] {
            let s = ungapped_score(kernel, m, s0, s1);
            prop_assert!(s >= 0);
            prop_assert!(s <= pos_sum);
        }
    }

    /// PaperLiteral accumulates positives only, so it always dominates
    /// ClampedSum.
    #[test]
    fn literal_dominates_clamped(s0 in residues(1..80), s1 in residues(1..80)) {
        let n = s0.len().min(s1.len());
        let m = blosum62();
        prop_assert!(
            ungapped_score(Kernel::PaperLiteral, m, &s0[..n], &s1[..n])
                >= ungapped_score(Kernel::ClampedSum, m, &s0[..n], &s1[..n])
        );
    }

    /// Matrix symmetry makes both kernels symmetric in their arguments.
    #[test]
    fn window_score_symmetric(s0 in residues(0..60), s1 in residues(0..60)) {
        let n = s0.len().min(s1.len());
        let m = blosum62();
        for kernel in [Kernel::ClampedSum, Kernel::PaperLiteral] {
            prop_assert_eq!(
                ungapped_score(kernel, m, &s0[..n], &s1[..n]),
                ungapped_score(kernel, m, &s1[..n], &s0[..n])
            );
        }
    }

    /// X-drop extension never scores below the bare word, and its
    /// reported segment reproduces the reported score.
    #[test]
    fn xdrop_consistent(
        s0 in residues(12..120),
        s1 in residues(12..120),
        frac0 in 0.0f64..1.0,
        frac1 in 0.0f64..1.0,
    ) {
        let m = blosum62();
        let w = 3usize;
        let pos0 = ((s0.len() - w) as f64 * frac0) as usize;
        let pos1 = ((s1.len() - w) as f64 * frac1) as usize;
        let word_score: i32 = (0..w).map(|k| m.score(s0[pos0 + k], s1[pos1 + k])).sum();
        let hit = xdrop_ungapped(m, &s0, &s1, pos0, pos1, w, 12);
        prop_assert!(hit.score >= word_score);
        // Recompute the segment score.
        let recomputed: i32 = (0..hit.len)
            .map(|k| m.score(s0[hit.start0 + k], s1[hit.start1 + k]))
            .sum();
        prop_assert_eq!(recomputed, hit.score);
        prop_assert!(hit.start0 + hit.len <= s0.len());
        prop_assert!(hit.start1 + hit.len <= s1.len());
    }

    /// Gapped extension from an anchor dominates ungapped extension from
    /// the same anchor (gaps only add options).
    #[test]
    fn gapped_dominates_ungapped(
        s0 in residues(12..100),
        s1 in residues(12..100),
        frac0 in 0.0f64..1.0,
        frac1 in 0.0f64..1.0,
    ) {
        let m = blosum62();
        let w = 3usize;
        let pos0 = ((s0.len() - w) as f64 * frac0) as usize;
        let pos1 = ((s1.len() - w) as f64 * frac1) as usize;
        let ung = xdrop_ungapped(m, &s0, &s1, pos0, pos1, w, 1_000_000);
        let cfg = GapConfig { xdrop: 1_000_000, ..GapConfig::default() };
        let gap = gapped_extend(m, &s0, &s1, pos0, pos1, &cfg);
        prop_assert!(
            gap.score >= ung.score,
            "gapped {} < ungapped {}",
            gap.score,
            ung.score
        );
    }

    /// banded_global with a full-width band reproduces gapped_extend's
    /// score on the ranges the extension chose.
    #[test]
    fn traceback_score_matches_extension(
        s0 in residues(10..60),
        s1 in residues(10..60),
    ) {
        let m = blosum62();
        let cfg = GapConfig::default();
        let hit = gapped_extend(m, &s0, &s1, 0, 0, &cfg);
        let a = &s0[hit.start0..hit.end0];
        let b = &s1[hit.start1..hit.end1];
        if !a.is_empty() || !b.is_empty() {
            let band = a.len().max(b.len()) + 2; // full-width band
            let aln = banded_global(m, a, b, &cfg, band);
            prop_assert_eq!(aln.score, hit.score);
            // Ops must consume exactly the two ranges.
            let used0 = aln.ops.iter().filter(|o| !matches!(o, psc_align::AlignOp::Ins)).count();
            let used1 = aln.ops.iter().filter(|o| !matches!(o, psc_align::AlignOp::Del)).count();
            prop_assert_eq!(used0, a.len());
            prop_assert_eq!(used1, b.len());
        }
    }
}
