//! Property tests for the batched ungapped engine: every backend
//! (profile scalar, 16-lane SIMD, 32-lane wide, saturating i8 split)
//! must be bit-identical to the reference `ungapped_score` kernel on
//! arbitrary windows — including odd lengths, non-lane-multiple batch
//! sizes and both kernel variants. The split backend is additionally
//! pinned to its overflow guard: exact whenever the guard admits the
//! window, refused by `resolve` otherwise.

use proptest::prelude::*;
use psc_align::{
    profile_score, score_batch, ungapped_score, InterleavedWindows, Kernel, KernelBackend,
    KernelChoice, ScoreProfile, LANES,
};
use psc_score::blosum62;
use psc_score::matrix::match_mismatch;
use psc_seqio::alphabet::AA_ALPHABET_LEN;

fn residues(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..AA_ALPHABET_LEN as u8, len)
}

/// A batch of `n` subject windows of length `len`, row-major.
fn window_batch() -> impl Strategy<Value = (Vec<u8>, usize)> {
    (1usize..40, 0usize..37).prop_flat_map(|(len, n)| {
        proptest::collection::vec(0u8..AA_ALPHABET_LEN as u8, len * n).prop_map(move |v| (v, len))
    })
}

proptest! {
    /// The profile-based scalar kernel is bit-identical to
    /// `ungapped_score` for both kernel variants.
    #[test]
    fn profile_matches_reference(s0 in residues(0..80), s1 in residues(0..80)) {
        let n = s0.len().min(s1.len());
        let (s0, s1) = (&s0[..n], &s1[..n]);
        let m = blosum62();
        let mut prof = ScoreProfile::default();
        prof.build(m, s0);
        for kernel in [Kernel::ClampedSum, Kernel::PaperLiteral] {
            prop_assert_eq!(
                profile_score(kernel, &prof, s1),
                ungapped_score(kernel, m, s0, s1)
            );
        }
    }

    /// Every backend agrees with the reference on whole batches,
    /// including batch sizes that are not multiples of the SIMD lane
    /// count and windows of odd length.
    #[test]
    fn backends_match_reference_on_batches(
        (il1, len) in window_batch(),
        s0 in residues(1..40),
        kernel in prop_oneof![Just(Kernel::ClampedSum), Just(Kernel::PaperLiteral)],
    ) {
        let m = blosum62();
        let w0: Vec<u8> = s0.iter().cycle().take(len).copied().collect();
        let mut prof = ScoreProfile::default();
        prof.build(m, &w0);
        let mut inter = InterleavedWindows::default();
        inter.build(&il1, len);
        prop_assert_eq!(inter.count(), il1.len() / len);

        let expected: Vec<i32> = il1
            .chunks_exact(len)
            .map(|w1| ungapped_score(kernel, m, &w0, w1))
            .collect();
        for backend in [
            KernelBackend::Scalar,
            KernelBackend::Profile,
            KernelBackend::Simd,
            KernelBackend::Wide,
        ] {
            let mut out = Vec::new();
            score_batch(backend, kernel, m, &w0, &prof, &il1, &inter, &mut out);
            prop_assert_eq!(&out, &expected, "backend {:?}", backend);
        }
        // The split kernel joins the agreement set whenever its i8
        // saturation guard admits the window.
        if psc_align::split_window_fits(len, m) {
            let mut out = Vec::new();
            score_batch(KernelBackend::Split, kernel, m, &w0, &prof, &il1, &inter, &mut out);
            prop_assert_eq!(&out, &expected, "backend Split");
        }
    }

    /// The split kernel is bit-identical to the reference on any
    /// window/matrix combination its saturation guard admits, and
    /// `resolve` refuses it (degrading to a 16-bit path) otherwise.
    #[test]
    fn split_matches_reference_under_guard(
        (il1, len) in window_batch(),
        s0 in residues(1..40),
        mat in 1i8..=16,
        mis in -16i8..=0,
        kernel in prop_oneof![Just(Kernel::ClampedSum), Just(Kernel::PaperLiteral)],
    ) {
        let m = match_mismatch("split", mat, mis);
        let w0: Vec<u8> = s0.iter().cycle().take(len).copied().collect();
        let mut prof = ScoreProfile::default();
        prof.build(&m, &w0);
        let mut inter = InterleavedWindows::default();
        inter.build(&il1, len);

        let resolved = KernelChoice::Split.resolve(len, &m);
        if psc_align::split_window_fits(len, &m) {
            prop_assert_eq!(resolved, KernelBackend::Split);
            let expected: Vec<i32> = il1
                .chunks_exact(len)
                .map(|w1| ungapped_score(kernel, &m, &w0, w1))
                .collect();
            let mut out = Vec::new();
            score_batch(KernelBackend::Split, kernel, &m, &w0, &prof, &il1, &inter, &mut out);
            prop_assert_eq!(&out, &expected);
        } else {
            prop_assert!(matches!(
                resolved,
                KernelBackend::Simd | KernelBackend::Profile
            ));
        }
    }

    /// Bit-identity also holds under a matrix with a wider dynamic range
    /// than BLOSUM62 (large match/mismatch scores stress the i16 lanes'
    /// overflow guard — `resolve` must refuse SIMD when it cannot hold).
    #[test]
    fn wide_scores_stay_exact(
        (il1, len) in window_batch(),
        s0 in residues(1..40),
        mat in 1i8..=127,
        mis in -128i8..=0,
    ) {
        let m = match_mismatch("wide", mat, mis);
        let w0: Vec<u8> = s0.iter().cycle().take(len).copied().collect();
        let mut prof = ScoreProfile::default();
        prof.build(&m, &w0);
        let mut inter = InterleavedWindows::default();
        inter.build(&il1, len);

        let backend = KernelChoice::Auto.resolve(len, &m);
        let expected: Vec<i32> = il1
            .chunks_exact(len)
            .map(|w1| ungapped_score(Kernel::ClampedSum, &m, &w0, w1))
            .collect();
        let mut out = Vec::new();
        score_batch(backend, Kernel::ClampedSum, &m, &w0, &prof, &il1, &inter, &mut out);
        prop_assert_eq!(&out, &expected, "backend {:?}", backend);
    }

    /// The interleaved layout is a faithful transpose: lane j of block
    /// `j0` at position `p` is window `j0+j`'s residue `p`.
    #[test]
    fn interleave_roundtrips((il1, len) in window_batch()) {
        let mut inter = InterleavedWindows::default();
        inter.build(&il1, len);
        let n = inter.count();
        for (j, w1) in il1.chunks_exact(len).enumerate() {
            let block = j / LANES * LANES;
            let lane = j % LANES;
            for (p, &b) in w1.iter().enumerate() {
                prop_assert_eq!(inter.lane_codes(p, block)[lane], b);
            }
        }
        prop_assert_eq!(n, il1.len() / len.max(1));
    }
}
