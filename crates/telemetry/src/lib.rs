//! # psc-telemetry — observability substrate for the pipeline
//!
//! Every headline number in the reproduced paper is an observability
//! artifact: Tables 1 and 7 are per-step time breakdowns, Table 4 is
//! step-2 throughput, and the PE-array discussion hinges on utilization
//! and FIFO backpressure. This crate turns those signals into durable,
//! diffable run reports:
//!
//! * [`Recorder`] — the instrumentation trait: span timing (monotonic
//!   clocks), named `u64` counters, log2-bucketed [`Histogram`]s, and
//!   free-form metadata. [`NullRecorder`] compiles to no-ops (guarded by
//!   [`Recorder::enabled`]) so the disabled path stays off the step-2
//!   hot loop; [`MemRecorder`] accumulates everything in memory.
//! * [`RunReport`] — a schema-versioned aggregate of everything a run
//!   produced, serialized with the hand-rolled [`json`] module (the
//!   build container is offline, so no external JSON dependency).
//! * [`render`] — paper-style text views of a report: the Table 1/7
//!   percentage breakdown, Table 5-style PE utilization, and counter /
//!   histogram listings.
//! * [`trace`] — the flight recorder: a [`Tracer`] sink (mirroring
//!   [`Recorder`]'s off-hot-loop discipline) collecting per-unit span
//!   and instant events into bounded per-stage rings, laid out onto
//!   per-worker/per-FPGA lanes and exported as Chrome-trace/Perfetto
//!   JSON; a virtual clock makes traces byte-deterministic in tests.
//! * [`trace_analyze`] — cross-lane critical path, exhaustive stall
//!   attribution (`busy + stalls == lane wall`), and reconciliation
//!   against [`RunReport`] span walls.
//! * [`compare`] — regression diffing between two reports with percent
//!   deltas and configurable gates (`psc report --compare`, CI's perf
//!   gate).
//!
//! The crate is std-only and dependency-free by design; it sits below
//! `psc-core` in the workspace graph so any crate can record into it.

#![forbid(unsafe_code)]

pub mod compare;
pub mod json;
pub mod keys;
pub mod recorder;
pub mod render;
pub mod report;
pub mod trace;
pub mod trace_analyze;

pub use compare::{diff_reports, render_diff, CompareConfig, DeltaKind, DeltaRow, ReportDiff};
pub use json::{Json, JsonError};
pub use recorder::{Histogram, MemRecorder, NullRecorder, Recorder, Snapshot, SpanGuard, SpanStat};
pub use report::{
    BoardTelemetry, DetectorTelemetry, FaultTelemetry, FpgaTelemetry, RecoveryTelemetry, RunReport,
    SpanReport, StepReport, MIN_SCHEMA_VERSION, SCHEMA_VERSION,
};
pub use trace::{
    stage_of, InstantEvent, Lane, NullTracer, RingTracer, SpanEvent, Trace, TraceClock, Tracer,
    UnitEvent, UnitTrace, DEFAULT_TRACE_CAPACITY, VIRTUAL_LANES,
};
pub use trace_analyze::{
    analyze, reconcile, render_analysis, render_reconcile, render_timeline, stall_class,
    CriticalStep, LaneBreakdown, ReconcileRow, TraceAnalysis,
};
