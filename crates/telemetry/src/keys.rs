//! The telemetry key registry: every counter, span, meta, unit-event
//! and trace-lane name the workspace emits, in one place.
//!
//! Emitters reference these constants (or the helper fns for keyed
//! families) instead of spelling string literals at the call site.
//! `psc-analyzer`'s `telemetry-key-registry` lint enforces the
//! complement: any *literal* name passed to a Recorder/Tracer sink
//! (`add`, `observe`, `record_span`, `set_meta`, `SpanGuard::enter`,
//! `UnitEvent::span`, `UnitEvent::mark`) must appear in this file, so
//! a typo'd or drive-by key shows up in review as either a new
//! registry line or a lint error — never as a silently forked name
//! that splits a time series in half.
//!
//! Naming: dot-separated, `<stage>.<metric>`; bucketed families end
//! in a fixed-width suffix (`.b07`) so reports sort lexically.

// --- wall-time spans (`Recorder::record_span`) --------------------

/// Step-1 wall time: seed-index construction over both banks.
pub const STEP1: &str = "step1";
/// Step-2 wall time across all backends (host-observed).
pub const STEP2_WALL: &str = "step2.wall";
/// Step-3 wall time: gapped extension plus merge.
pub const STEP3: &str = "step3";
/// Step-3 extension-only time (excludes merge wait).
pub const STEP3_EXTENSION: &str = "step3.extension";
/// Step-3 critical-path time under the modeled parallel schedule.
pub const STEP3_MODELED_PARALLEL: &str = "step3.modeled_parallel";
/// Time step-3 merge spent waiting on extension shards.
pub const STEP3_MERGE_WAIT: &str = "step3.merge_wait";

/// End-to-end wall time of one served query, admission included
/// (`psc serve`).
pub const SERVE_QUERY_WALL: &str = "serve.query_wall";

/// `step3.modeled_p{workers}` — the modeled-parallelism ladder
/// (`step3.modeled_p2`, `step3.modeled_p4`, …).
pub fn step3_modeled_workers(workers: usize) -> String {
    format!("step3.modeled_p{workers}")
}

/// `fleet.modeled_b{boards}` — the modeled cluster-speedup ladder:
/// makespan of the same dispatch schedule replayed at `boards` boards
/// (`fleet.modeled_b1`, `fleet.modeled_b2`, …).
pub fn fleet_modeled_boards(boards: usize) -> String {
    format!("fleet.modeled_b{boards}")
}

// --- scoped spans (`SpanGuard::enter`) ----------------------------

/// Seed-index build for bank 0, under step 1.
pub const STEP1_INDEX_BANK0: &str = "step1.index_bank0";
/// Seed-index build for bank 1, under step 1.
pub const STEP1_INDEX_BANK1: &str = "step1.index_bank1";

// --- counters (`Recorder::add`) -----------------------------------

/// Positions indexed into bank 0's seed table by step 1.
pub const STEP1_POSITIONS_INDEXED_BANK0: &str = "step1.positions_indexed.bank0";
/// Positions indexed into bank 1's seed table by step 1.
pub const STEP1_POSITIONS_INDEXED_BANK1: &str = "step1.positions_indexed.bank1";
/// Seed pairs enumerated by step 2.
pub const STEP2_PAIRS: &str = "step2.pairs";
/// Step-2 candidates above threshold, post-dedup.
pub const STEP2_CANDIDATES_KEPT: &str = "step2.candidates_kept";
/// Seed pairs scored below threshold and dropped by step 2.
pub const STEP2_CANDIDATES_CULLED: &str = "step2.candidates_culled";
/// Seed keys with a non-empty position list in both banks.
pub const STEP2_ACTIVE_KEYS: &str = "step2.active_keys";
/// In-flight queries observed when a served query was admitted
/// (admission-queue depth, this query included).
pub const SERVE_QUEUE_DEPTH: &str = "serve.queue_depth";
/// Simulated board faults detected during step 2.
pub const STEP2_FAULTS_DETECTED: &str = "step2.faults_detected";
/// Step-2 entries retried after a fault.
pub const STEP2_FAULT_RETRIES: &str = "step2.fault_retries";
/// Step-2 entries that completed degraded after retry exhaustion.
pub const STEP2_ENTRIES_DEGRADED: &str = "step2.entries_degraded";
/// SIMD tiles executed by the wide step-2 kernels.
pub const STEP2_SIMD_TILES: &str = "step2.simd_tiles";
/// Useful (non-padding) lane slots across all SIMD tiles.
pub const STEP2_LANE_SLOTS_USEFUL: &str = "step2.lane_slots_useful";
/// Total lane slots across all SIMD tiles.
pub const STEP2_LANE_SLOTS_TOTAL: &str = "step2.lane_slots_total";
/// Step-3 anchors handed to gapped extension.
pub const STEP3_ANCHORS: &str = "step3.anchors";
/// Step-3 extension shards.
pub const STEP3_SHARDS: &str = "step3.shards";
/// Gapped extensions cut off by the X-drop rule.
pub const STEP3_XDROP_TERMINATIONS: &str = "step3.xdrop_terminations";
/// HSPs rejected by the E-value filter.
pub const STEP3_EVALUE_REJECTED: &str = "step3.evalue_rejected";
/// HSPs surviving to the final report.
pub const STEP3_HSPS_REPORTED: &str = "step3.hsps_reported";
/// Simulated boards in the step-2 fleet (recorded when ≥ 2).
pub const FLEET_BOARDS: &str = "fleet.boards";
/// Work-steal pulls the fleet dispatcher performed.
pub const FLEET_STEALS: &str = "fleet.steals";
/// Boards drained and quarantined during the run.
pub const FLEET_QUARANTINED: &str = "fleet.quarantined";
/// Entries re-dispatched after a board exhausted its retry budget.
pub const FLEET_REDISPATCHED: &str = "fleet.redispatched";
/// Simulated boards serving the query's fleet (`psc serve`).
pub const SERVE_FLEET_BOARDS: &str = "serve.fleet_boards";

/// `fleet.board_occupancy.b{board:02}` — percent of the fleet makespan
/// board `board` spent processing entries (a keyed family: `--compare`
/// collapses it so runs at different board counts stay comparable).
pub fn fleet_board_occupancy(board: usize) -> String {
    format!("fleet.board_occupancy.b{board:02}")
}

/// `step2.lane_slots_useful.b{bucket:02}` — per-bucket useful-slot
/// counts behind [`STEP2_LANE_SLOTS_USEFUL`].
pub fn step2_lane_slots_useful_bucket(bucket: u32) -> String {
    format!("step2.lane_slots_useful.b{bucket:02}")
}

/// `step2.lane_slots_total.b{bucket:02}` — per-bucket slot totals
/// behind [`STEP2_LANE_SLOTS_TOTAL`].
pub fn step2_lane_slots_total_bucket(bucket: u32) -> String {
    format!("step2.lane_slots_total.b{bucket:02}")
}

// --- distributions (`Recorder::observe`) --------------------------

/// Seed-pair mass per active key (workload skew).
pub const STEP2_PAIRS_PER_KEY: &str = "step2.pairs_per_key";
/// Percent of SIMD lane slots doing useful work, per tile batch.
pub const STEP2_LANE_FILL: &str = "step2.lane_fill";

// --- run metadata (`Recorder::set_meta`) --------------------------

/// Step-2 backend name (`scalar`, `rasc`, `hybrid`, …).
pub const BACKEND: &str = "backend";
/// Step-3 backend name.
pub const STEP3_BACKEND: &str = "step3.backend";
/// Step-2 scheduling policy name.
pub const STEP2_SCHEDULE: &str = "step2.schedule";
/// Step-2 kernel flavor actually selected at run time.
pub const STEP2_KERNEL: &str = "step2.kernel";
/// Step-2 kernel flavor the config asked for.
pub const STEP2_KERNEL_REQUESTED: &str = "step2.kernel.requested";
/// Why the requested kernel was downgraded, when it was.
pub const STEP2_KERNEL_DOWNGRADE: &str = "step2.kernel.downgrade";
/// Configured window length `W + 2N`.
pub const WINDOW_LEN: &str = "window_len";
/// Configured ungapped score threshold.
pub const THRESHOLD: &str = "threshold";
/// Sequence number of a served query within its server's lifetime.
pub const SERVE_QUERY_SEQ: &str = "serve.query_seq";

// --- unit-event names (`UnitEvent::span` / `UnitEvent::mark`) -----

/// Ungapped/gapped extension work inside one trace unit.
pub const EV_EXTEND: &str = "extend";
/// Merge thread blocked waiting for a shard.
pub const EV_MERGE_WAIT: &str = "merge_wait";
/// Producer blocked on a full channel.
pub const EV_CHANNEL_FULL: &str = "channel_full";
/// Consumer blocked on an empty channel.
pub const EV_CHANNEL_EMPTY: &str = "channel_empty";
/// Merge work proper (after the wait).
pub const EV_MERGE: &str = "merge";
/// Host→board DMA transfer.
pub const EV_DMA_IN: &str = "dma_in";
/// Board→host DMA transfer plus sync.
pub const EV_DMA_OUT: &str = "dma_out";
/// Board compute busy time.
pub const EV_COMPUTE: &str = "compute";
/// Backoff delay before a fault retry.
pub const EV_RETRY_BACKOFF: &str = "retry_backoff";
/// Anchor count produced by the unit.
pub const EV_ANCHORS: &str = "anchors";
/// Candidate count carried by the unit.
pub const EV_CANDIDATES: &str = "candidates";
/// Board entry index the unit processed.
pub const EV_ENTRY: &str = "entry";
/// Retries the unit needed.
pub const EV_FAULT_RETRY: &str = "fault.retry";
/// The unit completed degraded.
pub const EV_FAULT_DEGRADED: &str = "fault.degraded";
/// Hits the unit reported.
pub const EV_HITS: &str = "hits";
/// Channel depth observed at the event.
pub const EV_QUEUE_DEPTH: &str = "queue_depth";
/// Batch length observed at the event.
pub const EV_BATCH: &str = "batch";
/// A dry fleet board waiting on a work-steal pull (span).
pub const EV_STEAL_WAIT: &str = "steal_wait";
/// A quarantined fleet board draining its queue (span).
pub const EV_QUARANTINE_DRAIN: &str = "quarantine_drain";
/// Victim board id of a steal (mark).
pub const EV_STEAL_VICTIM: &str = "steal.victim";
/// Entries drained when the board was quarantined (mark).
pub const EV_QUARANTINED: &str = "quarantined";

// --- trace-lane (stage) names (`UnitTrace::stage`) ----------------

/// Step-2 extension units.
pub const STAGE_STEP2: &str = "step2";
/// Step-3 extension units.
pub const STAGE_STEP3: &str = "step3";
/// Step-3 merge units.
pub const STAGE_STEP3_MERGE: &str = "step3.merge";
/// Simulated board DMA units.
pub const STAGE_BOARD_DMA: &str = "board.dma";
/// Simulated board compute units.
pub const STAGE_BOARD_COMPUTE: &str = "board.compute";
/// Simulated board link (readback) units.
pub const STAGE_BOARD_LINK: &str = "board.link";

/// `board.dma.b{board:02}` — per-board DMA lanes of a fleet run (lane
/// index within the stage is the FPGA).
pub fn board_dma_stage(board: usize) -> String {
    format!("board.dma.b{board:02}")
}

/// `board.compute.b{board:02}` — per-board compute lanes of a fleet
/// run (lane index within the stage is the FPGA).
pub fn board_compute_stage(board: usize) -> String {
    format!("board.compute.b{board:02}")
}
/// Producer-side channel sends.
pub const STAGE_CHANNEL_SEND: &str = "channel.send";
/// Consumer-side channel receives.
pub const STAGE_CHANNEL_RECV: &str = "channel.recv";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyed_families_are_fixed_width_and_sorted() {
        assert_eq!(
            step2_lane_slots_useful_bucket(7),
            "step2.lane_slots_useful.b07"
        );
        assert_eq!(
            step2_lane_slots_total_bucket(12),
            "step2.lane_slots_total.b12"
        );
        assert_eq!(step3_modeled_workers(4), "step3.modeled_p4");
        assert_eq!(fleet_modeled_boards(16), "fleet.modeled_b16");
        assert_eq!(fleet_board_occupancy(3), "fleet.board_occupancy.b03");
        assert_eq!(board_dma_stage(7), "board.dma.b07");
        assert_eq!(board_compute_stage(12), "board.compute.b12");
        let a = step2_lane_slots_useful_bucket(2);
        let b = step2_lane_slots_useful_bucket(10);
        assert!(a < b, "bucket keys must sort numerically: {a} vs {b}");
        let a = fleet_board_occupancy(2);
        let b = fleet_board_occupancy(10);
        assert!(a < b, "board keys must sort numerically: {a} vs {b}");
    }
}
