//! Trace analysis: cross-lane critical path, exhaustive stall
//! attribution, reconciliation against [`RunReport`] span walls, and
//! the `psc trace render` / `psc trace analyze` text views.
//!
//! # Stall taxonomy
//!
//! Every non-busy microsecond of every lane is attributed to exactly
//! one named stall class, so `busy + stalls == lane wall` holds by
//! construction (the invariant `psc trace analyze` and the tests
//! enforce):
//!
//! | class                 | source                                     |
//! |-----------------------|--------------------------------------------|
//! | `channel-full`        | `channel_full` spans (producer backpressure)|
//! | `channel-empty`       | `channel_empty` spans (consumer starvation)|
//! | `merge-wait`          | `merge_wait` spans (in-order merge holds)  |
//! | `board-retry-backoff` | `retry_backoff` spans (fault recovery)     |
//! | `fleet-steal`         | `steal_wait` spans (dry board stealing)    |
//! | `fleet-quarantine-drain` | `quarantine_drain` spans (board drained)|
//! | `scheduler-tail`      | residual idle on host lanes                |
//! | `board-idle`          | residual idle on simulated-board lanes     |
//!
//! Residual idle is measured against the lane's **stage window** (the
//! `[earliest start, latest end]` hull of the stage's own spans), not
//! the whole trace — a step-2 lane is not "stalled" while step 3 runs.

use std::collections::BTreeMap;

use crate::report::RunReport;
use crate::trace::{Lane, SpanEvent, Trace, TraceClock};

/// Producer blocked on a full overlap channel.
pub const STALL_CHANNEL_FULL: &str = "channel-full";
/// Consumer starved on an empty overlap channel.
pub const STALL_CHANNEL_EMPTY: &str = "channel-empty";
/// Merge thread holding for in-order shard results.
pub const STALL_MERGE_WAIT: &str = "merge-wait";
/// Simulated board burning backoff cycles between fault retries.
pub const STALL_RETRY_BACKOFF: &str = "board-retry-backoff";
/// Dry fleet board paying the dispatch cost of a work-steal pull.
pub const STALL_FLEET_STEAL: &str = "fleet-steal";
/// Quarantined fleet board draining its queue for re-dispatch.
pub const STALL_FLEET_QUARANTINE_DRAIN: &str = "fleet-quarantine-drain";
/// Residual host-lane idle inside the stage window (LPT imbalance,
/// pull-counter tail).
pub const STALL_SCHEDULER_TAIL: &str = "scheduler-tail";
/// Residual simulated-board idle inside the stage window (waiting on
/// DMA or the double-buffer partner).
pub const STALL_BOARD_IDLE: &str = "board-idle";

/// Map a span name to its stall class, or `None` for busy work.
pub fn stall_class(span_name: &str) -> Option<&'static str> {
    match span_name {
        "channel_full" => Some(STALL_CHANNEL_FULL),
        "channel_empty" => Some(STALL_CHANNEL_EMPTY),
        "merge_wait" => Some(STALL_MERGE_WAIT),
        "retry_backoff" => Some(STALL_RETRY_BACKOFF),
        "steal_wait" => Some(STALL_FLEET_STEAL),
        "quarantine_drain" => Some(STALL_FLEET_QUARANTINE_DRAIN),
        _ => None,
    }
}

/// One lane's exhaustive time accounting.
#[derive(Clone, Debug, PartialEq)]
pub struct LaneBreakdown {
    pub name: String,
    pub stage: String,
    pub sim_clock: bool,
    /// Width of the lane's stage window, microseconds.
    pub wall_us: f64,
    /// Sum of non-stall span durations.
    pub busy_us: f64,
    /// Stall class -> microseconds; includes the residual class.
    pub stalls: BTreeMap<String, f64>,
}

impl LaneBreakdown {
    pub fn stall_us(&self) -> f64 {
        self.stalls.values().sum()
    }

    /// `busy + stalls` — must equal `wall_us` within fp tolerance.
    pub fn accounted_us(&self) -> f64 {
        self.busy_us + self.stall_us()
    }
}

/// One hop of the cross-lane critical path, in execution order.
#[derive(Clone, Debug, PartialEq)]
pub struct CriticalStep {
    pub lane: String,
    pub name: String,
    pub start_us: f64,
    pub dur_us: f64,
}

/// The full analysis `psc trace analyze` prints and `experiments`
/// consumes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceAnalysis {
    pub clock: TraceClock,
    pub dropped: u64,
    /// Sorted like the trace's lanes: host lanes first, then board.
    pub lanes: Vec<LaneBreakdown>,
    /// Stall class -> total microseconds across all lanes.
    pub stall_totals: BTreeMap<String, f64>,
    /// Busy microseconds across all lanes.
    pub busy_total_us: f64,
    /// Backward-chained longest dependency chain, execution order.
    pub critical_path: Vec<CriticalStep>,
    /// Lane changes along the critical path (cross-lane hops).
    pub critical_switches: usize,
    /// `[0, 1]`: chain span / analysis window (1 = one chain explains
    /// the whole wall).
    pub critical_coverage: f64,
    /// Width of the critical-path clock domain's window, microseconds.
    pub window_us: f64,
}

/// Hull of a span set: `[min start, max end]`, or `None` when empty.
fn span_hull<'a>(spans: impl Iterator<Item = &'a SpanEvent>) -> Option<(f64, f64)> {
    let mut hull: Option<(f64, f64)> = None;
    for s in spans {
        let (lo, hi) = hull.unwrap_or((f64::INFINITY, f64::NEG_INFINITY));
        hull = Some((lo.min(s.start_us), hi.max(s.end_us())));
    }
    hull
}

/// Analyze a finished (or re-imported) trace.
pub fn analyze(trace: &Trace) -> TraceAnalysis {
    // Stage windows, keyed by clock domain + stage.
    let mut windows: BTreeMap<(bool, String), (f64, f64)> = BTreeMap::new();
    for lane in &trace.lanes {
        if let Some((lo, hi)) = span_hull(lane.spans.iter()) {
            let entry = windows
                .entry((lane.sim_clock, lane.stage.clone()))
                .or_insert((lo, hi));
            entry.0 = entry.0.min(lo);
            entry.1 = entry.1.max(hi);
        }
    }

    let mut analysis = TraceAnalysis {
        clock: trace.clock,
        dropped: trace.dropped,
        ..TraceAnalysis::default()
    };
    for lane in &trace.lanes {
        let Some(&(lo, hi)) = windows.get(&(lane.sim_clock, lane.stage.clone())) else {
            continue; // lane with no spans: nothing to account
        };
        let wall_us = hi - lo;
        let mut busy_us = 0.0f64;
        let mut stalls: BTreeMap<String, f64> = BTreeMap::new();
        for s in &lane.spans {
            match stall_class(&s.name) {
                Some(class) => *stalls.entry(class.to_string()).or_insert(0.0) += s.dur_us,
                None => busy_us += s.dur_us,
            }
        }
        let residual_class = if lane.sim_clock {
            STALL_BOARD_IDLE
        } else {
            STALL_SCHEDULER_TAIL
        };
        let residual = (wall_us - busy_us - stalls.values().sum::<f64>()).max(0.0);
        *stalls.entry(residual_class.to_string()).or_insert(0.0) += residual;
        for (class, us) in &stalls {
            *analysis.stall_totals.entry(class.clone()).or_insert(0.0) += us;
        }
        analysis.busy_total_us += busy_us;
        analysis.lanes.push(LaneBreakdown {
            name: lane.name.clone(),
            stage: lane.stage.clone(),
            sim_clock: lane.sim_clock,
            wall_us,
            busy_us,
            stalls,
        });
    }

    // Critical path over the host clock domain (fall back to the board
    // domain for board-only traces).
    let host_has_spans = trace
        .lanes
        .iter()
        .any(|l| !l.sim_clock && !l.spans.is_empty());
    let domain: Vec<&Lane> = if host_has_spans {
        trace.lanes.iter().filter(|l| !l.sim_clock).collect()
    } else {
        trace.lanes.iter().collect()
    };
    analysis.window_us = span_hull(domain.iter().flat_map(|l| l.spans.iter()))
        .map(|(lo, hi)| hi - lo)
        .unwrap_or(0.0);
    analysis.critical_path = critical_path(&domain);
    analysis.critical_switches = analysis
        .critical_path
        .windows(2)
        .filter(|w| w[0].lane != w[1].lane)
        .count();
    if analysis.window_us > 0.0 {
        if let (Some(first), Some(last)) = (
            analysis.critical_path.first(),
            analysis.critical_path.last(),
        ) {
            let span = last.start_us + last.dur_us - first.start_us;
            analysis.critical_coverage = (span / analysis.window_us).clamp(0.0, 1.0);
        }
    }
    analysis
}

/// Backward-greedy longest chain: start from the span that ends last,
/// then repeatedly hop to the span that was still running at (or
/// finished closest before) the current span's start — the work the
/// current span had to wait for. Deterministic: ties break on the
/// lexicographically last `(lane, name)`.
fn critical_path(domain: &[&Lane]) -> Vec<CriticalStep> {
    let mut spans: Vec<(&str, &SpanEvent)> = domain
        .iter()
        .flat_map(|l| l.spans.iter().map(move |s| (l.name.as_str(), s)))
        .filter(|(_, s)| s.dur_us > 0.0)
        .collect();
    if spans.is_empty() {
        return Vec::new();
    }
    spans.sort_by(|a, b| {
        a.1.start_us
            .total_cmp(&b.1.start_us)
            .then_with(|| a.0.cmp(b.0))
            .then_with(|| a.1.name.cmp(&b.1.name))
    });

    let key_end = |x: &(&str, &SpanEvent)| (x.1.end_us(), x.0.to_string(), x.1.name.clone());
    let mut current = spans
        .iter()
        .max_by(|a, b| {
            let (ea, la, na) = key_end(a);
            let (eb, lb, nb) = key_end(b);
            ea.total_cmp(&eb).then_with(|| (la, na).cmp(&(lb, nb)))
        })
        .copied()
        .expect("non-empty span set");
    let mut chain = vec![current];
    loop {
        let t = current.1.start_us;
        // Prefer a span still covering t (it gated the handoff); among
        // those, the latest-starting one. Otherwise the latest-ending
        // span that finished by t.
        let covering = spans
            .iter()
            .filter(|(_, s)| s.start_us < t && s.end_us() >= t)
            .max_by(|a, b| {
                a.1.start_us
                    .total_cmp(&b.1.start_us)
                    .then_with(|| a.0.cmp(b.0))
                    .then_with(|| a.1.name.cmp(&b.1.name))
            })
            .copied();
        let pred = covering.or_else(|| {
            spans
                .iter()
                .filter(|(_, s)| s.end_us() <= t)
                .max_by(|a, b| {
                    a.1.end_us()
                        .total_cmp(&b.1.end_us())
                        .then_with(|| a.0.cmp(b.0))
                        .then_with(|| a.1.name.cmp(&b.1.name))
                })
                .copied()
        });
        match pred {
            Some(p) => {
                chain.push(p);
                current = p;
            }
            None => break,
        }
    }
    chain.reverse();
    chain
        .into_iter()
        .map(|(lane, s)| CriticalStep {
            lane: lane.to_string(),
            name: s.name.clone(),
            start_us: s.start_us,
            dur_us: s.dur_us,
        })
        .collect()
}

/// One reconciliation row: a trace-side total checked against a
/// [`RunReport`] span wall.
#[derive(Clone, Debug, PartialEq)]
pub struct ReconcileRow {
    pub name: String,
    pub trace_seconds: f64,
    pub report_seconds: f64,
    /// `eq` rows must match within tolerance; `le` rows must not
    /// exceed the report side.
    pub upper_bound: bool,
    pub ok: bool,
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1e-3)
}

/// Check the trace's busy/stall totals against the report's span
/// walls. Only meaningful for wall-clock traces (virtual ticks are
/// modeled, not measured): virtual traces yield no rows.
pub fn reconcile(analysis: &TraceAnalysis, report: &RunReport) -> Vec<ReconcileRow> {
    if analysis.clock == TraceClock::Virtual {
        return Vec::new();
    }
    let span = |name: &str| {
        report
            .spans
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.seconds)
    };
    let mut rows = Vec::new();
    // step-3 extension: the trace's extend spans are the very same
    // per-shard measurements the report's span sums.
    if let Some(rep) = span("step3.extension") {
        // `+ 0.0` normalizes the empty sum, which is -0.0 (and which
        // `max(0.0)` may NOT normalize: IEEE maxNum treats the zeros
        // as equal and may return either).
        let trace_s = (analysis
            .lanes
            .iter()
            .filter(|l| l.stage == crate::keys::STAGE_STEP3)
            .map(|l| l.busy_us)
            .sum::<f64>()
            + 0.0)
            / 1.0e6;
        rows.push(ReconcileRow {
            name: "step3.extension".into(),
            trace_seconds: trace_s,
            report_seconds: rep,
            upper_bound: false,
            ok: close(trace_s, rep),
        });
    }
    if let Some(rep) = span("step3.merge_wait") {
        let trace_s = (analysis
            .lanes
            .iter()
            .map(|l| l.stalls.get(STALL_MERGE_WAIT).copied().unwrap_or(0.0))
            .sum::<f64>()
            + 0.0)
            / 1.0e6;
        rows.push(ReconcileRow {
            name: "step3.merge_wait".into(),
            trace_seconds: trace_s,
            report_seconds: rep,
            upper_bound: false,
            ok: close(trace_s, rep),
        });
    }
    // step-2 busy is per-item kernel time; the report's step2.wall span
    // bounds it from above (wall includes scheduling overhead).
    if let Some(rep) = span("step2.wall") {
        let threads: f64 = analysis
            .lanes
            .iter()
            .filter(|l| l.stage == crate::keys::STAGE_STEP2)
            .count()
            .max(1) as f64;
        let trace_s = (analysis
            .lanes
            .iter()
            .filter(|l| l.stage == crate::keys::STAGE_STEP2)
            .map(|l| l.busy_us)
            .sum::<f64>()
            + 0.0)
            / 1.0e6;
        rows.push(ReconcileRow {
            name: "step2.wall".into(),
            trace_seconds: trace_s,
            report_seconds: rep * threads,
            upper_bound: true,
            ok: trace_s <= rep * threads * (1.0 + 1e-6) + 1e-6,
        });
    }
    rows
}

// ---- text renderings -----------------------------------------------

fn fmt_us(us: f64) -> String {
    format!("{:.6}", us / 1.0e6)
}

/// `psc trace render`: an ASCII timeline, one row per lane, `#` busy,
/// `~` attributed stall spans, `.` idle, one section per clock domain.
pub fn render_timeline(trace: &Trace, width: usize) -> String {
    let width = width.max(10);
    let mut out = String::new();
    out.push_str(&format!(
        "Trace timeline ({} clock{})\n",
        trace.clock.name(),
        if trace.dropped > 0 {
            format!(", {} units dropped", trace.dropped)
        } else {
            String::new()
        }
    ));
    for sim in [false, true] {
        let lanes: Vec<&Lane> = trace
            .lanes
            .iter()
            .filter(|l| l.sim_clock == sim && !l.spans.is_empty())
            .collect();
        let Some((lo, hi)) = span_hull(lanes.iter().flat_map(|l| l.spans.iter())) else {
            continue;
        };
        let window = (hi - lo).max(1e-9);
        out.push_str(&format!(
            "\n{} [{} s .. {} s]\n",
            if sim {
                "simulated board clock"
            } else {
                "host clock"
            },
            fmt_us(lo),
            fmt_us(hi)
        ));
        let name_w = lanes.iter().map(|l| l.name.len()).max().unwrap_or(0).max(4);
        for lane in lanes {
            let mut row = vec![b'.'; width];
            for s in &lane.spans {
                let a = (((s.start_us - lo) / window) * width as f64).floor() as usize;
                let b = (((s.end_us() - lo) / window) * width as f64).ceil() as usize;
                let glyph = if stall_class(&s.name).is_some() {
                    b'~'
                } else {
                    b'#'
                };
                for cell in row.iter_mut().take(b.min(width)).skip(a.min(width)) {
                    // Busy wins over stall when both map to one cell.
                    if *cell != b'#' {
                        *cell = glyph;
                    }
                }
            }
            let bar = String::from_utf8(row).expect("ascii row");
            out.push_str(&format!(
                "  {:<name_w$} |{bar}| {:>3} spans\n",
                lane.name,
                lane.spans.len()
            ));
        }
    }
    out.push_str("\n  # busy   ~ attributed stall   . idle\n");
    out
}

/// `psc trace analyze`: per-lane accounting, stall totals, and the
/// critical path.
pub fn render_analysis(analysis: &TraceAnalysis) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Trace analysis ({} clock, {} lanes, {} units dropped)\n",
        analysis.clock.name(),
        analysis.lanes.len(),
        analysis.dropped
    ));
    out.push_str(&format!(
        "\nLane accounting (busy + stalls == lane wall)\n  {:<24} {:>12} {:>12} {:>7}   stalls\n",
        "lane", "wall s", "busy s", "busy%"
    ));
    for lane in &analysis.lanes {
        let busy_pct = if lane.wall_us > 0.0 {
            lane.busy_us / lane.wall_us * 100.0
        } else {
            100.0
        };
        let stalls = lane
            .stalls
            .iter()
            .filter(|(_, us)| **us > 0.0)
            .map(|(class, us)| format!("{class} {}", fmt_us(*us)))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "  {:<24} {:>12} {:>12} {:>6.2}%   {}\n",
            lane.name,
            fmt_us(lane.wall_us),
            fmt_us(lane.busy_us),
            busy_pct,
            stalls
        ));
    }
    out.push_str("\nStall totals\n");
    if analysis.stall_totals.values().all(|us| *us <= 0.0) {
        out.push_str("  (no stalls attributed)\n");
    }
    for (class, us) in &analysis.stall_totals {
        if *us <= 0.0 {
            continue;
        }
        out.push_str(&format!("  {:<24} {:>12} s\n", class, fmt_us(*us)));
    }
    out.push_str(&format!(
        "\nCritical path ({} steps, {} lane switches, {:.2}% of window)\n",
        analysis.critical_path.len(),
        analysis.critical_switches,
        analysis.critical_coverage * 100.0
    ));
    for step in &analysis.critical_path {
        out.push_str(&format!(
            "  {:>12} s  +{:<12} {:<24} {}\n",
            fmt_us(step.start_us),
            fmt_us(step.dur_us),
            step.lane,
            step.name
        ));
    }
    out
}

/// Reconciliation rows as `psc trace analyze --report FILE` prints.
pub fn render_reconcile(rows: &[ReconcileRow]) -> String {
    let mut out = String::new();
    out.push_str("\nRunReport reconciliation\n");
    if rows.is_empty() {
        out.push_str("  (virtual clock or no matching spans: nothing to reconcile)\n");
        return out;
    }
    for r in rows {
        out.push_str(&format!(
            "  {:<24} trace {:>12} s  report {:>12} s  {}  [{}]\n",
            r.name,
            format!("{:.6}", r.trace_seconds),
            format!("{:.6}", r.report_seconds),
            if r.upper_bound { "<=" } else { "==" },
            if r.ok { "ok" } else { "MISMATCH" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{stage_of, InstantEvent, RingTracer, Tracer, UnitEvent, UnitTrace};

    fn lane(name: &str, sim: bool, spans: Vec<(&str, f64, f64)>) -> Lane {
        Lane {
            name: name.to_string(),
            stage: stage_of(name).to_string(),
            sim_clock: sim,
            spans: spans
                .into_iter()
                .map(|(n, start, dur)| SpanEvent {
                    name: n.to_string(),
                    start_us: start,
                    dur_us: dur,
                })
                .collect(),
            instants: Vec::new(),
        }
    }

    fn two_stage_trace() -> Trace {
        Trace {
            clock: TraceClock::Wall,
            dropped: 0,
            meta: Vec::new(),
            lanes: vec![
                lane("step2.w0", false, vec![("kernel", 0.0, 100.0)]),
                lane("step2.w1", false, vec![("kernel", 0.0, 60.0)]),
                lane(
                    "step3.w0",
                    false,
                    vec![("extend", 100.0, 50.0), ("merge_wait", 150.0, 10.0)],
                ),
            ],
        }
    }

    #[test]
    fn attribution_is_exhaustive_per_lane() {
        let analysis = analyze(&two_stage_trace());
        assert_eq!(analysis.lanes.len(), 3);
        for lane in &analysis.lanes {
            assert!(
                (lane.accounted_us() - lane.wall_us).abs() < 1e-9,
                "busy {} + stalls {} != wall {} on {}",
                lane.busy_us,
                lane.stall_us(),
                lane.wall_us,
                lane.name
            );
        }
        // step2.w1 idles 40µs inside step2's 100µs window -> tail.
        let w1 = &analysis.lanes[1];
        assert_eq!(w1.name, "step2.w1");
        assert_eq!(w1.stalls.get(STALL_SCHEDULER_TAIL), Some(&40.0));
        // step3.w0: 50 extend busy, 10 merge-wait, 0 residual.
        let w3 = &analysis.lanes[2];
        assert_eq!(w3.busy_us, 50.0);
        assert_eq!(w3.stalls.get(STALL_MERGE_WAIT), Some(&10.0));
        assert_eq!(w3.stalls.get(STALL_SCHEDULER_TAIL), Some(&0.0));
    }

    #[test]
    fn stage_windows_do_not_leak_across_stages() {
        // step2 lanes must not absorb step3's duration as tail stall.
        let analysis = analyze(&two_stage_trace());
        assert_eq!(analysis.lanes[0].wall_us, 100.0);
        assert_eq!(analysis.lanes[2].wall_us, 60.0);
        assert_eq!(analysis.window_us, 160.0);
    }

    #[test]
    fn critical_path_crosses_lanes_backward() {
        let analysis = analyze(&two_stage_trace());
        let names: Vec<(&str, &str)> = analysis
            .critical_path
            .iter()
            .map(|s| (s.lane.as_str(), s.name.as_str()))
            .collect();
        // merge_wait ends last; extend covered its start; the long
        // step-2 kernel covered extend's start.
        assert_eq!(
            names,
            vec![
                ("step2.w0", "kernel"),
                ("step3.w0", "extend"),
                ("step3.w0", "merge_wait"),
            ]
        );
        assert_eq!(analysis.critical_switches, 1);
        assert!((analysis.critical_coverage - 1.0).abs() < 1e-12);
    }

    #[test]
    fn board_lanes_get_board_idle_and_backoff() {
        let trace = Trace {
            clock: TraceClock::Wall,
            dropped: 0,
            meta: Vec::new(),
            lanes: vec![
                lane(
                    "board.compute.fpga0",
                    true,
                    vec![("compute", 0.0, 70.0), ("retry_backoff", 70.0, 10.0)],
                ),
                lane("board.compute.fpga1", true, vec![("compute", 0.0, 40.0)]),
            ],
        };
        let analysis = analyze(&trace);
        let f0 = &analysis.lanes[0];
        assert_eq!(f0.stalls.get(STALL_RETRY_BACKOFF), Some(&10.0));
        assert_eq!(f0.stalls.get(STALL_BOARD_IDLE), Some(&0.0));
        let f1 = &analysis.lanes[1];
        assert_eq!(f1.stalls.get(STALL_BOARD_IDLE), Some(&40.0));
        assert!(
            analysis
                .stall_totals
                .get(STALL_RETRY_BACKOFF)
                .copied()
                .unwrap_or(0.0)
                > 0.0
        );
    }

    #[test]
    fn reconcile_matches_report_spans() {
        use crate::report::SpanReport;
        let analysis = analyze(&two_stage_trace());
        let mut report = RunReport::new();
        report.spans = vec![
            SpanReport {
                name: "step2.wall".into(),
                seconds: 120.0 / 1.0e6,
                count: 1,
            },
            SpanReport {
                name: "step3.extension".into(),
                seconds: 50.0 / 1.0e6,
                count: 1,
            },
            SpanReport {
                name: "step3.merge_wait".into(),
                seconds: 10.0 / 1.0e6,
                count: 1,
            },
        ];
        let rows = reconcile(&analysis, &report);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.ok), "{rows:#?}");
        // A lying report must be caught.
        report.spans[1].seconds = 33.0 / 1.0e6;
        let rows = reconcile(&analysis, &report);
        let ext = rows.iter().find(|r| r.name == "step3.extension").unwrap();
        assert!(!ext.ok);
    }

    #[test]
    fn virtual_clock_reconcile_is_empty() {
        let mut trace = two_stage_trace();
        trace.clock = TraceClock::Virtual;
        let rows = reconcile(&analyze(&trace), &RunReport::new());
        assert!(rows.is_empty());
        assert!(render_reconcile(&rows).contains("nothing to reconcile"));
    }

    #[test]
    fn analysis_of_ring_tracer_output_is_deterministic() {
        let build = || {
            let t = RingTracer::new(TraceClock::Virtual);
            for i in 0..16u64 {
                t.commit(UnitTrace {
                    stage: "step2".into(),
                    index: i,
                    lane: 0,
                    start_seconds: None,
                    sim_clock: false,
                    events: vec![UnitEvent::span("kernel", 0.0, (i % 5) + 1)],
                });
            }
            render_analysis(&analyze(&t.finish(&[])))
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn renders_cover_all_sections() {
        let trace = two_stage_trace();
        let timeline = render_timeline(&trace, 60);
        assert!(timeline.contains("host clock"), "{timeline}");
        assert!(timeline.contains("step2.w0"), "{timeline}");
        assert!(timeline.contains('#'), "{timeline}");
        let analysis = analyze(&trace);
        let text = render_analysis(&analysis);
        for needle in [
            "Lane accounting",
            "Stall totals",
            "scheduler-tail",
            "merge-wait",
            "Critical path (3 steps, 1 lane switches",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn empty_trace_analyzes_cleanly() {
        let analysis = analyze(&Trace::default());
        assert!(analysis.lanes.is_empty());
        assert!(analysis.critical_path.is_empty());
        assert_eq!(analysis.window_us, 0.0);
        let _ = render_analysis(&analysis);
        let _ = render_timeline(&Trace::default(), 40);
    }

    #[test]
    fn instants_do_not_affect_accounting() {
        let mut trace = two_stage_trace();
        trace.lanes[0].instants.push(InstantEvent {
            name: "depth".into(),
            at_us: 5.0,
            value: 3,
        });
        let with = analyze(&trace);
        let without = analyze(&two_stage_trace());
        assert_eq!(with.lanes, without.lanes);
    }
}
