//! Minimal JSON value model, writer and parser.
//!
//! The build container is offline, so — like the bench report writer —
//! serialization is hand-rolled on std alone. The model is deliberately
//! small: enough for [`crate::report::RunReport`] round trips and for
//! reading reports back in `psc report`.

use std::fmt;

/// A JSON value. Object member order is preserved (reports are diffed
/// as text, so stable ordering matters).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// A parse error with byte offset context.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer view of a number; rejects negatives and fractions.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parse one JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content after document"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Integers print without a fraction; everything else uses Rust's
/// shortest round-trip float formatting. Non-finite values have no JSON
/// representation and become `null`.
fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(&format!("unexpected byte {:?}", b as char))),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: expect a trailing \uXXXX.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let code =
                                        0x10000 + ((hi - 0xd800) << 10) + (lo.wrapping_sub(0xdc00));
                                    char::from_u32(code)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            // hex4 advanced past the digits; undo the
                            // shared `pos += 1` below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) {
        let text = v.to_string_pretty();
        assert_eq!(&Json::parse(&text).unwrap(), v, "{text}");
    }

    #[test]
    fn scalars_round_trip() {
        roundtrip(&Json::Null);
        roundtrip(&Json::Bool(true));
        roundtrip(&Json::Bool(false));
        roundtrip(&Json::Num(0.0));
        roundtrip(&Json::Num(-17.0));
        roundtrip(&Json::Num(3.25));
        roundtrip(&Json::Num(1.0e-9));
        roundtrip(&Json::Num(123456789012345.0));
        roundtrip(&Json::Str("plain".into()));
        roundtrip(&Json::Str("tricky \"x\" \\ \n\t\r µ→".into()));
    }

    #[test]
    fn containers_round_trip() {
        roundtrip(&Json::Arr(vec![]));
        roundtrip(&Json::Obj(vec![]));
        roundtrip(&Json::Arr(vec![
            Json::Num(1.0),
            Json::Str("two".into()),
            Json::Arr(vec![Json::Null]),
        ]));
        roundtrip(&Json::Obj(vec![
            ("a".into(), Json::Num(1.0)),
            (
                "nested".into(),
                Json::Obj(vec![("b".into(), Json::Arr(vec![Json::Bool(false)]))]),
            ),
        ]));
    }

    #[test]
    fn parses_foreign_formatting() {
        let v = Json::parse("  {\"a\":[1,2.5,-3e2],\"b\":\"\\u0041\\u00e9\"}  ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2], Json::Num(-300.0));
        assert_eq!(v.get("b").unwrap().as_str(), Some("Aé"));
    }

    #[test]
    fn surrogate_pairs_parse() {
        let v = Json::parse("\"\\ud83e\\udde0\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{1f9e0}"));
    }

    #[test]
    fn errors_carry_position() {
        let e = Json::parse("{\"a\": }").unwrap_err();
        assert_eq!(e.offset, 6);
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("[1] extra").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn integer_views() {
        assert_eq!(Json::Num(42.0).as_u64(), Some(42));
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(42.0).as_f64(), Some(42.0));
    }

    #[test]
    fn member_lookup() {
        let v = Json::parse("{\"x\": 1, \"y\": 2}").unwrap();
        assert_eq!(v.get("y").unwrap().as_u64(), Some(2));
        assert!(v.get("z").is_none());
        assert!(Json::Num(1.0).get("x").is_none());
    }
}
