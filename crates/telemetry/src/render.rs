//! Paper-style text renderings of a [`RunReport`].
//!
//! * [`render_breakdown`] — the Table 1/7 per-step percentage table;
//! * [`render_utilization`] — the Table 5-style per-FPGA PE utilization
//!   view, extended with stall share and FIFO high-water marks;
//! * [`render_histogram`] — ASCII-bar log2 histograms (per-key pair
//!   counts);
//! * [`render_report`] — all sections combined, as `psc report` prints.

use crate::recorder::Histogram;
use crate::report::RunReport;

/// Seconds with sensible precision across the ns..s range.
fn fmt_seconds(s: f64) -> String {
    if s == 0.0 {
        "0".to_string()
    } else if s.abs() < 1e-3 {
        format!("{:.3e}", s)
    } else if s.abs() < 1.0 {
        format!("{:.4}", s)
    } else {
        format!("{:.3}", s)
    }
}

/// Table 1/7-style breakdown: effective seconds and percent per step.
pub fn render_breakdown(report: &RunReport) -> String {
    let mut out = String::new();
    out.push_str("Step time breakdown (paper Table 1/7 accounting)\n");
    out.push_str(&format!(
        "  {:<10} {:>12} {:>8}   {}\n",
        "step", "seconds", "%", "notes"
    ));
    for step in &report.steps {
        let secs = step.effective_seconds();
        let total = report.total_seconds();
        let pct = if total > 0.0 {
            secs / total * 100.0
        } else {
            0.0
        };
        let note = if step.accelerated_seconds.is_some() {
            format!("accelerated (host wall {})", fmt_seconds(step.wall_seconds))
        } else {
            String::new()
        };
        out.push_str(&format!(
            "  {:<10} {:>12} {:>7.2}%   {}\n",
            step.name,
            fmt_seconds(secs),
            pct,
            note
        ));
    }
    let total = report.total_seconds();
    out.push_str(&format!(
        "  {:<10} {:>12} {:>7.2}%\n",
        "total",
        fmt_seconds(total),
        if total > 0.0 { 100.0 } else { 0.0 }
    ));
    if total <= 0.0 {
        out.push_str("  (no timed steps: stripped or empty run, percentages omitted)\n");
    }
    out
}

/// Table 5-style per-FPGA utilization, plus stall share, FIFO peaks,
/// the DMA/sync/setup split from the board model, and — when the run
/// saw any — the fault/recovery counters.
pub fn render_utilization(report: &RunReport) -> String {
    let Some(board) = &report.board else {
        return "No board telemetry (software backend run).\n".to_string();
    };
    let mut out = String::new();
    out.push_str(&format!(
        "Simulated RASC board ({} PEs per FPGA, {} entries, {} hits)\n",
        board.pe_count, board.entries, board.hit_count
    ));
    out.push_str(&format!(
        "  {:<6} {:>14} {:>12} {:>8} {:>12} {:>10}\n",
        "fpga", "cycles", "stalls", "stall%", "util%", "fifo_peak"
    ));
    for (i, f) in board.fpga.iter().enumerate() {
        let stall_pct = if f.cycles > 0 {
            f.stall_cycles as f64 / f.cycles as f64 * 100.0
        } else {
            0.0
        };
        out.push_str(&format!(
            "  {:<6} {:>14} {:>12} {:>7.2}% {:>11.2}% {:>10}\n",
            i,
            f.cycles,
            f.stall_cycles,
            stall_pct,
            f.utilization * 100.0,
            f.fifo_peak
        ));
    }
    out.push_str(&format!(
        "  DMA: {} B in ({} s wire), {} B out ({} s wire)\n",
        board.bytes_in,
        fmt_seconds(board.wire_in_seconds),
        board.bytes_out,
        fmt_seconds(board.wire_out_seconds)
    ));
    out.push_str(&format!(
        "  sync {} s, setup {} s, accelerated total {} s\n",
        fmt_seconds(board.sync_seconds),
        fmt_seconds(board.setup_seconds),
        fmt_seconds(board.accelerated_seconds)
    ));
    out.push_str(&format!(
        "  DMA/compute overlap: {} s ({:.2}% occupancy, double-buffered dispatch)\n",
        fmt_seconds(board.overlap_seconds),
        board.overlap_occupancy * 100.0
    ));
    let f = &board.faults;
    if f.any() {
        out.push_str(&format!(
            "  Faults: {} injected, {} detected ({} checksum, {} watchdog, {} protocol)\n",
            f.injected,
            f.detected,
            f.detectors.checksum,
            f.detectors.watchdog,
            f.detectors.protocol
        ));
        out.push_str(&format!(
            "  Recovery: {} retries ({} backoff cycles), {} entries degraded to software\n",
            f.recovery.retries, f.recovery.backoff_cycles, f.recovery.entries_degraded
        ));
    }
    out
}

/// Fleet section: board count, per-board occupancy spread, steal and
/// quarantine activity, and the modeled cluster-speedup ladder. Empty
/// for software and single-board runs (they record no fleet keys).
pub fn render_fleet(report: &RunReport) -> String {
    let Some(boards) = report.counter("fleet.boards") else {
        return String::new();
    };
    let mut out = String::new();
    out.push_str(&format!("Fleet ({boards} boards, work-stealing)\n"));
    let occ: Vec<u64> = report
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("fleet.board_occupancy."))
        .map(|&(_, v)| v)
        .collect();
    if !occ.is_empty() {
        let min = occ.iter().copied().min().unwrap_or(0);
        let max = occ.iter().copied().max().unwrap_or(0);
        let mean = occ.iter().sum::<u64>() as f64 / occ.len() as f64;
        out.push_str(&format!(
            "  occupancy: min {min}% mean {mean:.1}% max {max}%\n"
        ));
    }
    out.push_str(&format!(
        "  steals {}, boards quarantined {}, entries re-dispatched {}\n",
        report.counter("fleet.steals").unwrap_or(0),
        report.counter("fleet.quarantined").unwrap_or(0),
        report.counter("fleet.redispatched").unwrap_or(0),
    ));
    // Modeled ladder: speedup of each fleet size over the 1-board
    // replay of the same dispatch schedule.
    let base = report
        .spans
        .iter()
        .find(|s| s.name == "fleet.modeled_b1")
        .map(|s| s.seconds)
        .filter(|&s| s > 0.0);
    if let Some(base) = base {
        // Span order is lexicographic (b1, b16, b2, ...); sort the
        // ladder numerically for display.
        let mut rungs: Vec<(u64, f64)> = report
            .spans
            .iter()
            .filter(|s| s.seconds > 0.0)
            .filter_map(|s| {
                let n = s.name.strip_prefix("fleet.modeled_b")?;
                Some((n.parse().ok()?, s.seconds))
            })
            .collect();
        rungs.sort_unstable_by_key(|&(n, _)| n);
        out.push_str("  modeled speedup:");
        for (n, seconds) in rungs {
            out.push_str(&format!(" b{n} {:.2}x", base / seconds));
        }
        out.push('\n');
    }
    out
}

/// One log2 histogram with ASCII bars scaled to `width` columns.
pub fn render_histogram(name: &str, h: &Histogram, width: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{name}: n={} mean={:.1} min={} max={}\n",
        h.count,
        h.mean(),
        h.min,
        h.max
    ));
    if h.count == 0 {
        return out;
    }
    let tallest = h.buckets.iter().copied().max().unwrap_or(0).max(1);
    for (b, &c) in h.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let bar_len = ((c as f64 / tallest as f64) * width as f64).ceil() as usize;
        out.push_str(&format!(
            "  {:>21} {:>10} {}\n",
            Histogram::bucket_label(b),
            c,
            "#".repeat(bar_len)
        ));
    }
    out
}

/// The full `psc report` output: metadata, breakdown, board view,
/// counters, spans, and histograms.
pub fn render_report(report: &RunReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("Run report (schema v{})\n", report.schema_version));
    if !report.meta.is_empty() {
        for (k, v) in &report.meta {
            out.push_str(&format!("  {k} = {v}\n"));
        }
    }
    if let Some(reason) = report.meta_value("step2.kernel.downgrade") {
        let requested = report.meta_value("step2.kernel.requested").unwrap_or("?");
        let resolved = report.meta_value("step2.kernel").unwrap_or("?");
        out.push_str(&format!(
            "  note: step-2 kernel downgraded {requested} -> {resolved} ({reason})\n"
        ));
    }
    out.push('\n');
    out.push_str(&render_breakdown(report));
    if report.counter("step3.anchors") == Some(0) {
        out.push_str(
            "  note: no anchors survived step 2 — step-3 sections are \
             empty, percentages cover steps 1-2 only\n",
        );
    }
    out.push('\n');
    out.push_str(&render_utilization(report));
    let fleet = render_fleet(report);
    if !fleet.is_empty() {
        out.push('\n');
        out.push_str(&fleet);
    }
    if !report.counters.is_empty() {
        out.push_str("\nCounters\n");
        for (k, v) in &report.counters {
            out.push_str(&format!("  {:<36} {:>14}\n", k, v));
        }
    }
    if !report.spans.is_empty() {
        out.push_str("\nSpans\n");
        for s in &report.spans {
            out.push_str(&format!(
                "  {:<36} {:>12} s  ×{}\n",
                s.name,
                fmt_seconds(s.seconds),
                s.count
            ));
        }
    }
    for (name, h) in &report.histograms {
        out.push('\n');
        out.push_str(&render_histogram(name, h, 40));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{
        BoardTelemetry, DetectorTelemetry, FaultTelemetry, FpgaTelemetry, RecoveryTelemetry,
        SpanReport, StepReport,
    };

    fn report_with_board() -> RunReport {
        let mut r = RunReport::new();
        r.meta.push(("backend".into(), "rasc".into()));
        r.steps = vec![
            StepReport {
                name: "step1".into(),
                wall_seconds: 1.0,
                accelerated_seconds: None,
            },
            StepReport {
                name: "step2".into(),
                wall_seconds: 8.0,
                accelerated_seconds: Some(1.0),
            },
        ];
        r.counters.push(("step2.pairs".into(), 1000));
        let mut h = Histogram::default();
        for v in [1, 2, 2, 9] {
            h.observe(v);
        }
        r.histograms.push(("step2.pairs_per_key".into(), h));
        r.board = Some(BoardTelemetry {
            pe_count: 192,
            fpga: vec![FpgaTelemetry {
                cycles: 1000,
                stall_cycles: 100,
                busy_pe_cycles: 96_000,
                fifo_peak: 17,
                utilization: 0.5,
            }],
            bytes_in: 4096,
            bytes_out: 64,
            wire_in_seconds: 1.28e-6,
            wire_out_seconds: 2.0e-8,
            sync_seconds: 1e-4,
            setup_seconds: 0.8,
            accelerated_seconds: 1.0,
            overlap_seconds: 0.25,
            overlap_occupancy: 0.625,
            entries: 10,
            hit_count: 8,
            faults: FaultTelemetry::default(),
        });
        r
    }

    #[test]
    fn breakdown_shows_percentages() {
        let text = render_breakdown(&report_with_board());
        assert!(text.contains("step1"), "{text}");
        assert!(text.contains("50.00%"), "{text}");
        assert!(text.contains("accelerated"), "{text}");
        assert!(text.contains("total"), "{text}");
    }

    #[test]
    fn utilization_table_covers_fpgas() {
        let text = render_utilization(&report_with_board());
        assert!(text.contains("fifo_peak"), "{text}");
        assert!(text.contains("17"), "{text}");
        assert!(text.contains("10.00%"), "{text}"); // stall share
        assert!(text.contains("50.00%"), "{text}"); // utilization
        assert!(text.contains("4096 B in"), "{text}");
        assert!(text.contains("62.50% occupancy"), "{text}");
    }

    #[test]
    fn fault_lines_render_only_when_faults_occurred() {
        let clean = render_utilization(&report_with_board());
        assert!(!clean.contains("Faults:"), "{clean}");
        let mut r = report_with_board();
        r.board.as_mut().unwrap().faults = FaultTelemetry {
            injected: 5,
            detected: 4,
            detectors: DetectorTelemetry {
                checksum: 2,
                watchdog: 1,
                protocol: 1,
            },
            recovery: RecoveryTelemetry {
                retries: 3,
                entries_degraded: 1,
                backoff_cycles: 1792,
            },
        };
        let text = render_utilization(&r);
        assert!(
            text.contains("Faults: 5 injected, 4 detected (2 checksum, 1 watchdog, 1 protocol)"),
            "{text}"
        );
        assert!(
            text.contains("Recovery: 3 retries (1792 backoff cycles), 1 entries degraded"),
            "{text}"
        );
    }

    #[test]
    fn software_run_has_no_board_section() {
        let mut r = report_with_board();
        r.board = None;
        let text = render_utilization(&r);
        assert!(text.contains("software backend"), "{text}");
    }

    #[test]
    fn zero_anchor_run_says_so_explicitly() {
        let mut r = report_with_board();
        r.counters.push(("step3.anchors".into(), 0));
        let text = render_report(&r);
        assert!(text.contains("no anchors survived step 2"), "{text}");
        // A run with anchors must not carry the note.
        let mut ok = report_with_board();
        ok.counters.push(("step3.anchors".into(), 17));
        assert!(!render_report(&ok).contains("no anchors survived"));
    }

    #[test]
    fn zero_total_breakdown_omits_percentages() {
        let mut r = report_with_board();
        for s in &mut r.steps {
            s.wall_seconds = 0.0;
            s.accelerated_seconds = None;
        }
        let text = render_breakdown(&r);
        assert!(text.contains("no timed steps"), "{text}");
        assert!(!text.contains("NaN"), "{text}");
    }

    #[test]
    fn histogram_bars_scale() {
        let mut h = Histogram::default();
        for _ in 0..40 {
            h.observe(3);
        }
        h.observe(100);
        let text = render_histogram("pairs", &h, 40);
        assert!(text.contains("2-3"), "{text}");
        assert!(text.contains("64-127"), "{text}");
        // Tallest bucket gets the full width, the singleton a short bar.
        assert!(text.contains(&"#".repeat(40)), "{text}");
        assert!(!text.contains(&"#".repeat(41)), "{text}");
    }

    #[test]
    fn kernel_downgrade_note_renders_only_when_present() {
        let clean = render_report(&report_with_board());
        assert!(!clean.contains("downgraded"), "{clean}");
        let mut r = report_with_board();
        r.meta.push(("step2.kernel".into(), "profile".into()));
        r.meta
            .push(("step2.kernel.requested".into(), "wide".into()));
        r.meta.push((
            "step2.kernel.downgrade".into(),
            "window overflows the i16 lane accumulator".into(),
        ));
        let text = render_report(&r);
        assert!(
            text.contains(
                "note: step-2 kernel downgraded wide -> profile \
                 (window overflows the i16 lane accumulator)"
            ),
            "{text}"
        );
    }

    #[test]
    fn fleet_section_renders_only_for_fleet_runs() {
        let clean = render_report(&report_with_board());
        assert!(!clean.contains("Fleet ("), "{clean}");
        let mut r = report_with_board();
        r.counters.push(("fleet.boards".into(), 4));
        r.counters.push(("fleet.steals".into(), 7));
        r.counters.push(("fleet.quarantined".into(), 1));
        r.counters.push(("fleet.redispatched".into(), 3));
        for (b, occ) in [(0usize, 90u64), (1, 40), (2, 80), (3, 70)] {
            r.counters
                .push((format!("fleet.board_occupancy.b{b:02}"), occ));
        }
        r.spans.push(SpanReport {
            name: "fleet.modeled_b1".into(),
            seconds: 8.0,
            count: 1,
        });
        r.spans.push(SpanReport {
            name: "fleet.modeled_b4".into(),
            seconds: 2.0,
            count: 1,
        });
        let text = render_report(&r);
        assert!(text.contains("Fleet (4 boards, work-stealing)"), "{text}");
        assert!(
            text.contains("occupancy: min 40% mean 70.0% max 90%"),
            "{text}"
        );
        assert!(
            text.contains("steals 7, boards quarantined 1, entries re-dispatched 3"),
            "{text}"
        );
        assert!(
            text.contains("modeled speedup: b1 1.00x b4 4.00x"),
            "{text}"
        );
    }

    #[test]
    fn full_report_renders_all_sections() {
        let text = render_report(&report_with_board());
        for needle in [
            "schema v2",
            "backend = rasc",
            "Step time breakdown",
            "Simulated RASC board",
            "Counters",
            "step2.pairs_per_key",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
