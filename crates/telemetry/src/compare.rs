//! Regression diffing between two [`RunReport`]s — the engine behind
//! `psc report --compare OLD NEW`, CI's first automated perf gate.
//!
//! Wall-clock rows (step effective seconds, total, span walls) are
//! gated by `max_wall_regress_pct`; counter rows by
//! `max_counter_regress_pct`. A row regresses when its gate is set,
//! its old value is nonzero, and its percent delta exceeds the gate.
//! Rows appearing on only one side are reported (as `added` /
//! `removed`) but never gate — a renamed counter should not fail CI
//! silently pretending to be a 100% regression.

use crate::report::RunReport;

/// What a [`DeltaRow`] measures, hence which threshold gates it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaKind {
    /// Seconds: step effective walls, the total, span walls.
    Wall,
    /// Event counts: `RunReport.counters`.
    Counter,
}

impl DeltaKind {
    pub fn name(&self) -> &'static str {
        match self {
            DeltaKind::Wall => "wall",
            DeltaKind::Counter => "counter",
        }
    }
}

/// Regression-gate thresholds, percent. `None` disables that gate.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CompareConfig {
    pub max_wall_regress_pct: Option<f64>,
    pub max_counter_regress_pct: Option<f64>,
}

/// One compared metric.
#[derive(Clone, Debug, PartialEq)]
pub struct DeltaRow {
    pub name: String,
    pub kind: DeltaKind,
    pub old: f64,
    pub new: f64,
    /// `None` when the old side is zero or missing (delta undefined).
    pub delta_pct: Option<f64>,
    /// Present in only one report.
    pub added: bool,
    pub removed: bool,
    /// Tripped its gate.
    pub regression: bool,
}

/// The full diff `psc report --compare` renders.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReportDiff {
    pub rows: Vec<DeltaRow>,
    pub config: CompareConfig,
}

impl ReportDiff {
    pub fn regressions(&self) -> Vec<&DeltaRow> {
        self.rows.iter().filter(|r| r.regression).collect()
    }
}

fn push_row(
    rows: &mut Vec<DeltaRow>,
    name: &str,
    kind: DeltaKind,
    old: Option<f64>,
    new: Option<f64>,
    gate: Option<f64>,
) {
    let (o, n) = (old.unwrap_or(0.0), new.unwrap_or(0.0));
    if old.is_none() && new.is_none() {
        return;
    }
    let delta_pct = if old.is_some() && o != 0.0 {
        Some((n - o) / o * 100.0)
    } else {
        None
    };
    let regression = match (gate, delta_pct) {
        (Some(limit), Some(pct)) => old.is_some() && new.is_some() && pct > limit,
        _ => false,
    };
    rows.push(DeltaRow {
        name: name.to_string(),
        kind,
        old: o,
        new: n,
        delta_pct,
        added: old.is_none(),
        removed: new.is_none(),
        regression,
    });
}

/// Counter families keyed by a run-shape parameter (a board id): the
/// per-key rows exist in one run exactly when that board exists, so a
/// plain name-union diff of two runs at different board counts would
/// report every extra board as an `added`/`removed` row. Each family
/// collapses to one informational row carrying the per-key mean; the
/// family row never gates (occupancy is a shape metric, not a cost).
const KEYED_COUNTER_FAMILIES: &[&str] = &["fleet.board_occupancy."];

fn family_of(name: &str) -> Option<&'static str> {
    KEYED_COUNTER_FAMILIES
        .iter()
        .copied()
        .find(|p| name.starts_with(p))
}

/// Mean over the family's member counters, `None` when the report has
/// no member (that run was not a fleet run).
fn family_mean(r: &RunReport, prefix: &str) -> Option<f64> {
    let vals: Vec<u64> = r
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with(prefix))
        .map(|&(_, v)| v)
        .collect();
    if vals.is_empty() {
        None
    } else {
        Some(vals.iter().sum::<u64>() as f64 / vals.len() as f64)
    }
}

/// Sorted union of the names two metric lists cover.
fn name_union<'a>(
    old: impl Iterator<Item = &'a str>,
    new: impl Iterator<Item = &'a str>,
) -> Vec<String> {
    let mut names: Vec<String> = old.map(str::to_string).collect();
    for n in new {
        if !names.iter().any(|x| x == n) {
            names.push(n.to_string());
        }
    }
    names
}

/// Diff `new` against `old` under `config`'s gates.
pub fn diff_reports(old: &RunReport, new: &RunReport, config: CompareConfig) -> ReportDiff {
    let mut rows = Vec::new();
    let wall_gate = config.max_wall_regress_pct;
    let counter_gate = config.max_counter_regress_pct;

    for name in name_union(
        old.steps.iter().map(|s| s.name.as_str()),
        new.steps.iter().map(|s| s.name.as_str()),
    ) {
        let find = |r: &RunReport| {
            r.steps
                .iter()
                .find(|s| s.name == name)
                .map(|s| s.effective_seconds())
        };
        push_row(
            &mut rows,
            &format!("step:{name}"),
            DeltaKind::Wall,
            find(old),
            find(new),
            wall_gate,
        );
    }
    push_row(
        &mut rows,
        "total",
        DeltaKind::Wall,
        Some(old.total_seconds()),
        Some(new.total_seconds()),
        wall_gate,
    );
    for name in name_union(
        old.spans.iter().map(|s| s.name.as_str()),
        new.spans.iter().map(|s| s.name.as_str()),
    ) {
        let find = |r: &RunReport| r.spans.iter().find(|s| s.name == name).map(|s| s.seconds);
        push_row(
            &mut rows,
            &format!("span:{name}"),
            DeltaKind::Wall,
            find(old),
            find(new),
            wall_gate,
        );
    }
    for name in name_union(
        old.counters.iter().map(|(k, _)| k.as_str()),
        new.counters.iter().map(|(k, _)| k.as_str()),
    ) {
        if family_of(&name).is_some() {
            continue; // collapsed below
        }
        let find = |r: &RunReport| {
            r.counters
                .iter()
                .find(|(k, _)| *k == name)
                .map(|(_, v)| *v as f64)
        };
        push_row(
            &mut rows,
            &format!("counter:{name}"),
            DeltaKind::Counter,
            find(old),
            find(new),
            counter_gate,
        );
    }
    for prefix in KEYED_COUNTER_FAMILIES {
        let (o, n) = (family_mean(old, prefix), family_mean(new, prefix));
        if o.is_none() && n.is_none() {
            continue;
        }
        push_row(
            &mut rows,
            &format!("counter:{prefix}*"),
            DeltaKind::Counter,
            o,
            n,
            None,
        );
    }
    ReportDiff { rows, config }
}

fn fmt_value(kind: DeltaKind, v: f64) -> String {
    match kind {
        DeltaKind::Wall => format!("{v:.6}"),
        DeltaKind::Counter => format!("{}", v as u64),
    }
}

/// Text diff as `psc report --compare` prints it.
pub fn render_diff(diff: &ReportDiff) -> String {
    let mut out = String::new();
    out.push_str("Report comparison (old -> new)\n");
    match (
        diff.config.max_wall_regress_pct,
        diff.config.max_counter_regress_pct,
    ) {
        (None, None) => out.push_str("  gates: none (informational diff)\n"),
        (w, c) => {
            let gate = |g: Option<f64>| match g {
                Some(pct) => format!("+{pct}%"),
                None => "off".to_string(),
            };
            out.push_str(&format!(
                "  gates: wall {} / counter {}\n",
                gate(w),
                gate(c)
            ));
        }
    }
    out.push_str(&format!(
        "  {:<36} {:>14} {:>14} {:>10}\n",
        "metric", "old", "new", "delta"
    ));
    for r in &diff.rows {
        let delta = if r.added {
            "added".to_string()
        } else if r.removed {
            "removed".to_string()
        } else {
            match r.delta_pct {
                Some(pct) => format!("{pct:+.2}%"),
                None => "n/a".to_string(),
            }
        };
        out.push_str(&format!(
            "  {:<36} {:>14} {:>14} {:>10}{}\n",
            r.name,
            fmt_value(r.kind, r.old),
            fmt_value(r.kind, r.new),
            delta,
            if r.regression { "  REGRESSION" } else { "" }
        ));
    }
    let bad = diff.regressions();
    if bad.is_empty() {
        out.push_str("\nNo regressions beyond thresholds.\n");
    } else {
        out.push_str(&format!(
            "\n{} regression(s) beyond thresholds:\n",
            bad.len()
        ));
        for r in bad {
            out.push_str(&format!(
                "  {} {} -> {} ({:+.2}% > {}% {} gate)\n",
                r.name,
                fmt_value(r.kind, r.old),
                fmt_value(r.kind, r.new),
                r.delta_pct.unwrap_or(0.0),
                match r.kind {
                    DeltaKind::Wall => diff.config.max_wall_regress_pct.unwrap_or(0.0),
                    DeltaKind::Counter => diff.config.max_counter_regress_pct.unwrap_or(0.0),
                },
                r.kind.name()
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{SpanReport, StepReport};

    fn report(step2_wall: f64, pairs: u64) -> RunReport {
        let mut r = RunReport::new();
        r.steps = vec![
            StepReport {
                name: "step1".into(),
                wall_seconds: 0.5,
                accelerated_seconds: None,
            },
            StepReport {
                name: "step2".into(),
                wall_seconds: step2_wall,
                accelerated_seconds: None,
            },
        ];
        r.spans = vec![SpanReport {
            name: "step2.wall".into(),
            seconds: step2_wall,
            count: 1,
        }];
        r.counters = vec![("step2.pairs".into(), pairs)];
        r
    }

    #[test]
    fn identical_reports_have_no_regressions() {
        let a = report(2.0, 100);
        let diff = diff_reports(
            &a,
            &a,
            CompareConfig {
                max_wall_regress_pct: Some(0.0),
                max_counter_regress_pct: Some(0.0),
            },
        );
        assert!(diff.regressions().is_empty(), "{diff:#?}");
        let text = render_diff(&diff);
        assert!(text.contains("No regressions"), "{text}");
        assert!(text.contains("+0.00%"), "{text}");
    }

    #[test]
    fn wall_regression_trips_wall_gate_only() {
        let old = report(2.0, 100);
        let new = report(2.5, 100); // +25% wall
        let diff = diff_reports(
            &old,
            &new,
            CompareConfig {
                max_wall_regress_pct: Some(10.0),
                max_counter_regress_pct: Some(0.0),
            },
        );
        let names: Vec<&str> = diff.regressions().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["step:step2", "total", "span:step2.wall"]);
        assert!(render_diff(&diff).contains("REGRESSION"));
    }

    #[test]
    fn counter_regression_respects_counter_gate() {
        let old = report(2.0, 100);
        let new = report(2.0, 130); // +30% pairs
        let loose = diff_reports(
            &old,
            &new,
            CompareConfig {
                max_wall_regress_pct: Some(0.0),
                max_counter_regress_pct: Some(50.0),
            },
        );
        assert!(loose.regressions().is_empty(), "{loose:#?}");
        let tight = diff_reports(
            &old,
            &new,
            CompareConfig {
                max_wall_regress_pct: Some(0.0),
                max_counter_regress_pct: Some(10.0),
            },
        );
        let names: Vec<&str> = tight
            .regressions()
            .iter()
            .map(|r| r.name.as_str())
            .collect();
        assert_eq!(names, vec!["counter:step2.pairs"]);
    }

    #[test]
    fn improvements_never_regress() {
        let old = report(2.0, 100);
        let new = report(1.0, 50);
        let diff = diff_reports(
            &old,
            &new,
            CompareConfig {
                max_wall_regress_pct: Some(0.0),
                max_counter_regress_pct: Some(0.0),
            },
        );
        assert!(diff.regressions().is_empty(), "{diff:#?}");
    }

    #[test]
    fn one_sided_metrics_report_but_never_gate() {
        let old = report(2.0, 100);
        let mut new = report(2.0, 100);
        new.counters.push(("trace.units".into(), 512));
        let mut old2 = old.clone();
        old2.counters.push(("legacy.counter".into(), 7));
        let diff = diff_reports(
            &old2,
            &new,
            CompareConfig {
                max_wall_regress_pct: Some(0.0),
                max_counter_regress_pct: Some(0.0),
            },
        );
        assert!(diff.regressions().is_empty(), "{diff:#?}");
        let text = render_diff(&diff);
        assert!(text.contains("added"), "{text}");
        assert!(text.contains("removed"), "{text}");
    }

    #[test]
    fn board_occupancy_family_collapses_across_board_counts() {
        // Old run: 4 boards; new run: 2 boards. The per-board keys
        // must not surface as removed rows (and must never gate) —
        // they collapse to one mean row.
        let mut old = report(2.0, 100);
        for (b, occ) in [(0usize, 90u64), (1, 70), (2, 80), (3, 60)] {
            old.counters
                .push((format!("fleet.board_occupancy.b{b:02}"), occ));
        }
        let mut new = report(2.0, 100);
        for (b, occ) in [(0usize, 95u64), (1, 85)] {
            new.counters
                .push((format!("fleet.board_occupancy.b{b:02}"), occ));
        }
        let diff = diff_reports(
            &old,
            &new,
            CompareConfig {
                max_wall_regress_pct: Some(0.0),
                max_counter_regress_pct: Some(0.0),
            },
        );
        assert!(diff.regressions().is_empty(), "{diff:#?}");
        assert!(
            !diff
                .rows
                .iter()
                .any(|r| r.name.contains("b02") || r.removed),
            "{diff:#?}"
        );
        let fam = diff
            .rows
            .iter()
            .find(|r| r.name == "counter:fleet.board_occupancy.*")
            .expect("family row");
        assert_eq!(fam.old, 75.0);
        assert_eq!(fam.new, 90.0);
        assert!(!fam.regression);
        // One-sided family (old run was single-board) reports as a
        // single added row, still never gating.
        let single = report(2.0, 100);
        let diff2 = diff_reports(
            &single,
            &new,
            CompareConfig {
                max_wall_regress_pct: Some(0.0),
                max_counter_regress_pct: Some(0.0),
            },
        );
        let fam2 = diff2
            .rows
            .iter()
            .find(|r| r.name == "counter:fleet.board_occupancy.*")
            .expect("family row");
        assert!(fam2.added && !fam2.regression, "{diff2:#?}");
    }

    #[test]
    fn zero_old_value_yields_no_delta_and_no_gate() {
        let old = report(2.0, 0);
        let new = report(2.0, 10);
        let diff = diff_reports(
            &old,
            &new,
            CompareConfig {
                max_wall_regress_pct: Some(0.0),
                max_counter_regress_pct: Some(0.0),
            },
        );
        let row = diff
            .rows
            .iter()
            .find(|r| r.name == "counter:step2.pairs")
            .unwrap();
        assert_eq!(row.delta_pct, None);
        assert!(!row.regression);
        assert!(render_diff(&diff).contains("n/a"));
    }
}
