//! The durable run report: everything a pipeline run produced, with a
//! versioned JSON schema so reports stay diffable across PRs.
//!
//! Mapping to the paper:
//!
//! * [`RunReport::steps`] — the per-step seconds behind Tables 1 and 7
//!   (software wall time, with simulated accelerator seconds where a
//!   RASC backend ran);
//! * [`BoardTelemetry`] — the per-FPGA cycle/stall/utilization and DMA
//!   accounting behind Tables 3–5 and the §4.1 backpressure discussion;
//! * histograms — the per-key pair-count distribution whose skew
//!   controls PE-array load balance.

use crate::json::{Json, JsonError};
use crate::recorder::{Histogram, Snapshot};

/// Version written to every report. Schema v2 split the board's flat
/// `faults` object into per-detector (`detectors`) and recovery
/// (`recovery`) sub-objects; v1 reports still parse (and re-serialize
/// upgraded to v2).
pub const SCHEMA_VERSION: u64 = 2;

/// Oldest schema this build still reads.
pub const MIN_SCHEMA_VERSION: u64 = 1;

/// One pipeline step's timing.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StepReport {
    /// `"step1"`, `"step2"`, `"step3"`.
    pub name: String,
    /// Host wall seconds (for accelerated steps: the simulation's wall
    /// cost, excluded from paper-style totals).
    pub wall_seconds: f64,
    /// Simulated accelerator seconds, when the step ran on a RASC
    /// backend.
    pub accelerated_seconds: Option<f64>,
}

impl StepReport {
    /// Effective cost under the paper's accounting: accelerated time
    /// when an accelerator ran, wall time otherwise.
    pub fn effective_seconds(&self) -> f64 {
        self.accelerated_seconds.unwrap_or(self.wall_seconds)
    }
}

/// One named span aggregate.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanReport {
    pub name: String,
    pub seconds: f64,
    pub count: u64,
}

/// Per-FPGA accounting from the simulated board.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FpgaTelemetry {
    pub cycles: u64,
    /// Cycles lost to result-path backpressure (subset of `cycles`).
    pub stall_cycles: u64,
    pub busy_pe_cycles: u64,
    /// High-water occupancy of the cascaded result FIFOs.
    pub fifo_peak: u64,
    /// `busy_pe_cycles / (cycles × pe_count)`, precomputed so readers
    /// need no formula.
    pub utilization: f64,
}

/// Per-detector fault detection counts (schema v2): one field per
/// detection mechanism the board model runs, so each detector's hit
/// rate is individually diffable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DetectorTelemetry {
    /// Fletcher stream/result checksum mismatches (DMA corruption,
    /// PE score flips — including the hybrid backend's host share).
    pub checksum: u64,
    /// Cycle-watchdog trips (FIFO stalls, hung entries).
    pub watchdog: u64,
    /// ADR protocol violations (truncated or malformed transfers).
    pub protocol: u64,
}

impl DetectorTelemetry {
    /// Total detections across all detectors.
    pub fn total(&self) -> u64 {
        self.checksum + self.watchdog + self.protocol
    }
}

/// Recovery-path counters (schema v2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryTelemetry {
    pub retries: u64,
    pub entries_degraded: u64,
    pub backoff_cycles: u64,
}

/// Fault injection / recovery counters from the simulated board. All
/// zeros on a fault-free run; a missing `faults` object in older
/// reports parses to zeros.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultTelemetry {
    pub injected: u64,
    pub detected: u64,
    pub detectors: DetectorTelemetry,
    pub recovery: RecoveryTelemetry,
}

impl FaultTelemetry {
    /// Anything to report?
    pub fn any(&self) -> bool {
        *self != FaultTelemetry::default()
    }
}

/// Board-level accounting from the simulated RASC backend.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BoardTelemetry {
    pub pe_count: u64,
    pub fpga: Vec<FpgaTelemetry>,
    /// DMA byte counts and their pure wire time on NUMAlink.
    pub bytes_in: u64,
    pub bytes_out: u64,
    pub wire_in_seconds: f64,
    pub wire_out_seconds: f64,
    /// Host synchronisation and one-time setup/dispatch overhead.
    pub sync_seconds: f64,
    pub setup_seconds: f64,
    /// Simulated wall time of the whole accelerated section.
    pub accelerated_seconds: f64,
    /// Seconds the slowest FPGA spent with DMA-in and compute busy at
    /// the same time (double-buffered entry dispatch). Zero in reports
    /// written before overlap accounting existed.
    pub overlap_seconds: f64,
    /// `overlap_seconds` over that FPGA's busy span (0..=1).
    pub overlap_occupancy: f64,
    pub entries: u64,
    pub hit_count: u64,
    /// Fault injection / recovery counters.
    pub faults: FaultTelemetry,
}

/// A complete, schema-versioned run report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    pub schema_version: u64,
    /// Free-form metadata: backend, kernel, seed model, bank sizes, …
    pub meta: Vec<(String, String)>,
    pub steps: Vec<StepReport>,
    pub counters: Vec<(String, u64)>,
    pub spans: Vec<SpanReport>,
    pub histograms: Vec<(String, Histogram)>,
    /// Present when step 2 ran on the simulated RASC board.
    pub board: Option<BoardTelemetry>,
}

impl RunReport {
    /// Start an empty current-version report.
    pub fn new() -> RunReport {
        RunReport {
            schema_version: SCHEMA_VERSION,
            ..RunReport::default()
        }
    }

    /// Fold a recorder snapshot into the generic sections.
    pub fn absorb_snapshot(&mut self, snap: &Snapshot) {
        for (k, v) in &snap.meta {
            self.meta.push((k.clone(), v.clone()));
        }
        for (k, v) in &snap.counters {
            self.counters.push((k.clone(), *v));
        }
        for (k, s) in &snap.spans {
            self.spans.push(SpanReport {
                name: k.clone(),
                seconds: s.seconds,
                count: s.count,
            });
        }
        for (k, h) in &snap.histograms {
            self.histograms.push((k.clone(), h.clone()));
        }
    }

    pub fn step(&self, name: &str) -> Option<&StepReport> {
        self.steps.iter().find(|s| s.name == name)
    }

    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    pub fn meta_value(&self, name: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, h)| h)
    }

    /// Zero every wall-clock-derived duration, leaving only data that
    /// is a pure function of the run's inputs: counters, histograms,
    /// metadata, and the *simulated* board/accelerator seconds (which
    /// are cycle-derived). Two runs of the same workload serialize to
    /// byte-identical JSON after stripping — the property the
    /// determinism suite asserts.
    pub fn strip_wall_clock(&mut self) {
        for s in &mut self.steps {
            s.wall_seconds = 0.0;
        }
        for s in &mut self.spans {
            s.seconds = 0.0;
        }
    }

    /// Total effective seconds across steps (the paper's accounting).
    pub fn total_seconds(&self) -> f64 {
        self.steps.iter().map(StepReport::effective_seconds).sum()
    }

    /// `(name, effective seconds, percent of total)` rows — the
    /// Table 1/7 breakdown.
    pub fn percentages(&self) -> Vec<(String, f64, f64)> {
        let total = self.total_seconds();
        self.steps
            .iter()
            .map(|s| {
                let secs = s.effective_seconds();
                let pct = if total > 0.0 {
                    secs / total * 100.0
                } else {
                    0.0
                };
                (s.name.clone(), secs, pct)
            })
            .collect()
    }

    // ---- JSON ------------------------------------------------------

    pub fn to_json(&self) -> Json {
        let mut members: Vec<(String, Json)> = vec![
            (
                "schema_version".into(),
                Json::Num(self.schema_version as f64),
            ),
            (
                "meta".into(),
                Json::Obj(
                    self.meta
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ),
            (
                "steps".into(),
                Json::Arr(self.steps.iter().map(step_to_json).collect()),
            ),
            (
                "counters".into(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "spans".into(),
                Json::Arr(
                    self.spans
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(s.name.clone())),
                                ("seconds".into(), Json::Num(s.seconds)),
                                ("count".into(), Json::Num(s.count as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "histograms".into(),
                Json::Arr(
                    self.histograms
                        .iter()
                        .map(|(name, h)| histogram_to_json(name, h))
                        .collect(),
                ),
            ),
        ];
        if let Some(board) = &self.board {
            members.push(("board".into(), board_to_json(board)));
        }
        Json::Obj(members)
    }

    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Parse a report, enforcing the schema: a missing required field
    /// or an unsupported version is an error, not a default.
    pub fn parse(text: &str) -> Result<RunReport, String> {
        let json = Json::parse(text).map_err(|e: JsonError| e.to_string())?;
        RunReport::from_json(&json)
    }

    pub fn from_json(json: &Json) -> Result<RunReport, String> {
        let version = require(json, "schema_version")?
            .as_u64()
            .ok_or("schema_version must be a non-negative integer")?;
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&version) {
            return Err(format!(
                "unsupported schema_version {version} \
                 (this build reads v{MIN_SCHEMA_VERSION}..=v{SCHEMA_VERSION})"
            ));
        }
        // Old reports parse but normalize: re-serializing writes the
        // current schema.
        let mut report = RunReport {
            schema_version: SCHEMA_VERSION,
            ..RunReport::default()
        };

        if let Json::Obj(members) = require(json, "meta")? {
            for (k, v) in members {
                report.meta.push((
                    k.clone(),
                    v.as_str().ok_or("meta values must be strings")?.to_string(),
                ));
            }
        } else {
            return Err("meta must be an object".into());
        }

        for s in require(json, "steps")?
            .as_arr()
            .ok_or("steps must be an array")?
        {
            report.steps.push(StepReport {
                name: str_field(s, "name")?,
                wall_seconds: num_field(s, "wall_seconds")?,
                accelerated_seconds: match s.get("accelerated_seconds") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(v.as_f64().ok_or("accelerated_seconds must be a number")?),
                },
            });
        }

        if let Json::Obj(members) = require(json, "counters")? {
            for (k, v) in members {
                report.counters.push((
                    k.clone(),
                    v.as_u64().ok_or("counters must be non-negative integers")?,
                ));
            }
        } else {
            return Err("counters must be an object".into());
        }

        for s in require(json, "spans")?
            .as_arr()
            .ok_or("spans must be an array")?
        {
            report.spans.push(SpanReport {
                name: str_field(s, "name")?,
                seconds: num_field(s, "seconds")?,
                count: u64_field(s, "count")?,
            });
        }

        for h in require(json, "histograms")?
            .as_arr()
            .ok_or("histograms must be an array")?
        {
            report
                .histograms
                .push((str_field(h, "name")?, histogram_from_json(h)?));
        }

        if let Some(board) = json.get("board") {
            report.board = Some(board_from_json(board)?);
        }
        Ok(report)
    }
}

fn require<'a>(json: &'a Json, key: &str) -> Result<&'a Json, String> {
    json.get(key)
        .ok_or_else(|| format!("missing required field {key:?}"))
}

fn str_field(json: &Json, key: &str) -> Result<String, String> {
    require(json, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{key} must be a string"))
}

fn num_field(json: &Json, key: &str) -> Result<f64, String> {
    require(json, key)?
        .as_f64()
        .ok_or_else(|| format!("{key} must be a number"))
}

fn u64_field(json: &Json, key: &str) -> Result<u64, String> {
    require(json, key)?
        .as_u64()
        .ok_or_else(|| format!("{key} must be a non-negative integer"))
}

fn step_to_json(s: &StepReport) -> Json {
    let mut members = vec![
        ("name".into(), Json::Str(s.name.clone())),
        ("wall_seconds".into(), Json::Num(s.wall_seconds)),
    ];
    if let Some(a) = s.accelerated_seconds {
        members.push(("accelerated_seconds".into(), Json::Num(a)));
    }
    Json::Obj(members)
}

fn histogram_to_json(name: &str, h: &Histogram) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(name.to_string())),
        ("count".into(), Json::Num(h.count as f64)),
        ("sum".into(), Json::Num(h.sum as f64)),
        ("min".into(), Json::Num(h.min as f64)),
        ("max".into(), Json::Num(h.max as f64)),
        (
            "log2_buckets".into(),
            Json::Arr(h.buckets.iter().map(|&c| Json::Num(c as f64)).collect()),
        ),
    ])
}

fn histogram_from_json(json: &Json) -> Result<Histogram, String> {
    let mut buckets = Vec::new();
    for b in require(json, "log2_buckets")?
        .as_arr()
        .ok_or("log2_buckets must be an array")?
    {
        buckets.push(b.as_u64().ok_or("bucket counts must be integers")?);
    }
    Ok(Histogram {
        count: u64_field(json, "count")?,
        sum: u64_field(json, "sum")?,
        min: u64_field(json, "min")?,
        max: u64_field(json, "max")?,
        buckets,
    })
}

fn board_to_json(b: &BoardTelemetry) -> Json {
    Json::Obj(vec![
        ("pe_count".into(), Json::Num(b.pe_count as f64)),
        (
            "fpga".into(),
            Json::Arr(
                b.fpga
                    .iter()
                    .map(|f| {
                        Json::Obj(vec![
                            ("cycles".into(), Json::Num(f.cycles as f64)),
                            ("stall_cycles".into(), Json::Num(f.stall_cycles as f64)),
                            ("busy_pe_cycles".into(), Json::Num(f.busy_pe_cycles as f64)),
                            ("fifo_peak".into(), Json::Num(f.fifo_peak as f64)),
                            ("utilization".into(), Json::Num(f.utilization)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("bytes_in".into(), Json::Num(b.bytes_in as f64)),
        ("bytes_out".into(), Json::Num(b.bytes_out as f64)),
        ("wire_in_seconds".into(), Json::Num(b.wire_in_seconds)),
        ("wire_out_seconds".into(), Json::Num(b.wire_out_seconds)),
        ("sync_seconds".into(), Json::Num(b.sync_seconds)),
        ("setup_seconds".into(), Json::Num(b.setup_seconds)),
        (
            "accelerated_seconds".into(),
            Json::Num(b.accelerated_seconds),
        ),
        ("overlap_seconds".into(), Json::Num(b.overlap_seconds)),
        ("overlap_occupancy".into(), Json::Num(b.overlap_occupancy)),
        ("entries".into(), Json::Num(b.entries as f64)),
        ("hit_count".into(), Json::Num(b.hit_count as f64)),
        (
            "faults".into(),
            Json::Obj(vec![
                ("injected".into(), Json::Num(b.faults.injected as f64)),
                ("detected".into(), Json::Num(b.faults.detected as f64)),
                (
                    "detectors".into(),
                    Json::Obj(vec![
                        (
                            "checksum".into(),
                            Json::Num(b.faults.detectors.checksum as f64),
                        ),
                        (
                            "watchdog".into(),
                            Json::Num(b.faults.detectors.watchdog as f64),
                        ),
                        (
                            "protocol".into(),
                            Json::Num(b.faults.detectors.protocol as f64),
                        ),
                    ]),
                ),
                (
                    "recovery".into(),
                    Json::Obj(vec![
                        (
                            "retries".into(),
                            Json::Num(b.faults.recovery.retries as f64),
                        ),
                        (
                            "entries_degraded".into(),
                            Json::Num(b.faults.recovery.entries_degraded as f64),
                        ),
                        (
                            "backoff_cycles".into(),
                            Json::Num(b.faults.recovery.backoff_cycles as f64),
                        ),
                    ]),
                ),
            ]),
        ),
    ])
}

fn faults_from_json(json: &Json) -> Result<FaultTelemetry, String> {
    // Absent in reports written before the fault model existed: that is
    // a fault-free run, not a schema error.
    let Some(f) = json.get("faults") else {
        return Ok(FaultTelemetry::default());
    };
    // Schema v1 wrote one flat object; v2 nests detectors/recovery.
    // Keyed on shape, not the version header, so hand-edited hybrids
    // still parse.
    if f.get("faults_injected").is_some() {
        return Ok(FaultTelemetry {
            injected: u64_field(f, "faults_injected")?,
            detected: u64_field(f, "faults_detected")?,
            detectors: DetectorTelemetry {
                checksum: u64_field(f, "checksum_mismatches")?,
                watchdog: u64_field(f, "watchdog_trips")?,
                protocol: u64_field(f, "protocol_faults")?,
            },
            recovery: RecoveryTelemetry {
                retries: u64_field(f, "retries")?,
                entries_degraded: u64_field(f, "entries_degraded")?,
                backoff_cycles: u64_field(f, "backoff_cycles")?,
            },
        });
    }
    let det = require(f, "detectors")?;
    let rec = require(f, "recovery")?;
    Ok(FaultTelemetry {
        injected: u64_field(f, "injected")?,
        detected: u64_field(f, "detected")?,
        detectors: DetectorTelemetry {
            checksum: u64_field(det, "checksum")?,
            watchdog: u64_field(det, "watchdog")?,
            protocol: u64_field(det, "protocol")?,
        },
        recovery: RecoveryTelemetry {
            retries: u64_field(rec, "retries")?,
            entries_degraded: u64_field(rec, "entries_degraded")?,
            backoff_cycles: u64_field(rec, "backoff_cycles")?,
        },
    })
}

fn board_from_json(json: &Json) -> Result<BoardTelemetry, String> {
    let mut fpga = Vec::new();
    for f in require(json, "fpga")?
        .as_arr()
        .ok_or("fpga must be an array")?
    {
        fpga.push(FpgaTelemetry {
            cycles: u64_field(f, "cycles")?,
            stall_cycles: u64_field(f, "stall_cycles")?,
            busy_pe_cycles: u64_field(f, "busy_pe_cycles")?,
            fifo_peak: u64_field(f, "fifo_peak")?,
            utilization: num_field(f, "utilization")?,
        });
    }
    Ok(BoardTelemetry {
        pe_count: u64_field(json, "pe_count")?,
        fpga,
        bytes_in: u64_field(json, "bytes_in")?,
        bytes_out: u64_field(json, "bytes_out")?,
        wire_in_seconds: num_field(json, "wire_in_seconds")?,
        wire_out_seconds: num_field(json, "wire_out_seconds")?,
        sync_seconds: num_field(json, "sync_seconds")?,
        setup_seconds: num_field(json, "setup_seconds")?,
        accelerated_seconds: num_field(json, "accelerated_seconds")?,
        // Absent in reports written before overlap accounting: that is
        // a no-overlap run, not a schema error.
        overlap_seconds: json
            .get("overlap_seconds")
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0),
        overlap_occupancy: json
            .get("overlap_occupancy")
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0),
        entries: u64_field(json, "entries")?,
        hit_count: u64_field(json, "hit_count")?,
        faults: faults_from_json(json)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{MemRecorder, Recorder};

    fn sample_report() -> RunReport {
        let rec = MemRecorder::new();
        rec.set_meta("backend", "rasc");
        rec.set_meta("step2.kernel", "simd");
        rec.add("step2.pairs", 1_000_000);
        rec.add("step2.candidates", 1234);
        for v in [1u64, 3, 3, 90, 4096] {
            rec.observe("step2.pairs_per_key", v);
        }
        rec.record_span("step2.ungapped", 0.125);

        let mut report = RunReport::new();
        report.steps = vec![
            StepReport {
                name: "step1".into(),
                wall_seconds: 0.5,
                accelerated_seconds: None,
            },
            StepReport {
                name: "step2".into(),
                wall_seconds: 12.0,
                accelerated_seconds: Some(0.75),
            },
            StepReport {
                name: "step3".into(),
                wall_seconds: 0.25,
                accelerated_seconds: None,
            },
        ];
        report.absorb_snapshot(&rec.snapshot());
        report.board = Some(BoardTelemetry {
            pe_count: 192,
            fpga: vec![
                FpgaTelemetry {
                    cycles: 1000,
                    stall_cycles: 10,
                    busy_pe_cycles: 150_000,
                    fifo_peak: 37,
                    utilization: 0.78125,
                },
                FpgaTelemetry {
                    cycles: 900,
                    stall_cycles: 0,
                    busy_pe_cycles: 140_000,
                    fifo_peak: 12,
                    utilization: 0.8101,
                },
            ],
            bytes_in: 123456,
            bytes_out: 789,
            wire_in_seconds: 3.8e-5,
            wire_out_seconds: 2.4e-7,
            sync_seconds: 1.0e-4,
            setup_seconds: 0.8,
            accelerated_seconds: 0.75,
            overlap_seconds: 0.31,
            overlap_occupancy: 0.42,
            entries: 42,
            hit_count: 99,
            faults: FaultTelemetry {
                injected: 7,
                detected: 6,
                detectors: DetectorTelemetry {
                    checksum: 3,
                    watchdog: 1,
                    protocol: 2,
                },
                recovery: RecoveryTelemetry {
                    retries: 5,
                    entries_degraded: 1,
                    backoff_cycles: 3840,
                },
            },
        });
        report
    }

    #[test]
    fn json_round_trip_is_structurally_equal() {
        let report = sample_report();
        let text = report.to_json_string();
        let back = RunReport::parse(&text).expect("parse back");
        assert_eq!(report, back);
        // And a second generation is byte-identical (stable ordering).
        assert_eq!(text, back.to_json_string());
    }

    #[test]
    fn round_trip_without_board() {
        let mut report = sample_report();
        report.board = None;
        let back = RunReport::parse(&report.to_json_string()).unwrap();
        assert_eq!(report, back);
        assert!(back.board.is_none());
    }

    #[test]
    fn missing_required_fields_are_rejected() {
        let report = sample_report();
        for field in ["schema_version", "steps", "counters", "meta"] {
            let Json::Obj(members) = report.to_json() else {
                unreachable!()
            };
            let pruned = Json::Obj(members.into_iter().filter(|(k, _)| k != field).collect());
            let err = RunReport::from_json(&pruned).unwrap_err();
            assert!(err.contains(field), "{field}: {err}");
        }
    }

    #[test]
    fn report_without_faults_object_parses_to_zeros() {
        // Reports written before the fault model existed lack the
        // board's "faults" object; they must still parse (same schema
        // version) with all counters at zero.
        let report = sample_report();
        let Json::Obj(mut members) = report.to_json() else {
            unreachable!()
        };
        for (k, v) in &mut members {
            if k == "board" {
                let Json::Obj(board) = v else { unreachable!() };
                board.retain(|(k, _)| k != "faults");
            }
        }
        let back = RunReport::from_json(&Json::Obj(members)).unwrap();
        let faults = back.board.as_ref().unwrap().faults;
        assert!(!faults.any());
        assert_eq!(faults, FaultTelemetry::default());
    }

    #[test]
    fn report_without_overlap_fields_parses_to_zero() {
        // Reports written before double-buffer accounting lack the
        // board's overlap fields; they must still parse (same schema
        // version) as a no-overlap run.
        let report = sample_report();
        let Json::Obj(mut members) = report.to_json() else {
            unreachable!()
        };
        for (k, v) in &mut members {
            if k == "board" {
                let Json::Obj(board) = v else { unreachable!() };
                board.retain(|(k, _)| k != "overlap_seconds" && k != "overlap_occupancy");
            }
        }
        let back = RunReport::from_json(&Json::Obj(members)).unwrap();
        let board = back.board.as_ref().unwrap();
        assert_eq!(board.overlap_seconds, 0.0);
        assert_eq!(board.overlap_occupancy, 0.0);
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let mut report = sample_report();
        report.schema_version = SCHEMA_VERSION + 1;
        let err = RunReport::parse(&report.to_json_string()).unwrap_err();
        assert!(err.contains("unsupported schema_version"), "{err}");
        report.schema_version = MIN_SCHEMA_VERSION - 1;
        let err = RunReport::parse(&report.to_json_string()).unwrap_err();
        assert!(err.contains("unsupported schema_version"), "{err}");
    }

    #[test]
    fn schema_v1_flat_faults_parse_and_upgrade() {
        // A report as PR 4 wrote it: version 1, one flat faults object.
        let v1 = r#"{
          "schema_version": 1,
          "meta": {"backend": "rasc"},
          "steps": [{"name": "step2", "wall_seconds": 1.0}],
          "counters": {},
          "spans": [],
          "histograms": [],
          "board": {
            "pe_count": 192,
            "fpga": [],
            "bytes_in": 1, "bytes_out": 1,
            "wire_in_seconds": 0.0, "wire_out_seconds": 0.0,
            "sync_seconds": 0.0, "setup_seconds": 0.0,
            "accelerated_seconds": 0.5,
            "entries": 1, "hit_count": 1,
            "faults": {
              "faults_injected": 7, "faults_detected": 6,
              "checksum_mismatches": 3, "watchdog_trips": 1,
              "protocol_faults": 2, "retries": 5,
              "entries_degraded": 1, "backoff_cycles": 3840
            }
          }
        }"#;
        let report = RunReport::parse(v1).expect("v1 parses");
        // Normalized forward to the current schema.
        assert_eq!(report.schema_version, SCHEMA_VERSION);
        let f = report.board.as_ref().unwrap().faults;
        assert_eq!(f.injected, 7);
        assert_eq!(f.detected, 6);
        assert_eq!(f.detectors.checksum, 3);
        assert_eq!(f.detectors.watchdog, 1);
        assert_eq!(f.detectors.protocol, 2);
        assert_eq!(f.detectors.total(), 6);
        assert_eq!(f.recovery.retries, 5);
        assert_eq!(f.recovery.entries_degraded, 1);
        assert_eq!(f.recovery.backoff_cycles, 3840);
        // Re-serialization writes the nested v2 shape.
        let text = report.to_json_string();
        assert!(text.contains("\"detectors\""), "{text}");
        assert!(text.contains("\"recovery\""), "{text}");
        assert!(!text.contains("faults_injected"), "{text}");
        let back = RunReport::parse(&text).unwrap();
        assert_eq!(back.board.unwrap().faults, f);
    }

    #[test]
    fn percentages_use_accelerated_seconds() {
        let report = sample_report();
        // Effective: 0.5 + 0.75 + 0.25 = 1.5 (step2 wall of 12 s is the
        // simulation cost, not the paper's accounting).
        assert!((report.total_seconds() - 1.5).abs() < 1e-12);
        let rows = report.percentages();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1].0, "step2");
        assert!((rows[1].2 - 50.0).abs() < 1e-9);
        assert!((rows[0].2 + rows[1].2 + rows[2].2 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn lookup_helpers() {
        let report = sample_report();
        assert_eq!(report.counter("step2.pairs"), Some(1_000_000));
        assert_eq!(report.counter("nope"), None);
        assert_eq!(report.meta_value("backend"), Some("rasc"));
        assert_eq!(report.step("step3").unwrap().wall_seconds, 0.25);
        assert_eq!(report.histogram("step2.pairs_per_key").unwrap().count, 5);
    }
}
