//! Flight recorder: timestamped span/instant events on per-worker
//! lanes, exported as Chrome-trace ("Trace Event Format") JSON that
//! Perfetto and `chrome://tracing` load directly.
//!
//! # Recording model
//!
//! The pipeline's workers race on atomic pull counters, so raw
//! first-come event logs can never be deterministic. Instead, recording
//! is *unit-deferred*: each logical unit of work (a step-2 work item, a
//! step-3 shard, a board entry, a channel batch) is described by one
//! [`UnitTrace`] — its phases and instant marks — built from locally
//! owned measurements and committed to the tracer off the hot loop.
//! [`RingTracer::finish`] then lays the units onto lanes:
//!
//! * **pinned** units (wall clock, board timeline) carry an absolute
//!   start offset and a lane hint (worker / FPGA index), so wall traces
//!   show the real measured timeline of this run;
//! * **scheduled** units (virtual clock) are replayed in unit-index
//!   order through the same greedy earliest-idle model as
//!   `shard_critical_path`, over a fixed [`VIRTUAL_LANES`]-wide lane
//!   set with tick durations derived from deterministic work counts —
//!   so a virtual trace is byte-identical across thread counts.
//!
//! Units are buffered in bounded per-stage ring buffers; overflow drops
//! the *oldest* units and counts them in `trace.dropped`.
//!
//! Like [`crate::recorder::Recorder`], the whole surface is no-op
//! gated: with [`NullTracer`] (or a disabled tracer) callers must take
//! no timestamps and allocate nothing — the discipline the analyzer's
//! `recorder-off-hot-loop` lint enforces inside kernel modules.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;
use std::time::Instant;

use crate::json::Json;

/// Units a stage's ring buffer holds before dropping the oldest.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// Lane count of the modeled timeline under the virtual clock. Fixed —
/// not the real worker count — so virtual traces are byte-identical no
/// matter how many OS threads actually ran.
pub const VIRTUAL_LANES: usize = 4;

/// Microseconds per weight unit under the virtual clock. Integral so
/// virtual timestamps stay exact in `f64` and format deterministically.
pub const VIRTUAL_TICK_US: f64 = 1.0;

/// Which clock stamps the trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceClock {
    /// Measured wall durations and real start offsets (epoch = tracer
    /// creation). Timelines are real but run-to-run noisy.
    #[default]
    Wall,
    /// Modeled ticks from deterministic work counts, replayed onto
    /// [`VIRTUAL_LANES`] lanes. Byte-deterministic across runs and
    /// thread counts; schedule-dependent lanes (the overlap channel)
    /// are omitted.
    Virtual,
}

impl TraceClock {
    pub fn name(&self) -> &'static str {
        match self {
            TraceClock::Wall => "wall",
            TraceClock::Virtual => "virtual",
        }
    }

    /// Parse a `--trace-clock` value.
    pub fn from_name(name: &str) -> Option<TraceClock> {
        match name {
            "wall" => Some(TraceClock::Wall),
            "virtual" => Some(TraceClock::Virtual),
            _ => None,
        }
    }
}

/// One phase or mark inside a [`UnitTrace`], in unit-local order.
#[derive(Clone, Debug, PartialEq)]
pub enum UnitEvent {
    /// A timed phase. `seconds` is the measured wall duration (ignored
    /// under the virtual clock); `weight` is a deterministic work count
    /// that becomes the phase's tick duration under the virtual clock
    /// (ignored under wall).
    Span {
        name: String,
        seconds: f64,
        weight: u64,
    },
    /// An instant event (queue-depth sample, fault mark) attached at
    /// the unit's current position, carrying one value.
    Mark { name: String, value: u64 },
}

impl UnitEvent {
    pub fn span(name: &str, seconds: f64, weight: u64) -> UnitEvent {
        UnitEvent::Span {
            name: name.to_string(),
            seconds,
            weight,
        }
    }

    pub fn mark(name: &str, value: u64) -> UnitEvent {
        UnitEvent::Mark {
            name: name.to_string(),
            value,
        }
    }
}

/// The deferred trace of one logical unit of work.
#[derive(Clone, Debug, PartialEq)]
pub struct UnitTrace {
    /// Lane-group name: `"step2"`, `"step3"`, `"step3.merge"`,
    /// `"channel.send"`, `"channel.recv"`, `"board.dma"`,
    /// `"board.compute"`, `"board.link"`, …
    pub stage: String,
    /// Deterministic issue order within the stage — the replay order of
    /// scheduled units.
    pub index: u64,
    /// Lane hint (worker or FPGA index) for pinned units.
    pub lane: u32,
    /// Absolute start, seconds since the trace epoch. `Some` pins the
    /// unit to a lane and a time; `None` schedules it by greedy replay.
    pub start_seconds: Option<f64>,
    /// Board lanes run on the simulated device clock, not host wall
    /// time; they render as a separate trace process.
    pub sim_clock: bool,
    pub events: Vec<UnitEvent>,
}

/// The flight-recorder sink the pipeline records into.
///
/// Mirrors [`crate::recorder::Recorder`]'s discipline: check
/// [`Tracer::enabled`] before measuring anything, commit whole units
/// off the hot loop, and never call any of this from inside a kernel
/// loop (the analyzer lint enforces the last part).
pub trait Tracer: Sync {
    /// `false` must make every call site skip its measurements.
    fn enabled(&self) -> bool;

    fn clock(&self) -> TraceClock;

    /// Seconds elapsed since the tracer's epoch (0 when disabled or
    /// virtual) — call sites pin unit starts against this.
    fn epoch_seconds(&self) -> f64;

    /// File one finished unit. Thread-safe; bounded sinks may drop the
    /// oldest unit of the stage.
    fn commit(&self, unit: UnitTrace);
}

/// The no-op tracer: everything disabled, nothing recorded.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn enabled(&self) -> bool {
        false
    }

    fn clock(&self) -> TraceClock {
        TraceClock::Wall
    }

    fn epoch_seconds(&self) -> f64 {
        0.0
    }

    fn commit(&self, _unit: UnitTrace) {}
}

/// One stage's bounded unit buffer.
#[derive(Debug, Default)]
struct StageRing {
    units: VecDeque<UnitTrace>,
    dropped: u64,
}

/// The in-memory flight recorder: per-stage bounded rings behind one
/// mutex, taken only at unit commit — never inside a kernel loop.
#[derive(Debug)]
pub struct RingTracer {
    clock: TraceClock,
    capacity: usize,
    epoch: Instant,
    stages: Mutex<BTreeMap<String, StageRing>>,
}

impl RingTracer {
    pub fn new(clock: TraceClock) -> RingTracer {
        RingTracer::with_capacity(clock, DEFAULT_TRACE_CAPACITY)
    }

    /// `capacity` units are kept per stage; older units drop first.
    pub fn with_capacity(clock: TraceClock, capacity: usize) -> RingTracer {
        RingTracer {
            clock,
            capacity: capacity.max(1),
            epoch: Instant::now(),
            stages: Mutex::new(BTreeMap::new()),
        }
    }

    /// Total units dropped to ring overflow so far (`trace.dropped`).
    pub fn dropped(&self) -> u64 {
        let stages = self.stages.lock().expect("tracer poisoned");
        stages.values().map(|r| r.dropped).sum()
    }

    /// Lay every committed unit onto lanes and return the finished
    /// trace. `meta` rides along into the export's `otherData`.
    pub fn finish(&self, meta: &[(String, String)]) -> Trace {
        let stages = self.stages.lock().expect("tracer poisoned");
        let mut trace = Trace {
            clock: self.clock,
            dropped: stages.values().map(|r| r.dropped).sum(),
            meta: meta.to_vec(),
            lanes: Vec::new(),
        };
        for (stage, ring) in stages.iter() {
            let units: Vec<UnitTrace> = ring.units.iter().cloned().collect();
            build_stage_lanes(stage, &units, &mut trace.lanes);
        }
        trace
            .lanes
            .sort_by(|a, b| (a.sim_clock, &a.name).cmp(&(b.sim_clock, &b.name)));
        trace
    }
}

impl Tracer for RingTracer {
    fn enabled(&self) -> bool {
        true
    }

    fn clock(&self) -> TraceClock {
        self.clock
    }

    fn epoch_seconds(&self) -> f64 {
        match self.clock {
            TraceClock::Wall => self.epoch.elapsed().as_secs_f64(),
            TraceClock::Virtual => 0.0,
        }
    }

    fn commit(&self, unit: UnitTrace) {
        let mut stages = self.stages.lock().expect("tracer poisoned");
        let ring = stages.entry(unit.stage.clone()).or_default();
        if ring.units.len() >= self.capacity {
            ring.units.pop_front();
            ring.dropped += 1;
        }
        ring.units.push_back(unit);
    }
}

// ---- finished trace ------------------------------------------------

/// A begin/end span on one lane, microseconds since the trace epoch.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanEvent {
    pub name: String,
    pub start_us: f64,
    pub dur_us: f64,
}

impl SpanEvent {
    pub fn end_us(&self) -> f64 {
        self.start_us + self.dur_us
    }
}

/// An instant event on one lane.
#[derive(Clone, Debug, PartialEq)]
pub struct InstantEvent {
    pub name: String,
    pub at_us: f64,
    pub value: u64,
}

/// One timeline row: a worker, an FPGA engine, or a channel endpoint.
#[derive(Clone, Debug, PartialEq)]
pub struct Lane {
    /// `"step2.w0"`, `"board.compute.fpga1"`, `"channel.recv"`, …
    pub name: String,
    /// The lane-group the name was derived from (see [`stage_of`]).
    pub stage: String,
    /// Simulated device clock (board lanes) vs host clock.
    pub sim_clock: bool,
    /// Sorted by start; non-overlapping within a lane.
    pub spans: Vec<SpanEvent>,
    pub instants: Vec<InstantEvent>,
}

/// A finished, lane-resolved trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    pub clock: TraceClock,
    /// Units lost to ring overflow (the `trace.dropped` counter).
    pub dropped: u64,
    pub meta: Vec<(String, String)>,
    /// Sorted by `(sim_clock, name)`.
    pub lanes: Vec<Lane>,
}

/// Strip a `.w<N>` / `.fpga<N>` lane suffix back to the stage name.
pub fn stage_of(lane: &str) -> &str {
    for marker in [".w", ".fpga"] {
        if let Some(pos) = lane.rfind(marker) {
            let digits = &lane[pos + marker.len()..];
            if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
                return &lane[..pos];
            }
        }
    }
    lane
}

/// Lane name for `(stage, lane_index)`; single-lane stages keep the
/// bare stage name, board stages name their FPGA.
fn lane_label(stage: &str, lane: u32, multi: bool) -> String {
    if stage.starts_with("board.") && stage != "board.link" {
        format!("{stage}.fpga{lane}")
    } else if multi {
        format!("{stage}.w{lane}")
    } else {
        stage.to_string()
    }
}

/// Lay one stage's units onto lanes: pinned units go where their hint
/// and start say; scheduled units replay greedily onto a fixed-width
/// virtual lane set.
fn build_stage_lanes(stage: &str, units: &[UnitTrace], lanes: &mut Vec<Lane>) {
    let mut pinned: Vec<&UnitTrace> = units.iter().filter(|u| u.start_seconds.is_some()).collect();
    pinned.sort_by(|a, b| {
        let ka = (a.start_seconds.unwrap_or(0.0), a.index);
        let kb = (b.start_seconds.unwrap_or(0.0), b.index);
        ka.0.total_cmp(&kb.0).then(ka.1.cmp(&kb.1))
    });
    let mut scheduled: Vec<&UnitTrace> =
        units.iter().filter(|u| u.start_seconds.is_none()).collect();
    scheduled.sort_by_key(|u| u.index);

    // (lane index) -> events, BTreeMap so lane emission order is stable.
    let mut by_lane: BTreeMap<u32, (Vec<SpanEvent>, Vec<InstantEvent>, bool)> = BTreeMap::new();
    for u in &pinned {
        let entry = by_lane.entry(u.lane).or_default();
        entry.2 |= u.sim_clock;
        let mut cursor = u.start_seconds.unwrap_or(0.0) * 1.0e6;
        lay_unit_events(u, &mut cursor, |s| s.seconds * 1.0e6, entry);
    }
    if !scheduled.is_empty() {
        // Greedy earliest-idle replay, the discipline of the pipeline's
        // `shard_critical_path`: each unit starts on the lane that goes
        // idle first (ties: the last minimal lane, matching that
        // model's fold).
        let lane_count = VIRTUAL_LANES.min(scheduled.len()).max(1);
        let mut lane_end = vec![0.0f64; lane_count];
        for u in &scheduled {
            let idlest = (0..lane_count)
                .min_by(|&a, &b| lane_end[a].total_cmp(&lane_end[b]))
                .expect("at least one lane");
            let entry = by_lane.entry(idlest as u32).or_default();
            entry.2 |= u.sim_clock;
            let mut cursor = lane_end[idlest];
            lay_unit_events(u, &mut cursor, virtual_span_us, entry);
            lane_end[idlest] = cursor;
        }
    }

    let multi = by_lane.len() > 1;
    for (lane, (mut spans, instants, sim_clock)) in by_lane {
        spans.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
        lanes.push(Lane {
            name: lane_label(stage, lane, multi),
            stage: stage.to_string(),
            sim_clock,
            spans,
            instants,
        });
    }
}

/// Tick duration of one span under the virtual clock.
fn virtual_span_us(span: &SpanSource<'_>) -> f64 {
    span.weight.max(1) as f64 * VIRTUAL_TICK_US
}

/// Borrowed view of a [`UnitEvent::Span`] for the duration closures.
struct SpanSource<'a> {
    seconds: f64,
    weight: u64,
    _name: &'a str,
}

fn lay_unit_events(
    unit: &UnitTrace,
    cursor: &mut f64,
    dur_us: impl Fn(&SpanSource<'_>) -> f64,
    out: &mut (Vec<SpanEvent>, Vec<InstantEvent>, bool),
) {
    for ev in &unit.events {
        match ev {
            UnitEvent::Span {
                name,
                seconds,
                weight,
            } => {
                let d = dur_us(&SpanSource {
                    seconds: *seconds,
                    weight: *weight,
                    _name: name,
                })
                .max(0.0);
                out.0.push(SpanEvent {
                    name: name.clone(),
                    start_us: *cursor,
                    dur_us: d,
                });
                *cursor += d;
            }
            UnitEvent::Mark { name, value } => {
                out.1.push(InstantEvent {
                    name: name.clone(),
                    at_us: *cursor,
                    value: *value,
                });
            }
        }
    }
}

// ---- Chrome-trace JSON ---------------------------------------------

/// Trace process id of host lanes in the export.
const HOST_PID: u64 = 1;
/// Trace process id of simulated-board lanes.
const BOARD_PID: u64 = 2;

impl Trace {
    /// Latest span end among host-clock lanes, microseconds.
    pub fn host_makespan_us(&self) -> f64 {
        self.makespan_us(false)
    }

    /// Latest span end among simulated-board lanes, microseconds.
    pub fn board_makespan_us(&self) -> f64 {
        self.makespan_us(true)
    }

    fn makespan_us(&self, sim: bool) -> f64 {
        self.lanes
            .iter()
            .filter(|l| l.sim_clock == sim)
            .flat_map(|l| l.spans.iter())
            .fold(0.0f64, |acc, s| acc.max(s.end_us()))
    }

    /// Serialize to Chrome-trace ("Trace Event Format") JSON. Host
    /// lanes are threads of process 1, board lanes (simulated device
    /// clock) of process 2; spans are `"X"` complete events, instants
    /// `"i"` events.
    pub fn to_chrome_json(&self) -> Json {
        let mut events: Vec<Json> = Vec::new();
        let meta_event = |pid: u64, tid: u64, name: &str, value: &str| {
            Json::Obj(vec![
                ("name".into(), Json::Str(name.into())),
                ("ph".into(), Json::Str("M".into())),
                ("pid".into(), Json::Num(pid as f64)),
                ("tid".into(), Json::Num(tid as f64)),
                (
                    "args".into(),
                    Json::Obj(vec![("name".into(), Json::Str(value.into()))]),
                ),
            ])
        };
        events.push(meta_event(HOST_PID, 0, "process_name", "host"));
        if self.lanes.iter().any(|l| l.sim_clock) {
            events.push(meta_event(
                BOARD_PID,
                0,
                "process_name",
                "rasc-board (simulated clock)",
            ));
        }
        let mut tids: BTreeMap<u64, u64> = BTreeMap::new();
        for lane in &self.lanes {
            let pid = if lane.sim_clock { BOARD_PID } else { HOST_PID };
            let tid = {
                let next = tids.entry(pid).or_insert(0);
                let t = *next;
                *next += 1;
                t
            };
            events.push(meta_event(pid, tid, "thread_name", &lane.name));
            for s in &lane.spans {
                events.push(Json::Obj(vec![
                    ("name".into(), Json::Str(s.name.clone())),
                    ("ph".into(), Json::Str("X".into())),
                    ("pid".into(), Json::Num(pid as f64)),
                    ("tid".into(), Json::Num(tid as f64)),
                    ("ts".into(), Json::Num(s.start_us)),
                    ("dur".into(), Json::Num(s.dur_us)),
                ]));
            }
            for i in &lane.instants {
                events.push(Json::Obj(vec![
                    ("name".into(), Json::Str(i.name.clone())),
                    ("ph".into(), Json::Str("i".into())),
                    ("pid".into(), Json::Num(pid as f64)),
                    ("tid".into(), Json::Num(tid as f64)),
                    ("ts".into(), Json::Num(i.at_us)),
                    ("s".into(), Json::Str("t".into())),
                    (
                        "args".into(),
                        Json::Obj(vec![("value".into(), Json::Num(i.value as f64))]),
                    ),
                ]));
            }
        }
        let mut other: Vec<(String, Json)> = vec![
            ("schema".into(), Json::Str("psc-trace-1".into())),
            ("clock".into(), Json::Str(self.clock.name().into())),
            ("dropped".into(), Json::Num(self.dropped as f64)),
        ];
        for (k, v) in &self.meta {
            other.push((k.clone(), Json::Str(v.clone())));
        }
        Json::Obj(vec![
            ("displayTimeUnit".into(), Json::Str("ms".into())),
            ("otherData".into(), Json::Obj(other)),
            ("traceEvents".into(), Json::Arr(events)),
        ])
    }

    pub fn to_chrome_string(&self) -> String {
        self.to_chrome_json().to_string_pretty()
    }

    /// Read a Chrome-trace JSON document back (the inverse of
    /// [`Trace::to_chrome_json`], tolerant of foreign generators: lanes
    /// without a `thread_name` metadata event get a synthetic name).
    pub fn from_chrome_str(text: &str) -> Result<Trace, String> {
        let json = Json::parse(text).map_err(|e| e.to_string())?;
        let other = json.get("otherData");
        let clock = other
            .and_then(|o| o.get("clock"))
            .and_then(Json::as_str)
            .and_then(TraceClock::from_name)
            .unwrap_or(TraceClock::Wall);
        let dropped = other
            .and_then(|o| o.get("dropped"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        let mut meta: Vec<(String, String)> = Vec::new();
        if let Some(Json::Obj(members)) = other {
            for (k, v) in members {
                if matches!(k.as_str(), "schema" | "clock" | "dropped") {
                    continue;
                }
                if let Some(s) = v.as_str() {
                    meta.push((k.clone(), s.to_string()));
                }
            }
        }
        let events = json
            .get("traceEvents")
            .and_then(Json::as_arr)
            .ok_or("traceEvents must be an array")?;

        let mut names: BTreeMap<(u64, u64), String> = BTreeMap::new();
        #[allow(clippy::type_complexity)]
        let mut rows: BTreeMap<(u64, u64), (Vec<SpanEvent>, Vec<InstantEvent>)> = BTreeMap::new();
        for ev in events {
            let ph = ev.get("ph").and_then(Json::as_str).unwrap_or("");
            let pid = ev.get("pid").and_then(Json::as_u64).unwrap_or(HOST_PID);
            let tid = ev.get("tid").and_then(Json::as_u64).unwrap_or(0);
            let name = ev
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string();
            match ph {
                "M" if name == "thread_name" => {
                    if let Some(n) = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                    {
                        names.insert((pid, tid), n.to_string());
                    }
                }
                "X" => {
                    let ts = ev
                        .get("ts")
                        .and_then(Json::as_f64)
                        .ok_or("X event missing ts")?;
                    let dur = ev.get("dur").and_then(Json::as_f64).unwrap_or(0.0);
                    rows.entry((pid, tid)).or_default().0.push(SpanEvent {
                        name,
                        start_us: ts,
                        dur_us: dur,
                    });
                }
                "i" | "I" => {
                    let ts = ev
                        .get("ts")
                        .and_then(Json::as_f64)
                        .ok_or("instant event missing ts")?;
                    let value = ev
                        .get("args")
                        .and_then(|a| a.get("value"))
                        .and_then(Json::as_u64)
                        .unwrap_or(0);
                    rows.entry((pid, tid)).or_default().1.push(InstantEvent {
                        name,
                        at_us: ts,
                        value,
                    });
                }
                _ => {}
            }
        }
        let mut lanes: Vec<Lane> = Vec::new();
        for ((pid, tid), (mut spans, instants)) in rows {
            spans.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
            let name = names
                .get(&(pid, tid))
                .cloned()
                .unwrap_or_else(|| format!("lane.{pid}.{tid}"));
            lanes.push(Lane {
                stage: stage_of(&name).to_string(),
                sim_clock: pid == BOARD_PID,
                name,
                spans,
                instants,
            });
        }
        lanes.sort_by(|a, b| (a.sim_clock, &a.name).cmp(&(b.sim_clock, &b.name)));
        Ok(Trace {
            clock,
            dropped,
            meta,
            lanes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(stage: &str, index: u64, events: Vec<UnitEvent>) -> UnitTrace {
        UnitTrace {
            stage: stage.into(),
            index,
            lane: 0,
            start_seconds: None,
            sim_clock: false,
            events,
        }
    }

    #[test]
    fn null_tracer_is_disabled() {
        let t = NullTracer;
        assert!(!t.enabled());
        assert_eq!(t.epoch_seconds(), 0.0);
        t.commit(unit("step2", 0, vec![]));
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let t = RingTracer::with_capacity(TraceClock::Virtual, 3);
        for i in 0..5u64 {
            t.commit(unit("step2", i, vec![UnitEvent::span("kernel", 0.0, 1)]));
        }
        assert_eq!(t.dropped(), 2);
        let trace = t.finish(&[]);
        assert_eq!(trace.dropped, 2);
        // Units 0 and 1 dropped; three spans survive.
        let spans: usize = trace.lanes.iter().map(|l| l.spans.len()).sum();
        assert_eq!(spans, 3);
    }

    #[test]
    fn virtual_replay_is_deterministic_and_lane_bounded() {
        let build = || {
            let t = RingTracer::new(TraceClock::Virtual);
            // Commit out of order — replay must sort by index.
            for i in [3u64, 0, 4, 1, 2, 5] {
                t.commit(unit(
                    "step2",
                    i,
                    vec![UnitEvent::span("kernel", 123.456, (i + 1) * 10)],
                ));
            }
            t.finish(&[("backend".into(), "software".into())])
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        assert_eq!(a.to_chrome_string(), b.to_chrome_string());
        assert_eq!(a.lanes.len(), VIRTUAL_LANES.min(6));
        for lane in &a.lanes {
            assert_eq!(lane.stage, "step2");
            assert!(lane.name.starts_with("step2.w"), "{}", lane.name);
            // Monotonic, non-overlapping spans.
            let mut cursor = -1.0;
            for s in &lane.spans {
                assert!(s.start_us >= cursor, "{lane:?}");
                cursor = s.end_us();
            }
        }
        // Virtual durations come from weights, not measured seconds.
        let total: f64 = a
            .lanes
            .iter()
            .flat_map(|l| l.spans.iter())
            .map(|s| s.dur_us)
            .sum();
        let want: u64 = (1..=6).map(|i| i * 10).sum();
        assert_eq!(total, want as f64 * VIRTUAL_TICK_US);
    }

    #[test]
    fn pinned_units_keep_lane_and_offset() {
        let t = RingTracer::new(TraceClock::Wall);
        for (i, lane, at) in [(0u64, 0u32, 0.10f64), (1, 1, 0.05), (2, 0, 0.30)] {
            t.commit(UnitTrace {
                stage: "step3".into(),
                index: i,
                lane,
                start_seconds: Some(at),
                sim_clock: false,
                events: vec![UnitEvent::span("extend", 0.01, 0)],
            });
        }
        let trace = t.finish(&[]);
        assert_eq!(trace.lanes.len(), 2);
        assert_eq!(trace.lanes[0].name, "step3.w0");
        assert_eq!(trace.lanes[1].name, "step3.w1");
        let w0 = &trace.lanes[0].spans;
        assert_eq!(w0.len(), 2);
        assert!((w0[0].start_us - 0.10e6).abs() < 1e-6);
        assert!((w0[1].start_us - 0.30e6).abs() < 1e-6);
        assert!((w0[0].dur_us - 0.01e6).abs() < 1e-6);
    }

    #[test]
    fn single_lane_stage_keeps_bare_name_and_board_names_fpga() {
        let t = RingTracer::new(TraceClock::Wall);
        t.commit(UnitTrace {
            stage: "step3.merge".into(),
            index: 0,
            lane: 0,
            start_seconds: Some(1.0),
            sim_clock: false,
            events: vec![UnitEvent::span("merge_wait", 0.5, 0)],
        });
        t.commit(UnitTrace {
            stage: "board.compute".into(),
            index: 0,
            lane: 1,
            start_seconds: Some(0.0),
            sim_clock: true,
            events: vec![
                UnitEvent::span("compute", 0.25, 0),
                UnitEvent::mark("fault.retry", 2),
            ],
        });
        let trace = t.finish(&[]);
        let names: Vec<&str> = trace.lanes.iter().map(|l| l.name.as_str()).collect();
        assert_eq!(names, vec!["step3.merge", "board.compute.fpga1"]);
        assert!(trace.lanes[1].sim_clock);
        assert_eq!(trace.lanes[1].instants[0].value, 2);
        // The mark lands at the unit's current cursor — after compute.
        assert!((trace.lanes[1].instants[0].at_us - 0.25e6).abs() < 1e-6);
    }

    #[test]
    fn stage_of_strips_lane_suffixes() {
        assert_eq!(stage_of("step2.w13"), "step2");
        assert_eq!(stage_of("board.compute.fpga0"), "board.compute");
        assert_eq!(stage_of("step3.merge"), "step3.merge");
        assert_eq!(stage_of("channel.recv"), "channel.recv");
        assert_eq!(stage_of("weird.wx"), "weird.wx");
    }

    #[test]
    fn chrome_round_trip() {
        let t = RingTracer::new(TraceClock::Virtual);
        for i in 0..3u64 {
            t.commit(unit(
                "step2",
                i,
                vec![
                    UnitEvent::span("kernel", 0.0, 7),
                    UnitEvent::mark("depth", i),
                ],
            ));
        }
        t.commit(UnitTrace {
            stage: "board.dma".into(),
            index: 0,
            lane: 0,
            start_seconds: Some(0.002),
            sim_clock: true,
            events: vec![UnitEvent::span("dma_in", 0.001, 0)],
        });
        let trace = t.finish(&[("backend".into(), "rasc".into())]);
        let text = trace.to_chrome_string();
        let back = Trace::from_chrome_str(&text).expect("parse back");
        assert_eq!(trace, back);
        assert_eq!(text, back.to_chrome_string());
        // Chrome shape essentials.
        let json = Json::parse(&text).unwrap();
        assert!(json.get("traceEvents").and_then(Json::as_arr).is_some());
        assert_eq!(
            json.get("otherData")
                .and_then(|o| o.get("clock"))
                .and_then(Json::as_str),
            Some("virtual")
        );
        assert_eq!(
            json.get("otherData")
                .and_then(|o| o.get("backend"))
                .and_then(Json::as_str),
            Some("rasc")
        );
    }

    #[test]
    fn makespans_split_by_clock_domain() {
        let t = RingTracer::new(TraceClock::Wall);
        t.commit(UnitTrace {
            stage: "step2".into(),
            index: 0,
            lane: 0,
            start_seconds: Some(0.0),
            sim_clock: false,
            events: vec![UnitEvent::span("kernel", 1.0, 0)],
        });
        t.commit(UnitTrace {
            stage: "board.compute".into(),
            index: 0,
            lane: 0,
            start_seconds: Some(0.0),
            sim_clock: true,
            events: vec![UnitEvent::span("compute", 2.0, 0)],
        });
        let trace = t.finish(&[]);
        assert!((trace.host_makespan_us() - 1.0e6).abs() < 1e-3);
        assert!((trace.board_makespan_us() - 2.0e6).abs() < 1e-3);
    }
}
