//! The instrumentation surface: spans, counters, histograms, metadata.
//!
//! Instrumented code records against `&dyn Recorder`. The cost contract
//! is explicit: [`NullRecorder`] turns every operation into a no-op and
//! reports `enabled() == false`, so call sites with per-item cost (the
//! step-2 key loop, per-anchor accounting) gate on [`Recorder::enabled`]
//! and the disabled path never touches a clock, a lock, or an
//! allocation.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// A log2-bucketed histogram of `u64` observations.
///
/// Bucket 0 holds the value 0; bucket `b ≥ 1` holds values in
/// `[2^(b-1), 2^b)`. SaLoBa-style workload-balance pathologies (skewed
/// seed-key pair counts) are exactly what this shape exposes: a healthy
/// key distribution is a tight hump, a pathological one has a long
/// right tail.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    pub count: u64,
    pub sum: u64,
    /// Meaningful only when `count > 0`.
    pub min: u64,
    pub max: u64,
    /// Bucket counts, trimmed to the highest occupied bucket.
    pub buckets: Vec<u64>,
}

impl Histogram {
    pub fn observe(&mut self, value: u64) {
        self.min = if self.count == 0 {
            value
        } else {
            self.min.min(value)
        };
        self.max = self.max.max(value);
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        let b = Self::bucket_of(value);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
    }

    /// Index of the bucket holding `value`.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive `[lo, hi]` value range of bucket `b`.
    pub fn bucket_bounds(b: usize) -> (u64, u64) {
        if b == 0 {
            (0, 0)
        } else {
            let b = b.min(64);
            let lo = 1u64 << (b - 1);
            let hi = if b == 64 { u64::MAX } else { (1u64 << b) - 1 };
            (lo, hi)
        }
    }

    /// Human label of bucket `b` (`"0"`, `"1"`, `"2-3"`, `"4-7"`, …).
    pub fn bucket_label(b: usize) -> String {
        let (lo, hi) = Self::bucket_bounds(b);
        if lo == hi {
            format!("{lo}")
        } else {
            format!("{lo}-{hi}")
        }
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Aggregate of one span name: how many times it was entered and the
/// total seconds inside it.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SpanStat {
    pub count: u64,
    pub seconds: f64,
}

/// Everything a [`MemRecorder`] accumulated, in deterministic
/// (name-sorted) order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub spans: BTreeMap<String, SpanStat>,
    pub histograms: BTreeMap<String, Histogram>,
    pub meta: BTreeMap<String, String>,
}

/// The instrumentation trait. Implementations must be thread-safe: the
/// pipeline drives recording from its coordinating thread today, but
/// the contract allows worker threads to record directly.
pub trait Recorder: Sync {
    /// Whether recording has any effect. Instrumentation with per-item
    /// cost (loops) must check this before doing per-item work.
    fn enabled(&self) -> bool;
    /// Add `delta` to the named counter.
    fn add(&self, name: &str, delta: u64);
    /// Record one observation into the named histogram.
    fn observe(&self, name: &str, value: u64);
    /// Credit `seconds` to the named span (called by [`SpanGuard`]).
    fn record_span(&self, name: &str, seconds: f64);
    /// Attach free-form metadata (backend names, kernel choices, …).
    fn set_meta(&self, name: &str, value: &str);
}

/// The disabled recorder: every operation is a no-op.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }
    fn add(&self, _name: &str, _delta: u64) {}
    fn observe(&self, _name: &str, _value: u64) {}
    fn record_span(&self, _name: &str, _seconds: f64) {}
    fn set_meta(&self, _name: &str, _value: &str) {}
}

/// RAII span timer: reads the monotonic clock on enter and credits the
/// elapsed seconds on drop. Against a disabled recorder it never
/// touches the clock.
pub struct SpanGuard<'a> {
    active: Option<(&'a dyn Recorder, &'a str, Instant)>,
}

impl<'a> SpanGuard<'a> {
    pub fn enter(recorder: &'a dyn Recorder, name: &'a str) -> SpanGuard<'a> {
        SpanGuard {
            active: recorder.enabled().then(|| (recorder, name, Instant::now())),
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((recorder, name, t0)) = self.active.take() {
            recorder.record_span(name, t0.elapsed().as_secs_f64());
        }
    }
}

impl std::fmt::Debug for SpanGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("span", &self.active.as_ref().map(|(_, name, _)| *name))
            .finish()
    }
}

/// An in-memory accumulating recorder.
#[derive(Debug, Default)]
pub struct MemRecorder {
    inner: Mutex<Snapshot>,
}

impl MemRecorder {
    pub fn new() -> MemRecorder {
        MemRecorder::default()
    }

    /// Copy out everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        self.inner.lock().expect("recorder poisoned").clone()
    }
}

impl Recorder for MemRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().expect("recorder poisoned");
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    fn observe(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().expect("recorder poisoned");
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    fn record_span(&self, name: &str, seconds: f64) {
        let mut inner = self.inner.lock().expect("recorder poisoned");
        let stat = inner.spans.entry(name.to_string()).or_default();
        stat.count += 1;
        stat.seconds += seconds;
    }

    fn set_meta(&self, name: &str, value: &str) {
        let mut inner = self.inner.lock().expect("recorder poisoned");
        inner.meta.insert(name.to_string(), value.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        for b in 0..=64 {
            let (lo, hi) = Histogram::bucket_bounds(b);
            assert_eq!(Histogram::bucket_of(lo), b, "lo of bucket {b}");
            assert_eq!(Histogram::bucket_of(hi), b, "hi of bucket {b}");
        }
    }

    #[test]
    fn histogram_accumulates() {
        let mut h = Histogram::default();
        for v in [0, 1, 1, 3, 700] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 705);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 700);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[10], 1);
        assert_eq!(h.buckets.len(), 11);
        assert!((h.mean() - 141.0).abs() < 1e-12);
    }

    #[test]
    fn bucket_labels() {
        assert_eq!(Histogram::bucket_label(0), "0");
        assert_eq!(Histogram::bucket_label(1), "1");
        assert_eq!(Histogram::bucket_label(2), "2-3");
        assert_eq!(Histogram::bucket_label(3), "4-7");
    }

    #[test]
    fn mem_recorder_accumulates() {
        let rec = MemRecorder::new();
        rec.add("pairs", 10);
        rec.add("pairs", 5);
        rec.observe("per_key", 4);
        rec.observe("per_key", 9);
        rec.record_span("step2", 0.5);
        rec.record_span("step2", 0.25);
        rec.set_meta("backend", "rasc");
        rec.set_meta("backend", "scalar"); // last write wins
        let snap = rec.snapshot();
        assert_eq!(snap.counters["pairs"], 15);
        assert_eq!(snap.histograms["per_key"].count, 2);
        let span = snap.spans["step2"];
        assert_eq!(span.count, 2);
        assert!((span.seconds - 0.75).abs() < 1e-12);
        assert_eq!(snap.meta["backend"], "scalar");
    }

    #[test]
    fn span_guard_times_enabled_recorder_only() {
        let rec = MemRecorder::new();
        {
            let _g = SpanGuard::enter(&rec, "work");
        }
        assert_eq!(rec.snapshot().spans["work"].count, 1);

        let null = NullRecorder;
        {
            let _g = SpanGuard::enter(&null, "work");
        }
        // Nothing observable — NullRecorder discards everything.
        assert!(!null.enabled());
    }
}
