//! `psc serve` / `psc query` — a long-running query server over a
//! loaded index bundle, and its line-protocol client.
//!
//! The server loads pipeline state (frames, T1 index, scoring) once
//! from a bundle written by `psc index`, then answers protein-bank
//! queries over TCP. Queries run concurrently — the engine is shared
//! immutable state — behind a bounded admission gate: at most
//! `--queue` queries are in flight, and an arrival past that is
//! rejected with `-BUSY` instead of queueing unboundedly. Each query
//! records its own telemetry (a per-query `RunReport` when
//! `--report-dir` is set), with the serve-level keys registered in
//! `psc_telemetry::keys`.
//!
//! ## Protocol (line-based, all text)
//!
//! ```text
//! client: PING                    server: +PONG
//! client: INFO                    server: +INFO genome=<id> genome_len=<n> queue=<cap>
//! client: QUERY                   server: +READY            (or -BUSY ...)
//! client: <FASTA lines>
//! client: END
//!                                 server: +MATCHES <k> wall=<s> step1=<s> step2=<s> step3=<s>
//!                                 server: <k tab-format match lines>
//!                                 server: +DONE             (or -ERR <why>)
//! client: HOLD <ms>               server: +HOLDING … +HELD  (or -BUSY ...)
//! client: SHUTDOWN                server: +BYE, then the process exits
//! ```
//!
//! `HOLD` occupies an admission slot for a fixed time and exists so
//! tests can fill the gate deterministically. Match lines use exactly
//! `psc search`'s tab format, so a `psc query` stdout is byte-identical
//! to the equivalent one-shot `psc search --index` stdout.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use psc_core::{build_run_report, MemRecorder, NullTracer, PipelineConfig, Recorder, SearchEngine};
use psc_score::blosum62;
use psc_seqio::{read_fasta, read_fasta_path, write_fasta, SeqKind};
use psc_telemetry::keys;

use crate::{match_line, pipeline_config, Flags, TAB_HEADER};

/// State shared by all connection threads.
struct Shared {
    engine: SearchEngine,
    config: PipelineConfig,
    /// Queries (and HOLDs) currently admitted.
    inflight: AtomicUsize,
    /// Admission capacity (`--queue`).
    cap: usize,
    /// Monotone query sequence number.
    seq: AtomicU64,
    /// Where per-query run reports go, when requested.
    report_dir: Option<PathBuf>,
}

/// Releases an admission slot on drop, so early returns and protocol
/// errors can never leak one.
struct Admission<'a>(&'a AtomicUsize);

impl Drop for Admission<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Claim an admission slot unless the gate is full; returns the guard
/// and the in-flight depth including this claim.
fn try_admit(inflight: &AtomicUsize, cap: usize) -> Option<(Admission<'_>, usize)> {
    let mut n = inflight.load(Ordering::SeqCst);
    loop {
        if n >= cap {
            return None;
        }
        match inflight.compare_exchange(n, n + 1, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => return Some((Admission(inflight), n + 1)),
            Err(current) => n = current,
        }
    }
}

pub fn serve(flags: &Flags) -> Result<(), String> {
    let path = flags.required("index")?;
    let data = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    let config = pipeline_config(flags)?;
    let engine =
        SearchEngine::from_bundle(&data, blosum62(), config.clone()).map_err(|e| e.to_string())?;
    let cap = flags.parsed("queue", 4usize)?.max(1);
    let report_dir = flags.get("report-dir").map(PathBuf::from);
    if let Some(dir) = &report_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }
    let listen = flags.get("listen").unwrap_or("127.0.0.1:0");
    let listener = TcpListener::bind(listen).map_err(|e| format!("bind {listen}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    // The bound address goes to stdout (port 0 picks a free port);
    // scripts parse this line to find the server.
    println!(
        "psc serve: listening on {addr} (genome {}, {} nt, queue {cap})",
        engine.genome_id(),
        engine.genome_len()
    );
    std::io::stdout().flush().ok();
    let shared = Arc::new(Shared {
        engine,
        config,
        inflight: AtomicUsize::new(0),
        cap,
        seq: AtomicU64::new(0),
        report_dir,
    });
    for conn in listener.incoming() {
        match conn {
            Ok(stream) => {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    if let Err(e) = handle_conn(stream, &shared) {
                        eprintln!("psc serve: connection: {e}");
                    }
                });
            }
            Err(e) => eprintln!("psc serve: accept: {e}"),
        }
    }
    Ok(())
}

fn handle_conn(stream: TcpStream, sh: &Shared) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut w = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(());
        }
        let cmd = line.trim_end().to_string();
        if cmd.is_empty() {
            continue;
        }
        if cmd == "PING" {
            writeln!(w, "+PONG")?;
        } else if cmd == "INFO" {
            writeln!(
                w,
                "+INFO genome={} genome_len={} queue={}",
                sh.engine.genome_id(),
                sh.engine.genome_len(),
                sh.cap
            )?;
        } else if let Some(ms) = cmd.strip_prefix("HOLD ") {
            match (ms.parse::<u64>(), try_admit(&sh.inflight, sh.cap)) {
                (Err(_), _) => writeln!(w, "-ERR bad HOLD duration {ms:?}")?,
                (Ok(_), None) => write_busy(&mut w, sh)?,
                (Ok(ms), Some((slot, _))) => {
                    writeln!(w, "+HOLDING")?;
                    w.flush()?;
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                    drop(slot);
                    writeln!(w, "+HELD")?;
                }
            }
        } else if cmd == "QUERY" {
            let Some((slot, depth)) = try_admit(&sh.inflight, sh.cap) else {
                write_busy(&mut w, sh)?;
                w.flush()?;
                continue;
            };
            writeln!(w, "+READY")?;
            w.flush()?;
            let mut fasta = String::new();
            loop {
                line.clear();
                if reader.read_line(&mut line)? == 0 {
                    return Ok(()); // client vanished mid-query
                }
                if line.trim_end() == "END" {
                    break;
                }
                fasta.push_str(&line);
            }
            match run_query(sh, &fasta, depth) {
                Ok((lines, profile)) => {
                    writeln!(w, "+MATCHES {} {profile}", lines.len())?;
                    for l in &lines {
                        writeln!(w, "{l}")?;
                    }
                    writeln!(w, "+DONE")?;
                }
                Err(e) => writeln!(w, "-ERR {e}")?,
            }
            drop(slot);
        } else if cmd == "SHUTDOWN" {
            writeln!(w, "+BYE")?;
            w.flush()?;
            std::process::exit(0);
        } else {
            writeln!(w, "-ERR unknown command {cmd:?}")?;
        }
        w.flush()?;
    }
}

fn write_busy(w: &mut impl Write, sh: &Shared) -> std::io::Result<()> {
    writeln!(
        w,
        "-BUSY admission queue full ({} in flight, limit {}); retry later",
        sh.cap, sh.cap
    )
}

/// Parse the FASTA payload, run the query against the shared engine,
/// and render the tab match lines plus a profile summary. Per-query
/// telemetry goes to a fresh recorder; faults degrade the query (per
/// the engine's recovery policy), they do not take the server down.
fn run_query(sh: &Shared, fasta: &str, depth: usize) -> Result<(Vec<String>, String), String> {
    let bank = read_fasta(fasta.as_bytes(), SeqKind::Protein).map_err(|e| e.to_string())?;
    if bank.is_empty() {
        return Err("query carried no sequences".into());
    }
    let seq_no = sh.seq.fetch_add(1, Ordering::SeqCst);
    let started = Instant::now();
    let rec = MemRecorder::new();
    rec.set_meta(keys::SERVE_QUERY_SEQ, &seq_no.to_string());
    rec.add(keys::SERVE_QUEUE_DEPTH, depth as u64);
    // Fleet size serving this query (1 = classic single board), so a
    // served report is attributable to its board count.
    rec.add(
        keys::SERVE_FLEET_BOARDS,
        sh.config.fleet.boards.max(1) as u64,
    );
    let result = sh
        .engine
        .query_traced(&bank, &rec, &NullTracer)
        .map_err(|e| e.to_string())?;
    let wall = started.elapsed().as_secs_f64();
    rec.record_span(keys::SERVE_QUERY_WALL, wall);
    if let Some(dir) = &sh.report_dir {
        let report = build_run_report(&result.output, &sh.config, &rec.snapshot());
        let path = dir.join(format!("query-{seq_no:06}.json"));
        std::fs::write(&path, report.to_json_string())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    let p = &result.output.profile;
    let profile = format!(
        "wall={:.6} step1={:.6} step2={:.6} step3={:.6}",
        wall,
        p.step1,
        p.step2(),
        p.step3
    );
    Ok((result.matches.iter().map(match_line).collect(), profile))
}

/// How a `psc query` run failed, split so the process exit code can
/// distinguish a graceful capacity rejection from a real error.
enum ClientError {
    /// The server rejected the query at admission (`-BUSY`).
    Busy(String),
    Other(String),
}

impl From<String> for ClientError {
    fn from(message: String) -> ClientError {
        ClientError::Other(message)
    }
}

/// Exit code for a `-BUSY` rejection: scripts can tell "server at
/// capacity, retry" (4) from "query failed" (1).
const BUSY_EXIT: u8 = 4;

pub fn query(flags: &Flags) -> ExitCode {
    match run_client(flags) {
        Ok(()) => ExitCode::SUCCESS,
        Err(ClientError::Busy(msg)) => {
            eprintln!("busy: {msg}");
            ExitCode::from(BUSY_EXIT)
        }
        Err(ClientError::Other(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run_client(flags: &Flags) -> Result<(), ClientError> {
    let addr = flags.required("connect")?;
    let bank = read_fasta_path(flags.required("proteins")?, SeqKind::Protein)
        .map_err(|e| e.to_string())?;
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut w = BufWriter::new(stream);
    let io = |e: std::io::Error| ClientError::Other(format!("server i/o: {e}"));
    writeln!(w, "QUERY").map_err(io)?;
    w.flush().map_err(io)?;
    let resp = read_line(&mut reader)?;
    if let Some(rest) = resp.strip_prefix("-BUSY ") {
        return Err(ClientError::Busy(rest.to_string()));
    }
    if resp != "+READY" {
        return Err(format!("unexpected response {resp:?}").into());
    }
    let mut fasta = Vec::new();
    write_fasta(&mut fasta, &bank).map_err(|e| e.to_string())?;
    w.write_all(&fasta).map_err(io)?;
    writeln!(w, "END").map_err(io)?;
    w.flush().map_err(io)?;
    let head = read_line(&mut reader)?;
    if let Some(rest) = head.strip_prefix("-ERR ") {
        return Err(format!("server rejected query: {rest}").into());
    }
    let rest = head
        .strip_prefix("+MATCHES ")
        .ok_or_else(|| format!("unexpected response {head:?}"))?;
    let (count, profile) = rest.split_once(' ').unwrap_or((rest, ""));
    let count: usize = count
        .parse()
        .map_err(|_| format!("bad match count in {head:?}"))?;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(out, "{TAB_HEADER}").map_err(|e| e.to_string())?;
    for _ in 0..count {
        writeln!(out, "{}", read_line(&mut reader)?).map_err(|e| e.to_string())?;
    }
    let done = read_line(&mut reader)?;
    if done != "+DONE" {
        return Err(format!("unexpected trailer {done:?}").into());
    }
    eprintln!("serve query: {count} matches ({profile})");
    Ok(())
}

fn read_line(reader: &mut impl BufRead) -> Result<String, ClientError> {
    let mut line = String::new();
    let n = reader
        .read_line(&mut line)
        .map_err(|e| ClientError::Other(format!("server i/o: {e}")))?;
    if n == 0 {
        return Err("server closed the connection".to_string().into());
    }
    Ok(line.trim_end().to_string())
}
