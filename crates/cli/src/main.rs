//! `psc` — command-line front-end for the seed-based comparison pipeline.
//!
//! ```text
//! psc generate-bank   --count N [--min-len A --max-len B --seed S] -o bank.fasta
//! psc generate-genome --len L [--genes G --bank bank.fasta --seed S] -o genome.fasta
//! psc translate       --genome genome.fasta [-o frames.fasta]
//! psc search          --proteins bank.fasta --genome genome.fasta
//!                     [--backend scalar|parallel|rasc] [--pes 192] [--fpgas 1]
//!                     [--threads T] [--evalue 1e-3] [--seed-model subset4|subset3|exact4]
//!                     [--step2-kernel auto|scalar|profile|simd|wide|split]
//!                     [--step2-schedule contiguous|bucketed]
//!                     [--report-json report.json]
//!                     [--trace trace.json] [--trace-clock wall|virtual]
//! psc report          report.json
//! psc report          --compare old.json new.json [--max-wall-regress PCT]
//! psc trace           render|analyze trace.json
//! psc blast           --proteins bank.fasta --genome genome.fasta [--evalue 1e-3]
//! psc index           --genome genome.fasta -o genome.psc [--proteins bank.fasta]
//! psc serve           --index genome.psc [--listen 127.0.0.1:0] [--queue N]
//! psc query           --connect HOST:PORT --proteins bank.fasta
//! psc resources       [--pes N] [--window W] [--slot S]
//! psc matrix
//! ```

#![forbid(unsafe_code)]

mod serve;

use std::collections::BTreeMap;
use std::io::Write;
use std::process::ExitCode;

use psc_blast::{tblastn, BlastConfig};
use psc_core::{PipelineConfig, SeedChoice, Step2Backend};
use psc_datagen::{generate_genome, random_bank, BankConfig, GenomeConfig};
use psc_index::subset_seed_span3;
use psc_rasc::{OperatorConfig, ResourceModel};
use psc_score::blosum62;
use psc_seqio::{
    read_fasta_path, translate_six_frames, write_fasta, Frame, FrameCoord, GeneticCode, SeqKind,
};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    // `report` and `trace` take positional paths, not flag pairs.
    if command == "report" || command == "trace" {
        let run = if command == "report" {
            report_cmd(args)
        } else {
            trace_cmd(args).map_err(CliFailure::from)
        };
        return match run {
            Ok(()) => ExitCode::SUCCESS,
            Err(f) => {
                eprintln!("error: {}", f.message);
                ExitCode::from(f.code)
            }
        };
    }
    let known = match command.as_str() {
        "generate-bank" => KNOWN_GENERATE_BANK,
        "generate-genome" => KNOWN_GENERATE_GENOME,
        "translate" => KNOWN_TRANSLATE,
        "search" => KNOWN_SEARCH,
        "blast" => KNOWN_BLAST,
        "index" => KNOWN_INDEX,
        "serve" => KNOWN_SERVE,
        "query" => KNOWN_QUERY,
        "resources" => KNOWN_RESOURCES,
        _ => &[],
    };
    let flags = match Flags::parse_known(args, &command, known) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match command.as_str() {
        "generate-bank" => generate_bank(&flags),
        "generate-genome" => generate_genome_cmd(&flags),
        "translate" => translate(&flags),
        "search" => search(&flags),
        "blast" => blast(&flags),
        "index" => index_cmd(&flags),
        "serve" => serve::serve(&flags),
        "query" => return serve::query(&flags),
        "resources" => resources(&flags),
        "matrix" => matrix(),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
psc — protein seed-based comparison (RASC-100 reproduction)

commands:
  generate-bank   --count N [--min-len A] [--max-len B] [--seed S] -o FILE
  generate-genome --len L [--genes G] [--bank FILE] [--seed S] -o FILE
  translate       --genome FILE [-o FILE]
  search          --proteins FILE --genome FILE [--backend scalar|parallel|rasc]
                  [--pes N] [--fpgas N] [--threads N] [--evalue E]
                  [--boards N]           (simulated multi-board fleet; rasc only)
                  [--steal-policy richest|none] [--quarantine-after K]
                  [--seed-model subset4|subset3|exact4] [--threshold T]
                  [--step2-kernel auto|scalar|profile|simd|wide|split]
                  [--step2-schedule contiguous|bucketed]   (step-2 work distribution)
                  [--step3-threads N]    (parallel gapped extension workers)
                  [--overlap on|off]     (stream step-3 during step-2 shard completion)
                  [--format tab|pairwise|gff] [--mask on]
                  [--fault-seed S] [--fault-rate PPM]   (seeded fault injection)
                  [--fault-tail uniform|heavy]   (stuck-board persistence model)
                  [--fault-plan ENTRY:KIND[:ATTEMPTS][@FPGA],...]
                  [--fault-retries N] [--fault-degrade on|off]
                  [--report-json FILE]   (write a telemetry run report)
                  [--trace FILE]         (write a flight-recorder Chrome trace)
                  [--trace-clock wall|virtual]   (virtual = byte-deterministic)
  report          FILE                   (render a run report: step breakdown,
                                          PE utilization, pair histograms)
  report          --compare OLD NEW [--max-wall-regress PCT]
                  [--max-counter-regress PCT]   (regression diff; exits 1 when
                                          a gated metric regresses past PCT,
                                          3 when the two reports use different
                                          schema versions)
  trace           render FILE [--width N]       (terminal lane timeline)
  trace           analyze FILE [--report FILE]  (critical path, stall classes;
                                          --report reconciles span walls)
  blast           --proteins FILE --genome FILE [--evalue E] [--mask on]
  index           --genome FILE -o FILE [--seed-model ...] [--mask on]
                  [--proteins FILE]      (embed a T0 protein-bank section)
                  (writes an index bundle: frames + T1 index + score
                   profile + model fingerprint, for --index / serve)
  serve           --index FILE [--listen ADDR] [--queue N] [--report-dir DIR]
                  [search config flags]  (long-running query server; prints
                                          the bound address on stdout)
  query           --connect HOST:PORT --proteins FILE   (run one query
                                          against a psc serve instance)
  resources       [--pes N] [--window W] [--slot S]
  matrix

search also accepts --index FILE in place of --genome: the pipeline
state (frames, T1 index, scoring) loads from the bundle, so the query
skips the genome-side index build. Mistyped flags are rejected with a
nearest-match suggestion.";

// --- per-command flag tables --------------------------------------
//
// `Flags::parse_known` rejects anything not listed for its command:
// a mistyped flag used to be silently swallowed (`--step2-kernal
// wide` ran the default kernel without a word), which is the worst
// possible behavior for benchmark flags.

const KNOWN_GENERATE_BANK: &[&str] = &["count", "min-len", "max-len", "seed", "o"];
const KNOWN_GENERATE_GENOME: &[&str] = &["len", "genes", "bank", "seed", "o"];
const KNOWN_TRANSLATE: &[&str] = &["genome", "o"];
const KNOWN_SEARCH: &[&str] = &[
    "proteins",
    "genome",
    "index",
    "backend",
    "pes",
    "fpgas",
    "boards",
    "steal-policy",
    "quarantine-after",
    "threads",
    "evalue",
    "seed-model",
    "threshold",
    "step2-kernel",
    "step2-schedule",
    "step3-threads",
    "overlap",
    "format",
    "mask",
    "fault-seed",
    "fault-rate",
    "fault-tail",
    "fault-plan",
    "fault-retries",
    "fault-degrade",
    "report-json",
    "trace",
    "trace-clock",
];
const KNOWN_BLAST: &[&str] = &["proteins", "genome", "evalue", "mask"];
const KNOWN_INDEX: &[&str] = &["genome", "o", "seed-model", "threads", "proteins", "mask"];
const KNOWN_SERVE: &[&str] = &[
    "index",
    "listen",
    "queue",
    "report-dir",
    "backend",
    "pes",
    "fpgas",
    "boards",
    "steal-policy",
    "quarantine-after",
    "threads",
    "evalue",
    "seed-model",
    "threshold",
    "step2-kernel",
    "step2-schedule",
    "step3-threads",
    "overlap",
    "mask",
    "fault-seed",
    "fault-rate",
    "fault-tail",
    "fault-plan",
    "fault-retries",
    "fault-degrade",
];
const KNOWN_QUERY: &[&str] = &["connect", "proteins"];
const KNOWN_RESOURCES: &[&str] = &["pes", "window", "slot"];
const KNOWN_REPORT_COMPARE: &[&str] = &["max-wall-regress", "max-counter-regress"];
const KNOWN_TRACE: &[&str] = &["width", "report"];

/// Edit distance for the did-you-mean suggestion.
fn levenshtein(a: &str, b: &str) -> usize {
    let (a, b): (Vec<u8>, Vec<u8>) = (a.bytes().collect(), b.bytes().collect());
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut prev = row[0];
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = if ca == cb { prev } else { prev + 1 };
            prev = row[j + 1];
            row[j + 1] = cost.min(prev + 1).min(row[j] + 1);
        }
    }
    row[b.len()]
}

/// The closest known flag within edit distance 2, if any.
fn nearest_flag<'a>(key: &str, known: &[&'a str]) -> Option<&'a str> {
    known
        .iter()
        .map(|k| (levenshtein(key, k), *k))
        .filter(|&(d, _)| d <= 2)
        .min()
        .map(|(_, k)| k)
}

/// Trivial `--flag value` parser.
struct Flags(BTreeMap<String, String>);

impl Flags {
    fn parse(args: impl Iterator<Item = String>) -> Result<Flags, String> {
        let mut map = BTreeMap::new();
        let mut args = args.peekable();
        while let Some(a) = args.next() {
            let key = a
                .strip_prefix("--")
                .or_else(|| a.strip_prefix('-'))
                .ok_or_else(|| format!("expected a flag, got {a:?}"))?;
            let value = args
                .next()
                .ok_or_else(|| format!("flag --{key} needs a value"))?;
            map.insert(key.to_string(), value);
        }
        Ok(Flags(map))
    }

    /// [`Flags::parse`], then reject any flag the command does not
    /// know, suggesting the nearest known one.
    fn parse_known(
        args: impl Iterator<Item = String>,
        command: &str,
        known: &[&str],
    ) -> Result<Flags, String> {
        let flags = Flags::parse(args)?;
        for key in flags.0.keys() {
            if !known.contains(&key.as_str()) {
                let hint = match nearest_flag(key, known) {
                    Some(k) => format!(" (did you mean --{k}?)"),
                    None => String::new(),
                };
                return Err(format!("unknown flag --{key} for `psc {command}`{hint}"));
            }
        }
        Ok(flags)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(String::as_str)
    }

    fn required(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("--{key} is required"))
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad value for --{key}: {v:?}")),
        }
    }
}

fn generate_bank(flags: &Flags) -> Result<(), String> {
    let count = flags.parsed("count", 0usize)?;
    if count == 0 {
        return Err("--count must be positive".into());
    }
    let bank = random_bank(&BankConfig {
        count,
        min_len: flags.parsed("min-len", 100)?,
        max_len: flags.parsed("max-len", 600)?,
        seed: flags.parsed("seed", 0x5eed_u64)?,
    });
    let out = flags.required("o")?;
    let file = std::fs::File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    write_fasta(file, &bank).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} proteins ({} aa) to {out}",
        bank.len(),
        bank.total_residues()
    );
    Ok(())
}

fn generate_genome_cmd(flags: &Flags) -> Result<(), String> {
    let len = flags.parsed("len", 0usize)?;
    if len == 0 {
        return Err("--len must be positive".into());
    }
    let genes = flags.parsed("genes", 0usize)?;
    let donors = match flags.get("bank") {
        Some(path) => read_fasta_path(path, SeqKind::Protein).map_err(|e| e.to_string())?,
        None if genes > 0 => return Err("--genes needs --bank for donor proteins".into()),
        None => psc_seqio::Bank::new(),
    };
    let synth = generate_genome(
        &GenomeConfig {
            len,
            gene_count: genes,
            seed: flags.parsed("seed", 0xd14_u64)?,
            ..GenomeConfig::default()
        },
        &donors,
    );
    let out = flags.required("o")?;
    let mut bank = psc_seqio::Bank::new();
    bank.push(synth.genome.clone());
    let file = std::fs::File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    write_fasta(file, &bank).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote genome of {} nt with {} planted genes to {out}",
        synth.genome.len(),
        synth.plants.len()
    );
    for p in &synth.plants {
        eprintln!(
            "  plant: protein {} at {}..{} ({})",
            p.protein_idx,
            p.start,
            p.end,
            if p.forward { "+" } else { "-" }
        );
    }
    Ok(())
}

fn load_genome(path: &str) -> Result<psc_seqio::Seq, String> {
    let bank = read_fasta_path(path, SeqKind::Dna).map_err(|e| e.to_string())?;
    if bank.len() != 1 {
        return Err(format!("{path} must contain exactly one genome sequence"));
    }
    Ok(bank.into_seqs().remove(0))
}

fn translate(flags: &Flags) -> Result<(), String> {
    let genome = load_genome(flags.required("genome")?)?;
    let translated = translate_six_frames(&genome, GeneticCode::standard());
    let bank = translated.to_bank();
    match flags.get("o") {
        Some(out) => {
            let file = std::fs::File::create(out).map_err(|e| format!("create {out}: {e}"))?;
            write_fasta(file, &bank).map_err(|e| e.to_string())?;
            eprintln!("wrote 6 frames ({} aa) to {out}", bank.total_residues());
        }
        None => {
            let stdout = std::io::stdout();
            write_fasta(stdout.lock(), &bank).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn seed_choice(flags: &Flags) -> Result<SeedChoice, String> {
    Ok(match flags.get("seed-model").unwrap_or("subset4") {
        "subset4" => SeedChoice::SubsetDefault,
        "subset3" => SeedChoice::Custom(subset_seed_span3()),
        "exact4" => SeedChoice::Exact(4),
        other => return Err(format!("unknown seed model {other:?}")),
    })
}

/// `--mask on|off` as a [`MaskConfig`].
fn mask_flag(flags: &Flags) -> Result<Option<psc_seqio::MaskConfig>, String> {
    match flags.get("mask") {
        Some("on") => Ok(Some(psc_seqio::MaskConfig::default())),
        Some("off") | None => Ok(None),
        Some(other) => Err(format!("bad --mask value {other:?}")),
    }
}

/// The full pipeline configuration from command-line flags (shared by
/// `psc search` and `psc serve`).
fn pipeline_config(flags: &Flags) -> Result<PipelineConfig, String> {
    let threads = flags.parsed("threads", 1usize)?;
    let backend = match flags.get("backend").unwrap_or("scalar") {
        "scalar" => Step2Backend::SoftwareScalar,
        "parallel" => Step2Backend::SoftwareParallel { threads },
        "rasc" => Step2Backend::Rasc {
            pe_count: flags.parsed("pes", 192usize)?,
            fpga_count: flags.parsed("fpgas", 1usize)?,
            host_threads: threads,
        },
        other => return Err(format!("unknown backend {other:?}")),
    };
    // Fleet shape: `--boards N` engages the multi-board work-stealing
    // dispatcher (rasc backend only; HSP output is bit-identical at any
    // board count). The tuning flags only mean something with a fleet.
    let boards = flags.parsed("boards", 1usize)?;
    if !(1..=psc_rasc::MAX_BOARDS).contains(&boards) {
        return Err(format!(
            "--boards must be 1..={} (got {boards})",
            psc_rasc::MAX_BOARDS
        ));
    }
    if boards > 1 && !matches!(backend, Step2Backend::Rasc { .. }) {
        return Err("--boards N > 1 needs --backend rasc".into());
    }
    let mut fleet = psc_rasc::FleetConfig {
        boards,
        ..psc_rasc::FleetConfig::default()
    };
    if let Some(s) = flags.get("steal-policy") {
        if boards < 2 {
            return Err("--steal-policy needs --boards N >= 2".into());
        }
        fleet.steal_policy = psc_rasc::StealPolicy::parse(s)?;
    }
    if flags.get("quarantine-after").is_some() {
        if boards < 2 {
            return Err("--quarantine-after needs --boards N >= 2".into());
        }
        let k = flags.parsed("quarantine-after", 2u32)?;
        if k == 0 {
            return Err("--quarantine-after must be at least 1".into());
        }
        fleet.quarantine_after = k;
    }
    let step2_kernel = match flags.get("step2-kernel") {
        None => psc_core::KernelChoice::Auto,
        Some(s) => psc_core::KernelChoice::parse(s).ok_or_else(|| {
            format!("bad --step2-kernel value {s:?} (auto|scalar|profile|simd|wide|split)")
        })?,
    };
    let step2_schedule = match flags.get("step2-schedule") {
        None => psc_core::Step2Schedule::default(),
        Some(s) => psc_core::Step2Schedule::parse(s)
            .ok_or_else(|| format!("bad --step2-schedule value {s:?} (contiguous|bucketed)"))?,
    };
    Ok(PipelineConfig {
        seed: seed_choice(flags)?,
        backend,
        step2_kernel,
        step2_schedule,
        max_evalue: flags.parsed("evalue", 1e-3f64)?,
        threshold: flags.parsed("threshold", 45i32)?,
        index_threads: threads,
        mask: mask_flag(flags)?,
        step3_threads: flags.parsed("step3-threads", 1usize)?.max(1),
        overlap: match flags.get("overlap") {
            Some("on") => true,
            Some("off") | None => false,
            Some(other) => return Err(format!("bad --overlap value {other:?} (on|off)")),
        },
        fault_plan: fault_plan(flags)?,
        recovery: recovery_policy(flags)?,
        fleet,
        ..PipelineConfig::default()
    })
}

/// Header of the tab output format, shared with `psc serve` so a
/// served query's stdout is byte-identical to `psc search`'s.
const TAB_HEADER: &str = "# protein\tframe\tgenome_start\tgenome_end\tstrand\traw\tbits\tevalue";

/// One tab-format match line (no trailing newline).
fn match_line(m: &psc_core::GenomeMatch) -> String {
    format!(
        "{}\t{:+}\t{}\t{}\t{}\t{}\t{:.1}\t{:.2e}",
        m.protein_id,
        m.frame.number(),
        m.genome_start,
        m.genome_end,
        if m.forward { "+" } else { "-" },
        m.score,
        m.bit_score,
        m.evalue
    )
}

fn search(flags: &Flags) -> Result<(), String> {
    let proteins = read_fasta_path(flags.required("proteins")?, SeqKind::Protein)
        .map_err(|e| e.to_string())?;
    let index_path = flags.get("index");
    if index_path.is_some() && flags.get("genome").is_some() {
        return Err(
            "--index and --genome are mutually exclusive (the bundle already carries the genome)"
                .into(),
        );
    }
    let genome = match index_path {
        Some(_) => None,
        None => Some(load_genome(flags.required("genome")?)?),
    };
    let config = pipeline_config(flags)?;
    // Telemetry is recorded only when a report is requested, and the
    // flight recorder only when a trace is; otherwise the
    // NullRecorder/NullTracer paths keep instrumentation off the hot
    // loops.
    let report_path = flags.get("report-json");
    let recorder = report_path.map(|_| psc_core::MemRecorder::new());
    let trace_path = flags.get("trace");
    let trace_clock = match flags.get("trace-clock") {
        None => psc_core::TraceClock::Wall,
        Some(s) => psc_core::TraceClock::from_name(s)
            .ok_or_else(|| format!("bad --trace-clock value {s:?} (wall|virtual)"))?,
    };
    if flags.get("trace-clock").is_some() && trace_path.is_none() {
        return Err("--trace-clock needs --trace".into());
    }
    let tracer = trace_path.map(|_| psc_core::RingTracer::new(trace_clock));
    let rec: &dyn psc_core::Recorder = match &recorder {
        Some(r) => r,
        None => &psc_core::NullRecorder,
    };
    let trc: &dyn psc_core::Tracer = match &tracer {
        Some(t) => t,
        None => &psc_core::NullTracer,
    };
    // One-shot and from-artifact runs share the engine path: build (or
    // load) the pipeline state, then run one query against it. The
    // loaded path skips the genome-side index build — its step1 span
    // reports only the query-side prep.
    let engine = match index_path {
        Some(path) => {
            let data = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
            psc_core::SearchEngine::from_bundle(&data, blosum62(), config.clone())
                .map_err(|e| e.to_string())?
        }
        None => psc_core::SearchEngine::for_genome(
            genome.as_ref().expect("--genome checked above"),
            blosum62(),
            config.clone(),
            rec,
        ),
    };
    let result = engine
        .query_traced(&proteins, rec, trc)
        .map_err(|e| e.to_string())?;
    if let (Some(path), Some(rec)) = (report_path, &recorder) {
        let report = psc_core::build_run_report(&result.output, &config, &rec.snapshot());
        std::fs::write(path, report.to_json_string()).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("run report written to {path} (render with `psc report {path}`)");
    }
    if let (Some(path), Some(tracer)) = (trace_path, &tracer) {
        let meta = [
            ("tool".to_string(), "psc search".to_string()),
            (
                "backend".to_string(),
                flags.get("backend").unwrap_or("scalar").to_string(),
            ),
        ];
        let trace = tracer.finish(&meta);
        std::fs::write(path, trace.to_chrome_string()).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!(
            "trace written to {path} ({} lanes, {} units dropped; render with `psc trace render {path}`)",
            trace.lanes.len(),
            trace.dropped
        );
    }

    match flags.get("format") {
        Some("pairwise") => {
            let genome = genome
                .as_ref()
                .ok_or("--format pairwise needs --genome (not available with --index)")?;
            return print_pairwise(&proteins, genome, &result);
        }
        Some("gff") => {
            print!(
                "{}",
                psc_core::to_gff3(engine.genome_id(), "psc-rasc", &result.matches)
            );
            eprintln!("{} matches as GFF3", result.matches.len());
            return Ok(());
        }
        Some("tab") | None => {}
        Some(other) => return Err(format!("unknown format {other:?}")),
    }

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(out, "{TAB_HEADER}").map_err(|e| e.to_string())?;
    for m in &result.matches {
        writeln!(out, "{}", match_line(m)).map_err(|e| e.to_string())?;
    }
    let p = &result.output.profile;
    let kernel = match p.step2_kernel {
        Some(k) => k.name(),
        None => "rasc",
    };
    eprintln!(
        "steps: {:.2}s index / {:.2}s ungapped ({kernel}) / {:.2}s gapped; {} matches",
        p.step1,
        p.step2(),
        p.step3,
        result.matches.len()
    );
    if let Some(board) = &result.output.board {
        eprintln!(
            "simulated accelerator: {:.3}s ({} entries, {} hits, {:.1}% PE utilization)",
            board.accelerated_seconds,
            board.entries,
            board.hit_count,
            board.utilization(config_pes(flags).unwrap_or(192)) * 100.0
        );
    }
    Ok(())
}

fn config_pes(flags: &Flags) -> Result<usize, String> {
    flags.parsed("pes", 192usize)
}

/// Fault plan from `--fault-plan` (scripted) or `--fault-seed`
/// (seeded, rate adjustable with `--fault-rate` in ppm, persistence
/// distribution selectable with `--fault-tail`). The two are mutually
/// exclusive; neither means a fault-free run.
fn fault_plan(flags: &Flags) -> Result<Option<psc_rasc::FaultPlan>, String> {
    match (flags.get("fault-plan"), flags.get("fault-seed")) {
        (Some(_), Some(_)) => Err("--fault-plan and --fault-seed are mutually exclusive".into()),
        (Some(spec), None) => {
            if flags.get("fault-rate").is_some() {
                return Err("--fault-rate only applies to --fault-seed plans".into());
            }
            if flags.get("fault-tail").is_some() {
                return Err("--fault-tail only applies to --fault-seed plans".into());
            }
            psc_rasc::FaultPlan::parse(spec).map(Some)
        }
        (None, Some(_)) => {
            let seed = flags.parsed("fault-seed", 0u64)?;
            let rate_ppm = flags.parsed("fault-rate", psc_rasc::DEFAULT_FAULT_RATE_PPM)?;
            if rate_ppm > 1_000_000 {
                return Err(format!("--fault-rate {rate_ppm} exceeds 1000000 ppm"));
            }
            Ok(Some(match flags.get("fault-tail").unwrap_or("uniform") {
                "uniform" => psc_rasc::FaultPlan::Seeded { seed, rate_ppm },
                "heavy" => psc_rasc::FaultPlan::SeededHeavyTail { seed, rate_ppm },
                other => return Err(format!("bad --fault-tail value {other:?} (uniform|heavy)")),
            }))
        }
        (None, None) => {
            if flags.get("fault-rate").is_some() {
                return Err("--fault-rate needs --fault-seed".into());
            }
            if flags.get("fault-tail").is_some() {
                return Err("--fault-tail needs --fault-seed".into());
            }
            Ok(None)
        }
    }
}

/// Recovery policy overrides (`--fault-retries`, `--fault-degrade`).
fn recovery_policy(flags: &Flags) -> Result<psc_rasc::RecoveryPolicy, String> {
    let default = psc_rasc::RecoveryPolicy::default();
    Ok(psc_rasc::RecoveryPolicy {
        max_retries: flags.parsed("fault-retries", default.max_retries)?,
        degrade: match flags.get("fault-degrade") {
            Some("on") | None => true,
            Some("off") => false,
            Some(other) => return Err(format!("bad --fault-degrade value {other:?} (on|off)")),
        },
        ..default
    })
}

/// Render a saved run report (`psc report FILE`): the paper-style step
/// breakdown, per-FPGA PE utilization, counters and histograms. With
/// A `psc report` failure with the exit code the driver maps it to:
/// 1 for ordinary errors and tripped gates, [`SCHEMA_MISMATCH_EXIT`]
/// when `--compare` refuses mixed schema versions — scripts can tell
/// "the numbers regressed" from "the inputs aren't comparable".
struct CliFailure {
    code: u8,
    message: String,
}

impl From<String> for CliFailure {
    fn from(message: String) -> Self {
        CliFailure { code: 1, message }
    }
}

impl From<&str> for CliFailure {
    fn from(message: &str) -> Self {
        CliFailure {
            code: 1,
            message: message.to_string(),
        }
    }
}

/// Exit code for `--compare` across different report schema versions.
const SCHEMA_MISMATCH_EXIT: u8 = 3;

/// The on-disk `schema_version` of a report file, read raw:
/// `RunReport::parse` normalizes old versions to the current schema,
/// but `--compare` must refuse to diff across versions rather than
/// gate on rows one side cannot even carry.
fn raw_schema_version(path: &str, text: &str) -> Result<u64, String> {
    let json = psc_telemetry::Json::parse(text).map_err(|e| format!("{path}: {e}"))?;
    json.get("schema_version")
        .and_then(psc_telemetry::Json::as_u64)
        .ok_or_else(|| format!("{path}: no schema_version field"))
}

/// `--compare OLD NEW` diff two reports instead, gated by
/// `--max-wall-regress` / `--max-counter-regress` percent thresholds
/// (exit 1 when a gate trips — CI's first perf gate; exit 3 when the
/// two reports use different schema versions).
fn report_cmd(mut args: impl Iterator<Item = String>) -> Result<(), CliFailure> {
    let Some(first) = args.next() else {
        return Err("usage: psc report FILE | psc report --compare OLD NEW".into());
    };
    if first == "--compare" {
        let (Some(old_path), Some(new_path)) = (args.next(), args.next()) else {
            return Err("usage: psc report --compare OLD NEW [--max-wall-regress PCT] [--max-counter-regress PCT]".into());
        };
        let flags = Flags::parse_known(args, "report --compare", KNOWN_REPORT_COMPARE)?;
        let config = psc_telemetry::CompareConfig {
            max_wall_regress_pct: flags
                .get("max-wall-regress")
                .map(|v| {
                    v.parse()
                        .map_err(|_| format!("bad --max-wall-regress value {v:?}"))
                })
                .transpose()?,
            max_counter_regress_pct: flags
                .get("max-counter-regress")
                .map(|v| {
                    v.parse()
                        .map_err(|_| format!("bad --max-counter-regress value {v:?}"))
                })
                .transpose()?,
        };
        let old_text =
            std::fs::read_to_string(&old_path).map_err(|e| format!("read {old_path}: {e}"))?;
        let new_text =
            std::fs::read_to_string(&new_path).map_err(|e| format!("read {new_path}: {e}"))?;
        let (old_v, new_v) = (
            raw_schema_version(&old_path, &old_text)?,
            raw_schema_version(&new_path, &new_text)?,
        );
        if old_v != new_v {
            return Err(CliFailure {
                code: SCHEMA_MISMATCH_EXIT,
                message: format!(
                    "cannot compare reports with different schema versions \
                     ({old_path} is v{old_v}, {new_path} is v{new_v}); \
                     regenerate the older report with this build"
                ),
            });
        }
        let old =
            psc_telemetry::RunReport::parse(&old_text).map_err(|e| format!("{old_path}: {e}"))?;
        let new =
            psc_telemetry::RunReport::parse(&new_text).map_err(|e| format!("{new_path}: {e}"))?;
        let diff = psc_telemetry::diff_reports(&old, &new, config);
        print!("{}", psc_telemetry::render_diff(&diff));
        let tripped = diff.regressions().len();
        if tripped > 0 {
            return Err(format!("{tripped} metric(s) regressed past the gates").into());
        }
        return Ok(());
    }
    let path = first;
    if let Some(extra) = args.next() {
        return Err(format!("unexpected argument {extra:?} (usage: psc report FILE)").into());
    }
    let report = load_report(&path)?;
    print!("{}", psc_telemetry::render::render_report(&report));
    Ok(())
}

fn load_report(path: &str) -> Result<psc_telemetry::RunReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    psc_telemetry::RunReport::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// `psc trace render|analyze FILE` — terminal views of a saved flight
/// recording (see `psc search --trace`).
fn trace_cmd(mut args: impl Iterator<Item = String>) -> Result<(), String> {
    const USAGE: &str =
        "usage: psc trace render FILE [--width N] | psc trace analyze FILE [--report FILE]";
    let (Some(verb), Some(path)) = (args.next(), args.next()) else {
        return Err(USAGE.into());
    };
    let flags = Flags::parse_known(args, "trace", KNOWN_TRACE)?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
    let trace = psc_telemetry::Trace::from_chrome_str(&text).map_err(|e| format!("{path}: {e}"))?;
    match verb.as_str() {
        "render" => {
            let width = flags.parsed("width", 72usize)?.max(16);
            print!("{}", psc_telemetry::render_timeline(&trace, width));
        }
        "analyze" => {
            let analysis = psc_telemetry::analyze(&trace);
            print!("{}", psc_telemetry::render_analysis(&analysis));
            if let Some(report_path) = flags.get("report") {
                let report = load_report(report_path)?;
                let rows = psc_telemetry::reconcile(&analysis, &report);
                print!("{}", psc_telemetry::render_reconcile(&rows));
                if rows.iter().any(|r| !r.ok) {
                    return Err("trace does not reconcile with the run report".into());
                }
            }
        }
        other => return Err(format!("unknown trace subcommand {other:?} ({USAGE})")),
    }
    Ok(())
}

/// BLAST-style pairwise rendering of genome-search results.
fn print_pairwise(
    proteins: &psc_seqio::Bank,
    genome: &psc_seqio::Seq,
    result: &psc_core::GenomeSearchResult,
) -> Result<(), String> {
    use psc_align::{banded_global, format_pairwise, GapConfig};
    let translated = translate_six_frames(genome, GeneticCode::standard());
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for (h, m) in result.output.hsps.iter().zip(&result.matches) {
        let q = proteins.get(h.seq0 as usize);
        let frame_seq = translated.frame(m.frame);
        let qa = &q.residues[h.start0 as usize..h.end0 as usize];
        let sa = &frame_seq.residues[h.start1 as usize..h.end1 as usize];
        let band = qa.len().abs_diff(sa.len()) + 16;
        let aln = banded_global(blosum62(), qa, sa, &GapConfig::default(), band);
        writeln!(
            out,
            "> {} vs genome {}..{} (frame {:+}, {} strand)",
            q.id,
            m.genome_start,
            m.genome_end,
            m.frame.number(),
            if m.forward { "+" } else { "-" }
        )
        .map_err(|e| e.to_string())?;
        let text = format_pairwise(
            &aln,
            qa,
            sa,
            h.start0 as usize + 1,
            h.start1 as usize + 1,
            blosum62(),
            h.bit_score,
            h.evalue,
            60,
        );
        writeln!(out, "{text}").map_err(|e| e.to_string())?;
    }
    eprintln!("{} alignments rendered", result.matches.len());
    Ok(())
}

/// Build an index bundle — translated frames, T1 seed index, score
/// profile, seed-model fingerprint, optionally a protein-bank T0
/// section — and save it for `psc search --index` / `psc serve`.
fn index_cmd(flags: &Flags) -> Result<(), String> {
    let genome = load_genome(flags.required("genome")?)?;
    let out = flags.required("o")?;
    let proteins = match flags.get("proteins") {
        Some(path) => Some(read_fasta_path(path, SeqKind::Protein).map_err(|e| e.to_string())?),
        None => None,
    };
    let config = PipelineConfig {
        seed: seed_choice(flags)?,
        index_threads: flags.parsed("threads", 1usize)?,
        mask: mask_flag(flags)?,
        ..PipelineConfig::default()
    };
    let t0 = std::time::Instant::now();
    let engine = psc_core::SearchEngine::for_genome(
        &genome,
        blosum62(),
        config.clone(),
        &psc_core::NullRecorder,
    );
    let bytes = engine.to_bundle_bytes(proteins.as_ref());
    let build = t0.elapsed().as_secs_f64();
    std::fs::write(out, &bytes).map_err(|e| format!("write {out}: {e}"))?;
    // Verify the round trip before declaring success: the checksum, the
    // model fingerprint and the matrix/mask sections must all load back.
    let reread = std::fs::read(out).map_err(|e| e.to_string())?;
    psc_core::SearchEngine::from_bundle(&reread, blosum62(), config)
        .map_err(|e| format!("bundle failed verification after write: {e}"))?;
    let info = psc_index::peek_bundle(&reread).map_err(|e| e.to_string())?;
    eprintln!(
        "indexed genome {} ({} nt) under {} in {build:.2}s; bundle of {} bytes (mask {}, T0 {}) to {out}",
        info.genome_id,
        info.genome_len,
        info.model_name,
        bytes.len(),
        if info.masked { "on" } else { "off" },
        match &proteins {
            Some(bank) => format!("{} proteins", bank.len()),
            None => "none".to_string(),
        }
    );
    Ok(())
}

fn blast(flags: &Flags) -> Result<(), String> {
    let proteins = read_fasta_path(flags.required("proteins")?, SeqKind::Protein)
        .map_err(|e| e.to_string())?;
    let genome = load_genome(flags.required("genome")?)?;
    let translated = translate_six_frames(&genome, GeneticCode::standard());
    let config = BlastConfig {
        max_evalue: flags.parsed("evalue", 1e-3f64)?,
        mask: match flags.get("mask") {
            Some("on") => Some(psc_seqio::MaskConfig::default()),
            _ => None,
        },
        ..BlastConfig::default()
    };
    let report = tblastn(&proteins, &translated.to_bank(), blosum62(), &config);

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(
        out,
        "# protein\tframe\tgenome_start\tgenome_end\traw\tbits\tevalue"
    )
    .map_err(|e| e.to_string())?;
    for h in &report.hsps {
        let frame = Frame::ALL[h.seq1 as usize];
        let (s, e, _) = translated.to_genome_interval(
            FrameCoord {
                frame,
                aa_pos: h.start1 as usize,
            },
            (h.end1 - h.start1) as usize,
        );
        writeln!(
            out,
            "{}\t{:+}\t{}\t{}\t{}\t{:.1}\t{:.2e}",
            proteins.get(h.seq0 as usize).id,
            frame.number(),
            s,
            e,
            h.score,
            h.bit_score,
            h.evalue
        )
        .map_err(|e| e.to_string())?;
    }
    eprintln!(
        "tblastn: {} word hits, {} ungapped ext, {} gapped ext, {} HSPs in {:.2}s",
        report.word_hits,
        report.ungapped_extensions,
        report.gapped_extensions,
        report.hsps.len(),
        report.total_seconds()
    );
    Ok(())
}

fn resources(flags: &Flags) -> Result<(), String> {
    let pes = flags.parsed("pes", 192usize)?;
    let mut cfg = OperatorConfig::new(pes);
    cfg.window_len = flags.parsed("window", 60usize)?;
    cfg.slot_size = flags.parsed("slot", 16usize)?;
    match ResourceModel::check(&cfg) {
        Ok(u) => println!(
            "{pes} PEs, window {}, slots of {}: {} slices ({}%), {} BRAMs ({}%) on one Virtex-4 LX200",
            cfg.window_len, cfg.slot_size, u.slices, u.slice_pct, u.brams, u.bram_pct
        ),
        Err(e) => println!("does not fit: {e}"),
    }
    println!(
        "largest fitting array at this geometry: {} PEs",
        ResourceModel::max_pes(cfg.window_len, cfg.slot_size)
    );
    Ok(())
}

fn matrix() -> Result<(), String> {
    let m = blosum62();
    print!("  ");
    for b in psc_seqio::alphabet::AA_LETTERS {
        print!("{:>3}", b as char);
    }
    println!();
    for a in 0..24u8 {
        print!("{:>2}", psc_seqio::alphabet::AA_LETTERS[a as usize] as char);
        for b in 0..24u8 {
            print!("{:>3}", m.score(a, b));
        }
        println!();
    }
    Ok(())
}
