//! End-to-end tests of the index → serve → query flow: the server must
//! answer concurrent queries byte-identically to one-shot `psc search`
//! runs, bound its in-flight work, and reject overload gracefully.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

fn psc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_psc"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("psc-serve-test-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Generate a bank + genome and build an index bundle (T0 included).
fn build_workload(dir: &Path) -> (PathBuf, PathBuf, PathBuf) {
    let bank = dir.join("bank.fasta");
    let genome = dir.join("genome.fasta");
    let bundle = dir.join("genome.psc");
    let out = psc()
        .args(["generate-bank", "--count", "6", "--seed", "31"])
        .args(["--min-len", "100", "--max-len", "200"])
        .args(["-o", bank.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let out = psc()
        .args([
            "generate-genome",
            "--len",
            "12000",
            "--genes",
            "3",
            "--seed",
            "32",
        ])
        .args(["--bank", bank.to_str().unwrap()])
        .args(["-o", genome.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let out = psc()
        .args(["index", "--genome", genome.to_str().unwrap()])
        .args(["--proteins", bank.to_str().unwrap()])
        .args(["-o", bundle.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    (bank, genome, bundle)
}

/// A `psc serve` child that dies with the test, plus its bound address.
struct Server {
    child: Child,
    addr: String,
}

impl Server {
    fn spawn(extra: &[&str]) -> Server {
        let mut child = psc()
            .arg("serve")
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .unwrap();
        let mut line = String::new();
        BufReader::new(child.stdout.as_mut().unwrap())
            .read_line(&mut line)
            .unwrap();
        let addr = line
            .split("listening on ")
            .nth(1)
            .and_then(|rest| rest.split(' ').next())
            .unwrap_or_else(|| panic!("no address in {line:?}"))
            .to_string();
        Server { child, addr }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

#[test]
fn concurrent_queries_are_byte_identical_to_search() {
    let dir = tmpdir("concurrent");
    let (bank, _genome, bundle) = build_workload(&dir);

    // Reference: one-shot search answering from the same artifact.
    let reference = psc()
        .args(["search", "--proteins", bank.to_str().unwrap()])
        .args(["--index", bundle.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        reference.status.success(),
        "{}",
        String::from_utf8_lossy(&reference.stderr)
    );
    assert!(
        !String::from_utf8_lossy(&reference.stdout)
            .lines()
            .all(|l| l.starts_with('#')),
        "reference search found nothing"
    );

    let server = Server::spawn(&["--index", bundle.to_str().unwrap(), "--queue", "8"]);
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let addr = server.addr.clone();
            let bank = bank.clone();
            std::thread::spawn(move || {
                psc()
                    .args(["query", "--connect", &addr])
                    .args(["--proteins", bank.to_str().unwrap()])
                    .output()
                    .unwrap()
            })
        })
        .collect();
    for h in handles {
        let out = h.join().unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            out.stdout, reference.stdout,
            "served query differs from one-shot search"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn served_queries_match_search_under_seeded_faults() {
    let dir = tmpdir("faults");
    let (bank, _genome, bundle) = build_workload(&dir);
    let fault_args = [
        "--backend",
        "rasc",
        "--pes",
        "64",
        "--fault-seed",
        "5",
        "--fault-rate",
        "200000",
    ];

    let reference = psc()
        .args(["search", "--proteins", bank.to_str().unwrap()])
        .args(["--index", bundle.to_str().unwrap()])
        .args(fault_args)
        .output()
        .unwrap();
    assert!(
        reference.status.success(),
        "{}",
        String::from_utf8_lossy(&reference.stderr)
    );

    let mut serve_args = vec!["--index", bundle.to_str().unwrap(), "--queue", "4"];
    serve_args.extend_from_slice(&fault_args);
    let server = Server::spawn(&serve_args);
    let handles: Vec<_> = (0..3)
        .map(|_| {
            let addr = server.addr.clone();
            let bank = bank.clone();
            std::thread::spawn(move || {
                psc()
                    .args(["query", "--connect", &addr])
                    .args(["--proteins", bank.to_str().unwrap()])
                    .output()
                    .unwrap()
            })
        })
        .collect();
    for h in handles {
        let out = h.join().unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            out.stdout, reference.stdout,
            "fault-degraded served query differs from one-shot search"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fleet_served_queries_match_search_under_heavy_tail_faults() {
    let dir = tmpdir("fleet");
    let (bank, _genome, bundle) = build_workload(&dir);
    // A 4-board fleet under a heavy-tailed fault plan aggressive enough
    // to quarantine: served answers must still be byte-identical to the
    // one-shot search on the same bundle with the same fleet shape.
    let fleet_args = [
        "--backend",
        "rasc",
        "--pes",
        "64",
        "--boards",
        "4",
        "--steal-policy",
        "richest",
        "--quarantine-after",
        "1",
        "--fault-seed",
        "1",
        "--fault-tail",
        "heavy",
    ];

    let reference = psc()
        .args(["search", "--proteins", bank.to_str().unwrap()])
        .args(["--index", bundle.to_str().unwrap()])
        .args(fleet_args)
        .output()
        .unwrap();
    assert!(
        reference.status.success(),
        "{}",
        String::from_utf8_lossy(&reference.stderr)
    );
    assert!(
        !String::from_utf8_lossy(&reference.stdout)
            .lines()
            .all(|l| l.starts_with('#')),
        "reference fleet search found nothing"
    );

    let report_dir = dir.join("reports");
    std::fs::create_dir_all(&report_dir).unwrap();
    let mut serve_args = vec!["--index", bundle.to_str().unwrap(), "--queue", "8"];
    serve_args.extend_from_slice(&fleet_args);
    serve_args.push("--report-dir");
    serve_args.push(report_dir.to_str().unwrap());
    let server = Server::spawn(&serve_args);
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let addr = server.addr.clone();
            let bank = bank.clone();
            std::thread::spawn(move || {
                psc()
                    .args(["query", "--connect", &addr])
                    .args(["--proteins", bank.to_str().unwrap()])
                    .output()
                    .unwrap()
            })
        })
        .collect();
    for h in handles {
        let out = h.join().unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            out.stdout, reference.stdout,
            "fleet-served query differs from one-shot fleet search"
        );
    }

    // Every served report attributes its answer to the 4-board fleet.
    let reports: Vec<_> = std::fs::read_dir(&report_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(reports.len(), 4, "expected one report per query");
    for path in reports {
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(
            json.contains("\"serve.fleet_boards\""),
            "{} lacks serve.fleet_boards",
            path.display()
        );
        assert!(
            json.contains("\"fleet.boards\""),
            "{} lacks fleet.boards",
            path.display()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn admission_queue_rejects_overload_then_recovers() {
    let dir = tmpdir("busy");
    let (bank, _genome, bundle) = build_workload(&dir);
    let server = Server::spawn(&["--index", bundle.to_str().unwrap(), "--queue", "1"]);

    // Occupy the single admission slot deterministically.
    let mut hold = TcpStream::connect(&server.addr).unwrap();
    hold.write_all(b"HOLD 3000\n").unwrap();
    hold.flush().unwrap();
    let mut reader = BufReader::new(hold.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "+HOLDING");

    // A query while the gate is full is rejected gracefully: exit 4,
    // a -BUSY explanation, no output rows.
    let out = psc()
        .args(["query", "--connect", &server.addr])
        .args(["--proteins", bank.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("admission queue full"), "{err}");
    assert!(out.stdout.is_empty(), "rejected query produced output");

    // Release the slot early by dropping the holder connection is not
    // possible (the server sleeps), so wait for +HELD; afterwards the
    // same query is admitted and answers.
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "+HELD");
    let out = psc()
        .args(["query", "--connect", &server.addr])
        .args(["--proteins", bank.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!out.stdout.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn protocol_answers_ping_info_and_rejects_junk() {
    let dir = tmpdir("protocol");
    let (_bank, _genome, bundle) = build_workload(&dir);
    let server = Server::spawn(&["--index", bundle.to_str().unwrap()]);
    let mut conn = TcpStream::connect(&server.addr).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut line = String::new();

    conn.write_all(b"PING\n").unwrap();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "+PONG");

    line.clear();
    conn.write_all(b"INFO\n").unwrap();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.starts_with("+INFO genome=") && line.contains("queue="),
        "{line}"
    );

    line.clear();
    conn.write_all(b"FROBNICATE\n").unwrap();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("-ERR unknown command"), "{line}");

    // SHUTDOWN ends the process cleanly.
    line.clear();
    conn.write_all(b"SHUTDOWN\n").unwrap();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "+BYE");
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn search_index_rejects_model_mismatch_cleanly() {
    let dir = tmpdir("mismatch");
    let (bank, _genome, bundle) = build_workload(&dir);
    // The bundle was built under the default subset model; asking for
    // exact4 must be a clean fingerprint error, not a rebuild or panic.
    let out = psc()
        .args(["search", "--proteins", bank.to_str().unwrap()])
        .args(["--index", bundle.to_str().unwrap()])
        .args(["--seed-model", "exact4"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("was built with seed model"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn search_rejects_index_plus_genome_and_unknown_flags() {
    let dir = tmpdir("flags");
    let (bank, genome, bundle) = build_workload(&dir);
    let out = psc()
        .args(["search", "--proteins", bank.to_str().unwrap()])
        .args(["--genome", genome.to_str().unwrap()])
        .args(["--index", bundle.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("mutually exclusive"));

    // The old parser silently swallowed typo'd flags; now they are
    // rejected with a nearest-match suggestion.
    let out = psc()
        .args(["search", "--proteins", bank.to_str().unwrap()])
        .args(["--genome", genome.to_str().unwrap()])
        .args(["--step2-kernal", "wide"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("unknown flag --step2-kernal") && err.contains("--step2-kernel"),
        "{err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
