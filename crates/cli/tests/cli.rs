//! End-to-end tests of the `psc` binary: generate → search → verify.

use std::path::PathBuf;
use std::process::Command;

fn psc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_psc"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("psc-cli-test-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn no_args_prints_usage() {
    let out = psc().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("psc"));
}

#[test]
fn unknown_command_fails() {
    let out = psc().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn matrix_prints_blosum62() {
    let out = psc().arg("matrix").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    // W/W = 11 must appear in the W row.
    let wrow = text.lines().find(|l| l.starts_with(" W")).unwrap();
    assert!(wrow.contains("11"), "{wrow}");
}

#[test]
fn resources_reports_fit() {
    let out = psc()
        .args(["resources", "--pes", "192", "--window", "60"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("192 PEs"));
    assert!(text.contains("largest fitting array"));
}

#[test]
fn compare_refuses_mixed_schema_versions_with_exit_3() {
    let dir = tmpdir("schema-mismatch");
    let old = dir.join("old.json");
    let new = dir.join("new.json");
    std::fs::write(&old, "{\"schema_version\": 1}").unwrap();
    std::fs::write(&new, "{\"schema_version\": 2}").unwrap();
    let out = psc()
        .args(["report", "--compare"])
        .args([old.to_str().unwrap(), new.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("different schema versions") && err.contains("v1") && err.contains("v2"),
        "{err}"
    );
}

#[test]
fn generate_search_blast_round_trip() {
    let dir = tmpdir("roundtrip");
    let bank = dir.join("bank.fasta");
    let genome = dir.join("genome.fasta");

    // Generate a bank.
    let out = psc()
        .args(["generate-bank", "--count", "8", "--seed", "9"])
        .args(["--min-len", "120", "--max-len", "250"])
        .args(["-o", bank.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Generate a genome with plants from the bank.
    let out = psc()
        .args([
            "generate-genome",
            "--len",
            "15000",
            "--genes",
            "4",
            "--seed",
            "10",
        ])
        .args(["--bank", bank.to_str().unwrap()])
        .args(["-o", genome.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let plants = String::from_utf8_lossy(&out.stderr)
        .lines()
        .filter(|l| l.contains("plant:"))
        .count();
    assert!(plants >= 1);

    // Search with the RASC backend.
    let out = psc()
        .args(["search", "--proteins", bank.to_str().unwrap()])
        .args(["--genome", genome.to_str().unwrap()])
        .args(["--backend", "rasc", "--pes", "64"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let table = String::from_utf8_lossy(&out.stdout);
    let matches = table.lines().filter(|l| !l.starts_with('#')).count();
    assert!(
        matches >= plants,
        "search found {matches} < {plants} plants:\n{table}"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("simulated accelerator"));

    // Baseline agrees on the hit count order of magnitude.
    let out = psc()
        .args(["blast", "--proteins", bank.to_str().unwrap()])
        .args(["--genome", genome.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let blast_matches = String::from_utf8_lossy(&out.stdout)
        .lines()
        .filter(|l| !l.starts_with('#'))
        .count();
    assert!(blast_matches >= plants);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn translate_outputs_six_frames() {
    let dir = tmpdir("translate");
    let genome = dir.join("g.fasta");
    std::fs::write(&genome, ">g\nATGGCCTAAATGGCCTAAATGGCC\n").unwrap();
    let out = psc()
        .args(["translate", "--genome", genome.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(text.matches('>').count(), 6);
    assert!(text.contains("frame+1"));
    assert!(text.contains("frame-3"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn search_rejects_multi_sequence_genome() {
    let dir = tmpdir("multiseq");
    let bank = dir.join("bank.fasta");
    let genome = dir.join("g.fasta");
    std::fs::write(&bank, ">p\nMKVLAW\n").unwrap();
    std::fs::write(&genome, ">a\nACGT\n>b\nACGT\n").unwrap();
    let out = psc()
        .args(["search", "--proteins", bank.to_str().unwrap()])
        .args(["--genome", genome.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("exactly one"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn report_json_round_trip_through_report_command() {
    let dir = tmpdir("report");
    let bank = dir.join("bank.fasta");
    let genome = dir.join("genome.fasta");
    let report = dir.join("run.json");

    let out = psc()
        .args(["generate-bank", "--count", "6", "--seed", "21"])
        .args(["--min-len", "100", "--max-len", "200"])
        .args(["-o", bank.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = psc()
        .args([
            "generate-genome",
            "--len",
            "12000",
            "--genes",
            "3",
            "--seed",
            "22",
        ])
        .args(["--bank", bank.to_str().unwrap()])
        .args(["-o", genome.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());

    // Search on the RASC backend, writing a run report.
    let out = psc()
        .args(["search", "--proteins", bank.to_str().unwrap()])
        .args(["--genome", genome.to_str().unwrap()])
        .args(["--backend", "rasc", "--pes", "64", "--fpgas", "2"])
        .args(["--report-json", report.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("run report written"));

    // The JSON carries the schema and the per-step / per-FPGA details.
    let json = std::fs::read_to_string(&report).unwrap();
    for needle in [
        "\"schema_version\": 2",
        "\"steps\"",
        "\"counters\"",
        "step2.pairs",
        "\"board\"",
        "\"fifo_peak\"",
        "\"wire_in_seconds\"",
        "step2.pairs_per_key",
    ] {
        assert!(json.contains(needle), "missing {needle} in report:\n{json}");
    }

    // `psc report` renders the paper-style views from the file.
    let out = psc()
        .args(["report", report.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "Step time breakdown",
        "Simulated RASC board",
        "fifo_peak",
        "step2.pairs_per_key",
        "backend = rasc",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn report_command_rejects_bad_input() {
    let dir = tmpdir("badreport");
    let path = dir.join("bad.json");
    std::fs::write(&path, "{\"schema_version\": 999}").unwrap();
    let out = psc()
        .args(["report", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unsupported schema_version"));

    let out = psc().arg("report").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: psc report"));
    std::fs::remove_dir_all(&dir).ok();
}
