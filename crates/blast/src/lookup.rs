//! Query-side lookup table of neighbourhood words.
//!
//! For every word position of every query, all `w`-mers scoring at least
//! `T` against it are enumerated and registered in a CSR table keyed by
//! the exact `w`-mer code, so the genome scan can find, in O(1) per
//! subject word, every (query, position) it might seed.

use psc_index::neighborhood::neighborhood_keys;
use psc_index::seed::{ExactSeed, SeedModel};
use psc_score::SubstitutionMatrix;

/// A `(query index, query offset)` pair registered under a word key.
/// `qconcat` is the offset in the concatenated all-queries coordinate
/// space (the two-hit tracker's diagonal basis).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WordSite {
    pub query: u32,
    pub qpos: u32,
    pub qconcat: u32,
}

/// The scan-side lookup table.
#[derive(Debug)]
pub struct QueryLookup {
    word_len: usize,
    offsets: Vec<u32>,
    sites: Vec<WordSite>,
    /// Number of (word, neighbour) registrations (diagnostics).
    pub registrations: usize,
    /// Total residues across all queries (concatenated coordinate space).
    pub query_total: usize,
}

impl QueryLookup {
    /// Build from a query bank (`queries[i]` = encoded residues).
    pub fn build<'a>(
        queries: impl Iterator<Item = &'a [u8]>,
        matrix: &SubstitutionMatrix,
        word_len: usize,
        threshold: i32,
    ) -> QueryLookup {
        let model = ExactSeed::new(word_len);
        let key_count = model.key_count();

        // Collect (key, site) pairs, then counting-sort into CSR.
        let mut pairs: Vec<(u32, WordSite)> = Vec::new();
        let mut neigh = Vec::new();
        let mut offset = 0usize;
        for (q, residues) in queries.enumerate() {
            if residues.len() >= word_len {
                for qpos in 0..=residues.len() - word_len {
                    let word = &residues[qpos..qpos + word_len];
                    if word.iter().any(|&c| c >= 20) {
                        continue;
                    }
                    neighborhood_keys(word, matrix, threshold, &mut neigh);
                    for &key in &neigh {
                        pairs.push((
                            key,
                            WordSite {
                                query: q as u32,
                                qpos: qpos as u32,
                                qconcat: (offset + qpos) as u32,
                            },
                        ));
                    }
                }
            }
            offset += residues.len();
        }

        let mut offsets = vec![0u32; key_count + 1];
        for &(key, _) in &pairs {
            offsets[key as usize + 1] += 1;
        }
        for k in 0..key_count {
            offsets[k + 1] += offsets[k];
        }
        let mut sites = vec![
            WordSite {
                query: 0,
                qpos: 0,
                qconcat: 0
            };
            pairs.len()
        ];
        let mut cursor = offsets.clone();
        for (key, site) in &pairs {
            let c = &mut cursor[*key as usize];
            sites[*c as usize] = *site;
            *c += 1;
        }
        QueryLookup {
            word_len,
            offsets,
            registrations: pairs.len(),
            sites,
            query_total: offset,
        }
    }

    /// Sites whose neighbourhood contains the exact word at `key`.
    #[inline]
    pub fn sites(&self, key: u32) -> &[WordSite] {
        let k = key as usize;
        &self.sites[self.offsets[k] as usize..self.offsets[k + 1] as usize]
    }

    /// Exact-seed key of a subject word, if it is made of standard
    /// residues.
    #[inline]
    pub fn key_of(&self, word: &[u8]) -> Option<u32> {
        debug_assert_eq!(word.len(), self.word_len);
        let mut key = 0u32;
        for &c in word {
            if c >= 20 {
                return None;
            }
            key = key * 20 + c as u32;
        }
        Some(key)
    }

    pub fn word_len(&self) -> usize {
        self.word_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_score::blosum62;
    use psc_seqio::alphabet::encode_protein;

    fn has(lut: &QueryLookup, key: u32, query: u32, qpos: u32) -> bool {
        lut.sites(key)
            .iter()
            .any(|s| s.query == query && s.qpos == qpos)
    }

    #[test]
    fn identical_word_always_registered() {
        let q = encode_protein(b"MKVLAW");
        let lut = QueryLookup::build(std::iter::once(q.as_slice()), blosum62(), 3, 11);
        // The word MKV at qpos 0 self-scores 14 ≥ 11: looking up MKV must
        // find (0, 0).
        let key = lut.key_of(&encode_protein(b"MKV")).unwrap();
        assert!(has(&lut, key, 0, 0));
        // WLA...: the word LAW at qpos 3.
        let key = lut.key_of(&encode_protein(b"LAW")).unwrap();
        assert!(has(&lut, key, 0, 3));
    }

    #[test]
    fn neighbour_word_registered() {
        let q = encode_protein(b"MKV");
        let lut = QueryLookup::build(std::iter::once(q.as_slice()), blosum62(), 3, 11);
        // MKI scores 5+5+3 = 13 ≥ 11 against MKV.
        let key = lut.key_of(&encode_protein(b"MKI")).unwrap();
        assert!(has(&lut, key, 0, 0));
        // GGG scores badly; must not be registered.
        let key = lut.key_of(&encode_protein(b"GGG")).unwrap();
        assert!(lut.sites(key).is_empty());
    }

    #[test]
    fn nonstandard_words_skipped() {
        let q = encode_protein(b"MKXVL"); // MKX and KXV unusable, XVL too
        let lut = QueryLookup::build(std::iter::once(q.as_slice()), blosum62(), 3, 11);
        // Only no window is fully standard except none (len 5, windows
        // MKX KXV XVL) — registrations must be zero.
        assert_eq!(lut.registrations, 0);
        assert_eq!(lut.key_of(&encode_protein(b"MKX")), None);
    }

    #[test]
    fn multiple_queries_tracked() {
        let q0 = encode_protein(b"MKV");
        let q1 = encode_protein(b"AMKVA");
        let lut = QueryLookup::build(
            [q0.as_slice(), q1.as_slice()].into_iter(),
            blosum62(),
            3,
            12,
        );
        let key = lut.key_of(&encode_protein(b"MKV")).unwrap();
        assert!(has(&lut, key, 0, 0));
        assert!(has(&lut, key, 1, 1));
        // qconcat of query 1's site is query-0 length (3) + qpos (1).
        let site = lut
            .sites(key)
            .iter()
            .find(|s| s.query == 1)
            .copied()
            .unwrap();
        assert_eq!(site.qconcat, 4);
        assert_eq!(lut.query_total, 8);
    }

    #[test]
    fn higher_threshold_fewer_registrations() {
        let q = encode_protein(b"MKVLAWRNDCQEHFY");
        let lo = QueryLookup::build(std::iter::once(q.as_slice()), blosum62(), 3, 10);
        let hi = QueryLookup::build(std::iter::once(q.as_slice()), blosum62(), 3, 13);
        assert!(lo.registrations > hi.registrations);
    }
}
