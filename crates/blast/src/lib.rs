//! # psc-blast — a tblastn-like baseline
//!
//! The paper compares its RASC-100 pipeline against NCBI `tblastn`
//! 2.2.18. That binary (and its genomic inputs) are not available here,
//! so this crate reimplements the algorithm class from scratch, following
//! the published BLAST structure:
//!
//! 1. build a lookup table of **neighbourhood words** over the query
//!    bank (3-mers scoring ≥ T against a query word, `psc-index`'s
//!    neighbourhood generator);
//! 2. scan the translated genome; on each word hit consult per-diagonal
//!    bookkeeping and apply the **two-hit rule** (two word hits on one
//!    diagonal within a window trigger an extension);
//! 3. **X-drop ungapped extension**; segments above the gap trigger go to
//!    **gapped X-drop extension**;
//! 4. Karlin–Altschul E-values, culling, reporting.
//!
//! The output type is the same [`psc_align::Hsp`] the pipeline produces,
//! so the quality harness (paper Table 6) can score both tools on one
//! benchmark.

#![forbid(unsafe_code)]

pub mod lookup;
pub mod search;
pub mod twohit;

pub use lookup::QueryLookup;
pub use search::{tblastn, BlastConfig, BlastReport};
