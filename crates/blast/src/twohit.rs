//! Per-diagonal bookkeeping for the two-hit rule.
//!
//! BLAST's two-hit heuristic: an ungapped extension is only triggered
//! when two non-overlapping word hits occur on the same `(query,
//! diagonal)` within `window` residues. The tracker also remembers how
//! far the last extension reached on a diagonal, so hits inside an
//! already-explored region do not re-trigger.
//!
//! Like NCBI's `diag_array`, the state lives in one flat array indexed
//! by `subject_offset − concatenated_query_offset + query_total` (all
//! queries share one coordinate space, so a diagonal is automatically
//! unique per query), and "clearing" between subject sequences is an
//! epoch bump — the scan loop never touches a hash map or a memset.

/// Decision for one incoming word hit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HitAction {
    /// First recent hit on the diagonal: remember it, do nothing.
    Record,
    /// Second hit within the window: extend now.
    Trigger,
    /// Inside a region an extension already covered: drop.
    Covered,
}

#[derive(Clone, Copy, Debug)]
struct DiagState {
    epoch: u32,
    last_hit: i32,
    covered_to: i32,
}

const STALE: DiagState = DiagState {
    epoch: 0,
    last_hit: i32::MIN / 2,
    covered_to: i32::MIN / 2,
};

/// Two-hit tracker for a scan of subject sequences against a
/// concatenated query space of `query_total` residues.
#[derive(Debug)]
pub struct TwoHitTracker {
    window: i32,
    word_len: i32,
    query_total: usize,
    epoch: u32,
    diags: Vec<DiagState>,
    /// When true, every first hit triggers (one-hit mode, the ablation
    /// configuration).
    one_hit: bool,
}

impl TwoHitTracker {
    /// `query_total` is the summed residue count of all queries (the
    /// concatenated coordinate space word sites are expressed in).
    pub fn new(window: usize, word_len: usize, query_total: usize, one_hit: bool) -> TwoHitTracker {
        TwoHitTracker {
            window: window as i32,
            word_len: word_len as i32,
            query_total,
            epoch: 1,
            diags: Vec::new(),
            one_hit,
        }
    }

    /// Forget everything (call between subject sequences) — O(1).
    pub fn reset(&mut self) {
        self.epoch += 1;
    }

    #[inline]
    fn slot(&mut self, qconcat: u32, spos: u32) -> &mut DiagState {
        let idx = spos as usize + self.query_total - qconcat as usize;
        if idx >= self.diags.len() {
            self.diags.resize(idx + 1024, STALE);
        }
        let slot = &mut self.diags[idx];
        if slot.epoch != self.epoch {
            *slot = DiagState {
                epoch: self.epoch,
                ..STALE
            };
        }
        slot
    }

    /// Process a word hit at concatenated query offset `qconcat`,
    /// subject offset `spos`.
    #[inline]
    pub fn on_hit(&mut self, qconcat: u32, spos: u32) -> HitAction {
        let one_hit = self.one_hit;
        let (window, word_len) = (self.window, self.word_len);
        let entry = self.slot(qconcat, spos);
        let s = spos as i32;
        if s < entry.covered_to {
            return HitAction::Covered;
        }
        if one_hit {
            entry.last_hit = s;
            return HitAction::Trigger;
        }
        let gap = s - entry.last_hit;
        if gap < word_len {
            // Overlaps the remembered hit: ignore, keep the older anchor
            // (NCBI semantics — refreshing here would let a run of
            // consecutive hits starve the trigger forever).
            HitAction::Record
        } else if gap <= window {
            // Second, non-overlapping hit inside the window.
            entry.last_hit = s;
            HitAction::Trigger
        } else {
            entry.last_hit = s;
            HitAction::Record
        }
    }

    /// Mark a diagonal as explored up to `covered_to` (exclusive subject
    /// offset) after an extension.
    pub fn mark_covered(&mut self, qconcat: u32, spos: u32, covered_to: u32) {
        let entry = self.slot(qconcat, spos);
        entry.covered_to = entry.covered_to.max(covered_to as i32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(one_hit: bool) -> TwoHitTracker {
        TwoHitTracker::new(40, 3, 1000, one_hit)
    }

    #[test]
    fn two_hits_required() {
        let mut t = tracker(false);
        assert_eq!(t.on_hit(100, 10), HitAction::Record);
        assert_eq!(t.on_hit(105, 15), HitAction::Trigger); // same diag
    }

    #[test]
    fn overlapping_second_hit_does_not_trigger() {
        let mut t = tracker(false);
        assert_eq!(t.on_hit(100, 10), HitAction::Record);
        // Distance 2 < word_len 3: overlapping, ignored (anchor stays 10).
        assert_eq!(t.on_hit(102, 12), HitAction::Record);
        // Distance 3 from the *original* anchor: triggers.
        assert_eq!(t.on_hit(103, 13), HitAction::Trigger);
    }

    #[test]
    fn distant_second_hit_restarts() {
        let mut t = tracker(false);
        assert_eq!(t.on_hit(100, 10), HitAction::Record);
        assert_eq!(t.on_hit(190, 100), HitAction::Record); // > window
        assert_eq!(t.on_hit(195, 105), HitAction::Trigger);
    }

    #[test]
    fn different_diagonals_independent() {
        let mut t = tracker(false);
        assert_eq!(t.on_hit(100, 10), HitAction::Record); // diag -90
        assert_eq!(t.on_hit(100, 20), HitAction::Record); // diag -80
        assert_eq!(t.on_hit(900, 15), HitAction::Record); // other query region
        assert_eq!(t.on_hit(105, 15), HitAction::Trigger); // diag -90 again
    }

    #[test]
    fn covered_region_suppresses() {
        let mut t = tracker(false);
        t.on_hit(100, 10);
        t.on_hit(105, 15);
        t.mark_covered(105, 15, 60);
        assert_eq!(t.on_hit(120, 30), HitAction::Covered);
        assert_eq!(t.on_hit(155, 65), HitAction::Record); // past cover
    }

    #[test]
    fn one_hit_mode_always_triggers() {
        let mut t = tracker(true);
        assert_eq!(t.on_hit(100, 10), HitAction::Trigger);
        t.mark_covered(100, 10, 50);
        assert_eq!(t.on_hit(110, 20), HitAction::Covered);
    }

    #[test]
    fn reset_forgets() {
        let mut t = tracker(false);
        t.on_hit(100, 10);
        t.reset();
        assert_eq!(t.on_hit(105, 15), HitAction::Record);
    }

    #[test]
    fn extreme_diagonals_addressable() {
        let mut t = tracker(false);
        // qconcat at the end of the query space, spos 0 → index 0.
        assert_eq!(t.on_hit(1000, 0), HitAction::Record);
        // qconcat 0, huge spos → large index (forces growth); the second
        // hit advances both coordinates to stay on the same diagonal.
        assert_eq!(t.on_hit(0, 100_000), HitAction::Record);
        assert_eq!(t.on_hit(5, 100_005), HitAction::Trigger);
    }
}
