//! The tblastn-style search driver.

use std::time::Instant;

use psc_align::{cull_hsps, gapped_extend, xdrop_ungapped, GapConfig, Hsp};
use psc_score::karlin::{gapped_params, ungapped_params};
use psc_score::{KarlinParams, SubstitutionMatrix, ROBINSON_FREQS};
use psc_seqio::Bank;

use crate::lookup::QueryLookup;
use crate::twohit::{HitAction, TwoHitTracker};

/// Baseline search parameters (NCBI tblastn defaults where they exist).
#[derive(Clone, Debug)]
pub struct BlastConfig {
    /// Word length (NCBI protein default: 3).
    pub word_len: usize,
    /// Neighbourhood threshold T (NCBI default: 11 for word length 3).
    pub word_threshold: i32,
    /// Two-hit window A (NCBI default: 40).
    pub two_hit_window: usize,
    /// One-hit mode (ablation; NCBI's older behaviour).
    pub one_hit: bool,
    /// X-drop for the ungapped extension (raw score units; NCBI's 7 bits
    /// ≈ 16 raw under BLOSUM62).
    pub xdrop_ungapped: i32,
    /// Raw ungapped score required to attempt a gapped extension
    /// (NCBI's gap trigger, 22 bits ≈ 41 raw under BLOSUM62).
    pub gap_trigger: i32,
    /// Gapped extension parameters (open/extend/X-drop).
    pub gap: GapConfig,
    /// Report alignments with E-value at most this (the paper uses 1e-3).
    pub max_evalue: f64,
    /// Soft low-complexity masking of the queries (seeding only).
    pub mask: Option<psc_seqio::MaskConfig>,
}

impl Default for BlastConfig {
    fn default() -> Self {
        BlastConfig {
            word_len: 3,
            word_threshold: 11,
            two_hit_window: 40,
            one_hit: false,
            xdrop_ungapped: 16,
            gap_trigger: 41,
            gap: GapConfig::default(),
            max_evalue: 1e-3,
            mask: None,
        }
    }
}

/// Search outcome: HSPs plus instrumentation.
#[derive(Clone, Debug)]
pub struct BlastReport {
    pub hsps: Vec<Hsp>,
    /// Word hits examined.
    pub word_hits: u64,
    /// Ungapped extensions performed.
    pub ungapped_extensions: u64,
    /// Gapped extensions performed.
    pub gapped_extensions: u64,
    /// Wall-clock seconds: lookup build / scan+ungapped / gapped.
    pub build_seconds: f64,
    pub scan_seconds: f64,
    pub gapped_seconds: f64,
    /// Statistics used for E-values.
    pub stats: KarlinParams,
    /// Search-space size (query residues × subject residues).
    pub search_space: (usize, usize),
}

impl BlastReport {
    pub fn total_seconds(&self) -> f64 {
        self.build_seconds + self.scan_seconds + self.gapped_seconds
    }
}

/// Compare a protein query bank against a subject bank of translated
/// frames (or any protein bank), BLAST-style.
pub fn tblastn(
    queries: &Bank,
    subjects: &Bank,
    matrix: &SubstitutionMatrix,
    config: &BlastConfig,
) -> BlastReport {
    // analyzer: allow(determinism) -- baseline phase profile is wall-clock by definition
    let t0 = Instant::now();
    // Soft masking applies to the lookup dictionary only; extensions see
    // the original residues.
    let masked_queries: Option<Vec<Vec<u8>>> = config.mask.as_ref().map(|mask_cfg| {
        queries
            .seqs()
            .iter()
            .map(|s| psc_seqio::mask_low_complexity(&s.residues, mask_cfg))
            .collect()
    });
    let lookup = match &masked_queries {
        Some(masked) => QueryLookup::build(
            masked.iter().map(|v| v.as_slice()),
            matrix,
            config.word_len,
            config.word_threshold,
        ),
        None => QueryLookup::build(
            queries.seqs().iter().map(|s| s.residues.as_slice()),
            matrix,
            config.word_len,
            config.word_threshold,
        ),
    };
    let build_seconds = t0.elapsed().as_secs_f64();

    let ungapped_stats = ungapped_params(matrix, &ROBINSON_FREQS)
        .expect("scoring system must have negative expected score");
    let stats = gapped_params(matrix, config.gap.open, config.gap.extend).unwrap_or(ungapped_stats);
    let m: usize = queries.total_residues();
    let n: usize = subjects.total_residues();

    // Scan phase: word hits → two-hit rule → ungapped extensions.
    // analyzer: allow(determinism) -- baseline phase profile is wall-clock by definition
    let t1 = Instant::now();
    let mut word_hits = 0u64;
    let mut ungapped_extensions = 0u64;
    let mut tracker = TwoHitTracker::new(
        config.two_hit_window,
        config.word_len,
        lookup.query_total,
        config.one_hit,
    );
    // Surviving ungapped segments: (query, subject, anchor q, anchor s, raw score).
    let mut candidates: Vec<(u32, u32, usize, usize, i32)> = Vec::new();

    for (s_idx, subject) in subjects.iter() {
        tracker.reset();
        let sres = &subject.residues;
        if sres.len() < config.word_len {
            continue;
        }
        for spos in 0..=sres.len() - config.word_len {
            let Some(key) = lookup.key_of(&sres[spos..spos + config.word_len]) else {
                continue;
            };
            for site in lookup.sites(key) {
                word_hits += 1;
                match tracker.on_hit(site.qconcat, spos as u32) {
                    HitAction::Record | HitAction::Covered => {}
                    HitAction::Trigger => {
                        let qres = &queries.get(site.query as usize).residues;
                        let hit = xdrop_ungapped(
                            matrix,
                            qres,
                            sres,
                            site.qpos as usize,
                            spos,
                            config.word_len,
                            config.xdrop_ungapped,
                        );
                        ungapped_extensions += 1;
                        tracker.mark_covered(
                            site.qconcat,
                            spos as u32,
                            (hit.start1 + hit.len) as u32,
                        );
                        if hit.score >= config.gap_trigger {
                            // Anchor the gapped pass at the segment middle.
                            let mid = hit.len / 2;
                            candidates.push((
                                site.query,
                                s_idx as u32,
                                hit.start0 + mid,
                                hit.start1 + mid,
                                hit.score,
                            ));
                        }
                    }
                }
            }
        }
    }
    let scan_seconds = t1.elapsed().as_secs_f64();

    // Gapped phase.
    // analyzer: allow(determinism) -- baseline phase profile is wall-clock by definition
    let t2 = Instant::now();
    let mut gapped_extensions = 0u64;
    let mut hsps = Vec::new();
    for (q, s, aq, asub, _raw) in candidates {
        let qres = &queries.get(q as usize).residues;
        let sres = &subjects.get(s as usize).residues;
        let hit = gapped_extend(matrix, qres, sres, aq, asub, &config.gap);
        gapped_extensions += 1;
        let evalue = stats.evalue(hit.score, m, n);
        if evalue <= config.max_evalue {
            hsps.push(Hsp {
                seq0: q,
                seq1: s,
                start0: hit.start0 as u32,
                end0: hit.end0 as u32,
                start1: hit.start1 as u32,
                end1: hit.end1 as u32,
                score: hit.score,
                bit_score: stats.bit_score(hit.score),
                evalue,
            });
        }
    }
    let hsps = cull_hsps(hsps, 0.9);
    let gapped_seconds = t2.elapsed().as_secs_f64();

    BlastReport {
        hsps,
        word_hits,
        ungapped_extensions,
        gapped_extensions,
        build_seconds,
        scan_seconds,
        gapped_seconds,
        stats,
        search_space: (m, n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_datagen::{mutate_protein, random_bank, BankConfig, MutationConfig};
    use psc_score::blosum62;
    use psc_seqio::Seq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config() -> BlastConfig {
        BlastConfig::default()
    }

    #[test]
    fn finds_identical_sequence() {
        let q = Bank::from_seqs(vec![Seq::protein("q", b"MKVLAWRNDCQEHFYWMKVLAWRNDCQEHFYW")]);
        let s = Bank::from_seqs(vec![Seq::protein("s", b"MKVLAWRNDCQEHFYWMKVLAWRNDCQEHFYW")]);
        let r = tblastn(&q, &s, blosum62(), &config());
        assert_eq!(r.hsps.len(), 1, "hsps: {:?}", r.hsps);
        let h = &r.hsps[0];
        assert_eq!((h.start0, h.end0), (0, 32));
        assert!(h.evalue < 1e-6);
        assert!(h.bit_score > 30.0);
        assert!(r.ungapped_extensions >= 1);
        assert!(r.gapped_extensions >= 1);
    }

    #[test]
    fn finds_embedded_homolog() {
        let mut rng = StdRng::seed_from_u64(11);
        let core: Vec<u8> = psc_datagen::random_protein(&mut rng, 80);
        let homolog = mutate_protein(
            &mut rng,
            &core,
            &MutationConfig {
                divergence: 0.25,
                indel_rate: 0.01,
                indel_extend: 0.3,
            },
        );
        // Embed the homolog in random flanks.
        let flank0 = psc_datagen::random_protein(&mut rng, 100);
        let flank1 = psc_datagen::random_protein(&mut rng, 100);
        let mut subject = flank0.clone();
        subject.extend_from_slice(&homolog);
        subject.extend_from_slice(&flank1);

        let q = Bank::from_seqs(vec![Seq::from_codes(
            "q",
            core,
            psc_seqio::SeqKind::Protein,
        )]);
        let s = Bank::from_seqs(vec![Seq::from_codes(
            "s",
            subject,
            psc_seqio::SeqKind::Protein,
        )]);
        let r = tblastn(&q, &s, blosum62(), &config());
        assert!(!r.hsps.is_empty(), "homolog not found");
        let h = &r.hsps[0];
        // Subject range must sit inside the embedded region ± slack.
        assert!(h.start1 >= 80 && h.end1 <= 300, "{h:?}");
    }

    #[test]
    fn unrelated_banks_produce_nothing() {
        let q = random_bank(&BankConfig {
            count: 5,
            min_len: 150,
            max_len: 200,
            seed: 1,
        });
        let s = random_bank(&BankConfig {
            count: 5,
            min_len: 150,
            max_len: 200,
            seed: 2,
        });
        let r = tblastn(&q, &s, blosum62(), &config());
        assert!(
            r.hsps.is_empty(),
            "random banks should not align at E ≤ 1e-3: {:?}",
            r.hsps
        );
        assert!(r.word_hits > 0, "scan should at least see word hits");
    }

    #[test]
    fn one_hit_mode_extends_more() {
        let q = random_bank(&BankConfig {
            count: 3,
            min_len: 120,
            max_len: 160,
            seed: 3,
        });
        let s = random_bank(&BankConfig {
            count: 3,
            min_len: 120,
            max_len: 160,
            seed: 4,
        });
        let two = tblastn(&q, &s, blosum62(), &config());
        let one = tblastn(
            &q,
            &s,
            blosum62(),
            &BlastConfig {
                one_hit: true,
                ..config()
            },
        );
        assert!(one.ungapped_extensions > two.ungapped_extensions);
        assert_eq!(one.word_hits, two.word_hits);
    }

    #[test]
    fn evalue_cutoff_filters() {
        let q = Bank::from_seqs(vec![Seq::protein("q", b"MKVLAWRNDCQEHFYW")]);
        let s = Bank::from_seqs(vec![Seq::protein("s", b"MKVLAWRNDCQEHFYW")]);
        let strict = tblastn(
            &q,
            &s,
            blosum62(),
            &BlastConfig {
                max_evalue: 1e-30,
                ..config()
            },
        );
        assert!(strict.hsps.is_empty());
    }

    #[test]
    fn masking_reduces_word_hits_on_junk_queries() {
        let mut q = random_bank(&BankConfig {
            count: 2,
            min_len: 100,
            max_len: 150,
            seed: 71,
        });
        q.push(Seq::protein("junk", &[b'S'; 120]));
        let s = Bank::from_seqs(vec![Seq::protein("subj", &[b'S'; 400])]);
        let plain = tblastn(&q, &s, blosum62(), &config());
        let masked = tblastn(
            &q,
            &s,
            blosum62(),
            &BlastConfig {
                mask: Some(psc_seqio::MaskConfig::default()),
                ..config()
            },
        );
        assert!(
            masked.word_hits * 5 < plain.word_hits.max(1),
            "{} vs {}",
            masked.word_hits,
            plain.word_hits
        );
    }

    #[test]
    fn report_times_are_populated() {
        let q = Bank::from_seqs(vec![Seq::protein("q", b"MKVLAWRNDCQEHFYW")]);
        let s = Bank::from_seqs(vec![Seq::protein("s", b"MKVLAWRNDCQEHFYW")]);
        let r = tblastn(&q, &s, blosum62(), &config());
        assert!(r.total_seconds() >= 0.0);
        assert_eq!(r.search_space, (16, 16));
    }
}
