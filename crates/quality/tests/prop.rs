//! Property tests for the retrieval metrics.

use proptest::prelude::*;
use psc_quality::{average_precision, roc_n};

fn labels() -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), 0..120)
}

proptest! {
    /// Both metrics live in [0, 1].
    #[test]
    fn metrics_bounded(ranked in labels(), n in 1usize..100, total in 1usize..50) {
        let total = total.max(ranked.iter().filter(|&&t| t).count());
        let r = roc_n(&ranked, n, total);
        prop_assert!((0.0..=1.0).contains(&r), "roc {r}");
        let ap = average_precision(&ranked, total);
        prop_assert!((0.0..=1.0).contains(&ap), "ap {ap}");
    }

    /// Promoting a true positive one rank upward (swapping with a false
    /// positive directly above it) never decreases either metric.
    #[test]
    fn promotion_monotone(ranked in labels(), total in 1usize..50) {
        let total = total.max(ranked.iter().filter(|&&t| t).count());
        // Find a FP directly above a TP and swap.
        let mut promoted = ranked.clone();
        if let Some(i) = (1..promoted.len()).find(|&i| promoted[i] && !promoted[i - 1]) {
            promoted.swap(i, i - 1);
            prop_assert!(roc_n(&promoted, 50, total) >= roc_n(&ranked, 50, total) - 1e-12);
            prop_assert!(
                average_precision(&promoted, total)
                    >= average_precision(&ranked, total) - 1e-12
            );
        }
    }

    /// A perfect prefix of all `total` positives scores 1.0 on both.
    #[test]
    fn perfect_prefix_is_one(total in 1usize..40, junk in 0usize..40) {
        let mut ranked = vec![true; total];
        ranked.extend(std::iter::repeat_n(false, junk));
        prop_assert!((roc_n(&ranked, 50, total) - 1.0).abs() < 1e-12);
        prop_assert!((average_precision(&ranked, total) - 1.0).abs() < 1e-12);
    }

    /// Appending false positives after the n-th never changes ROC_n.
    #[test]
    fn roc_ignores_tail_beyond_n(ranked in labels(), n in 1usize..20, extra in 1usize..30) {
        let total = ranked.iter().filter(|&&t| t).count().max(1);
        let fp_count = ranked.iter().filter(|&&t| !t).count();
        if fp_count >= n {
            let mut extended = ranked.clone();
            extended.extend(std::iter::repeat_n(false, extra));
            prop_assert_eq!(roc_n(&ranked, n, total), roc_n(&extended, n, total));
        }
    }
}
