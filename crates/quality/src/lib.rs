//! # psc-quality — sensitivity/selectivity evaluation (paper Table 6)
//!
//! The paper validates that the RASC pipeline loses nothing to NCBI
//! BLAST by scoring both on a 102-query benchmark against the yeast
//! genome with ROC50 and AP-Mean. The annotation there was human; here
//! the ground truth is *constructed*: synthetic protein families are
//! generated, their members planted into a synthetic genome as coding
//! regions, and a hit counts as a true positive exactly when it lands on
//! a planted member of the query's family.
//!
//! * [`metrics`]: ROC_n and average precision on ranked hit lists;
//! * [`benchmark`]: benchmark construction and the tool-agnostic
//!   evaluation driver.

#![forbid(unsafe_code)]

pub mod benchmark;
pub mod metrics;

pub use benchmark::{
    build_benchmark, evaluate_ranked, Benchmark, BenchmarkConfig, QualityScores, RankedHit,
};
pub use metrics::{average_precision, roc_n};
