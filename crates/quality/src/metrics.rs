//! Ranked-retrieval metrics: ROC_n and average precision.
//!
//! Implemented exactly as the paper describes (§4.4): both operate on a
//! per-query hit list sorted by decreasing score, where each hit is
//! labelled true or false positive by the annotation (here: synthetic
//! family membership).

/// ROC_n score of one ranked hit list.
///
/// For each of the first `n` false positives, count the true positives
/// ranked above it; sum these counts and divide by `n × P`, with `P` the
/// number of ground-truth positives for the query. When the list runs
/// out before `n` false positives are seen, the remaining FP slots are
/// credited with every true positive found (the standard convention —
/// a tool that produces few false positives is not penalised for it).
pub fn roc_n(ranked: &[bool], n: usize, total_positives: usize) -> f64 {
    if total_positives == 0 || n == 0 {
        return 0.0;
    }
    let mut tp_above = 0usize;
    let mut fp_seen = 0usize;
    let mut sum = 0usize;
    for &is_tp in ranked {
        if is_tp {
            tp_above += 1;
        } else {
            sum += tp_above;
            fp_seen += 1;
            if fp_seen == n {
                break;
            }
        }
    }
    if fp_seen < n {
        sum += (n - fp_seen) * tp_above;
    }
    sum as f64 / (n as f64 * total_positives as f64)
}

/// Average precision of one ranked hit list.
///
/// For each true positive at position `i` (1-based), precision is
/// `(true positives so far) / i`; the mean over all `total_positives`
/// ground-truth positives (positives never retrieved contribute zero)
/// is the AP.
pub fn average_precision(ranked: &[bool], total_positives: usize) -> f64 {
    if total_positives == 0 {
        return 0.0;
    }
    let mut tp = 0usize;
    let mut sum = 0.0f64;
    for (i, &is_tp) in ranked.iter().enumerate() {
        if is_tp {
            tp += 1;
            sum += tp as f64 / (i + 1) as f64;
        }
    }
    sum / total_positives as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_scores_one() {
        // 3 positives first, then noise; P = 3.
        let ranked = [true, true, true, false, false];
        assert!((roc_n(&ranked, 50, 3) - 1.0).abs() < 1e-12);
        assert!((average_precision(&ranked, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn worst_ranking_scores_zero() {
        let ranked = [false, false, false, true, true];
        // With n=2 (both FPs before any TP): 0 TPs above each.
        assert_eq!(roc_n(&ranked, 2, 2), 0.0);
        // AP: TPs at ranks 4,5 → (1/4 + 2/5)/2 = 0.325.
        assert!((average_precision(&ranked, 2) - 0.325).abs() < 1e-12);
    }

    #[test]
    fn roc_partial_interleaving() {
        // T F T F, P=2, n=2: first FP has 1 TP above, second has 2.
        let ranked = [true, false, true, false];
        assert!((roc_n(&ranked, 2, 2) - 3.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn roc_credits_missing_fps() {
        // Only TPs retrieved, fewer FPs than n: remaining slots credit
        // all TPs → perfect score.
        let ranked = [true, true];
        assert!((roc_n(&ranked, 50, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn roc_truncates_at_n() {
        // After the n-th FP, further hits are ignored.
        let a = [true, false, true];
        let b = [true, false, false];
        assert!((roc_n(&a, 1, 2) - roc_n(&b, 1, 2)).abs() < 1e-12);
    }

    #[test]
    fn ap_penalises_unretrieved_positives() {
        // One of two positives retrieved at rank 1: AP = (1/1)/2.
        let ranked = [true, false];
        assert!((average_precision(&ranked, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(roc_n(&[], 50, 0), 0.0);
        assert_eq!(roc_n(&[], 50, 3), 0.0);
        assert_eq!(average_precision(&[], 0), 0.0);
        assert_eq!(average_precision(&[], 3), 0.0);
    }

    #[test]
    fn monotone_in_ranking_quality() {
        // Moving a TP up strictly improves both metrics.
        let worse = [false, true, true, false, true];
        let better = [true, false, true, false, true];
        assert!(roc_n(&better, 2, 3) > roc_n(&worse, 2, 3));
        assert!(average_precision(&better, 3) > average_precision(&worse, 3));
    }
}
