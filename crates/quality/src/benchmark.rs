//! Benchmark construction and evaluation driver.
//!
//! The benchmark plants every member of every synthetic family into one
//! synthetic genome. A tool under test searches the family queries
//! against that genome and reports, per query, a score-ranked list of
//! genomic hits; a hit is a true positive when its interval overlaps a
//! planted member of the query's family.

use psc_datagen::family::{family_of, generate_families, members_bank, Family, FamilyConfig};
use psc_datagen::{generate_genome, GenomeConfig, MutationConfig, SyntheticGenome};
use psc_seqio::{Bank, Seq};

use crate::metrics::{average_precision, roc_n};

/// Benchmark parameters.
#[derive(Clone, Debug)]
pub struct BenchmarkConfig {
    pub families: FamilyConfig,
    /// Genome residues per planted coding nucleotide (≥ 1.5; larger means
    /// more non-coding decoy sequence).
    pub genome_slack: f64,
    pub seed: u64,
}

impl Default for BenchmarkConfig {
    fn default() -> Self {
        BenchmarkConfig {
            families: FamilyConfig::default(),
            genome_slack: 3.0,
            seed: 0xbe9c,
        }
    }
}

/// A planted interval with its family label.
#[derive(Clone, Copy, Debug)]
pub struct PlantLabel {
    pub start: usize,
    pub end: usize,
    pub family: usize,
}

/// The generated benchmark.
#[derive(Debug)]
pub struct Benchmark {
    pub families: Vec<Family>,
    /// The query bank (one representative per family, in family order).
    pub queries: Bank,
    /// The genome with every family member planted.
    pub genome: Seq,
    /// Plant intervals labelled with family ids, sorted by start.
    pub labels: Vec<PlantLabel>,
}

impl Benchmark {
    /// Ground-truth positives for a query: members of its family that
    /// were actually planted.
    pub fn positives_of(&self, family: usize) -> usize {
        self.labels.iter().filter(|l| l.family == family).count()
    }

    /// Label one hit interval: true positive iff it overlaps a plant of
    /// the query's family.
    pub fn is_true_positive(&self, family: usize, start: usize, end: usize) -> bool {
        self.labels
            .iter()
            .any(|l| l.family == family && start < l.end && l.start < end)
    }
}

/// Build the benchmark: generate families, plant all members.
pub fn build_benchmark(config: &BenchmarkConfig) -> Benchmark {
    let families = generate_families(&config.families);
    let members = members_bank(&families);
    let coding_nt: usize = members.total_residues() * 3;
    let genome_len = (coding_nt as f64 * config.genome_slack) as usize;

    let synth: SyntheticGenome = generate_genome(
        &GenomeConfig {
            len: genome_len,
            gene_count: members.len(),
            // Members are already diverged from the ancestor; plant them
            // verbatim.
            mutation: MutationConfig {
                divergence: 0.0,
                indel_rate: 0.0,
                indel_extend: 0.0,
            },
            max_plant_aa: usize::MAX,
            gc_content: 0.41,
            repeat_tracts: 0,
            repeat_len: 300,
            seed: config.seed,
        },
        &members,
    );

    let labels = synth
        .plants
        .iter()
        .map(|p| PlantLabel {
            start: p.start,
            end: p.end,
            family: family_of(&members.get(p.protein_idx).id)
                .expect("member ids encode their family"),
        })
        .collect();

    let queries: Bank = families.iter().map(|f| f.query.clone()).collect();

    Benchmark {
        families,
        queries,
        genome: synth.genome,
        labels,
    }
}

/// One scored hit a tool reports for a query.
#[derive(Clone, Copy, Debug)]
pub struct RankedHit {
    /// Query index (= family id in this benchmark).
    pub query: usize,
    /// Bit score (ranking key, higher is better).
    pub score: f64,
    /// Genomic interval of the hit.
    pub start: usize,
    pub end: usize,
}

/// The paper's Table 6 pair of numbers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QualityScores {
    pub roc50: f64,
    pub ap_mean: f64,
}

/// Evaluate a tool's hits against the benchmark.
///
/// Per query: hits are sorted by descending score, truncated to the
/// paper's list lengths (100 for ROC50, 50 for AP), labelled, and
/// scored; the returned values are means over all queries.
pub fn evaluate_ranked(benchmark: &Benchmark, hits: &[RankedHit]) -> QualityScores {
    let nq = benchmark.queries.len();
    let mut per_query: Vec<Vec<(f64, bool)>> = vec![Vec::new(); nq];
    for h in hits {
        let tp = benchmark.is_true_positive(h.query, h.start, h.end);
        per_query[h.query].push((h.score, tp));
    }
    let mut roc_sum = 0.0;
    let mut ap_sum = 0.0;
    for (family, list) in per_query.iter_mut().enumerate() {
        list.sort_by(|a, b| b.0.total_cmp(&a.0));
        let positives = benchmark.positives_of(family);
        let labels100: Vec<bool> = list.iter().take(100).map(|&(_, t)| t).collect();
        let labels50: Vec<bool> = list.iter().take(50).map(|&(_, t)| t).collect();
        roc_sum += roc_n(&labels100, 50, positives);
        ap_sum += average_precision(&labels50, positives);
    }
    QualityScores {
        roc50: roc_sum / nq as f64,
        ap_mean: ap_sum / nq as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> BenchmarkConfig {
        BenchmarkConfig {
            families: FamilyConfig {
                family_count: 4,
                members_per_family: 3,
                min_len: 80,
                max_len: 120,
                ..FamilyConfig::default()
            },
            genome_slack: 2.0,
            seed: 99,
        }
    }

    #[test]
    fn benchmark_plants_all_members() {
        let b = build_benchmark(&tiny_config());
        assert_eq!(b.queries.len(), 4);
        assert_eq!(b.labels.len(), 12, "every member planted");
        for f in 0..4 {
            assert_eq!(b.positives_of(f), 3);
        }
        // Labels lie inside the genome.
        for l in &b.labels {
            assert!(l.end <= b.genome.len());
            assert!(l.family < 4);
        }
    }

    #[test]
    fn true_positive_labelling() {
        let b = build_benchmark(&tiny_config());
        let l = b.labels[0];
        assert!(b.is_true_positive(l.family, l.start, l.end));
        assert!(b.is_true_positive(l.family, l.start + 10, l.start + 20));
        // Wrong family or disjoint interval: false.
        let other = (l.family + 1) % 4;
        if !b
            .labels
            .iter()
            .any(|x| x.family == other && l.start < x.end && x.start < l.end)
        {
            assert!(!b.is_true_positive(other, l.start, l.end));
        }
        assert!(!b.is_true_positive(l.family, l.end + 1_000_000, l.end + 1_000_010));
    }

    #[test]
    fn oracle_tool_scores_perfectly() {
        // A tool that reports exactly the family's plants, best first.
        let b = build_benchmark(&tiny_config());
        let mut hits = Vec::new();
        for l in &b.labels {
            hits.push(RankedHit {
                query: l.family,
                score: 100.0,
                start: l.start,
                end: l.end,
            });
        }
        let s = evaluate_ranked(&b, &hits);
        assert!((s.roc50 - 1.0).abs() < 1e-12, "roc {s:?}");
        assert!((s.ap_mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_tool_scores_poorly() {
        // A tool that reports only junk intervals far from any plant…
        let b = build_benchmark(&tiny_config());
        let g = b.genome.len();
        let hits: Vec<RankedHit> = (0..40)
            .map(|i| RankedHit {
                query: i % 4,
                score: 10.0 + i as f64,
                start: g + 100 + i, // outside the genome: overlaps nothing
                end: g + 130 + i,
            })
            .collect();
        let s = evaluate_ranked(&b, &hits);
        assert_eq!(s.roc50, 0.0);
        assert_eq!(s.ap_mean, 0.0);
    }

    #[test]
    fn missing_half_the_plants_halves_recall_metrics() {
        let b = build_benchmark(&tiny_config());
        // Report plants of family 0 only, perfect ranking.
        let hits: Vec<RankedHit> = b
            .labels
            .iter()
            .filter(|l| l.family == 0)
            .map(|l| RankedHit {
                query: 0,
                score: 50.0,
                start: l.start,
                end: l.end,
            })
            .collect();
        let s = evaluate_ranked(&b, &hits);
        // Query 0 perfect, other three queries zero → mean = 1/4.
        assert!((s.roc50 - 0.25).abs() < 1e-12);
        assert!((s.ap_mean - 0.25).abs() < 1e-12);
    }
}
