//! Workload construction for the experiment ladder.

use psc_datagen::{
    generate_genome, random_bank, BankConfig, GenomeConfig, MutationConfig, SyntheticGenome,
};
use psc_seqio::{Bank, Seq};

use crate::scale::Scale;

/// The full workload: four nested banks and one genome with planted
/// homology.
#[derive(Debug)]
pub struct Workload {
    /// Banks in ascending size (nested prefixes of one draw).
    pub banks: [Bank; 4],
    pub genome: SyntheticGenome,
}

impl Workload {
    /// Amino-acid count of bank `i` (the paper reports these per row).
    pub fn bank_kaa(&self, i: usize) -> f64 {
        self.banks[i].total_residues() as f64 / 1e3
    }

    /// Genome size in mega-nucleotides.
    pub fn genome_mnt(&self) -> f64 {
        self.genome.genome.len() as f64 / 1e6
    }
}

/// Build the workload for a scale (deterministic).
pub fn build_workload(scale: &Scale) -> Workload {
    let largest = random_bank(&BankConfig {
        count: scale.bank_counts[3],
        min_len: 100,
        max_len: 600,
        seed: scale.seed,
    });
    let seqs: Vec<Seq> = largest.into_seqs();
    let banks = [
        Bank::from_seqs(seqs[..scale.bank_counts[0]].to_vec()),
        Bank::from_seqs(seqs[..scale.bank_counts[1]].to_vec()),
        Bank::from_seqs(seqs[..scale.bank_counts[2]].to_vec()),
        Bank::from_seqs(seqs.clone()),
    ];

    // Plant genes from the *smallest* bank so every ladder row shares
    // the same true homology (the paper's banks are nested, so a hit
    // for the 1K bank is a hit for all).
    let genome = generate_genome(
        &GenomeConfig {
            len: scale.genome_nt,
            gene_count: scale.planted_genes,
            mutation: MutationConfig {
                divergence: 0.25,
                indel_rate: 0.004,
                indel_extend: 0.3,
            },
            max_plant_aa: 300,
            gc_content: 0.41,
            seed: scale.seed ^ 0xdead,
            ..GenomeConfig::default()
        },
        &banks[0],
    );

    Workload { banks, genome }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banks_are_nested_prefixes() {
        let w = build_workload(&Scale::quick());
        for i in 0..3 {
            let small = &w.banks[i];
            let big = &w.banks[i + 1];
            assert!(small.len() < big.len());
            for j in 0..small.len() {
                assert_eq!(small.get(j).residues, big.get(j).residues);
            }
        }
    }

    #[test]
    fn genome_has_plants_from_smallest_bank() {
        let s = Scale::quick();
        let w = build_workload(&s);
        assert!(!w.genome.plants.is_empty());
        for p in &w.genome.plants {
            assert!(p.protein_idx < s.bank_counts[0]);
        }
        assert!(w.genome.genome.len() == s.genome_nt);
        assert!(w.bank_kaa(0) > 0.0);
        assert!(w.genome_mnt() > 0.0);
    }
}
