//! # psc-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation section
//! on the synthetic, scaled-down workload described in DESIGN.md §2/§5.
//! The `experiments` binary drives everything; `benches/` holds the
//! criterion micro-benchmarks for the individual components.
//!
//! Scale: the paper compares banks of 1k/3k/10k/30k proteins (0.3–10 M
//! amino acids) against the 220 Mnt Human chromosome 1 on a 2009 Itanium.
//! This harness keeps the 1:3:10:30 bank ladder and the full algorithm,
//! at a reduced residue count, and uses the span-3 subset seed so
//! index-list lengths land in the same PE-array-utilization regime as
//! the paper's runs (see `psc_index::seed::subset_seed_span3`).

#![forbid(unsafe_code)]

pub mod data;
pub mod exps;
pub mod ladder;
pub mod report;
pub mod scale;

pub use scale::Scale;
