//! The measurement ladder behind Tables 1–5 and 7: every bank size run
//! through the baseline, the sequential pipeline, and the simulated
//! RASC-100 at the published array sizes.

use psc_blast::{tblastn, BlastConfig};
use psc_core::pipeline::PipelineStats;
use psc_core::{search_genome, PipelineConfig, SeedChoice, Step2Backend, StepProfile};
use psc_index::subset_seed_span3;
use psc_rasc::BoardReport;
use psc_score::blosum62;
use psc_seqio::{translate_six_frames, GeneticCode};

use crate::data::Workload;
use crate::scale::Scale;

/// The PE-array sizes the paper publishes.
pub const PE_SIZES: [usize; 3] = [64, 128, 192];

/// Pipeline configuration used by every ladder experiment (see
/// `Scale` docs for why the span-3 seed).
pub fn experiment_config() -> PipelineConfig {
    // The workload is ~1/20 of the paper's residue counts, so the
    // one-time board setup (bitstream load) is scaled the same way —
    // at paper scale it amortizes to <1% exactly as it did for the
    // authors' 168-70000 s runs.
    let dma = psc_rasc::DmaModel {
        bitstream_load: 0.04,
        ..psc_rasc::DmaModel::default()
    };
    PipelineConfig {
        seed: SeedChoice::Custom(subset_seed_span3()),
        dma_override: Some(dma),
        ..PipelineConfig::default()
    }
}

/// One accelerated run.
#[derive(Clone, Debug)]
pub struct RascRun {
    pub pe_count: usize,
    pub fpga_count: usize,
    pub profile: StepProfile,
    pub board: BoardReport,
}

/// Summary of one baseline (tblastn) run.
#[derive(Clone, Copy, Debug)]
pub struct BaselineRun {
    pub total_seconds: f64,
    pub hsps: usize,
    pub word_hits: u64,
}

/// All measurements for one bank size.
#[derive(Clone, Debug, Default)]
pub struct LadderRow {
    pub label: String,
    /// Bank size in kilo-amino-acids (Table 5's Kaa).
    pub kaa: f64,
    pub baseline: Option<BaselineRun>,
    pub scalar: Option<(StepProfile, PipelineStats)>,
    /// Single-FPGA runs at [`PE_SIZES`].
    pub rasc: Vec<RascRun>,
    /// The Table 3 pair: 192 PEs with the paper's raised threshold, one
    /// and two FPGAs.
    pub dual: Option<(RascRun, RascRun)>,
}

/// Which measurements to take (each costs a full step-2 pass).
#[derive(Clone, Copy, Debug)]
pub struct Components {
    pub baseline: bool,
    pub scalar: bool,
    pub rasc: bool,
    pub dual: bool,
}

impl Components {
    pub fn all() -> Components {
        Components {
            baseline: true,
            scalar: true,
            rasc: true,
            dual: true,
        }
    }
}

fn rasc_run(
    workload: &Workload,
    bank: usize,
    pe_count: usize,
    fpga_count: usize,
    threshold_bump: i32,
) -> RascRun {
    let mut cfg = experiment_config();
    cfg.threshold += threshold_bump;
    cfg.backend = Step2Backend::Rasc {
        pe_count,
        fpga_count,
        host_threads: 1,
    };
    let r = search_genome(
        &workload.banks[bank],
        &workload.genome.genome,
        blosum62(),
        cfg,
    );
    RascRun {
        pe_count,
        fpga_count,
        profile: r.output.profile,
        board: r.output.board.expect("RASC backend reports"),
    }
}

/// Run the ladder. Progress goes to stderr; results come back per row.
pub fn run_ladder(scale: &Scale, workload: &Workload, comps: Components) -> Vec<LadderRow> {
    let labels = scale.labels();
    let mut rows = Vec::with_capacity(4);
    for (bank, label) in labels.iter().enumerate() {
        let mut row = LadderRow {
            label: label.clone(),
            kaa: workload.bank_kaa(bank),
            ..LadderRow::default()
        };
        eprintln!("[ladder] {} ({:.0} Kaa)", row.label, row.kaa);

        if comps.baseline {
            eprintln!("[ladder]   baseline tblastn…");
            let translated = translate_six_frames(&workload.genome.genome, GeneticCode::standard());
            let rep = tblastn(
                &workload.banks[bank],
                &translated.to_bank(),
                blosum62(),
                &BlastConfig::default(),
            );
            row.baseline = Some(BaselineRun {
                total_seconds: rep.total_seconds(),
                hsps: rep.hsps.len(),
                word_hits: rep.word_hits,
            });
        }

        if comps.scalar {
            eprintln!("[ladder]   sequential pipeline…");
            // Pin the plain scalar kernel: this row reproduces the
            // paper's "Sequential" software numbers, which the SIMD
            // batch engine would otherwise quietly accelerate.
            let cfg = PipelineConfig {
                step2_kernel: psc_core::KernelChoice::Scalar,
                ..experiment_config()
            };
            let r = search_genome(
                &workload.banks[bank],
                &workload.genome.genome,
                blosum62(),
                cfg,
            );
            row.scalar = Some((r.output.profile, r.output.stats));
        }

        if comps.rasc {
            for pe in PE_SIZES {
                eprintln!("[ladder]   RASC {pe} PEs…");
                row.rasc.push(rasc_run(workload, bank, pe, 1, 0));
            }
        }

        if comps.dual {
            // The paper's Table 3 protocol: raise the ungapped threshold
            // to lighten result traffic, then compare 1 vs 2 FPGAs.
            eprintln!("[ladder]   dual-FPGA (raised threshold)…");
            let one = rasc_run(workload, bank, 192, 1, 10);
            let two = rasc_run(workload, bank, 192, 2, 10);
            row.dual = Some((one, two));
        }

        rows.push(row);
    }
    rows
}
