//! Experiment scale: the 1:3:10:30 bank ladder against one genome.

/// Workload dimensions for the experiment ladder.
#[derive(Clone, Debug)]
pub struct Scale {
    /// Genome length in nucleotides (paper: 220 × 10⁶).
    pub genome_nt: usize,
    /// Protein counts of the four banks (paper: 1 000 / 3 000 / 10 000 /
    /// 30 000). Banks are nested prefixes of one draw, mirroring how the
    /// paper's banks are nested subsets of nr.
    pub bank_counts: [usize; 4],
    /// Genes planted into the genome (homology the search must find;
    /// chr1 vs nr is full of it).
    pub planted_genes: usize,
    /// Base RNG seed for the whole workload.
    pub seed: u64,
}

impl Scale {
    /// The default experiment scale (≈1/20 of the paper's residue
    /// counts; a full `experiments all` run takes minutes on one core).
    pub fn full() -> Scale {
        Scale {
            genome_nt: 200_000,
            bank_counts: [50, 150, 500, 1500],
            planted_genes: 120,
            seed: 0x9a9e,
        }
    }

    /// A fast smoke-test scale for development.
    pub fn quick() -> Scale {
        Scale {
            genome_nt: 60_000,
            bank_counts: [15, 45, 150, 450],
            planted_genes: 20,
            seed: 0x9a9e,
        }
    }

    /// Human-readable labels for the ladder rows, in the paper's style.
    pub fn labels(&self) -> [String; 4] {
        let f = |n: usize| {
            if n >= 1000 {
                format!("{}K protein", n / 1000)
            } else {
                format!("{n} protein")
            }
        };
        [
            f(self.bank_counts[0]),
            f(self.bank_counts[1]),
            f(self.bank_counts[2]),
            f(self.bank_counts[3]),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_keeps_paper_ratios() {
        for s in [Scale::full(), Scale::quick()] {
            let [a, b, c, d] = s.bank_counts;
            assert_eq!(b, 3 * a);
            assert_eq!(c, 10 * a);
            assert_eq!(d, 30 * a);
        }
    }

    #[test]
    fn labels_format() {
        let s = Scale::full();
        assert_eq!(s.labels()[3], "1K protein");
        assert_eq!(s.labels()[0], "50 protein");
    }
}
