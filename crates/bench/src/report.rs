//! Minimal fixed-width table rendering for experiment output.

/// A simple column-aligned text table.
#[derive(Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // Left-align the first column, right-align the rest.
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("{cell:>w$}"));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format seconds with sensible precision.
pub fn secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{s:.3}")
    }
}

/// Format a speedup ratio.
pub fn ratio(r: f64) -> String {
    format!("{r:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "23".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].ends_with("23"));
        // All data lines same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic]
    fn wrong_arity_rejected() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn second_formatting() {
        assert_eq!(secs(123.4), "123");
        assert_eq!(secs(12.34), "12.34");
        assert_eq!(secs(0.1234), "0.123");
        assert_eq!(ratio(19.327), "19.33");
    }
}
