//! Regenerate the paper's tables and figures.
//!
//! ```text
//! experiments [--quick] <what>...
//!   what ∈ table1 table2 table3 table4 table5 table6 table7
//!          fig1 fig2 fig3
//!          ablation-kernel ablation-seed ablation-twohit
//!          step2-kernels   (writes BENCH_step2_kernels.json)
//!          step2-balance   (writes BENCH_step2_balance.json)
//!          step3-overlap   (writes BENCH_step3_overlap.json)
//!          serve-amortize  (writes BENCH_serve_amortize.json)
//!          trace-overhead  (writes BENCH_trace_overhead.json)
//!          fleet-scaling   (writes BENCH_fleet_scaling.json)
//!          analyzer-bench  (writes BENCH_analyzer.json)
//!          all
//! ```

#![forbid(unsafe_code)]

use psc_bench::data::build_workload;
use psc_bench::exps;
use psc_bench::ladder::{run_ladder, Components};
use psc_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let wants: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if wants.is_empty() {
        eprintln!("usage: experiments [--quick] <table1..table7|fig1..fig3|ablation-*|step2-kernels|step2-balance|step3-overlap|serve-amortize|trace-overhead|extension-step3|fleet-scaling|analyzer-bench|all>");
        std::process::exit(2);
    }
    let all = wants.contains(&"all");
    let want = |name: &str| all || wants.contains(&name);

    let scale = if quick { Scale::quick() } else { Scale::full() };
    eprintln!(
        "[experiments] scale: genome {} nt, banks {:?} proteins{}",
        scale.genome_nt,
        scale.bank_counts,
        if quick { " (quick)" } else { "" }
    );
    let workload = build_workload(&scale);
    eprintln!(
        "[experiments] workload built: genome {:.2} Mnt, largest bank {:.0} Kaa, {} plants",
        workload.genome_mnt(),
        workload.bank_kaa(3),
        workload.genome.plants.len()
    );

    // Which ladder components do the requested tables need?
    let comps = Components {
        baseline: want("table2") || want("table5"),
        scalar: want("table4") || want("table5"),
        rasc: want("table2")
            || want("table3")
            || want("table4")
            || want("table5")
            || want("table7")
            || want("fig3"),
        dual: want("table3"),
    };
    let rows = if comps.baseline || comps.scalar || comps.rasc || comps.dual {
        run_ladder(&scale, &workload, comps)
    } else {
        Vec::new()
    };

    println!("# Paper reproduction — Nguyen, Cornu, Lavenier (RAW/IPDPS 2009)");
    println!(
        "# scale: genome {:.2} Mnt, banks {:?} proteins; span-3 subset seed\n",
        workload.genome_mnt(),
        scale.bank_counts
    );

    if want("table1") {
        exps::table1(&workload);
    }
    if want("table2") {
        exps::table2(&rows);
    }
    if want("table3") {
        exps::table3(&rows);
    }
    if want("table4") {
        exps::table4(&rows);
    }
    if want("table5") {
        exps::table5(&rows, &workload);
    }
    if want("table6") {
        exps::table6(quick);
    }
    if want("table7") {
        exps::table7(&rows);
    }
    if want("fig1") {
        exps::fig1(&workload);
    }
    if want("fig2") {
        exps::fig2();
    }
    if want("fig3") {
        exps::fig3(&rows);
    }
    if want("ablation-kernel") {
        exps::ablation_kernel(&workload);
    }
    if want("ablation-seed") {
        exps::ablation_seed(&workload);
    }
    if want("ablation-twohit") {
        exps::ablation_twohit(&workload);
    }
    if want("ablation-hybrid") {
        exps::ablation_hybrid(&workload);
    }
    if want("ablation-masking") {
        exps::ablation_masking();
    }
    if want("step2-kernels") {
        exps::step2_kernels(&workload);
    }
    if want("step2-balance") {
        exps::step2_balance(&workload, quick);
    }
    if want("extension-step3") {
        exps::extension_step3(&workload);
    }
    if want("step3-overlap") {
        exps::step3_overlap(&workload);
    }
    if want("serve-amortize") {
        exps::serve_amortize(&workload);
    }
    if want("trace-overhead") {
        exps::trace_overhead(&workload);
    }
    if want("fleet-scaling") {
        exps::fleet_scaling(&workload, quick);
    }
    if want("analyzer-bench") {
        exps::analyzer_bench();
    }
}
