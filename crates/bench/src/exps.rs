//! The table/figure generators. Each prints the reproduction of one
//! paper artefact, with the paper's own numbers alongside for shape
//! comparison.

use std::time::Instant;

use psc_align::{ungapped_score, Kernel};
use psc_blast::{tblastn, BlastConfig};
use psc_core::{search_genome, PipelineConfig, SeedChoice, Step2Backend};
use psc_datagen::family::FamilyConfig;
use psc_quality::{build_benchmark, evaluate_ranked, BenchmarkConfig, QualityScores, RankedHit};
use psc_score::blosum62;
use psc_seqio::{translate_six_frames, Frame, FrameCoord, GeneticCode};

use crate::data::Workload;
#[allow(unused_imports)]
use crate::ladder::{experiment_config, LadderRow};
use crate::report::{ratio, secs, Table};

/// Table 1 — % of time per step, sequential software, largest bank.
pub fn table1(workload: &Workload) {
    println!("## Table 1 — % time per step (sequential software, largest bank)");
    println!("   paper: step1 0.3%   step2 97%   step3 2.7%\n");
    // Pin the plain scalar kernel: this table is the paper's sequential
    // software profile, which the SIMD batch engine would flatten.
    let cfg = PipelineConfig {
        step2_kernel: psc_core::KernelChoice::Scalar,
        ..experiment_config()
    };
    let r = search_genome(&workload.banks[3], &workload.genome.genome, blosum62(), cfg);
    let (p1, p2, p3) = r.output.profile.percentages();
    let mut t = Table::new(&["", "step 1", "step 2", "step 3"]);
    t.row(vec![
        "paper".into(),
        "0.3 %".into(),
        "97 %".into(),
        "2.7 %".into(),
    ]);
    t.row(vec![
        "measured".into(),
        format!("{p1:.1} %"),
        format!("{p2:.1} %"),
        format!("{p3:.1} %"),
    ]);
    t.print();
    println!();
}

/// Table 2 — overall time and speedup vs the baseline, per bank size and
/// PE-array size.
pub fn table2(rows: &[LadderRow]) {
    println!("## Table 2 — overall performance, baseline vs RASC (seconds)");
    println!("   paper speedups: 1K 4.7–5.4×, 3K 8.1–11.2×, 10K 10.8–16.6×, 30K 11.8–19.3×\n");
    let mut t = Table::new(&[
        "bank",
        "tblastn",
        "RASC 64 PE",
        "Speedup",
        "RASC 128 PE",
        "Speedup",
        "RASC 192 PE",
        "Speedup",
    ]);
    for row in rows {
        let base = row
            .baseline
            .expect("table2 needs the baseline")
            .total_seconds;
        let mut cells = vec![row.label.clone(), secs(base)];
        for run in &row.rasc {
            let total = run.profile.total();
            cells.push(secs(total));
            cells.push(ratio(base / total));
        }
        t.row(cells);
    }
    t.print();
    println!();
}

/// Table 3 — one vs two FPGAs at 192 PEs (raised threshold).
pub fn table3(rows: &[LadderRow]) {
    println!("## Table 3 — 1 vs 2 FPGAs, 192 PEs, raised threshold (seconds)");
    println!("   paper speedups: 1.14 / 1.27 / 1.54 / 1.80\n");
    let mut t = Table::new(&["bank", "1 FPGA", "2 FPGAs", "Speedup", "paper"]);
    let paper = [1.14, 1.27, 1.54, 1.80];
    for (row, paper_speedup) in rows.iter().zip(paper) {
        let (one, two) = row.dual.as_ref().expect("table3 needs dual runs");
        let t1 = one.profile.total();
        let t2 = two.profile.total();
        t.row(vec![
            row.label.clone(),
            secs(t1),
            secs(t2),
            ratio(t1 / t2),
            ratio(paper_speedup),
        ]);
    }
    t.print();
    println!();
}

/// Table 4 — step 2 only: sequential software vs each array size.
pub fn table4(rows: &[LadderRow]) {
    println!("## Table 4 — step 2 only, sequential vs RASC (seconds)");
    println!("   paper speedups: 1K 10.8–14.0×, 3K 16.4–34.0×, 10K 18.1–48.4×, 30K 18.7–53.5×\n");
    let mut t = Table::new(&[
        "bank",
        "Sequential",
        "RASC 64 PE",
        "Speedup",
        "RASC 128 PE",
        "Speedup",
        "RASC 192 PE",
        "Speedup",
    ]);
    for row in rows {
        let seq = row
            .scalar
            .as_ref()
            .expect("table4 needs scalar run")
            .0
            .step2_wall;
        let mut cells = vec![row.label.clone(), secs(seq)];
        for run in &row.rasc {
            let accel = run
                .profile
                .step2_accelerated
                .expect("RASC runs report accelerated time");
            cells.push(secs(accel));
            cells.push(ratio(seq / accel));
        }
        t.row(cells);
    }
    t.print();
    println!();
}

/// Table 5 — throughput in Kaa×Mnt/s across implementations.
pub fn table5(rows: &[LadderRow], workload: &Workload) {
    println!("## Table 5 — throughput (Kilo amino acids × Mega nucleotides / second)");
    println!("   paper: DeCypher 182, CLC 2, FLASH/FPGA 451, Systolic 863, ½ RASC-100 620\n");
    // The paper's RASC number uses the largest bank on one FPGA (half
    // the board) at 192 PEs.
    let top = rows.last().expect("ladder rows");
    let run = top
        .rasc
        .iter()
        .find(|r| r.pe_count == 192)
        .expect("192-PE run");
    let ours = top.kaa * workload.genome_mnt() / run.profile.total();
    let mut t = Table::new(&["implementation", "KaaMnt/s"]);
    t.row(vec!["DeCypher (paper)".into(), "182".into()]);
    t.row(vec!["CLC (paper)".into(), "2".into()]);
    t.row(vec!["FLASH/FPGA (paper)".into(), "451".into()]);
    t.row(vec!["Systolic peak (paper)".into(), "863".into()]);
    t.row(vec!["1/2 RASC-100 (paper)".into(), "620".into()]);
    t.row(vec![
        "1/2 RASC-100 (this reproduction)".into(),
        format!("{ours:.0}"),
    ]);
    t.print();
    println!("\n   (absolute throughput scales with workload size; the paper's point is the");
    println!("    ranking of the seed-based FPGA designs over sensitive/systolic ones)\n");
}

/// Table 6 — ROC50 and AP-Mean, pipeline vs baseline.
pub fn table6(quick: bool) {
    println!("## Table 6 — sensitivity/selectivity (ROC50, AP-Mean)");
    println!("   paper: FPGA-RASC 0.468 / 0.447   NCBI-BLAST 0.479 / 0.441\n");
    let families = if quick { 24 } else { 102 };
    // The paper's benchmark (102 queries vs yeast, SCOP-style families)
    // sits near the twilight zone — scores of ~0.45, not ~1.0. The
    // synthetic families are pushed to the same regime: 62 % divergence
    // (≈ 35-40 % identity) with indels, where seed-based detection
    // genuinely misses members and rankings differ.
    let bench = build_benchmark(&BenchmarkConfig {
        families: FamilyConfig {
            family_count: families,
            members_per_family: 5,
            min_len: 120,
            max_len: 300,
            mutation: psc_datagen::MutationConfig {
                divergence: 0.62,
                indel_rate: 0.02,
                indel_extend: 0.4,
            },
            ..FamilyConfig::default()
        },
        genome_slack: 3.0,
        seed: 0x6a11,
    });
    eprintln!(
        "[table6] benchmark: {families} families, genome {} nt",
        bench.genome.len()
    );

    // Pipeline (the "FPGA-RASC" row — identical results to the RASC
    // backend by the backend-equivalence tests; run on software for
    // speed).
    eprintln!("[table6] pipeline…");
    let pipeline_scores = {
        let r = search_genome(
            &bench.queries,
            &bench.genome,
            blosum62(),
            PipelineConfig::default(),
        );
        let hits: Vec<RankedHit> = r
            .matches
            .iter()
            .map(|m| RankedHit {
                query: m.protein_idx,
                score: m.bit_score,
                start: m.genome_start,
                end: m.genome_end,
            })
            .collect();
        evaluate_ranked(&bench, &hits)
    };

    eprintln!("[table6] baseline…");
    let blast_scores = {
        let translated = translate_six_frames(&bench.genome, GeneticCode::standard());
        let frames = translated.to_bank();
        let rep = tblastn(&bench.queries, &frames, blosum62(), &BlastConfig::default());
        let hits: Vec<RankedHit> = rep
            .hsps
            .iter()
            .map(|h| {
                let frame = Frame::ALL[h.seq1 as usize];
                let (s, e, _) = translated.to_genome_interval(
                    FrameCoord {
                        frame,
                        aa_pos: h.start1 as usize,
                    },
                    (h.end1 - h.start1) as usize,
                );
                RankedHit {
                    query: h.seq0 as usize,
                    score: h.bit_score,
                    start: s,
                    end: e,
                }
            })
            .collect();
        evaluate_ranked(&bench, &hits)
    };

    print_table6(pipeline_scores, blast_scores);
}

fn print_table6(pipeline: QualityScores, blast: QualityScores) {
    let mut t = Table::new(&["", "FPGA-RASC", "NCBI-BLAST"]);
    t.row(vec![
        "ROC50".into(),
        format!("{:.3}", pipeline.roc50),
        format!("{:.3}", blast.roc50),
    ]);
    t.row(vec![
        "AP-Mean".into(),
        format!("{:.3}", pipeline.ap_mean),
        format!("{:.3}", blast.ap_mean),
    ]);
    t.print();
    println!();
}

/// Table 7 — % time per step on the RASC (192 PEs) per bank size.
pub fn table7(rows: &[LadderRow]) {
    println!("## Table 7 — % time per step, RASC 192 PEs");
    println!("   paper: step1 43/31/14/6  step2 38/35/35/37  step3 19/34/51/57\n");
    let mut t = Table::new(&["bank", "step 1", "step 2", "step 3"]);
    for row in rows {
        let run = row
            .rasc
            .iter()
            .find(|r| r.pe_count == 192)
            .expect("192-PE run");
        let (p1, p2, p3) = run.profile.percentages();
        t.row(vec![
            row.label.clone(),
            format!("{p1:.0} %"),
            format!("{p2:.0} %"),
            format!("{p3:.0} %"),
        ]);
    }
    t.print();
    println!();
}

/// Figure 1 equivalent — the slotted-pipeline design space: slot size vs
/// cycle overhead and achievable clock.
///
/// The paper's architectural argument for slots + register barriers is
/// that short broadcast paths keep the clock at 100 MHz while costing a
/// little latency. Cycle overhead comes from the simulator; the
/// achievable clock uses a simple fan-out model calibrated to the
/// paper's 16-PE slots at 100 MHz: `f(s) = 133 MHz / (1 + s/64)`.
pub fn fig1(workload: &Workload) {
    println!("## Figure 1 equivalent — slot size trade-off (192 PEs, 10× bank)");
    println!("   paper: 16-PE slots with register barriers reach 100 MHz\n");
    let mut t = Table::new(&[
        "slot size",
        "slots",
        "cycles",
        "model fmax (MHz)",
        "step-2 time (s)",
        "slices %",
    ]);
    let mut best: Option<(usize, f64)> = None;
    for slot_size in [2usize, 4, 8, 16, 32, 64, 192] {
        let mut cfg = experiment_config();
        cfg.slot_size = slot_size;
        cfg.backend = Step2Backend::Rasc {
            pe_count: 192,
            fpga_count: 1,
            host_threads: 1,
        };
        let mut op_cfg = cfg.operator_config(192);
        op_cfg.slot_size = slot_size;
        let util = psc_rasc::ResourceModel::estimate(&op_cfg);
        let r = search_genome(&workload.banks[2], &workload.genome.genome, blosum62(), cfg);
        let board = r.output.board.unwrap();
        let cycles = board.fpga_cycles[0];
        let fmax = 133.0e6 / (1.0 + slot_size as f64 / 64.0);
        let time = cycles as f64 / fmax;
        if best.map(|(_, t)| time < t).unwrap_or(true) {
            best = Some((slot_size, time));
        }
        t.row(vec![
            slot_size.to_string(),
            (192usize.div_ceil(slot_size)).to_string(),
            cycles.to_string(),
            format!("{:.0}", fmax / 1e6),
            secs(time),
            util.slice_pct.to_string(),
        ]);
    }
    t.print();
    let (s, _) = best.unwrap();
    println!("\n   fastest under the clock model: slot size {s}; the paper chose 16,");
    println!("   balancing clock against the per-slot barrier/FIFO slice cost —");
    println!("   the latency penalty between 2 and 16 is <0.2% of cycles either way\n");
}

/// Figure 2 equivalent — the PE datapath: bit-equivalence with the
/// software kernel and the cycles-per-window cost.
pub fn fig2() {
    use psc_rasc::{OperatorConfig, PscOperator};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    println!("## Figure 2 equivalent — PE datapath verification and cost");
    println!("   (one residue pair per clock; window of W+2N cycles per comparison)\n");
    let mut rng = StdRng::seed_from_u64(0xfe);
    let mut t = Table::new(&[
        "window (W+2N)",
        "cycles/comparison",
        "comparisons/s @100MHz",
        "hw ≡ sw",
    ]);
    for window in [20usize, 40, 60, 80, 120] {
        let mut cfg = OperatorConfig::new(1);
        cfg.window_len = window;
        cfg.slot_size = 1;
        cfg.threshold = 1;
        let mut op = PscOperator::new(cfg, blosum62()).unwrap();
        // Verify equivalence on random windows.
        let mut all_equal = true;
        for _ in 0..200 {
            let w0: Vec<u8> = (0..window).map(|_| rng.gen_range(0..20u8)).collect();
            let w1: Vec<u8> = (0..window).map(|_| rng.gen_range(0..20u8)).collect();
            let r = op.run_entry(&w0, &w1);
            let sw = ungapped_score(Kernel::ClampedSum, blosum62(), &w0, &w1);
            let hw = r.hits.first().map(|h| h.score).unwrap_or(0);
            if hw != sw.max(0) && !(sw < 1 && r.hits.is_empty()) {
                all_equal = false;
            }
        }
        t.row(vec![
            window.to_string(),
            window.to_string(),
            format!("{:.1e}", 100.0e6 / window as f64),
            if all_equal { "yes".into() } else { "NO".into() },
        ]);
    }
    t.print();
    println!("\n   (192 PEs × 100 MHz / 60-cycle windows = 3.2e8 comparisons/s peak)\n");
}

/// Figure 3 equivalent — board integration occupancy: where the
/// accelerated seconds go (compute vs DMA vs sync vs setup).
pub fn fig3(rows: &[LadderRow]) {
    println!("## Figure 3 equivalent — accelerated-section breakdown (192 PEs, 1 FPGA)");
    println!("   (RASC-100 integration: NUMAlink DMA streams overlap compute; results,");
    println!("    sync and setup serialize — paper Fig. 3's SGI-core data paths)\n");
    let mut t = Table::new(&[
        "bank",
        "compute (s)",
        "input wire (s)",
        "output wire (s)",
        "overlapped (s)",
        "occupancy",
        "sync (s)",
        "setup (s)",
        "total (s)",
        "PE util",
    ]);
    for row in rows {
        let run = row
            .rasc
            .iter()
            .find(|r| r.pe_count == 192)
            .expect("192-PE run");
        let b = &run.board;
        let clock = 1.0e8;
        let compute = b.fpga_cycles[0] as f64 / clock;
        let wire_in = b.bytes_in as f64 / psc_rasc::NUMALINK_BANDWIDTH;
        let wire_out = b.bytes_out as f64 / psc_rasc::NUMALINK_BANDWIDTH;
        t.row(vec![
            row.label.clone(),
            secs(compute),
            format!("{wire_in:.4}"),
            format!("{wire_out:.4}"),
            format!("{:.4}", b.overlap_seconds),
            format!("{:.1} %", b.overlap_occupancy * 100.0),
            format!("{:.4}", b.sync_seconds),
            format!("{:.3}", b.setup_seconds),
            secs(b.accelerated_seconds),
            format!("{:.1} %", b.utilization(192) * 100.0),
        ]);
    }
    t.print();
    println!("   (overlapped = DMA-in of entry k+1 hidden under compute of entry k by the");
    println!("    double-buffered dispatch; occupancy = overlapped share of the busy span)\n");
}

/// Ablation — the two readings of the paper's ungapped pseudocode.
pub fn ablation_kernel(workload: &Workload) {
    println!("## Ablation — ungapped kernel variant (10× bank)");
    println!("   (the paper's pseudocode literally accumulates positive scores only;");
    println!("    the PE datapath description matches the clamped 1-D Smith-Waterman)\n");
    let mut t = Table::new(&[
        "kernel",
        "candidates",
        "anchors",
        "alignments",
        "plants recovered",
        "step2 (s)",
    ]);
    for (kernel, label) in [
        (Kernel::ClampedSum, "ClampedSum (default)"),
        (Kernel::PaperLiteral, "PaperLiteral"),
    ] {
        let mut cfg = experiment_config();
        cfg.kernel = kernel;
        let r = search_genome(&workload.banks[2], &workload.genome.genome, blosum62(), cfg);
        let recovered = workload
            .genome
            .plants
            .iter()
            .filter(|p| {
                r.matches.iter().any(|m| {
                    m.protein_idx == p.protein_idx
                        && m.genome_start < p.end
                        && p.start < m.genome_end
                })
            })
            .count();
        t.row(vec![
            label.into(),
            r.output.stats.step2.candidates.to_string(),
            r.output.stats.anchors.to_string(),
            r.output.hsps.len().to_string(),
            format!("{recovered}/{}", workload.genome.plants.len()),
            secs(r.output.profile.step2_wall),
        ]);
    }
    t.print();
    println!();
}

/// Ablation — seed models: index fan-out, work and recall.
pub fn ablation_seed(workload: &Workload) {
    println!("## Ablation — seed model (10× bank)");
    println!("   (the paper chose a span-4 subset seed for indexing efficiency and");
    println!("    BLAST-equivalent sensitivity)\n");
    let mut t = Table::new(&[
        "seed",
        "keys",
        "pairs",
        "candidates",
        "alignments",
        "plants recovered",
        "step2 (s)",
    ]);
    let choices: Vec<(SeedChoice, String)> = vec![
        (
            SeedChoice::Custom(psc_index::subset_seed_span3()),
            "subset span-3 (ladder)".into(),
        ),
        (SeedChoice::SubsetDefault, "subset span-4 (paper)".into()),
        (SeedChoice::Exact(4), "exact 4-mer".into()),
    ];
    for (seed, label) in choices {
        let keys = seed.model().key_count();
        let mut cfg = experiment_config();
        cfg.seed = seed;
        let r = search_genome(&workload.banks[2], &workload.genome.genome, blosum62(), cfg);
        let recovered = workload
            .genome
            .plants
            .iter()
            .filter(|p| {
                r.matches.iter().any(|m| {
                    m.protein_idx == p.protein_idx
                        && m.genome_start < p.end
                        && p.start < m.genome_end
                })
            })
            .count();
        t.row(vec![
            label,
            keys.to_string(),
            r.output.stats.step2.pairs.to_string(),
            r.output.stats.step2.candidates.to_string(),
            r.output.hsps.len().to_string(),
            format!("{recovered}/{}", workload.genome.plants.len()),
            secs(r.output.profile.step2_wall),
        ]);
    }
    t.print();
    println!();
}

/// Extension — the paper's proposed second-FPGA gapped operator
/// (conclusion: "another reconfigurable operator dedicated to the
/// computation of similarities including gap penalty" running
/// concurrently with the PSC operator).
pub fn extension_step3(workload: &Workload) {
    use psc_core::config::Step3Backend;
    println!("## Extension — step-3 gapped operator on the second FPGA (192 PEs, largest bank)");
    println!("   (the paper's conclusion; Table 7 shows step 3 becoming the bottleneck.");
    println!("    To land in that regime at our scale, this run lowers the ungapped");
    println!("    threshold by 8, multiplying the gapped-extension load)\n");
    let mut cfg = experiment_config();
    cfg.threshold -= 8;
    cfg.backend = Step2Backend::Rasc {
        pe_count: 192,
        fpga_count: 1,
        host_threads: 1,
    };
    cfg.step3_backend = Step3Backend::RascGapped { band: 128 };
    let r = search_genome(&workload.banks[3], &workload.genome.genome, blosum62(), cfg);
    let p = &r.output.profile;
    let mut t = Table::new(&["deployment", "step 1", "step 2", "step 3", "total (s)"]);
    t.row(vec![
        "PSC op + host step 3".into(),
        secs(p.step1),
        secs(p.step2()),
        secs(p.step3),
        secs(p.step1 + p.step2() + p.step3),
    ]);
    t.row(vec![
        "PSC op + gapped op (sequential)".into(),
        secs(p.step1),
        secs(p.step2()),
        secs(p.step3()),
        secs(p.total()),
    ]);
    t.row(vec![
        "PSC op + gapped op (both FPGAs, concurrent)".into(),
        secs(p.step1),
        secs(p.step2().max(p.step3())),
        "-".into(),
        secs(p.total_concurrent()),
    ]);
    t.print();
    println!(
        "\n   gapped operator simulated time: {:.4} s for {} anchors\n",
        p.step3_accelerated.unwrap_or(0.0),
        r.output.stats.anchors
    );
}

/// Extension — the overlapped streaming pipeline: step-2 shard
/// completion feeding incremental anchor dedup through a bounded
/// channel, plus sharded parallel step-3 gapped extension. Run under a
/// heavy-tailed fault plan (the hardest case for determinism), software
/// step 3 against the proposed gapped operator, written to
/// `BENCH_step3_overlap.json`.
pub fn step3_overlap(workload: &Workload) {
    use psc_core::config::Step3Backend;
    println!("## Extension — overlapped streaming + parallel step-3 (10× bank, 192 PEs)");
    println!("   (threshold lowered by 8 as in extension-step3 to land in the paper's");
    println!("    Table 7 regime where step 3 dominates; seeded heavy-tail faults on)\n");
    let make_cfg = |step3_backend: Step3Backend, overlap: bool, step3_threads: usize| {
        let mut cfg = experiment_config();
        cfg.threshold -= 8;
        cfg.backend = Step2Backend::Rasc {
            pe_count: 192,
            fpga_count: 1,
            host_threads: 1,
        };
        cfg.fault_plan = Some(psc_rasc::FaultPlan::SeededHeavyTail {
            seed: 7,
            rate_ppm: psc_rasc::DEFAULT_FAULT_RATE_PPM,
        });
        cfg.step3_backend = step3_backend;
        cfg.overlap = overlap;
        cfg.step3_threads = step3_threads;
        cfg
    };
    let mut t = Table::new(&[
        "step-3 engine",
        "mode",
        "threads",
        "step3 (s)",
        "modeled N-core (s)",
        "modeled speedup",
        "step2+3 wall (s)",
        "DMA overlap",
    ]);
    let mut json_rows: Vec<String> = Vec::new();
    for (engine, label) in [
        (Step3Backend::Software, "software"),
        (Step3Backend::RascGapped { band: 128 }, "gapped-op"),
    ] {
        let mut baseline_hsps: Option<Vec<psc_align::Hsp>> = None;
        let mut seq_extension = 0.0f64;
        let mut seq_modeled_p4 = 0.0f64;
        for (overlap, threads) in [(false, 1usize), (false, 4), (true, 1), (true, 4)] {
            let cfg = make_cfg(engine.clone(), overlap, threads);
            let mut best_step3 = f64::INFINITY;
            let mut best_wall = f64::INFINITY;
            let mut best_extension = f64::INFINITY;
            let mut best_modeled_p4 = f64::INFINITY;
            let mut last = None;
            for _ in 0..3 {
                let rec = psc_core::MemRecorder::new();
                let r = psc_core::search_genome_recorded(
                    &workload.banks[2],
                    &workload.genome.genome,
                    blosum62(),
                    cfg.clone(),
                    &rec,
                );
                let spans = rec.snapshot().spans;
                best_step3 = best_step3.min(r.output.profile.step3);
                best_wall = best_wall.min(r.output.profile.step2_wall + r.output.profile.step3);
                best_extension = best_extension.min(spans["step3.extension"].seconds);
                best_modeled_p4 = best_modeled_p4.min(spans["step3.modeled_p4"].seconds);
                last = Some(r);
            }
            let r = last.unwrap();
            // The streamed/parallel modes are optimisations only: any
            // divergence from the sequential barrier run is a bug.
            match &baseline_hsps {
                None => {
                    baseline_hsps = Some(r.output.hsps.clone());
                    // Shard costs from this sequential, uncontended run
                    // drive the modeled columns for every row: a
                    // contended run's shard walls include descheduling,
                    // so replaying *its* costs would double-count the
                    // host's core shortage.
                    seq_extension = best_extension;
                    seq_modeled_p4 = best_modeled_p4;
                }
                Some(base) => assert_eq!(
                    base, &r.output.hsps,
                    "overlap={overlap} threads={threads} diverged from the barrier run"
                ),
            }
            let board = r.output.board.as_ref().expect("RASC run has a board");
            // Measured wall speedup saturates at the host's free-core
            // count; the modeled column replays the sequential run's
            // per-shard costs through the worker pull schedule on
            // `threads` free cores, which is what the speedup claim is
            // pinned on.
            let best_modeled = if threads == 1 {
                seq_extension
            } else {
                seq_modeled_p4
            };
            let modeled_speedup = seq_extension / best_modeled;
            t.row(vec![
                label.into(),
                if overlap { "overlap" } else { "barrier" }.into(),
                threads.to_string(),
                secs(best_step3),
                secs(best_modeled),
                ratio(modeled_speedup),
                secs(best_wall),
                format!("{:.1} %", board.overlap_occupancy * 100.0),
            ]);
            json_rows.push(format!(
                "    {{\"step3_backend\": \"{label}\", \"overlap\": {overlap}, \
                 \"step3_threads\": {threads}, \"step3_seconds\": {best_step3:.6}, \
                 \"step3_extension_seconds\": {best_extension:.6}, \
                 \"step3_modeled_parallel_seconds\": {best_modeled:.6}, \
                 \"step3_modeled_speedup\": {modeled_speedup:.3}, \
                 \"step2_plus_step3_seconds\": {best_wall:.6}, \
                 \"overlap_seconds\": {:.6}, \"overlap_occupancy\": {:.4}, \
                 \"anchors\": {}, \"hsps\": {}}}",
                board.overlap_seconds,
                board.overlap_occupancy,
                r.output.stats.anchors,
                r.output.hsps.len(),
            ));
        }
    }
    t.print();
    println!("\n   (modeled = the sequential barrier run's measured per-shard costs");
    println!("    replayed through the worker pull schedule on N free cores; speedup is");
    println!("    vs that run's extension. Outputs are asserted bit-identical across");
    println!("    modes; wall columns saturate at this host's free-core count.)\n");
    let json = format!(
        "{{\n  \"experiment\": \"step3_overlap\",\n  \
         \"fault_plan\": \"heavy-tail seed 7\",\n  \"runs\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let path = "BENCH_step3_overlap.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("[experiments] wrote {path}"),
        Err(e) => eprintln!("[experiments] could not write {path}: {e}"),
    }
}

/// Ablation — hybrid CPU+FPGA dispatch (the paper's closing question:
/// "how to dispatch the overall computation between cores and FPGA").
pub fn ablation_hybrid(workload: &Workload) {
    println!("## Ablation — hybrid CPU+FPGA step-2 dispatch (10× bank, 192 PEs)");
    println!("   (step-2 effective time = max(FPGA, CPU); sweep of the FPGA share)\n");
    let mut t = Table::new(&[
        "FPGA share",
        "FPGA (s)",
        "effective step 2 (s)",
        "bound by",
        "candidates",
    ]);
    let mut best: Option<(f64, f64)> = None;
    for share in [0.0f64, 0.25, 0.5, 0.75, 0.9, 1.0] {
        let mut cfg = experiment_config();
        cfg.backend = Step2Backend::Hybrid {
            pe_count: 192,
            cpu_threads: 1,
            fpga_share: share,
        };
        let r = search_genome(&workload.banks[2], &workload.genome.genome, blosum62(), cfg);
        let board = r.output.board.unwrap();
        let effective = r.output.profile.step2_accelerated.unwrap();
        let bound_by = if effective > board.accelerated_seconds + 1e-9 {
            "CPU"
        } else {
            "FPGA"
        };
        if best.map(|(_, b)| effective < b).unwrap_or(true) {
            best = Some((share, effective));
        }
        t.row(vec![
            format!("{share:.2}"),
            format!("{:.3}", board.accelerated_seconds),
            secs(effective),
            bound_by.into(),
            r.output.stats.step2.candidates.to_string(),
        ]);
    }
    t.print();
    let (share, eff) = best.unwrap();
    println!("\n   best dispatch: {share:.2} of the pair mass on the FPGA ({eff:.3} s) —");
    println!("   the optimum sits where CPU and FPGA finish together\n");
}

/// Ablation — soft low-complexity masking on a repeat-laden genome.
pub fn ablation_masking() {
    use psc_datagen::{generate_genome, random_bank, BankConfig, GenomeConfig, MutationConfig};
    println!("## Ablation — SEG-like soft masking (repeat-laden genome, 3× bank)");
    println!("   (low-complexity tracts flood seeding; masking suppresses them");
    println!("    without losing true homology — BLAST's rationale for SEG)\n");
    let proteins = random_bank(&BankConfig {
        count: 150,
        min_len: 100,
        max_len: 400,
        seed: 4242,
    });
    let synth = generate_genome(
        &GenomeConfig {
            len: 120_000,
            gene_count: 30,
            repeat_tracts: 40,
            repeat_len: 600,
            mutation: MutationConfig {
                divergence: 0.25,
                indel_rate: 0.004,
                indel_extend: 0.3,
            },
            seed: 4243,
            ..GenomeConfig::default()
        },
        &proteins,
    );
    let mut t = Table::new(&[
        "masking",
        "pairs",
        "candidates",
        "anchors",
        "alignments",
        "plants recovered",
        "step2 (s)",
    ]);
    for (mask, label) in [
        (None, "off"),
        (Some(psc_seqio::MaskConfig::default()), "on"),
    ] {
        let cfg = PipelineConfig {
            mask,
            ..experiment_config()
        };
        let r = search_genome(&proteins, &synth.genome, blosum62(), cfg);
        let recovered = synth
            .plants
            .iter()
            .filter(|p| {
                r.matches.iter().any(|m| {
                    m.protein_idx == p.protein_idx
                        && m.genome_start < p.end
                        && p.start < m.genome_end
                })
            })
            .count();
        t.row(vec![
            label.into(),
            r.output.stats.step2.pairs.to_string(),
            r.output.stats.step2.candidates.to_string(),
            r.output.stats.anchors.to_string(),
            r.output.hsps.len().to_string(),
            format!("{recovered}/{}", synth.plants.len()),
            secs(r.output.profile.step2_wall),
        ]);
    }
    t.print();
    println!();
}

/// Ablation — one-hit vs two-hit seeding in the baseline.
pub fn ablation_twohit(workload: &Workload) {
    println!("## Ablation — baseline two-hit rule (3× bank)");
    let translated = translate_six_frames(&workload.genome.genome, GeneticCode::standard());
    let frames = translated.to_bank();
    let mut t = Table::new(&[
        "mode",
        "word hits",
        "ungapped ext.",
        "gapped ext.",
        "HSPs",
        "scan (s)",
    ]);
    for (one_hit, label) in [(false, "two-hit (NCBI)"), (true, "one-hit")] {
        let t0 = Instant::now();
        let rep = tblastn(
            &workload.banks[1],
            &frames,
            blosum62(),
            &BlastConfig {
                one_hit,
                ..BlastConfig::default()
            },
        );
        let _ = t0;
        t.row(vec![
            label.into(),
            rep.word_hits.to_string(),
            rep.ungapped_extensions.to_string(),
            rep.gapped_extensions.to_string(),
            rep.hsps.len().to_string(),
            secs(rep.scan_seconds),
        ]);
    }
    t.print();
    println!();
}

/// Step-2 software kernel shoot-out — scalar vs profile vs SIMD on the
/// same indexed workload, written to `BENCH_step2_kernels.json`.
///
/// The software analogue of the paper's Table 4 question ("how fast can
/// step 2 go?"), answered on the host CPU instead of the PE array. All
/// backends must produce identical candidate sets; this asserts it.
pub fn step2_kernels(workload: &Workload) {
    use psc_core::step2::{run_software, Step2Params, Step2Schedule};
    use psc_core::KernelChoice;
    use psc_index::{subset_seed_span3, FlatBank, SeedIndex};

    println!("## Step-2 software kernels — pairs/second per backend");
    let frames = translate_six_frames(&workload.genome.genome, GeneticCode::standard()).to_bank();
    let f0 = FlatBank::from_bank(&workload.banks[1]);
    let f1 = FlatBank::from_bank(&frames);
    let model = subset_seed_span3();
    let i0 = SeedIndex::build(&f0, &model, 1);
    let i1 = SeedIndex::build(&f1, &model, 1);
    let pairs = i0.pair_count(&i1);

    let mut t = Table::new(&["backend", "seconds", "pairs/s", "vs scalar"]);
    let mut json_rows: Vec<String> = Vec::new();
    let mut scalar_secs = 0.0f64;
    let mut baseline: Option<Vec<psc_core::step2::Candidate>> = None;
    let mut seen: Vec<&str> = Vec::new();
    let mut window_len = 0usize;
    for choice in [
        KernelChoice::Scalar,
        KernelChoice::Profile,
        KernelChoice::Simd,
    ] {
        let params = Step2Params {
            matrix: blosum62(),
            kernel: Kernel::ClampedSum,
            span: 3,
            n_ctx: 28,
            threshold: 45,
            kernel_backend: choice,
            schedule: Step2Schedule::default(),
        };
        window_len = params.window_len();
        let name = params.resolved_backend().name();
        if seen.contains(&name) {
            // Without AVX2 the Simd choice resolves to Profile.
            continue;
        }
        seen.push(name);
        // Warm-up pass (also the output-equality check), then best of 3.
        let (cands, _) = run_software(&f0, &i0, &f1, &i1, &params, 1);
        match &baseline {
            None => baseline = Some(cands),
            Some(b) => assert_eq!(
                b, &cands,
                "kernel backend {name} diverged from scalar candidates"
            ),
        }
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t0 = Instant::now();
            let r = run_software(&f0, &i0, &f1, &i1, &params, 1);
            best = best.min(t0.elapsed().as_secs_f64());
            std::hint::black_box(r);
        }
        if choice == KernelChoice::Scalar {
            scalar_secs = best;
        }
        let rate = pairs as f64 / best;
        let speedup = scalar_secs / best;
        t.row(vec![
            name.into(),
            secs(best),
            format!("{:.2e}", rate),
            ratio(speedup),
        ]);
        json_rows.push(format!(
            "    {{\"backend\": \"{name}\", \"seconds\": {best:.6}, \
             \"pairs_per_sec\": {rate:.1}, \"speedup_vs_scalar\": {speedup:.3}}}"
        ));
    }
    t.print();
    println!();

    // Telemetry overhead — the same search once with the default (null)
    // recorder and once fully instrumented. The null path must stay off
    // the hot loop (acceptance: <2% on the step-2 kernel bench); the
    // instrumented run's report goes next to the bench numbers.
    let cfg = experiment_config();
    let null_run = {
        let mut best = f64::INFINITY;
        let mut result = None;
        for _ in 0..3 {
            let t0 = Instant::now();
            let r = search_genome(
                &workload.banks[1],
                &workload.genome.genome,
                blosum62(),
                cfg.clone(),
            );
            best = best.min(t0.elapsed().as_secs_f64());
            result = Some(r);
        }
        (best, result.unwrap())
    };
    let (recorded_run, rec) = {
        let mut best = f64::INFINITY;
        let mut result = None;
        let mut last_rec = None;
        for _ in 0..3 {
            // Fresh recorder per run so the committed report holds
            // single-run counts, not a 3× accumulation.
            let rec = psc_core::MemRecorder::new();
            let t0 = Instant::now();
            let r = psc_core::search_genome_recorded(
                &workload.banks[1],
                &workload.genome.genome,
                blosum62(),
                cfg.clone(),
                &rec,
            );
            best = best.min(t0.elapsed().as_secs_f64());
            result = Some(r);
            last_rec = Some(rec);
        }
        ((best, result.unwrap()), last_rec.unwrap())
    };
    assert_eq!(
        null_run.1.output.hsps, recorded_run.1.output.hsps,
        "telemetry recording changed search output"
    );
    let overhead_pct = (recorded_run.0 / null_run.0 - 1.0) * 100.0;
    println!(
        "telemetry overhead: null {} vs recorded {} ({overhead_pct:+.2} %)\n",
        secs(null_run.0),
        secs(recorded_run.0)
    );
    let report_path = "BENCH_step2_report.json";
    let report = psc_core::build_run_report(&recorded_run.1.output, &cfg, &rec.snapshot());
    match std::fs::write(report_path, report.to_json_string()) {
        Ok(()) => eprintln!("[experiments] wrote {report_path}"),
        Err(e) => eprintln!("[experiments] could not write {report_path}: {e}"),
    }

    let json = format!(
        "{{\n  \"experiment\": \"step2_kernels\",\n  \"window_len\": {window_len},\n  \
         \"pairs\": {pairs},\n  \"threads\": 1,\n  \"backends\": [\n{}\n  ],\n  \
         \"telemetry\": {{\"null_seconds\": {:.6}, \"recorded_seconds\": {:.6}, \
         \"overhead_pct\": {overhead_pct:.2}, \"report_path\": \"{report_path}\"}}\n}}\n",
        json_rows.join(",\n"),
        null_run.0,
        recorded_run.0,
    );
    let path = "BENCH_step2_kernels.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("[experiments] wrote {path}"),
        Err(e) => eprintln!("[experiments] could not write {path}: {e}"),
    }
}

/// Step-2 balance — the bucketed work-stealing schedule against the
/// contiguous key-range split, across every resolved kernel backend and
/// a thread sweep. Every configuration's candidate vector is asserted
/// byte-identical to the scalar baseline, the widest lane kernel's
/// per-item costs are replayed through [`psc_core::shard_critical_path`]
/// for modeled 2/4/8-core walls, and the lane-occupancy means of both
/// schedules are computed analytically from the index lists. Writes
/// `BENCH_step2_balance.json`.
pub fn step2_balance(workload: &Workload, quick: bool) {
    use psc_core::step2::{
        bucketed_items, lpt_order, rectangle_lane_slots, run_software, run_software_keys,
        Step2Params, Step2Schedule,
    };
    use psc_core::{shard_critical_path, KernelChoice};
    use psc_index::{subset_seed_span3, FlatBank, SeedIndex};

    println!("## Step-2 balance — schedule × kernel × threads");
    let frames = translate_six_frames(&workload.genome.genome, GeneticCode::standard()).to_bank();
    let f0 = FlatBank::from_bank(&workload.banks[1]);
    let f1 = FlatBank::from_bank(&frames);
    let model = subset_seed_span3();
    let i0 = SeedIndex::build(&f0, &model, 1);
    let i1 = SeedIndex::build(&f1, &model, 1);
    let pairs = i0.pair_count(&i1);
    let key_count = i0.key_count() as u32;

    let params_for = |choice: KernelChoice, schedule: Step2Schedule| Step2Params {
        matrix: blosum62(),
        kernel: Kernel::ClampedSum,
        span: 3,
        n_ctx: 28,
        threshold: 45,
        kernel_backend: choice,
        schedule,
    };
    let thread_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 8] };

    let mut t = Table::new(&[
        "backend",
        "schedule",
        "threads",
        "seconds",
        "pairs/s",
        "vs scalar",
    ]);
    let mut json_rows: Vec<String> = Vec::new();
    let mut scalar_secs = 0.0f64;
    let mut baseline: Option<Vec<psc_core::step2::Candidate>> = None;
    let mut configs_checked = 0usize;
    let mut seen: Vec<&str> = Vec::new();
    let mut window_len = 0usize;
    let mut widest_choice = KernelChoice::Scalar;
    let mut widest_name = "scalar";
    let mut widest_width = 0usize;
    let mut widest_speedup_1t = 0.0f64;
    for choice in [
        KernelChoice::Scalar,
        KernelChoice::Profile,
        KernelChoice::Simd,
        KernelChoice::Wide,
        KernelChoice::Split,
    ] {
        let probe = params_for(choice, Step2Schedule::Contiguous);
        let backend = probe.resolved_backend();
        let name = backend.name();
        if seen.contains(&name) {
            // Without the ISA the choice downgrades to a backend that
            // already ran; one measurement per resolved backend.
            continue;
        }
        seen.push(name);
        window_len = probe.window_len();
        for schedule in [Step2Schedule::Contiguous, Step2Schedule::Bucketed] {
            let params = params_for(choice, schedule);
            // Warm-up pass doubles as the bit-identity check.
            let (cands, _) = run_software(&f0, &i0, &f1, &i1, &params, 1);
            match &baseline {
                None => baseline = Some(cands),
                Some(b) => {
                    assert_eq!(
                        b,
                        &cands,
                        "{name}/{} diverged from the scalar candidates",
                        schedule.name()
                    );
                    configs_checked += 1;
                }
            }
            for &threads in thread_counts {
                let reps = if threads == 1 && !quick { 3 } else { 1 };
                let mut best = f64::INFINITY;
                let mut out = Vec::new();
                for _ in 0..reps {
                    let t0 = Instant::now();
                    let r = run_software(&f0, &i0, &f1, &i1, &params, threads);
                    best = best.min(t0.elapsed().as_secs_f64());
                    out = r.0;
                }
                assert_eq!(
                    baseline.as_ref().expect("baseline set on warm-up"),
                    &out,
                    "{name}/{}/{threads}t diverged from the scalar candidates",
                    schedule.name()
                );
                configs_checked += 1;
                if name == "scalar" && schedule == Step2Schedule::Contiguous && threads == 1 {
                    scalar_secs = best;
                }
                let rate = pairs as f64 / best;
                let speedup = scalar_secs / best;
                if threads == 1
                    && (backend.lane_width() > widest_width
                        || (backend.lane_width() == widest_width && speedup > widest_speedup_1t))
                {
                    widest_choice = choice;
                    widest_name = name;
                    widest_width = backend.lane_width();
                    widest_speedup_1t = speedup;
                }
                t.row(vec![
                    name.into(),
                    schedule.name().into(),
                    format!("{threads}"),
                    secs(best),
                    format!("{:.2e}", rate),
                    ratio(speedup),
                ]);
                json_rows.push(format!(
                    "    {{\"backend\": \"{name}\", \"schedule\": \"{}\", \
                     \"threads\": {threads}, \"seconds\": {best:.6}, \
                     \"pairs_per_sec\": {rate:.1}, \"speedup_vs_scalar\": {speedup:.3}}}",
                    schedule.name()
                ));
            }
        }
    }
    t.print();
    println!();
    println!("bit-identity: true ({configs_checked} configurations matched the scalar baseline)");

    // Mean lane occupancy per schedule, analytically from the index
    // lists under the widest resolved backend — the same accounting the
    // pipeline's step2.lane_fill histogram uses.
    let widest_backend = params_for(widest_choice, Step2Schedule::Contiguous).resolved_backend();
    let fill_of = |schedule: Step2Schedule| -> f64 {
        let (mut useful, mut total) = (0u64, 0u64);
        for k in 0..key_count {
            let (u, s) =
                rectangle_lane_slots(i0.list(k).len(), i1.list(k).len(), widest_backend, schedule);
            useful += u;
            total += s;
        }
        if total == 0 {
            0.0
        } else {
            useful as f64 * 100.0 / total as f64
        }
    };
    let fill_contiguous = fill_of(Step2Schedule::Contiguous);
    let fill_bucketed = fill_of(Step2Schedule::Bucketed);
    println!(
        "lane fill ({widest_name}): contiguous {fill_contiguous:.2} %, \
         bucketed {fill_bucketed:.2} % mean occupancy"
    );
    assert!(
        fill_bucketed > 0.0,
        "bucketed schedule reported zero lane occupancy"
    );
    if !quick {
        assert!(
            fill_bucketed >= 90.0,
            "bucketed mean lane occupancy {fill_bucketed:.2} % fell below the 90 % floor"
        );
        assert!(
            widest_speedup_1t >= 34.919,
            "widest kernel {widest_name} 1-thread speedup {widest_speedup_1t:.3}x \
             fell below the 34.919x BENCH_step2_kernels simd baseline"
        );
    }

    // Modeled scaling: time each bucketed work item sequentially on the
    // widest kernel, then replay the costs through the same atomic-pull
    // discipline the scheduler runs (LPT order, idlest worker next).
    let items = bucketed_items(&i0, &i1, 0..key_count);
    let wparams = params_for(widest_choice, Step2Schedule::Bucketed);
    let mut costs = vec![0.0f64; items.len()];
    for (i, item) in items.iter().enumerate() {
        let t0 = Instant::now();
        let r = run_software_keys(&f0, &i0, &f1, &i1, &wparams, item.keys.clone(), 1);
        costs[i] = t0.elapsed().as_secs_f64();
        std::hint::black_box(r);
    }
    let order = lpt_order(&items);
    let ordered: Vec<f64> = order.iter().map(|&i| costs[i]).collect();
    let modeled_p1: f64 = ordered.iter().sum();
    let modeled_p2 = shard_critical_path(&ordered, 2);
    let modeled_p4 = shard_critical_path(&ordered, 4);
    let modeled_p8 = shard_critical_path(&ordered, 8);
    println!(
        "modeled pull schedule ({widest_name}, {} items): p1 {} p2 {} p4 {} p8 {} \
         (8-core balance efficiency {:.1} %)\n",
        items.len(),
        secs(modeled_p1),
        secs(modeled_p2),
        secs(modeled_p4),
        secs(modeled_p8),
        modeled_p1 / (modeled_p8 * 8.0) * 100.0
    );

    let json = format!(
        "{{\n  \"experiment\": \"step2_balance\",\n  \"window_len\": {window_len},\n  \
         \"pairs\": {pairs},\n  \"quick\": {quick},\n  \"bit_identical\": true,\n  \
         \"configs_checked\": {configs_checked},\n  \
         \"widest\": {{\"backend\": \"{widest_name}\", \"lane_width\": {widest_width}, \
         \"speedup_vs_scalar_1t\": {widest_speedup_1t:.3}}},\n  \
         \"lane_fill_mean_pct\": {{\"contiguous\": {fill_contiguous:.2}, \
         \"bucketed\": {fill_bucketed:.2}}},\n  \"bucketed_items\": {},\n  \
         \"modeled\": {{\"p1\": {modeled_p1:.6}, \"p2\": {modeled_p2:.6}, \
         \"p4\": {modeled_p4:.6}, \"p8\": {modeled_p8:.6}}},\n  \"rows\": [\n{}\n  ]\n}}\n",
        items.len(),
        json_rows.join(",\n"),
    );
    let path = "BENCH_step2_balance.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("[experiments] wrote {path}"),
        Err(e) => eprintln!("[experiments] could not write {path}: {e}"),
    }
}

/// Tracing overhead — the flight recorder's zero-cost claim, measured.
///
/// Runs the same search best-of-3 with the tracer off (`NullTracer`)
/// and on (`RingTracer`, wall clock, overlap + parallel step 3 for the
/// richest event mix), asserts the recorded overhead stays within the
/// 2 % budget DESIGN.md §13 promises, and writes
/// `BENCH_trace_overhead.json`.
/// `BENCH_serve_amortize.json`: per-query latency answering from
/// pipeline state loaded once from an index bundle (the `psc serve`
/// path) vs one-shot searches that rebuild the genome-side index on
/// every query. Served per-query walls exclude the index build — that
/// is the amortization the artifact exists for.
pub fn serve_amortize(workload: &Workload) {
    use psc_core::{NullRecorder, NullTracer, SearchEngine};
    println!("## Serve amortization — bundle loaded once vs per-query index builds (3× bank)");
    println!("   (identical queries; served and one-shot outputs asserted bit-identical)\n");
    let cfg = experiment_config();
    let bank = &workload.banks[1];
    let genome = &workload.genome.genome;
    const QUERIES: usize = 5;

    // One-shot path: every query pays frame translation + T1 build.
    let mut oneshot = Vec::with_capacity(QUERIES);
    let mut reference = None;
    for _ in 0..QUERIES {
        let t0 = Instant::now();
        let r = search_genome(bank, genome, blosum62(), cfg.clone());
        oneshot.push(t0.elapsed().as_secs_f64());
        if let Some(prev) = reference.replace(r) {
            let now = reference.as_ref().unwrap();
            assert_eq!(prev.output.hsps, now.output.hsps, "one-shot runs diverged");
        }
    }
    let reference = reference.unwrap();

    // Serve path: build the engine once, round-trip it through the
    // bundle format, then answer the same query repeatedly.
    let t0 = Instant::now();
    let built = SearchEngine::for_genome(genome, blosum62(), cfg.clone(), &NullRecorder);
    let bytes = built.to_bundle_bytes(None);
    let build_seconds = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let engine =
        SearchEngine::from_bundle(&bytes, blosum62(), cfg.clone()).expect("bundle round trip");
    let load_seconds = t0.elapsed().as_secs_f64();
    let mut served = Vec::with_capacity(QUERIES);
    for _ in 0..QUERIES {
        let t0 = Instant::now();
        let r = engine
            .query_traced(bank, &NullRecorder, &NullTracer)
            .expect("served query");
        served.push(t0.elapsed().as_secs_f64());
        assert_eq!(
            reference.output.hsps, r.output.hsps,
            "served query diverged from one-shot search"
        );
    }

    let best = |walls: &[f64]| walls.iter().copied().fold(f64::INFINITY, f64::min);
    let (best_oneshot, best_served) = (best(&oneshot), best(&served));
    let mut t = Table::new(&["path", "best query (s)", "index build", "speedup"]);
    t.row(vec![
        "one-shot search".to_string(),
        secs(best_oneshot),
        "every query".to_string(),
        ratio(1.0),
    ]);
    t.row(vec![
        "serve (bundle)".to_string(),
        secs(best_served),
        format!("once ({})", secs(build_seconds)),
        ratio(best_oneshot / best_served),
    ]);
    t.print();
    println!(
        "\n   (bundle: {} bytes, loads in {}; served walls exclude the build —",
        bytes.len(),
        secs(load_seconds)
    );
    println!(
        "    after ~{:.0} queries the build cost is fully amortized)\n",
        (build_seconds / (best_oneshot - best_served).max(1e-9)).ceil()
    );

    let fmt_list = |walls: &[f64]| {
        walls
            .iter()
            .map(|w| format!("{w:.6}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let json = format!(
        "{{\n  \"experiment\": \"serve_amortize\",\n  \
         \"queries\": {QUERIES},\n  \
         \"bundle_bytes\": {},\n  \
         \"index_build_seconds\": {build_seconds:.6},\n  \
         \"bundle_load_seconds\": {load_seconds:.6},\n  \
         \"oneshot_query_walls\": [{}],\n  \
         \"served_query_walls\": [{}],\n  \
         \"best_oneshot_seconds\": {best_oneshot:.6},\n  \
         \"best_served_seconds\": {best_served:.6},\n  \
         \"amortized_speedup\": {:.3},\n  \
         \"served_excludes_index_build\": true,\n  \
         \"hsps\": {}\n}}\n",
        bytes.len(),
        fmt_list(&oneshot),
        fmt_list(&served),
        best_oneshot / best_served,
        reference.output.hsps.len(),
    );
    let path = "BENCH_serve_amortize.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("[experiments] wrote {path}"),
        Err(e) => eprintln!("[experiments] could not write {path}: {e}"),
    }
}

pub fn trace_overhead(workload: &Workload) {
    println!("## Tracing overhead — flight recorder on vs off (10x bank)");
    println!("   (budget: <= 2 % wall overhead with the wall-clock tracer attached)\n");
    let cfg = PipelineConfig {
        backend: Step2Backend::SoftwareParallel { threads: 2 },
        step3_threads: 2,
        overlap: true,
        ..experiment_config()
    };
    let reps = 3;
    let best = |trace: bool| -> (f64, u64, usize, u64) {
        let mut best_wall = f64::INFINITY;
        let mut units = 0u64;
        let mut lanes = 0usize;
        let mut dropped = 0u64;
        for _ in 0..reps {
            let tracer = psc_core::RingTracer::new(psc_core::TraceClock::Wall);
            let t0 = Instant::now();
            let r = if trace {
                psc_core::try_search_genome_traced(
                    &workload.banks[2],
                    &workload.genome.genome,
                    blosum62(),
                    cfg.clone(),
                    &psc_core::NullRecorder,
                    &tracer,
                )
                .expect("traced run")
            } else {
                psc_core::try_search_genome(
                    &workload.banks[2],
                    &workload.genome.genome,
                    blosum62(),
                    cfg.clone(),
                )
                .expect("plain run")
            };
            let wall = t0.elapsed().as_secs_f64();
            std::hint::black_box(&r);
            if wall < best_wall {
                best_wall = wall;
                if trace {
                    let t = tracer.finish(&[]);
                    units = t.lanes.iter().map(|l| l.spans.len() as u64).sum();
                    lanes = t.lanes.len();
                    dropped = t.dropped;
                }
            }
        }
        (best_wall, units, lanes, dropped)
    };
    // Interleave-free ordering: all plain reps, then all traced reps;
    // best-of-N absorbs warm-up and scheduler noise either way.
    let (plain, _, _, _) = best(false);
    let (traced, units, lanes, dropped) = best(true);
    let overhead_pct = (traced - plain) / plain * 100.0;
    let mut t = Table::new(&["mode", "best wall (s)", "spans", "lanes", "overhead"]);
    t.row(vec![
        "tracer off".into(),
        secs(plain),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    t.row(vec![
        "tracer on (wall)".into(),
        secs(traced),
        units.to_string(),
        lanes.to_string(),
        format!("{overhead_pct:+.2} %"),
    ]);
    t.print();
    println!("\n   (best of {reps}; spans = committed span events across all lanes)\n");
    let json = format!(
        "{{\n  \"experiment\": \"trace_overhead\",\n  \"reps\": {reps},\n  \
         \"backend\": \"parallel x2, step3 x2, overlap\",\n  \
         \"plain_seconds\": {plain:.6},\n  \"traced_seconds\": {traced:.6},\n  \
         \"overhead_pct\": {overhead_pct:.3},\n  \"budget_pct\": 2.0,\n  \
         \"trace_spans\": {units},\n  \"trace_lanes\": {lanes},\n  \
         \"trace_dropped\": {dropped}\n}}\n"
    );
    let path = "BENCH_trace_overhead.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("[experiments] wrote {path}"),
        Err(e) => eprintln!("[experiments] could not write {path}: {e}"),
    }
    // The budget is 2 % of the wall, floored at 2 % of one second so
    // `--quick` runs (tens of milliseconds, noise-dominated) don't
    // flake while full-scale runs are gated at the real 2 %.
    assert!(
        traced - plain <= 0.02 * plain.max(1.0),
        "tracing overhead {overhead_pct:.2} % ({:.3} s) exceeds the 2 % budget",
        traced - plain
    );
}

/// `experiments fleet-scaling` — the multi-board fleet sweep: HSP
/// bit-identity across every boards × steal-policy × fault-plan combo,
/// quarantine engagement under a heavy-tail plan, and the modeled
/// cluster-speedup ladder (the exact dispatch schedule replayed at each
/// fleet size), written to `BENCH_fleet_scaling.json`. The wall budget
/// keeps the sweep a cheap CI gate, like `analyzer-bench`.
pub fn fleet_scaling(workload: &Workload, quick: bool) {
    use psc_rasc::{FleetConfig, StealPolicy};
    println!("## Fleet scaling — work-stealing dispatch across N simulated boards (3x bank)");
    println!("   (HSPs asserted bit-identical to the 1-board run for every combo)\n");
    let t_sweep = Instant::now();
    let bank = &workload.banks[1];
    let genome = &workload.genome.genome;
    let cfg_for =
        |boards: usize, steal: StealPolicy, plan: Option<psc_rasc::FaultPlan>| PipelineConfig {
            backend: Step2Backend::Rasc {
                pe_count: 192,
                fpga_count: 2,
                host_threads: 2,
            },
            fleet: FleetConfig {
                boards,
                steal_policy: steal,
                ..FleetConfig::default()
            },
            fault_plan: plan,
            ..experiment_config()
        };

    // Reference: the classic single board, fault-free.
    let reference = search_genome(
        bank,
        genome,
        blosum62(),
        cfg_for(1, StealPolicy::Richest, None),
    );
    let mut rows = Vec::new();
    let mut checked = 0u32;
    for boards in [1usize, 2, 4, 8] {
        for steal in [StealPolicy::Richest, StealPolicy::None] {
            for plan in [Option::None, Some(psc_rasc::FaultPlan::seeded_heavy(11))] {
                let tail = plan.is_some();
                let r = search_genome(bank, genome, blosum62(), cfg_for(boards, steal, plan));
                assert_eq!(
                    reference.output.hsps,
                    r.output.hsps,
                    "HSPs diverged at boards={boards} steal={} heavy_tail={tail}",
                    steal.name()
                );
                assert_eq!(
                    reference.output.stats,
                    r.output.stats,
                    "stats diverged at boards={boards} steal={} heavy_tail={tail}",
                    steal.name()
                );
                checked += 1;
                if let Some(f) = &r.output.fleet {
                    rows.push((
                        boards,
                        steal.name(),
                        tail,
                        f.steals,
                        f.quarantined.len(),
                        f.makespan_seconds,
                    ));
                }
            }
        }
    }

    // Quarantine engagement: a heavy-tail plan with a one-strike
    // threshold must drain at least one board — deterministically, so
    // scan seeds in order and pin the first that does.
    let mut quarantine = Option::None;
    for seed in 1u64..=24 {
        let mut cfg = cfg_for(
            4,
            StealPolicy::Richest,
            Some(psc_rasc::FaultPlan::seeded_heavy(seed)),
        );
        cfg.fleet.quarantine_after = 1;
        let r = search_genome(bank, genome, blosum62(), cfg);
        assert_eq!(
            reference.output.hsps, r.output.hsps,
            "HSPs diverged under quarantine (seed {seed})"
        );
        let f = r.output.fleet.expect("fleet report at 4 boards");
        if !f.quarantined.is_empty() {
            quarantine = Some((seed, f.quarantined.len(), f.redispatched, f.steals));
            break;
        }
    }
    let (q_seed, q_boards, q_redispatched, q_steals) =
        quarantine.expect("no heavy-tail seed in 1..=24 quarantined a board");

    // Modeled cluster-speedup ladder from the fault-free 8-board run:
    // the same dispatch schedule replayed at each fleet size.
    let r8 = search_genome(
        bank,
        genome,
        blosum62(),
        cfg_for(8, StealPolicy::Richest, None),
    );
    let fleet8 = r8.output.fleet.expect("fleet report at 8 boards");
    let ladder = &fleet8.modeled;
    let at = |n: usize| {
        ladder
            .iter()
            .find(|&&(b, _)| b == n)
            .map(|&(_, s)| s)
            .expect("ladder point")
    };
    let speedup = |n: usize| at(1) / at(n);

    let mut t = Table::new(&["boards", "modeled makespan (s)", "speedup vs 1 board"]);
    for &(n, s) in ladder {
        t.row(vec![n.to_string(), secs(s), ratio(speedup(n))]);
    }
    t.print();
    println!(
        "\n   ({checked} configs bit-identical; quarantine: seed {q_seed} drained {q_boards} board(s), \
         {q_redispatched} entries re-dispatched, {q_steals} steals)\n"
    );

    let wall = t_sweep.elapsed().as_secs_f64();
    let budget = 120.0;
    let ladder_json = ladder
        .iter()
        .map(|&(n, s)| {
            format!(
                "{{\"boards\": {n}, \"makespan_seconds\": {s:.9}, \"speedup\": {:.3}}}",
                speedup(n)
            )
        })
        .collect::<Vec<_>>()
        .join(",\n    ");
    let rows_json = rows
        .iter()
        .map(|(b, steal, tail, steals, quarantined, makespan)| {
            format!(
                "{{\"boards\": {b}, \"steal\": \"{steal}\", \"heavy_tail\": {tail}, \
                 \"steals\": {steals}, \"quarantined\": {quarantined}, \
                 \"makespan_seconds\": {makespan:.9}}}"
            )
        })
        .collect::<Vec<_>>()
        .join(",\n    ");
    let json = format!(
        "{{\n  \"experiment\": \"fleet_scaling\",\n  \
         \"quick\": {quick},\n  \
         \"configs_checked_bit_identical\": {checked},\n  \
         \"hsps\": {},\n  \
         \"modeled_ladder\": [\n    {ladder_json}\n  ],\n  \
         \"speedup_4_boards\": {:.3},\n  \
         \"speedup_8_boards\": {:.3},\n  \
         \"quarantine\": {{\"seed\": {q_seed}, \"boards_drained\": {q_boards}, \
         \"entries_redispatched\": {q_redispatched}, \"steals\": {q_steals}, \
         \"output_unchanged\": true}},\n  \
         \"fleet_runs\": [\n    {rows_json}\n  ],\n  \
         \"wall_seconds\": {wall:.3},\n  \"budget_seconds\": {budget}\n}}\n",
        reference.output.hsps.len(),
        speedup(4),
        speedup(8),
    );
    let path = "BENCH_fleet_scaling.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("[experiments] wrote {path}"),
        Err(e) => eprintln!("[experiments] could not write {path}: {e}"),
    }
    assert!(
        speedup(4) >= 3.5,
        "modeled 4-board speedup {:.2} below the 3.5x floor",
        speedup(4)
    );
    assert!(
        speedup(8) >= 6.0,
        "modeled 8-board speedup {:.2} below the 6x floor",
        speedup(8)
    );
    assert!(
        wall < budget,
        "fleet-scaling sweep took {wall:.1} s — over the {budget} s budget"
    );
}

/// `experiments analyzer-bench` — wall time of the full two-pass
/// workspace analysis (lex, symbol index, call graph, transitive
/// lints), best of 3, written to `BENCH_analyzer.json`. The 5 s budget
/// keeps the CI lint gate a cheap pre-merge step, not a build phase.
pub fn analyzer_bench() {
    println!("## Analyzer — full workspace analysis, best of 3 (budget: < 5 s)\n");
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root");
    let text = std::fs::read_to_string(root.join("analyzer.toml")).expect("read analyzer.toml");
    let config = psc_analyzer::Config::parse(&text).expect("parse analyzer.toml");
    let mut best = f64::INFINITY;
    let mut report = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        let r = psc_analyzer::analyze_workspace(root, &config).expect("analyze workspace");
        let wall = t0.elapsed().as_secs_f64();
        best = best.min(wall);
        report = Some(r);
    }
    let r = report.expect("three reps ran");
    println!(
        "   {} files, {} fns, {} call edges, {} unresolved calls, {} diagnostics in {:.3} s",
        r.files_checked,
        r.functions,
        r.call_edges,
        r.unresolved_calls,
        r.diagnostics.len(),
        best
    );
    let json = format!(
        "{{\n  \"experiment\": \"analyzer\",\n  \"best_of\": 3,\n  \
         \"wall_seconds\": {best:.4},\n  \"budget_seconds\": 5.0,\n  \
         \"files_checked\": {},\n  \"functions\": {},\n  \"call_edges\": {},\n  \
         \"unresolved_calls\": {},\n  \"diagnostics\": {}\n}}\n",
        r.files_checked,
        r.functions,
        r.call_edges,
        r.unresolved_calls,
        r.diagnostics.len()
    );
    let path = "BENCH_analyzer.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("[experiments] wrote {path}"),
        Err(e) => eprintln!("[experiments] could not write {path}: {e}"),
    }
    assert!(
        best < 5.0,
        "workspace analysis took {best:.2} s — over the 5 s budget"
    );
}
