//! Whole-pipeline cost and the step balance behind paper Tables 1 & 7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psc_bench::data::build_workload;
use psc_bench::ladder::experiment_config;
use psc_bench::Scale;
use psc_core::{search_genome, Step2Backend};
use psc_score::blosum62;

fn bench_pipeline(c: &mut Criterion) {
    let workload = build_workload(&Scale::quick());
    let mut group = c.benchmark_group("pipeline_end_to_end");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("software_scalar", "quick-1x"), |b| {
        b.iter(|| {
            search_genome(
                &workload.banks[0],
                &workload.genome.genome,
                blosum62(),
                experiment_config(),
            )
        });
    });

    group.bench_function(BenchmarkId::new("rasc_sim_192pe", "quick-1x"), |b| {
        b.iter(|| {
            let mut cfg = experiment_config();
            cfg.backend = Step2Backend::Rasc {
                pe_count: 192,
                fpga_count: 1,
                host_threads: 1,
            };
            search_genome(&workload.banks[0], &workload.genome.genome, blosum62(), cfg)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
