//! Micro-benchmarks of the ungapped kernels — the instruction stream a
//! PE replaces (paper Figure 2 / §2.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use psc_align::{ungapped_score, xdrop_ungapped, Kernel};
use psc_score::blosum62;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn residues(rng: &mut StdRng, n: usize) -> Vec<u8> {
    (0..n).map(|_| rng.gen_range(0..20u8)).collect()
}

fn bench_window_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("ungapped_window");
    for window in [20usize, 60, 120] {
        let w0 = residues(&mut rng, window);
        let w1 = residues(&mut rng, window);
        group.throughput(Throughput::Elements(window as u64));
        for (kernel, name) in [
            (Kernel::ClampedSum, "clamped"),
            (Kernel::PaperLiteral, "literal"),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, window),
                &(&w0, &w1),
                |b, (w0, w1)| {
                    b.iter(|| ungapped_score(kernel, blosum62(), w0, w1));
                },
            );
        }
    }
    group.finish();
}

fn bench_xdrop(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut group = c.benchmark_group("xdrop_ungapped");
    for len in [200usize, 1000] {
        let s = residues(&mut rng, len);
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::new("self", len), &s, |b, s| {
            b.iter(|| xdrop_ungapped(blosum62(), s, s, len / 2, len / 2, 3, 16));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_window_kernels, bench_xdrop);
criterion_main!(benches);
