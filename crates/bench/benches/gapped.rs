//! Gapped extension cost (paper step 3, the post-RASC bottleneck of
//! Table 7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use psc_align::{banded_global, gapped_extend, GapConfig};
use psc_datagen::{mutate_protein, random_protein, MutationConfig};
use psc_score::blosum62;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_gapped_extend(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(21);
    let mut group = c.benchmark_group("gapped_extend");
    group.sample_size(20);
    for len in [200usize, 800] {
        let a = random_protein(&mut rng, len);
        let hom = mutate_protein(
            &mut rng,
            &a,
            &MutationConfig {
                divergence: 0.3,
                indel_rate: 0.01,
                indel_extend: 0.4,
            },
        );
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(
            BenchmarkId::new("homolog", len),
            &(&a, &hom),
            |bch, (a, hom)| {
                bch.iter(|| {
                    gapped_extend(
                        blosum62(),
                        a,
                        hom,
                        len / 2,
                        hom.len() / 2,
                        &GapConfig::default(),
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_traceback(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(22);
    let a = random_protein(&mut rng, 300);
    let b = mutate_protein(
        &mut rng,
        &a,
        &MutationConfig {
            divergence: 0.2,
            indel_rate: 0.01,
            indel_extend: 0.4,
        },
    );
    let mut group = c.benchmark_group("banded_global");
    group.sample_size(20);
    for pad in [8usize, 32] {
        group.bench_with_input(BenchmarkId::new("band_pad", pad), &pad, |bch, &pad| {
            bch.iter(|| banded_global(blosum62(), &a, &b, &GapConfig::default(), pad));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gapped_extend, bench_traceback);
criterion_main!(benches);
