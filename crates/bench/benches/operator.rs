//! PSC-operator geometry sweeps (paper Figure 1): simulated-hardware
//! cycle counts vs array and slot size, reported via criterion's
//! measurement of the functional path's wall cost plus printed cycles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psc_rasc::{FunctionalOperator, OperatorConfig};
use psc_score::blosum62;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn windows(rng: &mut StdRng, count: usize, len: usize) -> Vec<u8> {
    (0..count * len).map(|_| rng.gen_range(0..20u8)).collect()
}

fn bench_array_sizes(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let window = 60usize;
    let il0 = windows(&mut rng, 384, window);
    let il1 = windows(&mut rng, 128, window);

    let mut group = c.benchmark_group("operator_array_size");
    group.sample_size(10);
    for pes in [64usize, 128, 192] {
        let mut cfg = OperatorConfig::new(pes);
        cfg.window_len = window;
        let op = FunctionalOperator::new(cfg.clone(), blosum62()).unwrap();
        let cycles = op.run_entry(&il0, &il1).cycles;
        println!("[operator] {pes} PEs: {cycles} simulated cycles for 384×128 windows");
        group.bench_with_input(BenchmarkId::new("pes", pes), &op, |b, op| {
            b.iter(|| op.run_entry(&il0, &il1));
        });
    }
    group.finish();
}

fn bench_slot_sizes(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let window = 60usize;
    let il0 = windows(&mut rng, 192, window);
    let il1 = windows(&mut rng, 96, window);

    let mut group = c.benchmark_group("operator_slot_size");
    group.sample_size(10);
    for slot in [4usize, 16, 64] {
        let mut cfg = OperatorConfig::new(192);
        cfg.window_len = window;
        cfg.slot_size = slot;
        let op = FunctionalOperator::new(cfg.clone(), blosum62()).unwrap();
        let cycles = op.run_entry(&il0, &il1).cycles;
        println!("[operator] slot {slot}: {cycles} simulated cycles (192 PEs)");
        group.bench_with_input(BenchmarkId::new("slot", slot), &op, |b, op| {
            b.iter(|| op.run_entry(&il0, &il1));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_array_sizes, bench_slot_sizes);
criterion_main!(benches);
