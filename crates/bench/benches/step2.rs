//! Step-2 software backend cost (the paper's "Sequential" column of
//! Table 4, in miniature).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use psc_align::{Kernel, KernelChoice};
use psc_core::step2::{run_software, Step2Params, Step2Schedule};
use psc_datagen::{random_bank, BankConfig};
use psc_index::{subset_seed_span3, FlatBank, SeedIndex};
use psc_score::blosum62;

fn bench_step2(c: &mut Criterion) {
    let bank0 = random_bank(&BankConfig {
        count: 100,
        min_len: 100,
        max_len: 300,
        seed: 11,
    });
    let bank1 = random_bank(&BankConfig {
        count: 100,
        min_len: 100,
        max_len: 300,
        seed: 12,
    });
    let f0 = FlatBank::from_bank(&bank0);
    let f1 = FlatBank::from_bank(&bank1);
    let model = subset_seed_span3();
    let i0 = SeedIndex::build(&f0, &model, 1);
    let i1 = SeedIndex::build(&f1, &model, 1);
    let pairs = i0.pair_count(&i1);

    let params = Step2Params {
        matrix: blosum62(),
        kernel: Kernel::ClampedSum,
        span: 3,
        n_ctx: 28,
        threshold: 45,
        kernel_backend: KernelChoice::Scalar,
        schedule: Step2Schedule::default(),
    };

    let mut group = c.benchmark_group("step2_software");
    group.throughput(Throughput::Elements(pairs));
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("scalar", pairs), &params, |b, p| {
        b.iter(|| run_software(&f0, &i0, &f1, &i1, p, 1));
    });
    group.finish();
}

criterion_group!(benches, bench_step2);
criterion_main!(benches);
