//! Cost of simulating one processing element, cycle-accurate vs
//! functional (paper Figure 2) — how expensive is fidelity?

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use psc_rasc::{FunctionalOperator, OperatorConfig, PscOperator};
use psc_score::blosum62;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn windows(rng: &mut StdRng, count: usize, len: usize) -> Vec<u8> {
    (0..count * len).map(|_| rng.gen_range(0..20u8)).collect()
}

fn bench_pe_paths(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let window = 60usize;
    let il0 = windows(&mut rng, 16, window);
    let il1 = windows(&mut rng, 64, window);
    let scored = (16 * 64 * window) as u64;

    let mut cfg = OperatorConfig::new(16);
    cfg.window_len = window;
    cfg.slot_size = 8;

    let mut group = c.benchmark_group("pe_simulation");
    group.throughput(Throughput::Elements(scored));
    group.sample_size(20);
    group.bench_with_input(
        BenchmarkId::new("cycle_accurate", "16x64"),
        &cfg,
        |b, cfg| {
            let mut op = PscOperator::new(cfg.clone(), blosum62()).unwrap();
            b.iter(|| op.run_entry(&il0, &il1));
        },
    );
    group.bench_with_input(BenchmarkId::new("functional", "16x64"), &cfg, |b, cfg| {
        let op = FunctionalOperator::new(cfg.clone(), blosum62()).unwrap();
        b.iter(|| op.run_entry(&il0, &il1));
    });
    group.finish();
}

criterion_group!(benches, bench_pe_paths);
criterion_main!(benches);
