//! Index construction cost (paper step 1): seed models compared.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use psc_datagen::{random_bank, BankConfig};
use psc_index::{
    subset_seed_default, subset_seed_span3, ExactSeed, FlatBank, SeedIndex, SeedModel,
};

fn bench_index_build(c: &mut Criterion) {
    let bank = random_bank(&BankConfig {
        count: 300,
        min_len: 100,
        max_len: 400,
        seed: 5,
    });
    let flat = FlatBank::from_bank(&bank);
    let residues = flat.len() as u64;

    let models: Vec<(&str, Box<dyn SeedModel>)> = vec![
        ("subset4", Box::new(subset_seed_default())),
        ("subset3", Box::new(subset_seed_span3())),
        ("exact4", Box::new(ExactSeed::new(4))),
    ];

    let mut group = c.benchmark_group("index_build");
    group.throughput(Throughput::Elements(residues));
    group.sample_size(20);
    for (name, model) in &models {
        group.bench_with_input(BenchmarkId::new(*name, residues), model, |b, model| {
            b.iter(|| SeedIndex::build(&flat, model.as_ref(), 1));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_index_build);
criterion_main!(benches);
