//! The overlapped streaming pipeline vs the step-2→step-3 barrier, and
//! sharded parallel gapped extension vs the sequential loop (paper
//! Table 7's post-RASC bottleneck, attacked on the host side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psc_core::{search_genome, PipelineConfig, Step2Backend};
use psc_datagen::{generate_genome, random_bank, BankConfig, GenomeConfig};
use psc_score::blosum62;

fn workload() -> (psc_seqio::Bank, psc_seqio::Seq) {
    let proteins = random_bank(&BankConfig {
        count: 20,
        min_len: 100,
        max_len: 200,
        seed: 515,
    });
    let genome = generate_genome(
        &GenomeConfig {
            len: 40_000,
            gene_count: 10,
            seed: 516,
            ..GenomeConfig::default()
        },
        &proteins,
    );
    (proteins, genome.genome)
}

fn cfg(overlap: bool, step3_threads: usize) -> PipelineConfig {
    PipelineConfig {
        backend: Step2Backend::Rasc {
            pe_count: 128,
            fpga_count: 1,
            host_threads: 1,
        },
        // More surviving candidates → a step-3 load worth sharding.
        threshold: 37,
        overlap,
        step3_threads,
        ..PipelineConfig::default()
    }
}

fn bench_overlap_modes(c: &mut Criterion) {
    let (proteins, genome) = workload();
    let mut group = c.benchmark_group("step3_overlap");
    group.sample_size(10);
    for (overlap, threads, label) in [
        (false, 1usize, "barrier-seq"),
        (false, 4, "barrier-4t"),
        (true, 1, "overlap-seq"),
        (true, 4, "overlap-4t"),
    ] {
        group.bench_with_input(
            BenchmarkId::new("search", label),
            &(overlap, threads),
            |bch, &(overlap, threads)| {
                bch.iter(|| search_genome(&proteins, &genome, blosum62(), cfg(overlap, threads)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_overlap_modes);
criterion_main!(benches);
