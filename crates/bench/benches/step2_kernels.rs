//! Scalar vs profile vs SIMD step-2 kernels — the software analogue of
//! the paper's PE-count scaling, measured at two levels:
//!
//! * `score_batch`: the raw batched kernel on one dense seed key
//!   (window-pairs/second, no indexing or gather cost);
//! * `run_software`: the full step-2 pass (gather + tiling + scoring)
//!   with the kernel pinned to each backend.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use psc_align::{
    score_batch, ungapped_score, InterleavedWindows, Kernel, KernelBackend, KernelChoice,
    ScoreProfile,
};
use psc_core::step2::{run_software, Step2Params, Step2Schedule};
use psc_datagen::{random_bank, BankConfig};
use psc_index::{subset_seed_span3, FlatBank, SeedIndex};
use psc_score::blosum62;

/// Deterministic residue stream (LCG), enough for `n` windows of `len`.
fn windows(n: usize, len: usize, mut state: u64) -> Vec<u8> {
    let mut v = Vec::with_capacity(n * len);
    for _ in 0..n * len {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        v.push(((state >> 33) % 24) as u8);
    }
    v
}

fn bench_raw_kernels(c: &mut Criterion) {
    const LEN: usize = 60; // the paper's W + 2N window
    const N1: usize = 4096; // IL1 windows against one IL0 window
    let m = blosum62();
    let w0 = windows(1, LEN, 7);
    let il1_rowmajor = windows(N1, LEN, 99);
    let mut profile = ScoreProfile::default();
    profile.build(m, &w0);
    let mut il1 = InterleavedWindows::default();
    il1.build(&il1_rowmajor, LEN);
    let mut out = Vec::with_capacity(N1);

    let mut group = c.benchmark_group("step2_kernel_raw");
    group.throughput(Throughput::Elements(N1 as u64));
    for backend in [
        KernelBackend::Scalar,
        KernelBackend::Profile,
        KernelBackend::Simd,
    ] {
        if backend == KernelBackend::Simd && !psc_align::simd_available() {
            continue;
        }
        group.bench_with_input(BenchmarkId::new(backend.name(), N1), &backend, |b, &bk| {
            b.iter(|| {
                out.clear();
                score_batch(
                    bk,
                    Kernel::ClampedSum,
                    m,
                    &w0,
                    &profile,
                    &il1_rowmajor,
                    &il1,
                    &mut out,
                );
                out.last().copied()
            });
        });
    }
    // The pre-batch baseline for reference: one ungapped_score call per
    // pair, exactly what the old step-2 inner loop did.
    group.bench_function(BenchmarkId::new("ungapped_score", N1), |b| {
        b.iter(|| {
            out.clear();
            for w1 in il1_rowmajor.chunks_exact(LEN) {
                out.push(ungapped_score(Kernel::ClampedSum, m, &w0, w1));
            }
            out.last().copied()
        });
    });
    group.finish();
}

fn bench_step2_backends(c: &mut Criterion) {
    let bank0 = random_bank(&BankConfig {
        count: 100,
        min_len: 100,
        max_len: 300,
        seed: 11,
    });
    let bank1 = random_bank(&BankConfig {
        count: 100,
        min_len: 100,
        max_len: 300,
        seed: 12,
    });
    let f0 = FlatBank::from_bank(&bank0);
    let f1 = FlatBank::from_bank(&bank1);
    let model = subset_seed_span3();
    let i0 = SeedIndex::build(&f0, &model, 1);
    let i1 = SeedIndex::build(&f1, &model, 1);
    let pairs = i0.pair_count(&i1);

    let mut group = c.benchmark_group("step2_kernel_full");
    group.throughput(Throughput::Elements(pairs));
    group.sample_size(10);
    let mut seen = Vec::new();
    for choice in [
        KernelChoice::Scalar,
        KernelChoice::Profile,
        KernelChoice::Simd,
    ] {
        let params = Step2Params {
            matrix: blosum62(),
            kernel: Kernel::ClampedSum,
            span: 3,
            n_ctx: 28,
            threshold: 45,
            kernel_backend: choice,
            schedule: Step2Schedule::default(),
        };
        // On hosts without AVX2 the Simd choice resolves to Profile;
        // skip the duplicate rather than bench it twice.
        let name = params.resolved_backend().name();
        if seen.contains(&name) {
            continue;
        }
        seen.push(name);
        group.bench_with_input(BenchmarkId::new(name, pairs), &params, |b, p| {
            b.iter(|| run_software(&f0, &i0, &f1, &i1, p, 1));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_raw_kernels, bench_step2_backends);
criterion_main!(benches);
