//! Random protein generation with realistic residue composition.

use psc_seqio::{Bank, Seq};
use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Background residue composition used by all generators (Robinson &
/// Robinson 1991, the same background `psc-score` uses for statistics).
pub(crate) const BACKGROUND: [f64; 20] = psc_score::ROBINSON_FREQS;

/// Configuration for a random protein bank.
#[derive(Clone, Debug)]
pub struct BankConfig {
    /// Number of proteins.
    pub count: usize,
    /// Minimum protein length (inclusive).
    pub min_len: usize,
    /// Maximum protein length (inclusive). The paper's banks average
    /// ≈ 336 aa per protein; the default 100–600 range reproduces that.
    pub max_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BankConfig {
    fn default() -> Self {
        BankConfig {
            count: 1000,
            min_len: 100,
            max_len: 600,
            seed: 0x5eed,
        }
    }
}

/// Sample one random protein of the given length.
pub fn random_protein(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let dist = WeightedIndex::new(BACKGROUND).expect("background weights are positive");
    (0..len).map(|_| dist.sample(rng) as u8).collect()
}

/// Generate a bank of random proteins per the configuration.
pub fn random_bank(config: &BankConfig) -> Bank {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let dist = WeightedIndex::new(BACKGROUND).expect("background weights are positive");
    (0..config.count)
        .map(|i| {
            let len = rng.gen_range(config.min_len..=config.max_len);
            let residues: Vec<u8> = (0..len).map(|_| dist.sample(&mut rng) as u8).collect();
            Seq::from_codes(format!("prot{i:06}"), residues, psc_seqio::SeqKind::Protein)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_respects_config() {
        let cfg = BankConfig {
            count: 50,
            min_len: 10,
            max_len: 20,
            seed: 1,
        };
        let bank = random_bank(&cfg);
        assert_eq!(bank.len(), 50);
        for (_, s) in bank.iter() {
            assert!(s.len() >= 10 && s.len() <= 20);
            assert!(s.residues.iter().all(|&c| c < 20));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = BankConfig::default();
        let a = random_bank(&BankConfig {
            count: 5,
            ..cfg.clone()
        });
        let b = random_bank(&BankConfig { count: 5, ..cfg });
        for i in 0..5 {
            assert_eq!(a.get(i).residues, b.get(i).residues);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_bank(&BankConfig {
            count: 1,
            min_len: 200,
            max_len: 200,
            seed: 1,
        });
        let b = random_bank(&BankConfig {
            count: 1,
            min_len: 200,
            max_len: 200,
            seed: 2,
        });
        assert_ne!(a.get(0).residues, b.get(0).residues);
    }

    #[test]
    fn composition_tracks_background() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = random_protein(&mut rng, 200_000);
        let mut counts = [0usize; 20];
        for &c in &p {
            counts[c as usize] += 1;
        }
        // Leucine (index 10) is the most common residue at ~9%.
        let leu = counts[10] as f64 / p.len() as f64;
        assert!((leu - 0.09019).abs() < 0.005, "leu {leu}");
        // Tryptophan (17) the rarest at ~1.3%.
        let trp = counts[17] as f64 / p.len() as f64;
        assert!((trp - 0.0133).abs() < 0.003, "trp {trp}");
    }
}
