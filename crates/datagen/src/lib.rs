//! # psc-datagen — seeded synthetic genomic data
//!
//! The paper evaluates on the Human chromosome 1 and four NCBI `nr`
//! protein banks; neither is available offline, so every experiment in
//! this reproduction runs on synthetic data produced here (see DESIGN.md
//! §2 for the substitution argument). Everything is deterministic given a
//! `u64` seed.
//!
//! * [`protein`]: random proteins with Robinson–Robinson composition,
//!   banks of the paper's 1×/3×/10×/30× size ladder;
//! * [`mutate`]: a BLOSUM62-tilted point-substitution + indel model used
//!   to derive homologs at a controlled divergence;
//! * [`genome`]: random genomes with protein-coding regions *planted* by
//!   back-translation — ground truth for sensitivity experiments;
//! * [`family`]: protein families (one ancestor, many diverged members)
//!   with membership as ground truth for the ROC50 / AP-Mean benchmark
//!   (paper Table 6).

#![forbid(unsafe_code)]

pub mod family;
pub mod genome;
pub mod mutate;
pub mod protein;

pub use family::{generate_families, Family, FamilyConfig};
pub use genome::{generate_genome, GenomeConfig, PlantedGene, SyntheticGenome};
pub use mutate::{mutate_protein, MutationConfig};
pub use protein::{random_bank, random_protein, BankConfig};
