//! Synthetic genomes with planted protein-coding regions.
//!
//! The paper compares protein banks against the six-frame translation of
//! the Human chromosome 1. Our stand-in is a random genome into which
//! protein-coding regions are *planted*: bank proteins (or mutated
//! homologs of them) are back-translated through the genetic code and
//! spliced into either strand. The plants are recorded, giving every
//! sensitivity experiment a ground truth no real chromosome can offer.

use psc_seqio::seq::reverse_complement_codes;
use psc_seqio::{Bank, GeneticCode, Seq};
use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::mutate::{mutate_protein, MutationConfig};

/// Configuration for genome synthesis.
#[derive(Clone, Debug)]
pub struct GenomeConfig {
    /// Number of low-complexity repeat tracts to insert (microsatellite-
    /// like runs that translate into low-entropy protein; they exercise
    /// the masking path and are absent by default).
    pub repeat_tracts: usize,
    /// Length of each repeat tract in nucleotides.
    pub repeat_len: usize,
    /// Genome length in nucleotides.
    pub len: usize,
    /// GC content of the background (0..1).
    pub gc_content: f64,
    /// How many coding regions to plant.
    pub gene_count: usize,
    /// Mutation applied to each planted protein (models evolutionary
    /// distance between bank protein and genomic copy).
    pub mutation: MutationConfig,
    /// Maximum residues of a planted protein actually used (truncates very
    /// long proteins so plants fit comfortably).
    pub max_plant_aa: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenomeConfig {
    fn default() -> Self {
        GenomeConfig {
            len: 1_000_000,
            gc_content: 0.41, // human-like
            gene_count: 0,
            repeat_tracts: 0,
            repeat_len: 300,
            mutation: MutationConfig::default(),
            max_plant_aa: 400,
            seed: 0xd14,
        }
    }
}

/// Record of one planted coding region.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlantedGene {
    /// Index of the source protein in the donor bank.
    pub protein_idx: usize,
    /// Genomic start (forward-strand coordinates, inclusive).
    pub start: usize,
    /// Genomic end (exclusive).
    pub end: usize,
    /// True when planted on the forward strand.
    pub forward: bool,
    /// Length of the planted region in amino acids.
    pub aa_len: usize,
}

/// A synthetic genome plus its plant records.
#[derive(Clone, Debug)]
pub struct SyntheticGenome {
    pub genome: Seq,
    pub plants: Vec<PlantedGene>,
}

/// Back-translate a protein into DNA, choosing uniformly among synonymous
/// codons. Residues with no codon (X, B, Z) are skipped.
pub fn back_translate(rng: &mut StdRng, protein: &[u8], code: &GeneticCode) -> Vec<u8> {
    let mut out = Vec::with_capacity(protein.len() * 3);
    for &aa in protein {
        let codons = code.codons_for(psc_seqio::Aa(aa));
        if codons.is_empty() {
            continue;
        }
        let c = codons[rng.gen_range(0..codons.len())];
        out.extend_from_slice(&c);
    }
    out
}

/// Generate a genome per the configuration, planting mutated copies of
/// proteins drawn round-robin from `donors` (pass an empty bank with
/// `gene_count = 0` for a pure background genome).
pub fn generate_genome(config: &GenomeConfig, donors: &Bank) -> SyntheticGenome {
    assert!(
        config.gene_count == 0 || !donors.is_empty(),
        "planting genes requires donor proteins"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let code = GeneticCode::standard();

    // Background: weighted A/C/G/T by GC content.
    let at = (1.0 - config.gc_content) / 2.0;
    let gc = config.gc_content / 2.0;
    let base_dist = WeightedIndex::new([at, gc, gc, at]).expect("valid GC content");
    let mut genome: Vec<u8> = (0..config.len)
        .map(|_| base_dist.sample(&mut rng) as u8)
        .collect();

    // Plant coding regions at non-overlapping positions.
    let mut plants = Vec::with_capacity(config.gene_count);
    let mut occupied: Vec<(usize, usize)> = Vec::new();
    'plant: for g in 0..config.gene_count {
        let protein_idx = g % donors.len();
        let donor = donors.get(protein_idx);
        let take = donor.len().min(config.max_plant_aa);
        if take < 20 {
            continue; // Too short to be a meaningful plant.
        }
        let mutated = mutate_protein(&mut rng, &donor.residues[..take], &config.mutation);
        let dna = back_translate(&mut rng, &mutated, code);
        if dna.is_empty() || dna.len() + 2 > genome.len() {
            continue;
        }
        // Find a free position (bounded retries keep generation O(genes²)
        // in the worst case but effectively linear at sane densities).
        for _attempt in 0..50 {
            let start = rng.gen_range(0..=genome.len() - dna.len());
            let end = start + dna.len();
            if occupied.iter().any(|&(s, e)| start < e && s < end) {
                continue;
            }
            let forward = rng.gen_bool(0.5);
            if forward {
                genome[start..end].copy_from_slice(&dna);
            } else {
                genome[start..end].copy_from_slice(&reverse_complement_codes(&dna));
            }
            occupied.push((start, end));
            plants.push(PlantedGene {
                protein_idx,
                start,
                end,
                forward,
                aa_len: dna.len() / 3,
            });
            continue 'plant;
        }
        // No free slot found after bounded retries: skip this plant.
    }
    // Low-complexity repeat tracts: short-period nucleotide repeats
    // (period 1-6) dropped into free space; they translate into
    // low-entropy protein in every frame.
    for _ in 0..config.repeat_tracts {
        let period = rng.gen_range(1..=6usize);
        let unit: Vec<u8> = (0..period).map(|_| rng.gen_range(0..4u8)).collect();
        let len = config.repeat_len.min(genome.len());
        for _attempt in 0..50 {
            let start = rng.gen_range(0..=genome.len() - len);
            let end = start + len;
            if occupied.iter().any(|&(s, e)| start < e && s < end) {
                continue;
            }
            for (k, slot) in genome[start..end].iter_mut().enumerate() {
                *slot = unit[k % period];
            }
            occupied.push((start, end));
            break;
        }
    }

    plants.sort_by_key(|p| p.start);

    SyntheticGenome {
        genome: Seq::from_codes(
            format!("synth_genome_{:#x}", config.seed),
            genome,
            psc_seqio::SeqKind::Dna,
        ),
        plants,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protein::{random_bank, BankConfig};
    use psc_seqio::{translate_six_frames, Frame};

    fn donor_bank() -> Bank {
        random_bank(&BankConfig {
            count: 10,
            min_len: 80,
            max_len: 200,
            seed: 3,
        })
    }

    #[test]
    fn background_genome_has_requested_gc() {
        let cfg = GenomeConfig {
            len: 200_000,
            gc_content: 0.6,
            gene_count: 0,
            ..Default::default()
        };
        let g = generate_genome(&cfg, &Bank::new());
        let gc = g
            .genome
            .residues
            .iter()
            .filter(|&&c| c == 1 || c == 2)
            .count() as f64
            / g.genome.len() as f64;
        assert!((gc - 0.6).abs() < 0.01, "gc {gc}");
        assert!(g.plants.is_empty());
    }

    #[test]
    fn plants_recorded_and_nonoverlapping() {
        let cfg = GenomeConfig {
            len: 100_000,
            gene_count: 20,
            seed: 9,
            ..Default::default()
        };
        let g = generate_genome(&cfg, &donor_bank());
        assert!(!g.plants.is_empty());
        for w in g.plants.windows(2) {
            assert!(w[0].end <= w[1].start, "plants overlap");
        }
        for p in &g.plants {
            assert_eq!((p.end - p.start) % 3, 0);
            assert_eq!(p.aa_len * 3, p.end - p.start);
        }
    }

    #[test]
    fn perfect_plant_translates_back_to_donor() {
        // With zero mutation, a forward plant must appear verbatim in one
        // of the three forward frames (reverse plants in a reverse frame).
        let donors = donor_bank();
        let cfg = GenomeConfig {
            len: 60_000,
            gene_count: 8,
            mutation: MutationConfig {
                divergence: 0.0,
                indel_rate: 0.0,
                indel_extend: 0.0,
            },
            seed: 11,
            ..Default::default()
        };
        let g = generate_genome(&cfg, &donors);
        assert!(!g.plants.is_empty());
        let translated = translate_six_frames(&g.genome, GeneticCode::standard());
        for plant in &g.plants {
            let donor = donors.get(plant.protein_idx);
            let expect: &[u8] = &donor.residues[..plant.aa_len.min(donor.len())];
            let frames: &[Frame] = if plant.forward {
                &[Frame::Plus(0), Frame::Plus(1), Frame::Plus(2)]
            } else {
                &[Frame::Minus(0), Frame::Minus(1), Frame::Minus(2)]
            };
            let found = frames.iter().any(|&f| {
                translated
                    .frame(f)
                    .residues
                    .windows(expect.len())
                    .any(|w| w == expect)
            });
            assert!(found, "plant {plant:?} not recovered in translation");
        }
    }

    #[test]
    fn back_translate_round_trip() {
        let mut rng = StdRng::seed_from_u64(5);
        let protein: Vec<u8> = (0..20u8).collect();
        let code = GeneticCode::standard();
        let dna = back_translate(&mut rng, &protein, code);
        assert_eq!(dna.len(), 60);
        for (i, &aa) in protein.iter().enumerate() {
            let codon = &dna[i * 3..i * 3 + 3];
            assert_eq!(code.translate_codes(codon).0, aa);
        }
    }

    #[test]
    fn repeat_tracts_are_low_complexity() {
        let cfg = GenomeConfig {
            len: 50_000,
            gene_count: 0,
            repeat_tracts: 6,
            repeat_len: 400,
            seed: 33,
            ..Default::default()
        };
        let g = generate_genome(&cfg, &Bank::new());
        // Entropy of the whole genome should dip: find at least one
        // 200-nt window with <= 6 distinct... simpler: count windows of
        // 60 nt with at most 2 distinct bases.
        let mut low = 0;
        for w in g.genome.residues.windows(60).step_by(60) {
            let mut seen = [false; 5];
            for &c in w {
                seen[c as usize] = true;
            }
            if seen.iter().filter(|&&b| b).count() <= 2 {
                low += 1;
            }
        }
        assert!(low >= 4, "expected repeat windows, found {low}");
    }

    #[test]
    fn deterministic_generation() {
        let donors = donor_bank();
        let cfg = GenomeConfig {
            len: 30_000,
            gene_count: 5,
            seed: 21,
            ..Default::default()
        };
        let a = generate_genome(&cfg, &donors);
        let b = generate_genome(&cfg, &donors);
        assert_eq!(a.genome.residues, b.genome.residues);
        assert_eq!(a.plants, b.plants);
    }
}
