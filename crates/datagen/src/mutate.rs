//! A BLOSUM62-tilted mutation model for deriving homologous proteins.
//!
//! Substitutions are drawn from the conditional pair distribution implied
//! by the scoring system, `q(j | i) ∝ pⱼ e^{λ sᵢⱼ}` — the distribution
//! under which BLOSUM62 is the log-odds optimal matrix. Homologs produced
//! this way look exactly like the similarities the scoring system is tuned
//! to find, which is what the paper's sensitivity benchmark needs.

use psc_score::karlin::compute_lambda;
use psc_score::{blosum62, ROBINSON_FREQS};
use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::Rng;

use crate::protein::BACKGROUND;

/// Mutation parameters.
#[derive(Clone, Debug)]
pub struct MutationConfig {
    /// Per-residue probability of substitution (0 = identical copy).
    pub divergence: f64,
    /// Per-position probability of opening an indel.
    pub indel_rate: f64,
    /// Geometric continuation probability for indel length.
    pub indel_extend: f64,
}

impl Default for MutationConfig {
    fn default() -> Self {
        MutationConfig {
            divergence: 0.3,
            indel_rate: 0.005,
            indel_extend: 0.4,
        }
    }
}

/// Precomputed conditional substitution tables `q(j | i)`.
struct ConditionalModel {
    tables: Vec<WeightedIndex<f64>>,
}

impl ConditionalModel {
    fn new() -> ConditionalModel {
        let matrix = blosum62();
        let lambda = compute_lambda(matrix, &ROBINSON_FREQS)
            .expect("BLOSUM62 has valid ungapped statistics");
        let tables = (0..20u8)
            .map(|i| {
                let weights: Vec<f64> = (0..20u8)
                    .map(|j| {
                        if i == j {
                            // Exclude the identity: `divergence` already
                            // decides whether a substitution happens.
                            0.0
                        } else {
                            BACKGROUND[j as usize] * (lambda * matrix.score(i, j) as f64).exp()
                        }
                    })
                    .collect();
                WeightedIndex::new(weights).expect("non-degenerate row")
            })
            .collect();
        ConditionalModel { tables }
    }

    fn instance() -> &'static ConditionalModel {
        static MODEL: std::sync::OnceLock<ConditionalModel> = std::sync::OnceLock::new();
        MODEL.get_or_init(ConditionalModel::new)
    }

    #[inline]
    fn substitute(&self, rng: &mut StdRng, residue: u8) -> u8 {
        if residue >= 20 {
            return residue; // Leave ambiguity codes alone.
        }
        self.tables[residue as usize].sample(rng) as u8
    }
}

/// Derive a homolog of `ancestor` under the mutation model.
///
/// Returns the mutated residues. Indels insert background-distributed
/// residues or delete a geometric-length run.
pub fn mutate_protein(rng: &mut StdRng, ancestor: &[u8], config: &MutationConfig) -> Vec<u8> {
    let model = ConditionalModel::instance();
    let background = WeightedIndex::new(BACKGROUND).expect("background weights are positive");
    let mut out = Vec::with_capacity(ancestor.len() + 8);
    let mut i = 0usize;
    while i < ancestor.len() {
        if config.indel_rate > 0.0 && rng.gen_bool(config.indel_rate) {
            let mut len = 1usize;
            while rng.gen_bool(config.indel_extend) && len < 30 {
                len += 1;
            }
            if rng.gen_bool(0.5) {
                // Insertion of `len` background residues.
                for _ in 0..len {
                    out.push(background.sample(rng) as u8);
                }
                // Current residue handled on the next loop turn.
                continue;
            } else {
                // Deletion of `len` residues.
                i += len;
                continue;
            }
        }
        let c = ancestor[i];
        if c < 20 && config.divergence > 0.0 && rng.gen_bool(config.divergence) {
            out.push(model.substitute(rng, c));
        } else {
            out.push(c);
        }
        i += 1;
    }
    out
}

/// Fractional identity between two equal-length residue slices (helper
/// for tests and the family generator's divergence bookkeeping).
pub fn identity(a: &[u8], b: &[u8]) -> f64 {
    if a.is_empty() || a.len() != b.len() {
        return 0.0;
    }
    let same = a.iter().zip(b).filter(|(x, y)| x == y).count();
    same as f64 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protein::random_protein;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn zero_divergence_is_identity() {
        let mut r = rng();
        let p = random_protein(&mut r, 300);
        let cfg = MutationConfig {
            divergence: 0.0,
            indel_rate: 0.0,
            indel_extend: 0.0,
        };
        assert_eq!(mutate_protein(&mut r, &p, &cfg), p);
    }

    #[test]
    fn divergence_controls_identity() {
        let mut r = rng();
        let p = random_protein(&mut r, 5000);
        let cfg = MutationConfig {
            divergence: 0.3,
            indel_rate: 0.0,
            indel_extend: 0.0,
        };
        let m = mutate_protein(&mut r, &p, &cfg);
        assert_eq!(m.len(), p.len());
        let id = identity(&p, &m);
        assert!((id - 0.7).abs() < 0.03, "identity {id}");
    }

    #[test]
    fn substitutions_prefer_similar_residues() {
        // Mutating isoleucine (9) should produce valine (19), leucine (10)
        // or methionine (12) far more often than proline (14).
        let mut r = rng();
        let ancestor = vec![9u8; 20_000];
        let cfg = MutationConfig {
            divergence: 1.0,
            indel_rate: 0.0,
            indel_extend: 0.0,
        };
        let m = mutate_protein(&mut r, &ancestor, &cfg);
        let count = |res: u8| m.iter().filter(|&&c| c == res).count();
        // Theory: q(V|I)/q(P|I) = (p_V/p_P)·e^{λ(s_IV - s_IP)} ≈ 8.3.
        assert!(
            count(19) > 6 * count(14).max(1),
            "V={} P={}",
            count(19),
            count(14)
        );
        assert!(count(10) > 5 * count(14).max(1));
        assert_eq!(count(9), 0, "identity excluded");
    }

    #[test]
    fn indels_change_length() {
        let mut r = rng();
        let p = random_protein(&mut r, 2000);
        let cfg = MutationConfig {
            divergence: 0.0,
            indel_rate: 0.05,
            indel_extend: 0.5,
        };
        let m = mutate_protein(&mut r, &p, &cfg);
        assert_ne!(m.len(), p.len());
    }

    #[test]
    fn ambiguity_codes_untouched() {
        let mut r = rng();
        let p = vec![22u8, 23, 22];
        let cfg = MutationConfig {
            divergence: 1.0,
            indel_rate: 0.0,
            indel_extend: 0.0,
        };
        assert_eq!(mutate_protein(&mut r, &p, &cfg), p);
    }

    #[test]
    fn identity_helper_edges() {
        assert_eq!(identity(&[], &[]), 0.0);
        assert_eq!(identity(&[1, 2], &[1]), 0.0);
        assert_eq!(identity(&[1, 2], &[1, 2]), 1.0);
        assert_eq!(identity(&[1, 2], &[1, 3]), 0.5);
    }
}
