//! Protein families with known membership.
//!
//! The paper's Table 6 scores sensitivity/selectivity (ROC50, AP-Mean)
//! against a human-annotated benchmark of 102 queries vs the yeast
//! genome. Offline we synthesise the equivalent: families of proteins
//! descended from a common ancestor, where "same family" is the ground
//! truth that the annotation provided.

use psc_seqio::{Bank, Seq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::mutate::{mutate_protein, MutationConfig};
use crate::protein::random_protein;

/// Configuration for family generation.
#[derive(Clone, Debug)]
pub struct FamilyConfig {
    /// Number of families (the paper's benchmark has 102 queries).
    pub family_count: usize,
    /// Members per family (including the query/ancestor representative).
    pub members_per_family: usize,
    /// Ancestor length range.
    pub min_len: usize,
    pub max_len: usize,
    /// Mutation from ancestor to each member; larger divergence makes the
    /// benchmark harder and separates sensitive from insensitive tools.
    pub mutation: MutationConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FamilyConfig {
    fn default() -> Self {
        FamilyConfig {
            family_count: 102,
            members_per_family: 6,
            min_len: 150,
            max_len: 400,
            mutation: MutationConfig {
                divergence: 0.45,
                indel_rate: 0.01,
                indel_extend: 0.4,
            },
            seed: 0xfa31,
        }
    }
}

/// One generated family.
#[derive(Clone, Debug)]
pub struct Family {
    /// Family identifier (index).
    pub id: usize,
    /// The query representative (a lightly mutated copy of the ancestor,
    /// so it is not trivially identical to members).
    pub query: Seq,
    /// Member proteins (ground-truth true positives for the query).
    pub members: Vec<Seq>,
}

/// Generate families per the configuration.
///
/// Returns the families; `Family::members` of *other* families serve as
/// ground-truth false positives for a query.
pub fn generate_families(config: &FamilyConfig) -> Vec<Family> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let query_mutation = MutationConfig {
        divergence: (config.mutation.divergence * 0.5).min(0.25),
        ..config.mutation.clone()
    };
    (0..config.family_count)
        .map(|id| {
            let len = rng.gen_range(config.min_len..=config.max_len);
            let ancestor = random_protein(&mut rng, len);
            let query_res = mutate_protein(&mut rng, &ancestor, &query_mutation);
            let query = Seq::from_codes(
                format!("fam{id:03}_query"),
                query_res,
                psc_seqio::SeqKind::Protein,
            );
            let members = (0..config.members_per_family)
                .map(|m| {
                    let res = mutate_protein(&mut rng, &ancestor, &config.mutation);
                    Seq::from_codes(
                        format!("fam{id:03}_m{m:02}"),
                        res,
                        psc_seqio::SeqKind::Protein,
                    )
                })
                .collect();
            Family { id, query, members }
        })
        .collect()
}

/// Flatten family members (not queries) into one bank; sequence ids keep
/// the `famNNN_` prefix so membership can be recovered from the id.
pub fn members_bank(families: &[Family]) -> Bank {
    families
        .iter()
        .flat_map(|f| f.members.iter().cloned())
        .collect()
}

/// Recover the family id encoded in a member/query sequence id.
pub fn family_of(seq_id: &str) -> Option<usize> {
    seq_id.strip_prefix("fam")?.split('_').next()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutate::identity;

    fn small_config() -> FamilyConfig {
        FamilyConfig {
            family_count: 5,
            members_per_family: 3,
            min_len: 100,
            max_len: 150,
            ..Default::default()
        }
    }

    #[test]
    fn generates_requested_shape() {
        let fams = generate_families(&small_config());
        assert_eq!(fams.len(), 5);
        for (i, f) in fams.iter().enumerate() {
            assert_eq!(f.id, i);
            assert_eq!(f.members.len(), 3);
            assert!(f.query.len() >= 60); // indels may shrink it slightly
        }
    }

    #[test]
    fn members_related_to_query_strangers_not() {
        let fams = generate_families(&FamilyConfig {
            family_count: 2,
            members_per_family: 2,
            min_len: 300,
            max_len: 300,
            mutation: MutationConfig {
                divergence: 0.3,
                indel_rate: 0.0,
                indel_extend: 0.0,
            },
            seed: 77,
        });
        // Same family: identity clearly above random (~5%).
        let q = &fams[0].query.residues;
        let m = &fams[0].members[0].residues;
        assert!(identity(q, m) > 0.4, "within-family identity too low");
        // Different family: near random identity.
        let other = &fams[1].members[0].residues;
        let len = q.len().min(other.len());
        assert!(identity(&q[..len], &other[..len]) < 0.15);
    }

    #[test]
    fn members_bank_and_family_recovery() {
        let fams = generate_families(&small_config());
        let bank = members_bank(&fams);
        assert_eq!(bank.len(), 15);
        for (_, s) in bank.iter() {
            let fam = family_of(&s.id).expect("id encodes family");
            assert!(fam < 5);
        }
        assert_eq!(family_of("fam042_m01"), Some(42));
        assert_eq!(family_of("fam042_query"), Some(42));
        assert_eq!(family_of("prot000001"), None);
    }

    #[test]
    fn deterministic() {
        let a = generate_families(&small_config());
        let b = generate_families(&small_config());
        assert_eq!(a[2].query.residues, b[2].query.residues);
        assert_eq!(a[4].members[1].residues, b[4].members[1].residues);
    }
}
