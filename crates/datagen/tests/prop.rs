//! Property tests for the synthetic data generators.

use proptest::prelude::*;
use psc_datagen::{
    generate_genome, mutate_protein, random_bank, BankConfig, GenomeConfig, MutationConfig,
};
use psc_seqio::{Bank, GeneticCode};
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generated banks respect their configuration for any seed.
    #[test]
    fn banks_respect_config(seed in any::<u64>(), count in 1usize..20, lo in 10usize..50, extra in 0usize..100) {
        let cfg = BankConfig { count, min_len: lo, max_len: lo + extra, seed };
        let bank = random_bank(&cfg);
        prop_assert_eq!(bank.len(), count);
        for (_, s) in bank.iter() {
            prop_assert!(s.len() >= lo && s.len() <= lo + extra);
            prop_assert!(s.residues.iter().all(|&c| c < 20));
        }
    }

    /// Mutation at divergence d leaves ~(1-d) identity (no indels) for
    /// any seed, within statistical tolerance.
    #[test]
    fn divergence_is_calibrated(seed in any::<u64>(), d in 0.05f64..0.8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = psc_datagen::random_protein(&mut rng, 4000);
        let m = mutate_protein(&mut rng, &p, &MutationConfig {
            divergence: d,
            indel_rate: 0.0,
            indel_extend: 0.0,
        });
        prop_assert_eq!(m.len(), p.len());
        let id = psc_datagen::mutate::identity(&p, &m);
        prop_assert!((id - (1.0 - d)).abs() < 0.05, "identity {id} vs expected {}", 1.0 - d);
    }

    /// Genome plants are always in-bounds, non-overlapping, and on codon
    /// boundaries relative to their own start.
    #[test]
    fn plants_are_well_formed(seed in any::<u64>(), genes in 1usize..12) {
        let donors = random_bank(&BankConfig { count: 4, min_len: 60, max_len: 120, seed });
        let g = generate_genome(&GenomeConfig {
            len: 30_000,
            gene_count: genes,
            seed,
            ..GenomeConfig::default()
        }, &donors);
        for w in g.plants.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
        for p in &g.plants {
            prop_assert!(p.end <= g.genome.len());
            prop_assert_eq!((p.end - p.start) % 3, 0);
            prop_assert!(p.protein_idx < donors.len());
        }
    }

    /// Back-translation re-translates to the source protein for any seed.
    #[test]
    fn back_translation_round_trips(seed in any::<u64>(), len in 1usize..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let protein = psc_datagen::random_protein(&mut rng, len);
        let code = GeneticCode::standard();
        let dna = psc_datagen::genome::back_translate(&mut rng, &protein, code);
        prop_assert_eq!(dna.len(), protein.len() * 3);
        for (i, &aa) in protein.iter().enumerate() {
            let got = code.translate_codes(&dna[i * 3..i * 3 + 3]);
            prop_assert_eq!(got.0, aa);
        }
    }

    /// Generation is a pure function of its seed.
    #[test]
    fn determinism(seed in any::<u64>()) {
        let cfg = BankConfig { count: 3, min_len: 30, max_len: 60, seed };
        let a = random_bank(&cfg);
        let b = random_bank(&cfg);
        for i in 0..3 {
            prop_assert_eq!(&a.get(i).residues, &b.get(i).residues);
        }
        let gcfg = GenomeConfig { len: 5_000, gene_count: 2, seed, ..GenomeConfig::default() };
        let x = generate_genome(&gcfg, &a);
        let y = generate_genome(&gcfg, &b);
        prop_assert_eq!(x.genome.residues, y.genome.residues);
    }

    /// Empty donor bank with zero genes is always valid.
    #[test]
    fn background_only_genomes(seed in any::<u64>(), len in 100usize..5_000) {
        let g = generate_genome(&GenomeConfig {
            len,
            gene_count: 0,
            seed,
            ..GenomeConfig::default()
        }, &Bank::new());
        prop_assert_eq!(g.genome.len(), len);
        prop_assert!(g.plants.is_empty());
    }
}
