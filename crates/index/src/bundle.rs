//! The v2 index *bundle* — everything `psc search` needs to answer
//! queries against a genome, in one artifact.
//!
//! A bare [`SeedIndex`](crate::table::SeedIndex) file (format v1) only
//! carried the genome-side seed table; consuming it still required the
//! loader to re-translate the genome and to guess the masking and
//! scoring the table was built under. The bundle closes that gap: it
//! records the six translated frames, the soft-masking configuration of
//! the seeding view, the substitution matrix (the PE ROM "score
//! profile"), the seed-model fingerprint, and the T1 (genome-side) seed
//! index — optionally plus a T0 (protein-bank-side) index so a repeated
//! bank skips its own step-1 build too. `psc index` writes bundles;
//! `psc search --index` and `psc serve --index` load them.
//!
//! # Integrity
//!
//! The whole body (version and section flags included) is covered by
//! the same [`fletcher64`] checksum discipline as the embedded index
//! sections and the simulated board's result blocks, and the checksum
//! is verified before any section is parsed: a flipped byte anywhere in
//! the artifact surfaces as [`SerialError::Corrupt`] (or a more
//! specific header error), never as silently different search results.
//! The embedded T0/T1 sections are stored in the v2 single-index format
//! of [`crate::serial`], so the seed-model fingerprint check — and the
//! [`SerialError::ModelMismatch`] it raises — is the same code path an
//! index loaded on its own goes through.

use bytes::{BufMut, Bytes, BytesMut};
use psc_score::SubstitutionMatrix;
use psc_seqio::alphabet::AA_ALPHABET_LEN;
use psc_seqio::{Bank, MaskConfig, Seq, SeqKind};

use crate::seed::SeedModel;
use crate::serial::{deserialize_index, fletcher64, serialize_index, SerialError};
use crate::table::SeedIndex;

const BUNDLE_MAGIC: &[u8; 8] = b"PSCBDL\x00\x02";
const BUNDLE_VERSION: u16 = 1;
const FLAG_MASKED: u16 = 1 << 0;
const FLAG_T0: u16 = 1 << 1;
/// Six reading frames, always.
const FRAME_COUNT: usize = 6;

/// Optional protein-bank-side (T0) section: the exact bank the index
/// was built over, so a loader can prove reuse is sound by comparing
/// sequences.
#[derive(Clone, Debug)]
pub struct BundleT0 {
    /// The protein bank, ids and residues.
    pub bank: Bank,
    /// Its seed index under the bundle's model.
    pub index: SeedIndex,
}

/// The deserialized artifact. See the module docs for the format.
#[derive(Clone, Debug)]
pub struct IndexBundle {
    /// Seed-model fingerprint (also embedded in each index section).
    pub model_name: String,
    /// Id of the genome the frames were translated from.
    pub genome_id: String,
    /// Genome length in nucleotides (needed to map frame coordinates
    /// back to the forward strand).
    pub genome_len: u64,
    /// The six translated frames, in `Frame::ALL` order, original
    /// (unmasked) residues.
    pub frames: Vec<Seq>,
    /// Soft-masking applied to the *seeding view* the indexes were
    /// built over (`None` = unmasked).
    pub mask: Option<MaskConfig>,
    /// The substitution matrix the windows are scored with — the score
    /// profile a PE's ROM holds.
    pub matrix: SubstitutionMatrix,
    /// Genome-side (T1) seed index over the seeding view of the frames.
    pub t1: SeedIndex,
    /// Optional protein-bank-side (T0) section.
    pub t0: Option<BundleT0>,
}

/// Cheap header peek: what is in a bundle, without a model to verify
/// against. Lets the CLI explain a mismatching artifact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BundleInfo {
    pub model_name: String,
    pub genome_id: String,
    pub genome_len: u64,
    pub masked: bool,
    pub has_t0: bool,
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_seq(buf: &mut BytesMut, seq: &Seq) {
    put_str(buf, &seq.id);
    buf.put_u64_le(seq.residues.len() as u64);
    buf.put_slice(&seq.residues);
}

fn put_index(buf: &mut BytesMut, index: &SeedIndex, model: &dyn SeedModel) {
    let blob = serialize_index(index, model);
    buf.put_u64_le(blob.len() as u64);
    buf.put_slice(&blob);
}

/// Serialize a bundle. `model` must be the model the indexes were built
/// under; its fingerprint is embedded in the header and in each index
/// section.
pub fn serialize_bundle(bundle: &IndexBundle, model: &dyn SeedModel) -> Bytes {
    debug_assert_eq!(bundle.frames.len(), FRAME_COUNT);
    let mut body = BytesMut::new();
    put_str(&mut body, &model.name());
    put_str(&mut body, &bundle.genome_id);
    body.put_u64_le(bundle.genome_len);
    for frame in &bundle.frames {
        put_seq(&mut body, frame);
    }
    if let Some(mask) = &bundle.mask {
        body.put_u64_le(mask.window as u64);
        body.put_u64_le(mask.trigger.to_bits());
        body.put_u64_le(mask.extend.to_bits());
    }
    put_str(&mut body, &bundle.matrix.name);
    let table: Vec<u8> = bundle.matrix.flat().iter().map(|&s| s as u8).collect();
    body.put_slice(&table);
    put_index(&mut body, &bundle.t1, model);
    if let Some(t0) = &bundle.t0 {
        body.put_u32_le(t0.bank.len() as u32);
        for (_, seq) in t0.bank.iter() {
            put_seq(&mut body, seq);
        }
        put_index(&mut body, &t0.index, model);
    }

    let mut flags = 0u16;
    if bundle.mask.is_some() {
        flags |= FLAG_MASKED;
    }
    if bundle.t0.is_some() {
        flags |= FLAG_T0;
    }
    let version = BUNDLE_VERSION.to_le_bytes();
    let flag_bytes = flags.to_le_bytes();
    let checksum = fletcher64(&[&version, &flag_bytes, &body]);

    let mut buf = BytesMut::with_capacity(BUNDLE_MAGIC.len() + 12 + body.len());
    buf.put_slice(BUNDLE_MAGIC);
    buf.put_slice(&version);
    buf.put_slice(&flag_bytes);
    buf.put_u64_le(checksum);
    buf.put_slice(&body);
    buf.freeze()
}

/// Panic-free cursor over the bundle body: every read is
/// length-checked, so truncation and length-field corruption surface
/// as [`SerialError::Corrupt`].
struct Reader<'a> {
    data: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SerialError> {
        if self.data.len() < n {
            return Err(SerialError::Corrupt(what));
        }
        let (head, rest) = self.data.split_at(n);
        self.data = rest;
        Ok(head)
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, SerialError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, SerialError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, SerialError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn str(&mut self, what: &'static str) -> Result<String, SerialError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SerialError::Corrupt(what))
    }

    fn seq(&mut self, what: &'static str) -> Result<Seq, SerialError> {
        let id = self.str(what)?;
        let len = self.u64(what)? as usize;
        let residues = self.take(len, what)?.to_vec();
        Ok(Seq::from_codes(id, residues, SeqKind::Protein))
    }

    fn index(
        &mut self,
        model: &dyn SeedModel,
        what: &'static str,
    ) -> Result<SeedIndex, SerialError> {
        let len = self.u64(what)? as usize;
        let blob = self.take(len, what)?;
        deserialize_index(blob, model)
    }
}

/// Header fields shared by [`peek_bundle`] and [`deserialize_bundle`]:
/// magic, version, flags, and the verified checksum. Returns the flags
/// and a reader positioned at the body.
fn parse_header(data: &[u8]) -> Result<(u16, Reader<'_>), SerialError> {
    if data.len() < BUNDLE_MAGIC.len() + 12 || &data[..BUNDLE_MAGIC.len()] != BUNDLE_MAGIC {
        return Err(SerialError::BadMagic);
    }
    let mut r = Reader {
        data: &data[BUNDLE_MAGIC.len()..],
    };
    let version = r.u16("header truncated")?;
    if version != BUNDLE_VERSION {
        return Err(SerialError::BadVersion(version));
    }
    let flags = r.u16("header truncated")?;
    let stored_sum = r.u64("header truncated")?;
    let computed = fletcher64(&[&version.to_le_bytes(), &flags.to_le_bytes(), r.data]);
    if computed != stored_sum {
        return Err(SerialError::Corrupt("bundle checksum mismatch"));
    }
    Ok((flags, r))
}

/// Read the identifying header of a bundle without verifying it
/// against a seed model (the checksum *is* verified).
pub fn peek_bundle(data: &[u8]) -> Result<BundleInfo, SerialError> {
    let (flags, mut r) = parse_header(data)?;
    let model_name = r.str("model name truncated")?;
    let genome_id = r.str("genome id truncated")?;
    let genome_len = r.u64("genome length truncated")?;
    Ok(BundleInfo {
        model_name,
        genome_id,
        genome_len,
        masked: flags & FLAG_MASKED != 0,
        has_t0: flags & FLAG_T0 != 0,
    })
}

/// Deserialize a bundle, verifying the checksum first and every
/// embedded index against `model`.
pub fn deserialize_bundle(data: &[u8], model: &dyn SeedModel) -> Result<IndexBundle, SerialError> {
    let (flags, mut r) = parse_header(data)?;
    let model_name = r.str("model name truncated")?;
    if model_name != model.name() {
        return Err(SerialError::ModelMismatch {
            stored: model_name,
            supplied: model.name(),
        });
    }
    let genome_id = r.str("genome id truncated")?;
    let genome_len = r.u64("genome length truncated")?;
    let mut frames = Vec::with_capacity(FRAME_COUNT);
    for _ in 0..FRAME_COUNT {
        frames.push(r.seq("frame section truncated")?);
    }
    let mask = if flags & FLAG_MASKED != 0 {
        Some(MaskConfig {
            window: r.u64("mask section truncated")? as usize,
            trigger: f64::from_bits(r.u64("mask section truncated")?),
            extend: f64::from_bits(r.u64("mask section truncated")?),
        })
    } else {
        None
    };
    let matrix_name = r.str("matrix name truncated")?;
    let table = r.take(AA_ALPHABET_LEN * AA_ALPHABET_LEN, "matrix table truncated")?;
    let mut scores = [0i8; AA_ALPHABET_LEN * AA_ALPHABET_LEN];
    for (dst, &src) in scores.iter_mut().zip(table) {
        *dst = src as i8;
    }
    let matrix = SubstitutionMatrix::from_flat(matrix_name, scores);
    let t1 = r.index(model, "t1 section truncated")?;
    let t0 = if flags & FLAG_T0 != 0 {
        let count = r.u32("t0 bank truncated")? as usize;
        let mut seqs = Vec::with_capacity(count.min(r.data.len() / 12 + 1));
        for _ in 0..count {
            seqs.push(r.seq("t0 bank truncated")?);
        }
        let bank = Bank::from_seqs(seqs);
        let index = r.index(model, "t0 section truncated")?;
        Some(BundleT0 { bank, index })
    } else {
        None
    };
    if !r.data.is_empty() {
        return Err(SerialError::Corrupt("trailing bytes after bundle"));
    }
    Ok(IndexBundle {
        model_name: model.name(),
        genome_id,
        genome_len,
        frames,
        mask,
        matrix,
        t1,
        t0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatBank;
    use crate::seed::ExactSeed;
    use psc_score::blosum62;

    fn frame(i: usize, len: usize) -> Seq {
        let res: Vec<u8> = (0..len as u32)
            .map(|j| ((i as u32 * 5 + j * 3) % 20) as u8)
            .collect();
        Seq::from_codes(format!("g|frame{i}"), res, SeqKind::Protein)
    }

    /// A deliberately small model (400 keys): the every-offset flip and
    /// truncation sweeps below are quadratic in the artifact size.
    fn sample_model() -> ExactSeed {
        ExactSeed::new(2)
    }

    fn sample_bundle(with_t0: bool, mask: Option<MaskConfig>) -> IndexBundle {
        let frames: Vec<Seq> = (0..6).map(|i| frame(i, 90 + i * 7)).collect();
        let model = sample_model();
        let frames_bank = Bank::from_seqs(frames.clone());
        let t1 = SeedIndex::build(&FlatBank::from_bank(&frames_bank), &model, 1);
        let t0 = with_t0.then(|| {
            let bank: Bank = (0..4).map(|i| frame(i + 10, 70)).collect();
            let index = SeedIndex::build(&FlatBank::from_bank(&bank), &model, 1);
            BundleT0 { bank, index }
        });
        IndexBundle {
            model_name: model.name(),
            genome_id: "g".to_string(),
            genome_len: 2048,
            frames,
            mask,
            matrix: blosum62().clone(),
            t1,
            t0,
        }
    }

    fn assert_bundles_equal(a: &IndexBundle, b: &IndexBundle) {
        assert_eq!(a.model_name, b.model_name);
        assert_eq!(a.genome_id, b.genome_id);
        assert_eq!(a.genome_len, b.genome_len);
        assert_eq!(a.frames, b.frames);
        assert_eq!(a.mask.is_some(), b.mask.is_some());
        if let (Some(x), Some(y)) = (&a.mask, &b.mask) {
            assert_eq!(x.window, y.window);
            assert_eq!(x.trigger.to_bits(), y.trigger.to_bits());
            assert_eq!(x.extend.to_bits(), y.extend.to_bits());
        }
        assert_eq!(a.matrix, b.matrix);
        assert_eq!(a.t1, b.t1);
        assert_eq!(a.t0.is_some(), b.t0.is_some());
        if let (Some(x), Some(y)) = (&a.t0, &b.t0) {
            assert_eq!(x.bank.len(), y.bank.len());
            for ((_, sx), (_, sy)) in x.bank.iter().zip(y.bank.iter()) {
                assert_eq!(sx, sy);
            }
            assert_eq!(x.index, y.index);
        }
    }

    #[test]
    fn round_trip_plain() {
        let model = sample_model();
        let bundle = sample_bundle(false, None);
        let bytes = serialize_bundle(&bundle, &model);
        let back = deserialize_bundle(&bytes, &model).unwrap();
        assert_bundles_equal(&bundle, &back);
    }

    #[test]
    fn round_trip_with_t0_and_mask() {
        let model = sample_model();
        let bundle = sample_bundle(true, Some(MaskConfig::default()));
        let bytes = serialize_bundle(&bundle, &model);
        let back = deserialize_bundle(&bytes, &model).unwrap();
        assert_bundles_equal(&bundle, &back);
        let info = peek_bundle(&bytes).unwrap();
        assert_eq!(
            info,
            BundleInfo {
                model_name: model.name(),
                genome_id: "g".to_string(),
                genome_len: 2048,
                masked: true,
                has_t0: true,
            }
        );
    }

    #[test]
    fn rejects_wrong_model() {
        let model = sample_model();
        let bytes = serialize_bundle(&sample_bundle(false, None), &model);
        let err = deserialize_bundle(&bytes, &ExactSeed::new(4)).unwrap_err();
        assert!(matches!(err, SerialError::ModelMismatch { .. }), "{err}");
    }

    #[test]
    fn rejects_garbage_and_bad_version() {
        let model = sample_model();
        assert_eq!(
            deserialize_bundle(b"junk", &model).unwrap_err(),
            SerialError::BadMagic
        );
        let mut raw = serialize_bundle(&sample_bundle(false, None), &model).to_vec();
        raw[BUNDLE_MAGIC.len()] = 9;
        assert_eq!(
            deserialize_bundle(&raw, &model).unwrap_err(),
            SerialError::BadVersion(9)
        );
    }

    #[test]
    fn rejects_single_byte_flip_at_every_offset() {
        let model = sample_model();
        let bytes = serialize_bundle(&sample_bundle(true, Some(MaskConfig::default())), &model);
        let checksum_at = BUNDLE_MAGIC.len() + 4;
        for at in 0..bytes.len() {
            let mut raw = bytes.to_vec();
            raw[at] ^= 0x20;
            let got = deserialize_bundle(&raw, &model);
            assert!(got.is_err(), "flip at {at} accepted");
            if at >= checksum_at {
                assert!(
                    matches!(got, Err(SerialError::Corrupt(_))),
                    "flip at {at}: {got:?}"
                );
            }
        }
    }

    #[test]
    fn rejects_truncation_at_every_boundary() {
        let model = sample_model();
        let bytes = serialize_bundle(&sample_bundle(true, None), &model);
        for cut in 0..bytes.len() {
            assert!(
                deserialize_bundle(&bytes[..cut], &model).is_err(),
                "cut at {cut} accepted"
            );
        }
    }
}
