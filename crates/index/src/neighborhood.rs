//! BLAST-style neighbourhood word generation.
//!
//! NCBI BLAST seeds on *neighbourhood words*: a database word `w'` hits a
//! query word `w` when `score(w, w') ≥ T` under the substitution matrix.
//! This module enumerates, for each query word, the set of words in its
//! neighbourhood — the `psc-blast` baseline builds its lookup table from
//! them. The paper's own pipeline does not use neighbourhoods (that is
//! the point of the subset-seed index), so this lives here purely for the
//! baseline's benefit.

use psc_score::SubstitutionMatrix;

#[cfg(test)]
use crate::seed::ExactSeed;

/// Enumerate the neighbourhood of `word` (exact `w`-mer keys of all words
/// scoring at least `threshold` against it). Returns keys under
/// [`crate::seed::ExactSeed`] encoding.
///
/// Complexity is `O(20^w)` per word pruned by best-remaining bounds; for
/// the 3-mers BLAST uses this is a few hundred candidates per word.
pub fn neighborhood_keys(
    word: &[u8],
    matrix: &SubstitutionMatrix,
    threshold: i32,
    out: &mut Vec<u32>,
) {
    out.clear();
    let w = word.len();
    debug_assert!((1..=6).contains(&w));
    // best_tail[i] = max attainable score from positions i.. (for pruning).
    let mut best_tail = vec![0i32; w + 1];
    for i in (0..w).rev() {
        let best_here = (0..20u8).map(|c| matrix.score(word[i], c)).max().unwrap();
        best_tail[i] = best_tail[i + 1] + best_here;
    }
    // Depth-first enumeration over the 20^w word space.
    let mut stack_choice = vec![0u8; w];
    let mut depth = 0usize;
    let mut score_so_far = vec![0i32; w + 1];
    let mut key_so_far = vec![0u32; w + 1];
    loop {
        if stack_choice[depth] < 20 {
            let c = stack_choice[depth];
            let s = score_so_far[depth] + matrix.score(word[depth], c);
            // Prune: even the best tail cannot reach the threshold.
            if s + best_tail[depth + 1] >= threshold {
                let k = key_so_far[depth] * 20 + c as u32;
                if depth + 1 == w {
                    if s >= threshold {
                        out.push(k);
                    }
                    stack_choice[depth] += 1;
                } else {
                    score_so_far[depth + 1] = s;
                    key_so_far[depth + 1] = k;
                    depth += 1;
                    stack_choice[depth] = 0;
                }
            } else {
                stack_choice[depth] += 1;
            }
        } else if depth == 0 {
            break;
        } else {
            depth -= 1;
            stack_choice[depth] += 1;
        }
    }
}

/// Convenience: neighbourhood including a self-check that the word itself
/// is present whenever its self-score passes the threshold.
pub fn neighborhood(word: &[u8], matrix: &SubstitutionMatrix, threshold: i32) -> Vec<u32> {
    let mut out = Vec::new();
    neighborhood_keys(word, matrix, threshold, &mut out);
    out
}

/// Self-score of a word (sum of diagonal substitution scores).
pub fn self_score(word: &[u8], matrix: &SubstitutionMatrix) -> i32 {
    word.iter().map(|&c| matrix.score(c, c)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::SeedModel;
    use psc_score::blosum62;
    use psc_seqio::alphabet::encode_protein;

    #[test]
    fn word_in_own_neighbourhood() {
        let m = blosum62();
        let word = encode_protein(b"WKV");
        let t = self_score(&word, m);
        let n = neighborhood(&word, m, t);
        let model = ExactSeed::new(3);
        let own = model.key(&word).unwrap();
        assert!(n.contains(&own));
    }

    #[test]
    fn neighbourhood_shrinks_with_threshold() {
        let m = blosum62();
        let word = encode_protein(b"MKV");
        let n11 = neighborhood(&word, m, 11);
        let n13 = neighborhood(&word, m, 13);
        let n8 = neighborhood(&word, m, 8);
        assert!(n8.len() > n11.len());
        assert!(n11.len() >= n13.len());
        assert!(!n11.is_empty());
    }

    #[test]
    fn neighbourhood_matches_brute_force() {
        let m = blosum62();
        let word = encode_protein(b"HGD");
        let t = 11;
        let mut brute = Vec::new();
        for a in 0..20u8 {
            for b in 0..20u8 {
                for c in 0..20u8 {
                    let s = m.score(word[0], a) + m.score(word[1], b) + m.score(word[2], c);
                    if s >= t {
                        brute.push(a as u32 * 400 + b as u32 * 20 + c as u32);
                    }
                }
            }
        }
        let mut fast = neighborhood(&word, m, t);
        fast.sort_unstable();
        brute.sort_unstable();
        assert_eq!(fast, brute);
    }

    #[test]
    fn impossible_threshold_empty() {
        let m = blosum62();
        let word = encode_protein(b"AAA");
        // Max self-ish score for AAA is 12; 50 is unreachable.
        assert!(neighborhood(&word, m, 50).is_empty());
    }

    #[test]
    fn keys_decode_to_scoring_words() {
        let m = blosum62();
        let word = encode_protein(b"FWY");
        let t = 15;
        for key in neighborhood(&word, m, t) {
            let w = [
                ((key / 400) % 20) as u8,
                ((key / 20) % 20) as u8,
                (key % 20) as u8,
            ];
            let s: i32 = word.iter().zip(&w).map(|(&a, &b)| m.score(a, b)).sum();
            assert!(s >= t);
        }
    }
}
