//! # psc-index — seed models and bank indexing (the paper's step 1)
//!
//! The algorithm's first step "indexes the sequences of the two banks":
//! for a seed model with key space `K`, it builds a `K`-entry table whose
//! entry `k` lists every position (an *index list*, `IL_k`) where a window
//! hashing to `k` occurs. Step 2 then walks matching `IL0_k × IL1_k`
//! pairs.
//!
//! * [`FlatBank`]: a bank flattened to one residue array with global
//!   `u32` positions — the coordinate system index lists use;
//! * [`seed`]: seed models — exact W-mers and the subset seeds of
//!   Peterlongo et al. \[11\] over reduced amino-acid alphabets (the
//!   paper uses one subset seed of span 4);
//! * [`table`]: the CSR-layout index table with a parallel two-pass
//!   builder;
//! * [`neighborhood`]: BLAST-style neighbourhood word generation (used by
//!   the `psc-blast` baseline, not by the paper's pipeline).

pub mod bundle;
pub mod flat;
pub mod neighborhood;
pub mod seed;
pub mod serial;
pub mod table;

pub use bundle::{
    deserialize_bundle, peek_bundle, serialize_bundle, BundleInfo, BundleT0, IndexBundle,
};
pub use flat::FlatBank;
pub use seed::{subset_seed_default, subset_seed_span3, ExactSeed, SeedModel, SubsetSeed};
pub use serial::{deserialize_index, fletcher64, serialize_index, SerialError};
pub use table::SeedIndex;
