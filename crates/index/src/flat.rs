//! Flattened bank representation with global positions.
//!
//! Index lists address residues by a single `u32` global position into the
//! concatenation of all bank sequences. `FlatBank` owns that concatenation
//! plus the geometry to map a global position back to `(sequence, offset)`
//! and to extract the fixed-length extension windows the PSC operator
//! consumes (clamped at sequence boundaries, padded with `X`).

use psc_seqio::alphabet::Aa;
use psc_seqio::Bank;

/// Padding residue for windows that overhang a sequence boundary. `X`
/// scores ≤ 0 against everything under BLOSUM62, so padding can only
/// lower an ungapped score — never create a spurious hit.
pub const PAD: u8 = Aa::X.0;

/// A bank flattened into one residue array.
#[derive(Clone, Debug)]
pub struct FlatBank {
    residues: Vec<u8>,
    /// `starts[i]` = global position of sequence `i`; `starts[len]` = total.
    starts: Vec<u32>,
}

impl FlatBank {
    /// Flatten a bank (sequence order preserved).
    pub fn from_bank(bank: &Bank) -> FlatBank {
        let total = bank.total_residues();
        assert!(
            total <= u32::MAX as usize,
            "flat bank exceeds u32 addressing ({total} residues)"
        );
        let mut residues = Vec::with_capacity(total);
        let mut starts = Vec::with_capacity(bank.len() + 1);
        for (_, seq) in bank.iter() {
            starts.push(residues.len() as u32);
            residues.extend_from_slice(&seq.residues);
        }
        starts.push(residues.len() as u32);
        FlatBank { residues, starts }
    }

    /// Total residues.
    #[inline]
    pub fn len(&self) -> usize {
        self.residues.len()
    }

    /// True when the bank has no residues.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.residues.is_empty()
    }

    /// Number of sequences.
    #[inline]
    pub fn seq_count(&self) -> usize {
        self.starts.len() - 1
    }

    /// The concatenated residues.
    #[inline]
    pub fn residues(&self) -> &[u8] {
        &self.residues
    }

    /// Which sequence contains global position `pos`, and the offset
    /// within it.
    pub fn locate(&self, pos: u32) -> (usize, usize) {
        debug_assert!((pos as usize) < self.len());
        // partition_point returns the first start > pos; its predecessor
        // is the containing sequence.
        let seq = self.starts.partition_point(|&s| s <= pos) - 1;
        (seq, (pos - self.starts[seq]) as usize)
    }

    /// Global bounds `[start, end)` of the sequence containing `pos`.
    #[inline]
    pub fn seq_bounds(&self, pos: u32) -> (u32, u32) {
        let seq = self.starts.partition_point(|&s| s <= pos) - 1;
        (self.starts[seq], self.starts[seq + 1])
    }

    /// Global bounds of sequence `i`.
    #[inline]
    pub fn bounds_of(&self, seq: usize) -> (u32, u32) {
        (self.starts[seq], self.starts[seq + 1])
    }

    /// Extract the fixed-length extension window for a seed starting at
    /// global position `pos`: `n_ctx` residues of left context, the
    /// `span`-residue seed, `n_ctx` of right context. Parts that would
    /// cross the boundary of the containing sequence are padded with
    /// [`PAD`]. The window is written into `out` (length
    /// `span + 2*n_ctx`).
    pub fn window_into(&self, pos: u32, span: usize, n_ctx: usize, out: &mut [u8]) {
        debug_assert_eq!(out.len(), span + 2 * n_ctx);
        let (lo, hi) = self.seq_bounds(pos);
        let want_start = pos as i64 - n_ctx as i64;
        let want_end = pos as i64 + (span + n_ctx) as i64;
        let take_start = want_start.max(lo as i64) as usize;
        let take_end = want_end.min(hi as i64) as usize;
        let left_pad = (take_start as i64 - want_start) as usize;
        out[..left_pad].fill(PAD);
        let copied = take_end - take_start;
        out[left_pad..left_pad + copied].copy_from_slice(&self.residues[take_start..take_end]);
        out[left_pad + copied..].fill(PAD);
    }

    /// Allocating convenience wrapper around [`FlatBank::window_into`].
    pub fn window(&self, pos: u32, span: usize, n_ctx: usize) -> Vec<u8> {
        let mut out = vec![0u8; span + 2 * n_ctx];
        self.window_into(pos, span, n_ctx, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_seqio::Seq;

    fn bank() -> Bank {
        let mut b = Bank::new();
        b.push(Seq::protein("a", b"MKVLAW"));
        b.push(Seq::protein("b", b"GG"));
        b.push(Seq::protein("c", b"RNDCQE"));
        b
    }

    #[test]
    fn geometry() {
        let f = FlatBank::from_bank(&bank());
        assert_eq!(f.len(), 14);
        assert_eq!(f.seq_count(), 3);
        assert_eq!(f.locate(0), (0, 0));
        assert_eq!(f.locate(5), (0, 5));
        assert_eq!(f.locate(6), (1, 0));
        assert_eq!(f.locate(7), (1, 1));
        assert_eq!(f.locate(8), (2, 0));
        assert_eq!(f.locate(13), (2, 5));
        assert_eq!(f.seq_bounds(7), (6, 8));
        assert_eq!(f.bounds_of(2), (8, 14));
    }

    #[test]
    fn window_interior() {
        let f = FlatBank::from_bank(&bank());
        // Seed "VL" at pos 2 with 2 residues of context: K M | V L | A W →
        // window = MKVLAW reordered correctly: positions 0..6.
        let w = f.window(2, 2, 2);
        assert_eq!(w, psc_seqio::alphabet::encode_protein(b"MKVLAW"));
    }

    #[test]
    fn window_pads_left_and_right() {
        let f = FlatBank::from_bank(&bank());
        // Seed "MK" at pos 0 with 2 context: XX | MK | VL.
        let w = f.window(0, 2, 2);
        assert_eq!(w, psc_seqio::alphabet::encode_protein(b"XXMKVL"));
        // Seed "AW" at pos 4: VL | AW | XX.
        let w = f.window(4, 2, 2);
        assert_eq!(w, psc_seqio::alphabet::encode_protein(b"VLAWXX"));
    }

    #[test]
    fn window_does_not_cross_sequences() {
        let f = FlatBank::from_bank(&bank());
        // Seed "GG" at pos 6 (sequence b, length 2): window must not leak
        // "AW" from sequence a or "RN" from c.
        let w = f.window(6, 2, 2);
        assert_eq!(w, psc_seqio::alphabet::encode_protein(b"XXGGXX"));
    }

    #[test]
    fn window_whole_sequence_shorter_than_window() {
        let mut b = Bank::new();
        b.push(Seq::protein("tiny", b"MK"));
        let f = FlatBank::from_bank(&b);
        let w = f.window(0, 4, 3); // span 4 > sequence
        assert_eq!(w, psc_seqio::alphabet::encode_protein(b"XXXMKXXXXX"));
    }

    #[test]
    fn empty_bank() {
        let f = FlatBank::from_bank(&Bank::new());
        assert!(f.is_empty());
        assert_eq!(f.seq_count(), 0);
    }
}
