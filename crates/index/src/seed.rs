//! Seed models: the hash functions that decide which windows share an
//! index entry.
//!
//! The paper indexes with "one seed of 4 amino acids, based on the subset
//! seed approach" of Peterlongo et al. \[11\]: each seed position reads
//! the residue through a *reduced alphabet* (groups of exchangeable amino
//! acids), trading key specificity for sensitivity. An exact W-mer seed
//! (every position its own group) is the degenerate case and serves as
//! the ablation baseline.

use psc_seqio::alphabet::AA_STANDARD_LEN;

/// A seed model: fixed span, finite key space, and a keying function.
pub trait SeedModel: Send + Sync {
    /// Number of residues a seed covers (the paper's `W`).
    fn span(&self) -> usize;

    /// Size of the key space (number of index-table entries).
    fn key_count(&self) -> usize;

    /// Key of a window of `span()` residues, or `None` when the window
    /// contains a residue the model cannot map (non-standard residues —
    /// `X`, stops, B/Z — never seed, mirroring BLAST's masking).
    fn key(&self, window: &[u8]) -> Option<u32>;

    /// Human-readable model name for reports.
    fn name(&self) -> String;
}

/// Exact W-mer seed: two windows share a key iff they are identical.
#[derive(Clone, Debug)]
pub struct ExactSeed {
    w: usize,
}

impl ExactSeed {
    /// Exact seed of span `w`. Key space is `20^w`; `w ≤ 6` keeps it
    /// addressable.
    pub fn new(w: usize) -> ExactSeed {
        assert!((1..=6).contains(&w), "exact seed span must be 1..=6");
        ExactSeed { w }
    }
}

impl SeedModel for ExactSeed {
    fn span(&self) -> usize {
        self.w
    }

    fn key_count(&self) -> usize {
        AA_STANDARD_LEN.pow(self.w as u32)
    }

    #[inline]
    fn key(&self, window: &[u8]) -> Option<u32> {
        debug_assert_eq!(window.len(), self.w);
        let mut key = 0u32;
        for &c in window {
            if c as usize >= AA_STANDARD_LEN {
                return None;
            }
            key = key * AA_STANDARD_LEN as u32 + c as u32;
        }
        Some(key)
    }

    fn name(&self) -> String {
        format!("exact-{}", self.w)
    }
}

/// One position's residue→group mapping.
#[derive(Clone, Debug)]
pub struct PositionClasses {
    /// `map[residue] = group id` for the 20 standard residues.
    map: [u8; AA_STANDARD_LEN],
    /// Number of groups (the radix this position contributes).
    groups: u8,
    /// Label for diagnostics.
    label: &'static str,
}

impl PositionClasses {
    /// Build from a `'|'`-separated grouping over ASCII residue letters,
    /// e.g. `"LVIM|C|A|G|ST|P|FYW|EDNQ|KR|H"`. Every standard residue
    /// must appear exactly once.
    pub fn from_groups(label: &'static str, spec: &str) -> PositionClasses {
        let mut map = [u8::MAX; AA_STANDARD_LEN];
        let mut groups = 0u8;
        for group in spec.split('|') {
            for ch in group.bytes() {
                let aa = psc_seqio::Aa::from_ascii(ch)
                    .unwrap_or_else(|| panic!("bad residue {:?} in group spec", ch as char));
                assert!(aa.is_standard(), "group spec must use standard residues");
                assert_eq!(
                    map[aa.0 as usize],
                    u8::MAX,
                    "residue {} appears twice",
                    ch as char
                );
                map[aa.0 as usize] = groups;
            }
            groups += 1;
        }
        assert!(
            map.iter().all(|&g| g != u8::MAX),
            "group spec must cover all 20 residues"
        );
        PositionClasses { map, groups, label }
    }

    /// The identity mapping (every residue its own group).
    pub fn exact() -> PositionClasses {
        let mut map = [0u8; AA_STANDARD_LEN];
        for (i, m) in map.iter_mut().enumerate() {
            *m = i as u8;
        }
        PositionClasses {
            map,
            groups: AA_STANDARD_LEN as u8,
            label: "exact",
        }
    }
}

/// Murphy-style 10-group reduced alphabet.
pub fn murphy10() -> PositionClasses {
    PositionClasses::from_groups("murphy10", "LVIM|C|A|G|ST|P|FYW|EDNQ|KR|H")
}

/// Murphy-style 15-group reduced alphabet.
pub fn murphy15() -> PositionClasses {
    PositionClasses::from_groups("murphy15", "LVIM|C|A|G|S|T|P|FY|W|E|D|N|Q|KR|H")
}

/// A subset seed: a sequence of per-position reduced alphabets.
#[derive(Clone, Debug)]
pub struct SubsetSeed {
    positions: Vec<PositionClasses>,
    key_count: usize,
}

impl SubsetSeed {
    pub fn new(positions: Vec<PositionClasses>) -> SubsetSeed {
        assert!(!positions.is_empty());
        let key_count = positions
            .iter()
            .try_fold(1usize, |acc, p| acc.checked_mul(p.groups as usize))
            .expect("key space overflow");
        assert!(key_count <= 1 << 28, "key space too large to tabulate");
        SubsetSeed {
            positions,
            key_count,
        }
    }
}

impl SeedModel for SubsetSeed {
    fn span(&self) -> usize {
        self.positions.len()
    }

    fn key_count(&self) -> usize {
        self.key_count
    }

    #[inline]
    fn key(&self, window: &[u8]) -> Option<u32> {
        debug_assert_eq!(window.len(), self.positions.len());
        let mut key = 0u32;
        for (pos, &c) in self.positions.iter().zip(window) {
            if c as usize >= AA_STANDARD_LEN {
                return None;
            }
            key = key * pos.groups as u32 + pos.map[c as usize] as u32;
        }
        Some(key)
    }

    fn name(&self) -> String {
        let labels: Vec<&str> = self.positions.iter().map(|p| p.label).collect();
        format!("subset[{}]", labels.join(","))
    }
}

/// The default subset seed of the reproduction: span 4, outer positions
/// read through the 15-group alphabet and inner positions through the
/// 10-group alphabet (≈22 500 keys — between BLAST's 8 000 3-mer keys and
/// the 160 000 exact-4-mer keys, matching the fan-out regime the paper's
/// index operates in).
pub fn subset_seed_default() -> SubsetSeed {
    SubsetSeed::new(vec![murphy15(), murphy10(), murphy10(), murphy15()])
}

/// A coarser span-3 subset seed (≈2 250 keys). With ~1/10-scale banks it
/// reproduces the index-list-length regime of the paper's experiments
/// (hundreds of IL0 windows per key at the 30× bank), which is what
/// makes PE-array size matter; the default span-4 seed at reduced scale
/// leaves the array permanently underfilled.
pub fn subset_seed_span3() -> SubsetSeed {
    SubsetSeed::new(vec![murphy15(), murphy10(), murphy15()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_seqio::alphabet::encode_protein;

    #[test]
    fn exact_seed_keys_distinct_windows() {
        let s = ExactSeed::new(3);
        assert_eq!(s.key_count(), 8000);
        assert_eq!(s.span(), 3);
        let a = s.key(&encode_protein(b"MKV")).unwrap();
        let b = s.key(&encode_protein(b"MKW")).unwrap();
        assert_ne!(a, b);
        assert_eq!(s.key(&encode_protein(b"MKV")), Some(a));
        assert!(a < 8000);
    }

    #[test]
    fn exact_seed_rejects_nonstandard() {
        let s = ExactSeed::new(3);
        assert_eq!(s.key(&encode_protein(b"MKX")), None);
        assert_eq!(s.key(&encode_protein(b"M*V")), None);
        assert_eq!(s.key(&encode_protein(b"MBV")), None);
    }

    #[test]
    #[should_panic]
    fn exact_seed_span_bounds() {
        ExactSeed::new(7);
    }

    #[test]
    fn exact_seed_keys_are_bijective_for_w2() {
        let s = ExactSeed::new(2);
        let mut seen = std::collections::HashSet::new();
        for a in 0..20u8 {
            for b in 0..20u8 {
                let k = s.key(&[a, b]).unwrap();
                assert!(seen.insert(k), "collision at ({a},{b})");
            }
        }
        assert_eq!(seen.len(), 400);
    }

    #[test]
    fn murphy_alphabets_cover_everything() {
        let m10 = murphy10();
        assert_eq!(m10.groups, 10);
        let m15 = murphy15();
        assert_eq!(m15.groups, 15);
        let exact = PositionClasses::exact();
        assert_eq!(exact.groups, 20);
    }

    #[test]
    fn subset_seed_groups_similar_residues() {
        let s = subset_seed_default();
        assert_eq!(s.span(), 4);
        assert_eq!(s.key_count(), 15 * 10 * 10 * 15);
        // I and L are in one group at every position: ILIL and LILI share
        // a key.
        let a = s.key(&encode_protein(b"ILIL")).unwrap();
        let b = s.key(&encode_protein(b"LILI")).unwrap();
        assert_eq!(a, b);
        // K and R likewise.
        let a = s.key(&encode_protein(b"KAKA")).unwrap();
        let b = s.key(&encode_protein(b"RARA")).unwrap();
        assert_eq!(a, b);
        // E and D are distinct in murphy15 (outer positions).
        let a = s.key(&encode_protein(b"EAAA")).unwrap();
        let b = s.key(&encode_protein(b"DAAA")).unwrap();
        assert_ne!(a, b);
        // …but merged in murphy10 (inner positions).
        let a = s.key(&encode_protein(b"AEAA")).unwrap();
        let b = s.key(&encode_protein(b"ADAA")).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn subset_seed_key_in_range() {
        let s = subset_seed_default();
        let mut rng = 0x12345u64;
        for _ in 0..1000 {
            let mut w = [0u8; 4];
            for slot in w.iter_mut() {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                *slot = ((rng >> 33) % 20) as u8;
            }
            let k = s.key(&w).unwrap();
            assert!((k as usize) < s.key_count());
        }
    }

    #[test]
    #[should_panic]
    fn bad_group_spec_duplicate() {
        PositionClasses::from_groups("bad", "LL|VIM|C|A|G|ST|P|FYW|EDNQ|KR|H");
    }

    #[test]
    #[should_panic]
    fn bad_group_spec_missing() {
        PositionClasses::from_groups("bad", "LVIM|C|A|G");
    }

    #[test]
    fn names_are_informative() {
        assert_eq!(ExactSeed::new(4).name(), "exact-4");
        assert!(subset_seed_default().name().contains("murphy10"));
    }
}
