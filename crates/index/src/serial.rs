//! Binary serialization of seed indexes.
//!
//! The paper's workflow re-uses the genome index across protein banks
//! ("the time for indexing the banks… remains high compared to the
//! execution time of steps 2 and 3"), so being able to build the genome
//! index once and reload it is a real workflow win. The format is a
//! little-endian sectioned layout with a magic, a format version, and a
//! seed-model fingerprint so an index cannot silently be used with the
//! wrong model.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::seed::SeedModel;
use crate::table::SeedIndex;

const MAGIC: &[u8; 8] = b"PSCIDX\x00\x01";

/// Serialization errors.
#[derive(Debug, PartialEq, Eq)]
pub enum SerialError {
    /// Not a PSC index file (bad magic or truncated header).
    BadMagic,
    /// Produced by an incompatible format version.
    BadVersion(u16),
    /// Built under a different seed model than the one supplied.
    ModelMismatch { stored: String, supplied: String },
    /// Structurally invalid payload (truncation, inconsistent counts).
    Corrupt(&'static str),
}

impl std::fmt::Display for SerialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerialError::BadMagic => write!(f, "not a PSC index file"),
            SerialError::BadVersion(v) => write!(f, "unsupported index format version {v}"),
            SerialError::ModelMismatch { stored, supplied } => write!(
                f,
                "index was built with seed model {stored:?}, not {supplied:?}"
            ),
            SerialError::Corrupt(what) => write!(f, "corrupt index: {what}"),
        }
    }
}

impl std::error::Error for SerialError {}

const VERSION: u16 = 1;

/// Serialize an index together with its seed-model fingerprint.
pub fn serialize_index(index: &SeedIndex, model: &dyn SeedModel) -> Bytes {
    let offsets = index.offsets();
    let positions = index.positions();
    let name = model.name();
    let mut buf = BytesMut::with_capacity(
        MAGIC.len() + 2 + 2 + name.len() + 16 + offsets.len() * 4 + positions.len() * 4,
    );
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(name.len() as u16);
    buf.put_slice(name.as_bytes());
    buf.put_u64_le(index.key_count() as u64);
    buf.put_u64_le(positions.len() as u64);
    for &o in offsets {
        buf.put_u32_le(o);
    }
    for &p in positions {
        buf.put_u32_le(p);
    }
    buf.freeze()
}

/// Deserialize an index, verifying it was built under `model`.
pub fn deserialize_index(mut data: &[u8], model: &dyn SeedModel) -> Result<SeedIndex, SerialError> {
    if data.len() < MAGIC.len() + 4 || &data[..MAGIC.len()] != MAGIC {
        return Err(SerialError::BadMagic);
    }
    data.advance(MAGIC.len());
    let version = data.get_u16_le();
    if version != VERSION {
        return Err(SerialError::BadVersion(version));
    }
    let name_len = data.get_u16_le() as usize;
    if data.remaining() < name_len {
        return Err(SerialError::Corrupt("model name truncated"));
    }
    let stored = String::from_utf8_lossy(&data[..name_len]).into_owned();
    data.advance(name_len);
    let supplied = model.name();
    if stored != supplied {
        return Err(SerialError::ModelMismatch { stored, supplied });
    }
    if data.remaining() < 16 {
        return Err(SerialError::Corrupt("header truncated"));
    }
    let key_count = data.get_u64_le() as usize;
    let n_positions = data.get_u64_le() as usize;
    if key_count != model.key_count() {
        return Err(SerialError::Corrupt("key count does not match model"));
    }
    let need = (key_count + 1)
        .checked_add(n_positions)
        .and_then(|words| words.checked_mul(4))
        .ok_or(SerialError::Corrupt("size overflow"))?;
    if data.remaining() != need {
        return Err(SerialError::Corrupt("payload size mismatch"));
    }
    let mut offsets = Vec::with_capacity(key_count + 1);
    for _ in 0..=key_count {
        offsets.push(data.get_u32_le());
    }
    let mut positions = Vec::with_capacity(n_positions);
    for _ in 0..n_positions {
        positions.push(data.get_u32_le());
    }
    // Structural validation: offsets must be a monotone prefix-sum table
    // ending exactly at the positions length.
    if offsets[0] != 0 {
        return Err(SerialError::Corrupt("offsets do not start at zero"));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(SerialError::Corrupt("offsets not monotone"));
    }
    if offsets[key_count] as usize != n_positions {
        return Err(SerialError::Corrupt("offsets do not cover positions"));
    }
    Ok(SeedIndex::from_parts(key_count, offsets, positions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatBank;
    use crate::seed::{subset_seed_default, ExactSeed};
    use psc_seqio::{Bank, Seq};

    fn sample_index() -> (SeedIndex, crate::seed::SubsetSeed) {
        let bank: Bank = (0..10)
            .map(|i| {
                let res: Vec<u8> = (0..80u32).map(|j| ((i * 7 + j * 3) % 20) as u8).collect();
                Seq::from_codes(format!("s{i}"), res, psc_seqio::SeqKind::Protein)
            })
            .collect();
        let flat = FlatBank::from_bank(&bank);
        let model = subset_seed_default();
        (SeedIndex::build(&flat, &model, 1), model)
    }

    #[test]
    fn round_trip() {
        let (idx, model) = sample_index();
        let bytes = serialize_index(&idx, &model);
        let back = deserialize_index(&bytes, &model).unwrap();
        assert_eq!(back.key_count(), idx.key_count());
        assert_eq!(back.total_positions(), idx.total_positions());
        for k in idx.nonempty_keys() {
            assert_eq!(back.list(k), idx.list(k));
        }
    }

    #[test]
    fn rejects_garbage() {
        let model = subset_seed_default();
        assert_eq!(
            deserialize_index(b"not an index", &model).unwrap_err(),
            SerialError::BadMagic
        );
        assert_eq!(
            deserialize_index(b"", &model).unwrap_err(),
            SerialError::BadMagic
        );
    }

    #[test]
    fn rejects_wrong_model() {
        let (idx, model) = sample_index();
        let bytes = serialize_index(&idx, &model);
        let err = deserialize_index(&bytes, &ExactSeed::new(4)).unwrap_err();
        assert!(matches!(err, SerialError::ModelMismatch { .. }));
        assert!(err.to_string().contains("seed model"));
    }

    #[test]
    fn rejects_truncation() {
        let (idx, model) = sample_index();
        let bytes = serialize_index(&idx, &model);
        for cut in [bytes.len() - 1, bytes.len() / 2, MAGIC.len() + 3] {
            let err = deserialize_index(&bytes[..cut], &model);
            assert!(err.is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn rejects_tampered_offsets() {
        let (idx, model) = sample_index();
        let bytes = serialize_index(&idx, &model);
        let mut raw = bytes.to_vec();
        // Flip a byte inside the offsets table (after the header).
        let header = MAGIC.len() + 2 + 2 + model.name().len() + 16;
        raw[header + 5] ^= 0xFF;
        let err = deserialize_index(&raw, &model).unwrap_err();
        assert!(matches!(err, SerialError::Corrupt(_)), "{err}");
    }

    #[test]
    fn rejects_bad_version() {
        let (idx, model) = sample_index();
        let bytes = serialize_index(&idx, &model);
        let mut raw = bytes.to_vec();
        raw[MAGIC.len()] = 99;
        assert_eq!(
            deserialize_index(&raw, &model).unwrap_err(),
            SerialError::BadVersion(99)
        );
    }
}
