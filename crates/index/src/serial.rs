//! Binary serialization of seed indexes.
//!
//! The paper's workflow re-uses the genome index across protein banks
//! ("the time for indexing the banks… remains high compared to the
//! execution time of steps 2 and 3"), so being able to build the genome
//! index once and reload it is a real workflow win. The format is a
//! little-endian sectioned layout with a magic, a format version, and a
//! seed-model fingerprint so an index cannot silently be used with the
//! wrong model.
//!
//! # Format versions
//!
//! * **v1** (legacy, read-only): magic, version, model name, counts,
//!   offsets, positions — structural validation only. A bit flip inside
//!   the `positions` payload passes the monotone-offset checks and
//!   silently changes step-2 results, which is why v1 is no longer
//!   written.
//! * **v2** (current): the v1 layout plus a [`fletcher64`] checksum
//!   between the model name and the counts, covering everything after
//!   it (counts, offsets, positions). The checksum is verified *before*
//!   the structural checks, so any payload corruption — including the
//!   bit-flipped-positions case — surfaces as
//!   [`SerialError::Corrupt`], never as a wrong answer.
//!
//! The checksum follows the same Fletcher discipline as the simulated
//! board's result-integrity machinery (`psc_rasc::fault`): two 16-bit
//! accumulators seeded `0xF1EA`/`0x5EED`, folded modulo the prime
//! `0xFFFF_FFFB`, combined `(b << 32) | a`. Index files and board result
//! blocks are guarded by the same arithmetic, so a single discipline is
//! audited in both places.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::seed::SeedModel;
use crate::table::SeedIndex;

pub(crate) const MAGIC: &[u8; 8] = b"PSCIDX\x00\x01";

/// Serialization errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SerialError {
    /// Not a PSC index file (bad magic or truncated header).
    BadMagic,
    /// Produced by an incompatible format version.
    BadVersion(u16),
    /// Built under a different seed model than the one supplied.
    ModelMismatch { stored: String, supplied: String },
    /// Structurally invalid payload (truncation, inconsistent counts,
    /// checksum mismatch).
    Corrupt(&'static str),
}

impl std::fmt::Display for SerialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerialError::BadMagic => write!(f, "not a PSC index file"),
            SerialError::BadVersion(v) => write!(f, "unsupported index format version {v}"),
            SerialError::ModelMismatch { stored, supplied } => write!(
                f,
                "index was built with seed model {stored:?}, not {supplied:?}"
            ),
            SerialError::Corrupt(what) => write!(f, "corrupt index: {what}"),
        }
    }
}

impl std::error::Error for SerialError {}

/// Legacy checksum-free layout, still parsed.
const VERSION_V1: u16 = 1;
/// Current layout: v1 plus a Fletcher payload checksum.
const VERSION_V2: u16 = 2;

/// Fletcher checksum over a sequence of byte slices, byte-for-byte the
/// arithmetic of `psc_rasc::fault::stream_checksum`: two accumulators
/// seeded `0xF1EA`/`0x5EED`, each input byte added (+1, so trailing
/// zeros still move the sum) and folded modulo the prime `0xFFFF_FFFB`,
/// combined `(b << 32) | a`. Streaming over parts equals checksumming
/// the concatenation. (psc-rasc depends on this crate, so the board
/// code cannot be imported here; an equivalence test on the rasc side
/// pins the two copies together.)
pub fn fletcher64(parts: &[&[u8]]) -> u64 {
    const MOD: u64 = 0xFFFF_FFFB;
    let (mut a, mut b) = (0xF1EAu64, 0x5EEDu64);
    for part in parts {
        for &byte in *part {
            a = (a + byte as u64 + 1) % MOD;
            b = (b + a) % MOD;
        }
    }
    (b << 32) | a
}

/// Serialize an index together with its seed-model fingerprint, in the
/// current (v2, checksummed) format.
pub fn serialize_index(index: &SeedIndex, model: &dyn SeedModel) -> Bytes {
    let offsets = index.offsets();
    let positions = index.positions();
    let name = model.name();
    let mut payload = BytesMut::with_capacity(16 + (offsets.len() + positions.len()) * 4);
    payload.put_u64_le(index.key_count() as u64);
    payload.put_u64_le(positions.len() as u64);
    for &o in offsets {
        payload.put_u32_le(o);
    }
    for &p in positions {
        payload.put_u32_le(p);
    }
    let checksum = fletcher64(&[&payload]);
    let mut buf = BytesMut::with_capacity(MAGIC.len() + 4 + name.len() + 8 + payload.len());
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION_V2);
    buf.put_u16_le(name.len() as u16);
    buf.put_slice(name.as_bytes());
    buf.put_u64_le(checksum);
    buf.put_slice(&payload);
    buf.freeze()
}

/// Deserialize an index (v1 or v2), verifying it was built under
/// `model`. For v2 data the payload checksum is verified before any
/// structural parsing.
pub fn deserialize_index(mut data: &[u8], model: &dyn SeedModel) -> Result<SeedIndex, SerialError> {
    if data.len() < MAGIC.len() + 4 || &data[..MAGIC.len()] != MAGIC {
        return Err(SerialError::BadMagic);
    }
    data.advance(MAGIC.len());
    let version = data.get_u16_le();
    if version != VERSION_V1 && version != VERSION_V2 {
        return Err(SerialError::BadVersion(version));
    }
    let name_len = data.get_u16_le() as usize;
    if data.remaining() < name_len {
        return Err(SerialError::Corrupt("model name truncated"));
    }
    let stored = String::from_utf8_lossy(&data[..name_len]).into_owned();
    data.advance(name_len);
    let supplied = model.name();
    if stored != supplied {
        return Err(SerialError::ModelMismatch { stored, supplied });
    }
    if version == VERSION_V2 {
        if data.remaining() < 8 {
            return Err(SerialError::Corrupt("checksum truncated"));
        }
        let stored_sum = data.get_u64_le();
        if fletcher64(&[data]) != stored_sum {
            return Err(SerialError::Corrupt("payload checksum mismatch"));
        }
    }
    deserialize_index_body(data, model)
}

/// The counts + offsets + positions body shared by both versions (and
/// embedded, pre-checksummed, inside bundle sections).
pub(crate) fn deserialize_index_body(
    mut data: &[u8],
    model: &dyn SeedModel,
) -> Result<SeedIndex, SerialError> {
    if data.remaining() < 16 {
        return Err(SerialError::Corrupt("header truncated"));
    }
    let key_count = data.get_u64_le() as usize;
    let n_positions = data.get_u64_le() as usize;
    if key_count != model.key_count() {
        return Err(SerialError::Corrupt("key count does not match model"));
    }
    let need = (key_count + 1)
        .checked_add(n_positions)
        .and_then(|words| words.checked_mul(4))
        .ok_or(SerialError::Corrupt("size overflow"))?;
    if data.remaining() != need {
        return Err(SerialError::Corrupt("payload size mismatch"));
    }
    let mut offsets = Vec::with_capacity(key_count + 1);
    for _ in 0..=key_count {
        offsets.push(data.get_u32_le());
    }
    let mut positions = Vec::with_capacity(n_positions);
    for _ in 0..n_positions {
        positions.push(data.get_u32_le());
    }
    // Structural validation: offsets must be a monotone prefix-sum table
    // ending exactly at the positions length.
    if offsets[0] != 0 {
        return Err(SerialError::Corrupt("offsets do not start at zero"));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(SerialError::Corrupt("offsets not monotone"));
    }
    if offsets[key_count] as usize != n_positions {
        return Err(SerialError::Corrupt("offsets do not cover positions"));
    }
    Ok(SeedIndex::from_parts(key_count, offsets, positions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatBank;
    use crate::seed::{subset_seed_default, ExactSeed};
    use psc_seqio::{Bank, Seq};

    /// A deliberately small model (400 keys): the every-offset flip and
    /// truncation sweeps below are quadratic in the artifact size.
    fn sample_index() -> (SeedIndex, ExactSeed) {
        let bank: Bank = (0..10)
            .map(|i| {
                let res: Vec<u8> = (0..80u32).map(|j| ((i * 7 + j * 3) % 20) as u8).collect();
                Seq::from_codes(format!("s{i}"), res, psc_seqio::SeqKind::Protein)
            })
            .collect();
        let flat = FlatBank::from_bank(&bank);
        let model = ExactSeed::new(2);
        (SeedIndex::build(&flat, &model, 1), model)
    }

    /// Hand-roll the legacy v1 layout for the compatibility tests.
    fn serialize_v1(index: &SeedIndex, model: &dyn SeedModel) -> Vec<u8> {
        let name = model.name();
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION_V1.to_le_bytes());
        buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
        buf.extend_from_slice(name.as_bytes());
        buf.extend_from_slice(&(index.key_count() as u64).to_le_bytes());
        buf.extend_from_slice(&(index.positions().len() as u64).to_le_bytes());
        for &o in index.offsets() {
            buf.extend_from_slice(&o.to_le_bytes());
        }
        for &p in index.positions() {
            buf.extend_from_slice(&p.to_le_bytes());
        }
        buf
    }

    #[test]
    fn round_trip() {
        let (idx, model) = sample_index();
        let bytes = serialize_index(&idx, &model);
        let back = deserialize_index(&bytes, &model).unwrap();
        assert_eq!(back.key_count(), idx.key_count());
        assert_eq!(back.total_positions(), idx.total_positions());
        for k in idx.nonempty_keys() {
            assert_eq!(back.list(k), idx.list(k));
        }
    }

    #[test]
    fn round_trip_subset_model() {
        // Full-size paper model (22500 keys) — one linear round trip.
        let bank: Bank = (0..10)
            .map(|i| {
                let res: Vec<u8> = (0..80u32).map(|j| ((i * 7 + j * 3) % 20) as u8).collect();
                Seq::from_codes(format!("s{i}"), res, psc_seqio::SeqKind::Protein)
            })
            .collect();
        let model = subset_seed_default();
        let idx = SeedIndex::build(&FlatBank::from_bank(&bank), &model, 1);
        let bytes = serialize_index(&idx, &model);
        let back = deserialize_index(&bytes, &model).unwrap();
        assert_eq!(back.total_positions(), idx.total_positions());
        for k in idx.nonempty_keys() {
            assert_eq!(back.list(k), idx.list(k));
        }
    }

    #[test]
    fn v1_still_parses() {
        let (idx, model) = sample_index();
        let bytes = serialize_v1(&idx, &model);
        let back = deserialize_index(&bytes, &model).unwrap();
        assert_eq!(back.total_positions(), idx.total_positions());
        for k in idx.nonempty_keys() {
            assert_eq!(back.list(k), idx.list(k));
        }
    }

    #[test]
    fn fletcher_matches_rasc_discipline() {
        // Same constants and fold as psc_rasc::fault::stream_checksum;
        // pin the arithmetic with fixed vectors so a drive-by
        // "simplification" of either copy shows up here (the rasc side
        // has the cross-crate equivalence test).
        assert_eq!(fletcher64(&[]), (0x5EEDu64 << 32) | 0xF1EA);
        let one = fletcher64(&[&[0x07]]);
        assert_eq!(one & 0xFFFF_FFFF, 0xF1EA + 7 + 1);
        assert_eq!(one >> 32, 0x5EED + 0xF1EA + 8);
        // Streaming over parts equals the concatenation, and trailing
        // zero bytes are not absorbed.
        assert_eq!(
            fletcher64(&[&[1, 2, 3, 4]]),
            fletcher64(&[&[1, 2], &[3, 4]])
        );
        assert_ne!(fletcher64(&[&[1, 2]]), fletcher64(&[&[1, 2, 0]]));
    }

    #[test]
    fn rejects_garbage() {
        let model = subset_seed_default();
        assert_eq!(
            deserialize_index(b"not an index", &model).unwrap_err(),
            SerialError::BadMagic
        );
        assert_eq!(
            deserialize_index(b"", &model).unwrap_err(),
            SerialError::BadMagic
        );
    }

    #[test]
    fn rejects_wrong_model() {
        let (idx, model) = sample_index();
        let bytes = serialize_index(&idx, &model);
        let err = deserialize_index(&bytes, &ExactSeed::new(4)).unwrap_err();
        assert!(matches!(err, SerialError::ModelMismatch { .. }));
        assert!(err.to_string().contains("seed model"));
    }

    #[test]
    fn rejects_truncation_at_every_boundary() {
        let (idx, model) = sample_index();
        let bytes = serialize_index(&idx, &model);
        for cut in 0..bytes.len() {
            let err = deserialize_index(&bytes[..cut], &model);
            assert!(err.is_err(), "cut at {cut} accepted");
        }
    }

    /// The v1 hole the v2 checksum closes: a bit flip at *any* offset —
    /// most importantly inside the `positions` words, which pass every
    /// structural check — must surface as an error, never as a
    /// different index and never as a panic.
    #[test]
    fn rejects_single_byte_flip_at_every_offset() {
        let (idx, model) = sample_index();
        let bytes = serialize_index(&idx, &model).to_vec();
        let payload_start = MAGIC.len() + 4 + model.name().len() + 8;
        for at in 0..bytes.len() {
            let mut raw = bytes.clone();
            raw[at] ^= 0x40;
            let got = deserialize_index(&raw, &model);
            assert!(got.is_err(), "flip at {at} accepted");
            // Flips past the header are exactly the silent-corruption
            // surface: they must be reported as Corrupt (the checksum),
            // not misclassified.
            if at >= payload_start {
                assert!(
                    matches!(got, Err(SerialError::Corrupt(_))),
                    "flip at {at}: {got:?}"
                );
            }
        }
    }

    #[test]
    fn v1_accepts_flipped_positions_motivating_v2() {
        // Documented v1 weakness (the reason v2 exists): a flipped
        // positions word parses as a *different* index.
        let (idx, model) = sample_index();
        let mut raw = serialize_v1(&idx, &model);
        let n = raw.len();
        raw[n - 2] ^= 0x01;
        let back = deserialize_index(&raw, &model).expect("v1 cannot detect payload flips");
        assert_ne!(
            back.positions(),
            idx.positions(),
            "flip must have changed a position"
        );
    }

    #[test]
    fn rejects_tampered_offsets() {
        let (idx, model) = sample_index();
        let bytes = serialize_index(&idx, &model);
        let mut raw = bytes.to_vec();
        // Flip a byte inside the offsets table (after the header).
        let header = MAGIC.len() + 2 + 2 + model.name().len() + 8 + 16;
        raw[header + 5] ^= 0xFF;
        let err = deserialize_index(&raw, &model).unwrap_err();
        assert!(matches!(err, SerialError::Corrupt(_)), "{err}");
    }

    #[test]
    fn rejects_bad_version() {
        let (idx, model) = sample_index();
        let bytes = serialize_index(&idx, &model);
        let mut raw = bytes.to_vec();
        raw[MAGIC.len()] = 99;
        assert_eq!(
            deserialize_index(&raw, &model).unwrap_err(),
            SerialError::BadVersion(99)
        );
    }
}
