//! The index table (paper step 1): seed key → index list of positions.
//!
//! Layout is CSR: one flat `positions` array grouped by key, sliced by a
//! `key_count + 1` offset table. Construction is the classic two-pass
//! counting sort — count keys, prefix-sum, scatter — parallelised over
//! contiguous ranges of sequences with per-thread histograms, so each
//! `(thread, key)` pair owns a disjoint output range and pass 2 writes
//! without synchronisation.

use crossbeam::thread;

use crate::flat::FlatBank;
use crate::seed::SeedModel;

/// Summary statistics of an index (used by reports and by the operator's
/// batch scheduler).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IndexStats {
    pub nonempty_keys: usize,
    pub total_positions: usize,
    pub max_list_len: usize,
    pub mean_list_len: f64,
}

/// A seed index over one flattened bank.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeedIndex {
    key_count: usize,
    offsets: Vec<u32>,
    positions: Vec<u32>,
}

impl SeedIndex {
    /// Build the index of `flat` under `model` using `threads` worker
    /// threads (1 = sequential).
    pub fn build(flat: &FlatBank, model: &dyn SeedModel, threads: usize) -> SeedIndex {
        let threads = threads.max(1);
        let key_count = model.key_count();

        // Partition sequences into contiguous chunks of roughly equal
        // residue mass.
        let chunks = sequence_chunks(flat, threads);
        let nchunks = chunks.len();

        // Pass 1: per-chunk histograms.
        let mut histograms: Vec<Vec<u32>> = Vec::with_capacity(nchunks);
        if nchunks == 1 {
            histograms.push(count_chunk(flat, model, chunks[0]));
        } else {
            thread::scope(|s| {
                let handles: Vec<_> = chunks
                    .iter()
                    .map(|&range| s.spawn(move |_| count_chunk(flat, model, range)))
                    .collect();
                for h in handles {
                    histograms.push(h.join().expect("index counter panicked"));
                }
            })
            .expect("index build scope");
        }

        // Global offsets: prefix sum over keys of summed chunk counts, and
        // per-(chunk, key) write cursors.
        let mut offsets = vec![0u32; key_count + 1];
        for hist in &histograms {
            for (k, &c) in hist.iter().enumerate() {
                offsets[k + 1] += c;
            }
        }
        for k in 0..key_count {
            offsets[k + 1] += offsets[k];
        }
        let total = offsets[key_count] as usize;

        // cursors[chunk][key] = where that chunk starts writing key's
        // positions. Chunks are in ascending sequence order, so each
        // key's list comes out sorted by global position.
        let mut cursors: Vec<Vec<u32>> = Vec::with_capacity(nchunks);
        {
            let mut running = offsets[..key_count].to_vec();
            for hist in &histograms {
                cursors.push(running.clone());
                for (k, &c) in hist.iter().enumerate() {
                    running[k] += c;
                }
            }
        }

        // Pass 2: scatter. Each (chunk, key) range is disjoint by
        // construction, so chunks write concurrently through a shared
        // pointer.
        let mut positions = vec![0u32; total];
        if nchunks == 1 {
            scatter_chunk(flat, model, chunks[0], &mut cursors[0], &mut positions);
        } else {
            let writer = DisjointWriter(positions.as_mut_ptr());
            thread::scope(|s| {
                for (&range, cursor) in chunks.iter().zip(cursors.iter_mut()) {
                    s.spawn(move |_| {
                        // Capture the wrapper, not its raw-pointer field
                        // (edition-2021 closures capture fields).
                        let writer: DisjointWriter = writer;
                        // SAFETY: every write lands inside this chunk's
                        // cursor ranges, disjoint from all other chunks'.
                        let out = unsafe { std::slice::from_raw_parts_mut(writer.0, total) };
                        scatter_chunk(flat, model, range, cursor, out);
                    });
                }
            })
            .expect("index scatter scope");
        }

        SeedIndex {
            key_count,
            offsets,
            positions,
        }
    }

    /// Number of possible keys.
    #[inline]
    pub fn key_count(&self) -> usize {
        self.key_count
    }

    /// The index list `IL_k`: global positions whose window keys to `k`,
    /// in ascending order.
    #[inline]
    pub fn list(&self, key: u32) -> &[u32] {
        let k = key as usize;
        &self.positions[self.offsets[k] as usize..self.offsets[k + 1] as usize]
    }

    /// Total indexed positions.
    #[inline]
    pub fn total_positions(&self) -> usize {
        self.positions.len()
    }

    /// Keys with at least one occurrence.
    pub fn nonempty_keys(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.key_count as u32).filter(|&k| !self.list(k).is_empty())
    }

    /// Summary statistics.
    pub fn stats(&self) -> IndexStats {
        let mut nonempty = 0usize;
        let mut max_len = 0usize;
        for k in 0..self.key_count {
            let len = (self.offsets[k + 1] - self.offsets[k]) as usize;
            if len > 0 {
                nonempty += 1;
                max_len = max_len.max(len);
            }
        }
        IndexStats {
            nonempty_keys: nonempty,
            total_positions: self.positions.len(),
            max_list_len: max_len,
            mean_list_len: if nonempty == 0 {
                0.0
            } else {
                self.positions.len() as f64 / nonempty as f64
            },
        }
    }

    /// Raw offset table (CSR row pointers), for serialization.
    pub(crate) fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Raw position array, for serialization.
    pub(crate) fn positions(&self) -> &[u32] {
        &self.positions
    }

    /// Rebuild from raw parts (deserialization only; the caller has
    /// validated the CSR invariants).
    pub(crate) fn from_parts(
        key_count: usize,
        offsets: Vec<u32>,
        positions: Vec<u32>,
    ) -> SeedIndex {
        debug_assert_eq!(offsets.len(), key_count + 1);
        SeedIndex {
            key_count,
            offsets,
            positions,
        }
    }

    /// Number of ungapped extensions step 2 will perform against another
    /// index: `Σ_k |IL0_k| · |IL1_k|`.
    pub fn pair_count(&self, other: &SeedIndex) -> u64 {
        assert_eq!(self.key_count, other.key_count, "incompatible seed models");
        (0..self.key_count)
            .map(|k| {
                let a = (self.offsets[k + 1] - self.offsets[k]) as u64;
                let b = (other.offsets[k + 1] - other.offsets[k]) as u64;
                a * b
            })
            .sum()
    }
}

/// Split sequences into ≤ `threads` contiguous ranges of roughly equal
/// residue mass. Returned ranges are `(first_seq, last_seq_exclusive)`.
fn sequence_chunks(flat: &FlatBank, threads: usize) -> Vec<(usize, usize)> {
    let nseqs = flat.seq_count();
    if nseqs == 0 {
        return vec![(0, 0)];
    }
    let per_chunk = (flat.len() / threads).max(1);
    let mut chunks = Vec::with_capacity(threads);
    let mut start = 0usize;
    let mut mass = 0usize;
    for seq in 0..nseqs {
        let (lo, hi) = flat.bounds_of(seq);
        mass += (hi - lo) as usize;
        if mass >= per_chunk && chunks.len() + 1 < threads {
            chunks.push((start, seq + 1));
            start = seq + 1;
            mass = 0;
        }
    }
    if start < nseqs {
        chunks.push((start, nseqs));
    }
    if chunks.is_empty() {
        chunks.push((0, nseqs));
    }
    chunks
}

fn count_chunk(flat: &FlatBank, model: &dyn SeedModel, (s0, s1): (usize, usize)) -> Vec<u32> {
    let span = model.span();
    let mut hist = vec![0u32; model.key_count()];
    let residues = flat.residues();
    for seq in s0..s1 {
        let (lo, hi) = flat.bounds_of(seq);
        let (lo, hi) = (lo as usize, hi as usize);
        if hi - lo < span {
            continue;
        }
        for pos in lo..=hi - span {
            if let Some(k) = model.key(&residues[pos..pos + span]) {
                hist[k as usize] += 1;
            }
        }
    }
    hist
}

fn scatter_chunk(
    flat: &FlatBank,
    model: &dyn SeedModel,
    (s0, s1): (usize, usize),
    cursor: &mut [u32],
    out: &mut [u32],
) {
    let span = model.span();
    let residues = flat.residues();
    for seq in s0..s1 {
        let (lo, hi) = flat.bounds_of(seq);
        let (lo, hi) = (lo as usize, hi as usize);
        if hi - lo < span {
            continue;
        }
        for pos in lo..=hi - span {
            if let Some(k) = model.key(&residues[pos..pos + span]) {
                let c = &mut cursor[k as usize];
                out[*c as usize] = pos as u32;
                *c += 1;
            }
        }
    }
}

/// Shared mutable pointer for the disjoint pass-2 scatter.
#[derive(Clone, Copy)]
struct DisjointWriter(*mut u32);
// SAFETY: the wrapped pointer is only dereferenced through the disjoint
// pass-2 scatter, where each worker writes its own index range (per-chunk
// cursor ranges computed in pass 1); moving the wrapper across threads
// cannot create overlapping writes.
unsafe impl Send for DisjointWriter {}
// SAFETY: shared references to the wrapper only ever write disjoint
// elements (see `Send` above); no element is written twice and none is
// read until the scatter's thread scope has joined.
unsafe impl Sync for DisjointWriter {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::{subset_seed_default, ExactSeed};
    use psc_seqio::{Bank, Seq};

    fn small_bank() -> Bank {
        let mut b = Bank::new();
        b.push(Seq::protein("a", b"MKVLMKVL"));
        b.push(Seq::protein("b", b"MKV"));
        b.push(Seq::protein("c", b"XX")); // nothing indexable
        b
    }

    #[test]
    fn exact_index_finds_all_occurrences() {
        let bank = small_bank();
        let flat = FlatBank::from_bank(&bank);
        let model = ExactSeed::new(3);
        let idx = SeedIndex::build(&flat, &model, 1);
        let key = model
            .key(&psc_seqio::alphabet::encode_protein(b"MKV"))
            .unwrap();
        // MKV occurs at global positions 0, 4 (in "MKVLMKVL") and 8 ("MKV").
        assert_eq!(idx.list(key), &[0, 4, 8]);
        // KVL occurs at 1, 5.
        let key = model
            .key(&psc_seqio::alphabet::encode_protein(b"KVL"))
            .unwrap();
        assert_eq!(idx.list(key), &[1, 5]);
    }

    #[test]
    fn windows_never_cross_sequence_boundaries() {
        // "VLM" occurs inside sequence a but the window ending at a's last
        // residue plus b's first must NOT be indexed.
        let bank = small_bank();
        let flat = FlatBank::from_bank(&bank);
        let model = ExactSeed::new(3);
        let idx = SeedIndex::build(&flat, &model, 1);
        // Window at position 6 would be "VL|M" crossing into sequence b:
        // check nothing indexed spans positions 6..9 etc. Verify by
        // asserting total count: seq a (len 8) has 6 windows, seq b
        // (len 3) has 1, seq c none.
        assert_eq!(idx.total_positions(), 7);
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let bank: Bank = (0..40)
            .map(|i| {
                let res: Vec<u8> = (0..137u32).map(|j| ((i * 7 + j * 13) % 20) as u8).collect();
                Seq::from_codes(format!("s{i}"), res, psc_seqio::SeqKind::Protein)
            })
            .collect();
        let flat = FlatBank::from_bank(&bank);
        let model = subset_seed_default();
        let seq = SeedIndex::build(&flat, &model, 1);
        for threads in [2, 3, 8] {
            let par = SeedIndex::build(&flat, &model, threads);
            assert_eq!(par.offsets, seq.offsets, "threads={threads}");
            assert_eq!(par.positions, seq.positions, "threads={threads}");
        }
    }

    #[test]
    fn lists_are_sorted() {
        let bank: Bank = (0..20)
            .map(|i| {
                let res: Vec<u8> = (0..200u32).map(|j| ((i + j * 3) % 20) as u8).collect();
                Seq::from_codes(format!("s{i}"), res, psc_seqio::SeqKind::Protein)
            })
            .collect();
        let flat = FlatBank::from_bank(&bank);
        let model = subset_seed_default();
        let idx = SeedIndex::build(&flat, &model, 4);
        for k in idx.nonempty_keys() {
            let l = idx.list(k);
            assert!(l.windows(2).all(|w| w[0] < w[1]), "key {k} unsorted");
        }
    }

    #[test]
    fn stats_and_pair_count() {
        let bank = small_bank();
        let flat = FlatBank::from_bank(&bank);
        let model = ExactSeed::new(3);
        let idx = SeedIndex::build(&flat, &model, 1);
        let st = idx.stats();
        assert_eq!(st.total_positions, 7);
        assert_eq!(st.max_list_len, 3); // MKV
        assert!(st.nonempty_keys >= 4);
        // Pairs against itself: MKV contributes 3*3, KVL 2*2, VLM 1, LMK 1.
        assert_eq!(idx.pair_count(&idx), 9 + 4 + 1 + 1);
    }

    #[test]
    fn empty_bank_index() {
        let flat = FlatBank::from_bank(&Bank::new());
        let idx = SeedIndex::build(&flat, &ExactSeed::new(3), 4);
        assert_eq!(idx.total_positions(), 0);
        assert_eq!(idx.stats().nonempty_keys, 0);
        assert_eq!(idx.pair_count(&idx), 0);
    }

    #[test]
    fn nonstandard_residues_not_seeded() {
        let mut b = Bank::new();
        b.push(Seq::protein("s", b"MKXVL*AW"));
        let flat = FlatBank::from_bank(&b);
        let idx = SeedIndex::build(&flat, &ExactSeed::new(2), 1);
        // Windows: MK ok, KX no, XV no, VL ok, L* no, *A no, AW ok.
        assert_eq!(idx.total_positions(), 3);
    }
}
