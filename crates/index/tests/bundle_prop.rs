//! Property tests for the index-bundle artifact: serialization is an
//! identity over arbitrary banks and models, and any truncation is a
//! detected error — never a wrong answer.

use proptest::prelude::*;
use psc_index::{
    deserialize_bundle, serialize_bundle, BundleT0, ExactSeed, FlatBank, IndexBundle, SeedModel,
    SerialError,
};
use psc_score::blosum62;
use psc_seqio::{Bank, MaskConfig, Seq, SeqKind};

/// Arbitrary protein residue codes over the full 24-letter alphabet
/// (ambiguity codes included — they index nothing but must survive the
/// round trip byte-for-byte).
fn residues() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..24, 0..60)
}

/// Exactly six frames of arbitrary residues.
fn frames() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(residues(), 6..=6)
}

/// 0–3 arbitrary protein sequences for the optional T0 section.
fn t0_bank() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(residues(), 0..4)
}

fn build_bundle(
    model: &dyn SeedModel,
    frame_residues: &[Vec<u8>],
    t0_residues: Option<&[Vec<u8>]>,
    mask: Option<MaskConfig>,
    genome_len: u64,
) -> IndexBundle {
    let frames: Vec<Seq> = frame_residues
        .iter()
        .enumerate()
        .map(|(i, r)| Seq::from_codes(format!("g|frame{i}"), r.clone(), SeqKind::Protein))
        .collect();
    let frames_bank: Bank = frames.iter().cloned().collect();
    let t1 = psc_index::SeedIndex::build(&FlatBank::from_bank(&frames_bank), model, 1);
    let t0 = t0_residues.map(|seqs| {
        let bank: Bank = seqs
            .iter()
            .enumerate()
            .map(|(i, r)| Seq::from_codes(format!("p{i}"), r.clone(), SeqKind::Protein))
            .collect();
        let index = psc_index::SeedIndex::build(&FlatBank::from_bank(&bank), model, 1);
        BundleT0 { bank, index }
    });
    IndexBundle {
        model_name: model.name(),
        genome_id: "g".to_string(),
        genome_len,
        frames,
        mask,
        matrix: blosum62().clone(),
        t1,
        t0,
    }
}

fn assert_identity(a: &IndexBundle, b: &IndexBundle) {
    assert_eq!(a.model_name, b.model_name);
    assert_eq!(a.genome_id, b.genome_id);
    assert_eq!(a.genome_len, b.genome_len);
    assert_eq!(a.frames, b.frames);
    assert_eq!(a.matrix, b.matrix);
    assert_eq!(a.t1, b.t1);
    match (&a.mask, &b.mask) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            assert_eq!(x.window, y.window);
            assert_eq!(x.trigger.to_bits(), y.trigger.to_bits());
            assert_eq!(x.extend.to_bits(), y.extend.to_bits());
        }
        other => panic!("mask sections differ: {other:?}"),
    }
    match (&a.t0, &b.t0) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            assert_eq!(x.index, y.index);
            assert_eq!(x.bank.len(), y.bank.len());
            for ((_, p), (_, q)) in x.bank.iter().zip(y.bank.iter()) {
                assert_eq!(p.id, q.id);
                assert_eq!(p.residues, q.residues);
            }
        }
        _ => panic!("t0 sections differ in presence"),
    }
}

proptest! {
    /// serialize → deserialize is an identity for arbitrary frame
    /// contents, models, T0 sections and mask configurations.
    #[test]
    fn round_trip_is_identity(
        frame_res in frames(),
        t0_res in t0_bank(),
        span in 2usize..4,
        with_t0 in 0u8..2,
        with_mask in 0u8..2,
        genome_len in 0u64..100_000,
    ) {
        let model = ExactSeed::new(span);
        let mask = (with_mask == 1).then(MaskConfig::default);
        let t0 = (with_t0 == 1).then_some(&t0_res[..]);
        let bundle = build_bundle(&model, &frame_res, t0, mask, genome_len);
        let bytes = serialize_bundle(&bundle, &model);
        let back = deserialize_bundle(&bytes, &model).expect("round trip");
        assert_identity(&bundle, &back);
        // A second serialization is byte-identical (the format is
        // canonical, so artifacts can be content-compared).
        prop_assert_eq!(&serialize_bundle(&back, &model)[..], &bytes[..]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    /// Every strict prefix of a valid bundle fails to parse — as a
    /// structural error, never a panic or a silently wrong bundle.
    #[test]
    fn truncation_at_every_boundary_is_detected(
        frame_res in frames(),
        with_t0 in 0u8..2,
    ) {
        let model = ExactSeed::new(2);
        let t0_res: Vec<Vec<u8>> = vec![vec![1, 2, 3, 4, 5, 6, 7, 8]];
        let t0 = (with_t0 == 1).then_some(&t0_res[..]);
        let bundle = build_bundle(&model, &frame_res, t0, None, 9_000);
        let bytes = serialize_bundle(&bundle, &model);
        for cut in 0..bytes.len() {
            match deserialize_bundle(&bytes[..cut], &model) {
                Err(SerialError::BadMagic)
                | Err(SerialError::Corrupt(_))
                | Err(SerialError::BadVersion(_)) => {}
                Ok(_) => panic!("truncation to {cut}/{} bytes parsed", bytes.len()),
                Err(other) => panic!("truncation to {cut} gave {other:?}"),
            }
        }
    }
}
