//! # psc-analyzer — the workspace's own lint pass
//!
//! The correctness story of this reproduction rests on invariants
//! `rustc` cannot see: the step-2 kernels must stay panic-free and
//! telemetry-free (they are the 97 %-of-runtime critical section the
//! paper offloads), the simulator must stay deterministic so Table 2/4
//! comparisons are reproducible, and every `unsafe` block must carry a
//! written justification. This crate lexes the workspace's `.rs`
//! sources with a hand-rolled tokenizer ([`lexer`]) and enforces those
//! house rules ([`lints`]), configured by a checked-in `analyzer.toml`
//! ([`config`]) with inline `// analyzer: allow(<lint>) -- reason`
//! waivers ([`source`]).
//!
//! It is deliberately **std-only**: the build container is offline, so
//! the gate cannot depend on Dylint, Miri, or any crates.io proc-macro
//! stack — and a zero-dependency binary keeps the gate itself out of
//! the supply chain being gated.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod config;
pub mod diag;
pub mod lexer;
pub mod lints;
pub mod sarif;
pub mod source;
pub mod symbols;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

pub use config::Config;
pub use diag::Diagnostic;
pub use lints::LintSelection;
use source::SourceFile;
use symbols::FileSymbols;

/// Outcome of a workspace pass.
#[derive(Clone, Debug, Default)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    pub files_checked: usize,
    /// Linkable fns pass 1 indexed (non-test, with a body).
    pub functions: usize,
    /// Resolved call edges in the workspace graph.
    pub call_edges: usize,
    /// Call sites resolved to nothing — assumed safe, counted so the
    /// conservatism is visible in the summary line.
    pub unresolved_calls: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Lint one source text under an explicit selection (the unit the
/// fixture tests drive directly).
pub fn analyze_source(
    path: &str,
    crate_name: &str,
    is_crate_root: bool,
    text: &str,
    sel: &LintSelection,
) -> Vec<Diagnostic> {
    let file = SourceFile::new(path, crate_name, is_crate_root, text);
    lints::check_file(&file, sel)
}

/// Analyze the workspace in two passes: pass 1 runs the file-local
/// lints while building per-file symbol tables; pass 2 builds the call
/// graph and runs the transitive lints over it. Workspace-level lints
/// (`config-integrity`, `telemetry-key-registry`) and the stale-waiver
/// sweep (which must observe every other lint's waiver use) complete
/// the report.
pub fn analyze_workspace(root: &Path, config: &Config) -> Result<Report, String> {
    let mut report = Report::default();
    report.diagnostics.extend(config_integrity(root, config));
    check_manifest_file(&root.join("Cargo.toml"), root, &mut report)?;
    let crate_dirs = match config.list("workspace", "crate_dirs") {
        [] => vec!["crates".to_string()],
        dirs => dirs.to_vec(),
    };
    let mut files: Vec<SourceFile> = Vec::new();
    let mut sels: Vec<LintSelection> = Vec::new();
    for dir in crate_dirs {
        let dir_path = root.join(&dir);
        for krate in sorted_dir(&dir_path)? {
            if !krate.join("Cargo.toml").is_file() {
                continue;
            }
            check_manifest_file(&krate.join("Cargo.toml"), root, &mut report)?;
            let crate_name = file_name(&krate);
            let src = krate.join("src");
            if !src.is_dir() {
                continue;
            }
            let mut paths = Vec::new();
            walk_rs(&src, &mut paths)?;
            for path in paths {
                let rel = relative(&path, root);
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("read {}: {e}", path.display()))?;
                let sel = selection_for(config, &crate_name, &rel);
                let is_root = is_crate_root(&rel);
                let file = SourceFile::new(&rel, &crate_name, is_root, &text);
                report.diagnostics.extend(lints::check_file(&file, &sel));
                report.files_checked += 1;
                files.push(file);
                sels.push(sel);
            }
        }
    }

    // Telemetry key registry: collect the declared keys, then hold
    // every literal passed to a Recorder/Tracer sink against them.
    if let Some((registry_rel, keys)) = telemetry_registry(root, config, &files) {
        for file in &files {
            if file.path == registry_rel {
                continue; // the registry declares keys, it doesn't emit
            }
            report
                .diagnostics
                .extend(lints::telemetry_keys(file, &keys));
        }
    }

    // Pass 2: symbol index, call graph, transitive lints.
    let syms: Vec<FileSymbols> = files.iter().map(symbols::scan).collect();
    let graph = callgraph::build(&syms);
    report.functions = syms
        .iter()
        .flat_map(|s| s.fns.iter())
        .filter(|f| f.has_body && !f.is_test)
        .count();
    report.call_edges = graph.n_edges;
    report.unresolved_calls = graph.unresolved;
    let ws = callgraph::Workspace {
        files: &files,
        sels: &sels,
        syms: &syms,
    };
    report.diagnostics.extend(callgraph::transitive_check(
        &ws,
        &graph,
        max_call_depth(config),
    ));

    // Last: waivers nothing above consulted are stale.
    for file in &files {
        report.diagnostics.extend(file.stale_waivers());
    }
    report.diagnostics.sort();
    report.diagnostics.dedup();
    Ok(report)
}

/// The configured reachability bound for the transitive lints. A
/// non-numeric value is reported by `config_integrity`; here it just
/// falls back to the default.
fn max_call_depth(config: &Config) -> usize {
    config
        .list("workspace", "max_call_depth")
        .first()
        .and_then(|v| v.parse().ok())
        .filter(|&d| d >= 1)
        .unwrap_or(callgraph::DEFAULT_MAX_DEPTH)
}

/// `config-integrity`: every path in `analyzer.toml` must resolve to a
/// real file or directory, every crate name to a crate directory, and
/// numeric knobs must parse — a typoed `hot_modules` entry silently
/// un-lints the hot path, which is the worst possible failure mode for
/// a gate. Diagnostics anchor to the config file's own lines.
fn config_integrity(root: &Path, config: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let config_rel = "analyzer.toml";
    const PATH_KEYS: &[(&str, &str)] = &[
        ("workspace", "crate_dirs"),
        ("lint.hot-path-no-panic", "hot_modules"),
        ("lint.determinism", "ordered_modules"),
        ("lint.recorder-off-hot-loop", "kernel_modules"),
        ("lint.hot-path-no-alloc", "kernel_modules"),
        ("lint.telemetry-key-registry", "registry"),
    ];
    for (section, key) in PATH_KEYS {
        for (item, line) in config.items(section, key) {
            if !root.join(item).exists() {
                out.push(Diagnostic::new(
                    config_rel,
                    line,
                    lints::CONFIG_INTEGRITY,
                    format!("[{section}] {key}: `{item}` does not resolve to a file or directory"),
                ));
            }
        }
    }
    const CRATE_KEYS: &[(&str, &str)] = &[
        ("lint.unsafe-scope", "allow_unsafe_crates"),
        ("lint.determinism", "time_allowed_crates"),
    ];
    let crate_dirs = match config.list("workspace", "crate_dirs") {
        [] => vec!["crates".to_string()],
        dirs => dirs.to_vec(),
    };
    for (section, key) in CRATE_KEYS {
        for (item, line) in config.items(section, key) {
            let found = crate_dirs
                .iter()
                .any(|d| root.join(d).join(item).join("Cargo.toml").is_file());
            if !found {
                out.push(Diagnostic::new(
                    config_rel,
                    line,
                    lints::CONFIG_INTEGRITY,
                    format!("[{section}] {key}: no crate named `{item}` under the crate dirs"),
                ));
            }
        }
    }
    for (item, line) in config.items("workspace", "max_call_depth") {
        if item.parse::<usize>().map_or(true, |d| d < 1) {
            out.push(Diagnostic::new(
                config_rel,
                line,
                lints::CONFIG_INTEGRITY,
                format!("[workspace] max_call_depth: `{item}` is not a positive integer"),
            ));
        }
    }
    out
}

/// The declared telemetry key set: every string literal in the
/// configured registry module (outside test code). `None` when no
/// registry is configured (the lint is off) — a configured-but-missing
/// registry file is already a `config-integrity` finding.
fn telemetry_registry(
    root: &Path,
    config: &Config,
    files: &[SourceFile],
) -> Option<(String, BTreeSet<String>)> {
    let registry_rel = config
        .list("lint.telemetry-key-registry", "registry")
        .first()?
        .clone();
    let keys = match files.iter().find(|f| f.path == registry_rel) {
        Some(file) => lints::registry_keys(file),
        None => {
            // Registry outside the walked crate dirs: read it directly.
            let text = std::fs::read_to_string(root.join(&registry_rel)).ok()?;
            let file = SourceFile::new(&registry_rel, "", false, &text);
            lints::registry_keys(&file)
        }
    };
    Some((registry_rel, keys))
}

/// Lint one Cargo manifest (the `placeholder-url` check), counting it
/// toward `files_checked`. A missing manifest (e.g. no workspace-root
/// `Cargo.toml` in a test fixture) is skipped, not an error.
fn check_manifest_file(path: &Path, root: &Path, report: &mut Report) -> Result<(), String> {
    if !path.is_file() {
        return Ok(());
    }
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let rel = relative(path, root);
    report
        .diagnostics
        .extend(lints::check_manifest(&rel, &text));
    report.files_checked += 1;
    Ok(())
}

/// Derive which lints apply to `rel` (workspace-relative path with
/// forward slashes) from the config.
pub fn selection_for(config: &Config, crate_name: &str, rel: &str) -> LintSelection {
    let in_list = |section: &str, key: &str| {
        config
            .list(section, key)
            .iter()
            .any(|m| rel == m || rel.starts_with(&format!("{m}/")))
    };
    LintSelection {
        allow_unsafe: config
            .list("lint.unsafe-scope", "allow_unsafe_crates")
            .iter()
            .any(|c| c == crate_name),
        hot_module: in_list("lint.hot-path-no-panic", "hot_modules"),
        ban_wall_clock: !config
            .list("lint.determinism", "time_allowed_crates")
            .iter()
            .any(|c| c == crate_name),
        ordered_module: in_list("lint.determinism", "ordered_modules"),
        kernel_module: in_list("lint.recorder-off-hot-loop", "kernel_modules"),
        no_alloc_module: in_list("lint.hot-path-no-alloc", "kernel_modules"),
    }
}

/// `src/lib.rs`, `src/main.rs` and `src/bin/*.rs` are crate roots for
/// the `unsafe-scope` lint.
fn is_crate_root(rel: &str) -> bool {
    rel.ends_with("/src/lib.rs")
        || rel.ends_with("/src/main.rs")
        || (rel.contains("/src/bin/") && rel.ends_with(".rs"))
}

fn sorted_dir(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read dir {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    Ok(entries)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for entry in sorted_dir(dir)? {
        if entry.is_dir() {
            walk_rs(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

fn file_name(p: &Path) -> String {
    p.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default()
}

/// Workspace-relative path with forward slashes (diagnostics must be
/// byte-identical across platforms).
fn relative(path: &Path, root: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_root_detection() {
        assert!(is_crate_root("crates/core/src/lib.rs"));
        assert!(is_crate_root("crates/cli/src/main.rs"));
        assert!(is_crate_root("crates/bench/src/bin/experiments.rs"));
        assert!(!is_crate_root("crates/core/src/step2.rs"));
        assert!(!is_crate_root("crates/core/src/bin.rs"));
    }

    #[test]
    fn selection_prefix_matches_directories() {
        let cfg = Config::parse(
            "[lint.determinism]\nordered_modules = [\"crates/telemetry/src\", \"crates/cli/src/main.rs\"]\ntime_allowed_crates = [\"cli\"]\n",
        )
        .unwrap();
        assert!(selection_for(&cfg, "telemetry", "crates/telemetry/src/json.rs").ordered_module);
        assert!(selection_for(&cfg, "cli", "crates/cli/src/main.rs").ordered_module);
        assert!(!selection_for(&cfg, "core", "crates/core/src/step2.rs").ordered_module);
        assert!(!selection_for(&cfg, "cli", "crates/cli/src/main.rs").ban_wall_clock);
        assert!(selection_for(&cfg, "core", "crates/core/src/pipeline.rs").ban_wall_clock);
    }
}
