//! Pass 2 of the workspace analysis: a conservative intra-workspace
//! call graph over the pass-1 symbol tables ([`crate::symbols`]), and
//! the transitive lints that walk it.
//!
//! ## Resolution policy
//!
//! The scanner sees identifiers, not types, so resolution is by name:
//!
//! - **Bare** `helper(…)` — free fns named `helper` in the same file,
//!   else every free fn named `helper` in the workspace.
//! - **Path** `qual::helper(…)` — `Self` maps to the calling impl's
//!   type; a capitalized qualifier selects that impl's associated fns;
//!   a lowercase qualifier filters free fns by file stem or crate
//!   (`step2::seed`, `psc_core::run`); `crate`/`super`/`self` filter
//!   to the calling crate or file.
//! - **Method** `x.helper(…)` — methods named `helper` taking a `self`
//!   receiver (associated constructors are unreachable from method
//!   syntax), preferring same-file impls, *except* names on the
//!   std-method exclusion list (`push`, `len`, `iter`, …) whose edges
//!   would be noise.
//!
//! Anything that resolves to nothing — std calls, closures, excluded
//! method names, over-ambiguous names (> [`AMBIG_CAP`] candidates) —
//! is **assumed safe and counted**: the driver surfaces the unresolved
//! total in its summary so the blind spot is visible, not silent.
//!
//! ## Transitive lints
//!
//! From every fn of a configured hot/kernel module, a bounded-depth,
//! cycle-safe BFS marks reachable fns; their panic/clock/telemetry
//! facts inherit the root's constraints and are reported with the full
//! call chain. Allocation uses a two-level taint: a helper reached
//! from inside a kernel loop may not allocate at all, a helper reached
//! from straight-line kernel code may not allocate in *its own* loops.
//! Files already covered by the file-local lint are skipped here, and
//! the ordinary waiver syntax applies at the fact's line.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::diag::Diagnostic;
use crate::lints::{
    LintSelection, DETERMINISM, HOT_PATH_NO_ALLOC, HOT_PATH_NO_PANIC, RECORDER_OFF_HOT_LOOP,
};
use crate::source::SourceFile;
use crate::symbols::{CallKind, FileSymbols, FnDef};

/// Default reachability bound (`[workspace] max_call_depth` overrides).
pub const DEFAULT_MAX_DEPTH: usize = 8;

/// A name with more workspace candidates than this resolves to nothing
/// (counted as unresolved): past that point the edges are noise that
/// would drown real chains, not conservatism.
const AMBIG_CAP: usize = 8;

/// Method names whose receiver is almost always a std type (`Vec`,
/// `Option`, slices, iterators, channels, …). Resolving these against
/// same-named workspace methods would wire `candidates.push(x)` to
/// `Fifo::push` and flood the graph; they are skipped and counted.
#[rustfmt::skip] // keep the dense sorted table greppable
const STD_METHODS: &[&str] = &[
    "all", "any", "as_bytes", "as_mut", "as_mut_ptr", "as_ptr", "as_ref", "as_slice", "as_str",
    "borrow", "borrow_mut", "chain", "chars", "checked_add", "checked_mul", "checked_sub",
    "chunks", "clear", "clone", "cmp", "contains", "contains_key", "copy_from_slice", "count",
    "drain", "entry", "enumerate", "eq", "err", "extend", "fill", "filter", "filter_map", "find",
    "first", "flat_map", "flatten", "flush", "fmt", "fold", "get", "get_mut", "get_or_insert_with",
    "hash", "insert", "into", "into_iter", "is_empty", "is_err", "is_none", "is_ok", "is_some",
    "iter", "iter_mut", "join", "keys", "last", "len", "lock", "map", "map_err", "max", "max_by",
    "max_by_key", "min", "min_by", "min_by_key", "next", "ok", "ok_or", "ok_or_else", "or_else",
    "parse", "partial_cmp", "position", "pow", "push", "push_str", "pop", "read", "recv",
    "replace", "resize", "retain", "rev", "saturating_add", "saturating_sub", "send", "skip",
    "sort", "sort_by", "sort_by_key", "sort_unstable", "sort_unstable_by",
    "sort_unstable_by_key", "spawn", "split", "split_at", "split_at_mut", "starts_with", "sum",
    "swap", "take", "then", "trim", "truncate", "try_into", "try_recv", "unwrap_or",
    "unwrap_or_default", "unwrap_or_else", "values", "windows", "wrapping_add", "wrapping_sub",
    "write", "write_all", "zip",
];

/// One resolved call edge.
#[derive(Clone, Copy, Debug)]
pub struct Edge {
    pub to: usize,
    pub line: u32,
    /// The call site sits inside a loop of the calling fn.
    pub in_loop: bool,
}

/// The workspace call graph over flattened fn nodes.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Node id of each file's first fn (`node = offsets[file] + fn`).
    offsets: Vec<usize>,
    /// File index of each node.
    file_of: Vec<usize>,
    /// Out-edges per node, in token order.
    pub edges: Vec<Vec<Edge>>,
    /// Total resolved edges (including multi-candidate fan-out).
    pub n_edges: usize,
    /// Call sites resolved to nothing — assumed safe, counted.
    pub unresolved: usize,
}

impl CallGraph {
    pub fn n_nodes(&self) -> usize {
        self.file_of.len()
    }

    pub fn node(&self, file: usize, f: usize) -> usize {
        self.offsets[file] + f
    }

    /// `(file index, fn index)` of a node.
    pub fn loc(&self, node: usize) -> (usize, usize) {
        let file = self.file_of[node];
        (file, node - self.offsets[file])
    }
}

/// True when the fn takes part in the graph: test fns and bodyless
/// trait signatures contribute neither facts nor edges.
fn linkable(f: &FnDef) -> bool {
    f.has_body && !f.is_test
}

/// `psc_core` / `psc-core` → `core`, for crate-qualified paths.
fn crate_key(name: &str) -> String {
    let s = name.replace('-', "_");
    s.strip_prefix("psc_").map(str::to_string).unwrap_or(s)
}

/// Build the graph by resolving every call site of every fn.
pub fn build(files: &[FileSymbols]) -> CallGraph {
    let mut offsets = Vec::new();
    let mut file_of = Vec::new();
    for (fi, fs) in files.iter().enumerate() {
        offsets.push(file_of.len());
        file_of.extend(std::iter::repeat_n(fi, fs.fns.len()));
    }
    let n = file_of.len();
    let node = |fi: usize, k: usize| offsets[fi] + k;
    let fn_of = |nd: usize| -> &FnDef {
        let fi = file_of[nd];
        &files[fi].fns[nd - offsets[fi]]
    };
    let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); n];
    let mut n_edges = 0usize;
    let mut unresolved = 0usize;

    // Name indexes over linkable fns, in node order (deterministic).
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_qual: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for (fi, fs) in files.iter().enumerate() {
        for (k, f) in fs.fns.iter().enumerate() {
            if !linkable(f) {
                continue;
            }
            by_name.entry(&f.name).or_default().push(node(fi, k));
            if let Some(q) = &f.qual {
                by_qual.entry((q, &f.name)).or_default().push(node(fi, k));
            }
        }
    }
    let free_only = |nodes: &[usize]| -> Vec<usize> {
        nodes
            .iter()
            .copied()
            .filter(|&nd| fn_of(nd).qual.is_none())
            .collect()
    };

    for (fi, fs) in files.iter().enumerate() {
        for (k, f) in fs.fns.iter().enumerate() {
            if !linkable(f) {
                continue;
            }
            let from = node(fi, k);
            for call in &f.calls {
                let name = call.name.as_str();
                let cands: Vec<usize> = match call.kind {
                    CallKind::Method => {
                        if STD_METHODS.contains(&name) {
                            unresolved += 1;
                            continue;
                        }
                        let all: Vec<usize> = by_name
                            .get(name)
                            .map(|nodes| {
                                nodes
                                    .iter()
                                    .copied()
                                    .filter(|&nd| {
                                        let o = fn_of(nd);
                                        // Associated fns without a
                                        // `self` receiver can't be the
                                        // target of method syntax.
                                        o.qual.is_some() && o.has_self
                                    })
                                    .collect()
                            })
                            .unwrap_or_default();
                        // Mirror the bare-call rule: a same-file method
                        // of that name beats same-named methods on
                        // unrelated types elsewhere in the workspace.
                        let local: Vec<usize> = all
                            .iter()
                            .copied()
                            .filter(|&nd| file_of[nd] == fi)
                            .collect();
                        if local.is_empty() {
                            all
                        } else {
                            local
                        }
                    }
                    CallKind::Bare => {
                        let local: Vec<usize> = fs
                            .fns
                            .iter()
                            .enumerate()
                            .filter(|(_, o)| linkable(o) && o.name == name && o.qual.is_none())
                            .map(|(ok, _)| node(fi, ok))
                            .collect();
                        if local.is_empty() {
                            free_only(by_name.get(name).map(Vec::as_slice).unwrap_or(&[]))
                        } else {
                            local
                        }
                    }
                    CallKind::Path => {
                        let Some(qual) = call.qual.as_deref() else {
                            // `<T as Trait>::f(…)` and friends.
                            unresolved += 1;
                            continue;
                        };
                        let qual = if qual == "Self" {
                            match f.qual.as_deref() {
                                Some(q) => q,
                                None => {
                                    unresolved += 1;
                                    continue;
                                }
                            }
                        } else {
                            qual
                        };
                        if qual.chars().next().is_some_and(|c| c.is_uppercase()) {
                            by_qual.get(&(qual, name)).cloned().unwrap_or_default()
                        } else {
                            let all =
                                free_only(by_name.get(name).map(Vec::as_slice).unwrap_or(&[]));
                            match qual {
                                "self" => all.into_iter().filter(|&nd| file_of[nd] == fi).collect(),
                                "crate" | "super" => all
                                    .into_iter()
                                    .filter(|&nd| files[file_of[nd]].crate_name == fs.crate_name)
                                    .collect(),
                                q => {
                                    let key = crate_key(q);
                                    all.into_iter()
                                        .filter(|&nd| {
                                            let ofs = &files[file_of[nd]];
                                            ofs.stem() == q || crate_key(&ofs.crate_name) == key
                                        })
                                        .collect()
                                }
                            }
                        }
                    }
                };
                if cands.is_empty() || cands.len() > AMBIG_CAP {
                    unresolved += 1;
                    continue;
                }
                for to in cands {
                    if to == from {
                        continue; // direct recursion adds no reach
                    }
                    let dup = edges[from]
                        .iter()
                        .any(|e| e.to == to && e.in_loop == call.in_loop);
                    if !dup {
                        edges[from].push(Edge {
                            to,
                            line: call.line,
                            in_loop: call.in_loop,
                        });
                        n_edges += 1;
                    }
                }
            }
        }
    }
    CallGraph {
        offsets,
        file_of,
        edges,
        n_edges,
        unresolved,
    }
}

/// Everything pass 2 needs about the workspace, index-aligned.
#[derive(Debug)]
pub struct Workspace<'a> {
    pub files: &'a [SourceFile],
    pub sels: &'a [LintSelection],
    pub syms: &'a [FileSymbols],
}

/// Run all four transitive lints; diagnostics carry full call chains.
pub fn transitive_check(ws: &Workspace, g: &CallGraph, max_depth: usize) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let roots = |pick: &dyn Fn(&LintSelection) -> bool| -> Vec<usize> {
        let mut r = Vec::new();
        for (fi, fs) in ws.syms.iter().enumerate() {
            if !pick(&ws.sels[fi]) {
                continue;
            }
            for (k, f) in fs.fns.iter().enumerate() {
                if linkable(f) {
                    r.push(g.node(fi, k));
                }
            }
        }
        r
    };

    out.extend(simple_reach(
        ws,
        g,
        max_depth,
        &roots(&|s| s.hot_module),
        |s| s.hot_module,
        HOT_PATH_NO_PANIC,
        |f| &f.facts.panics,
        "reachable from the hot path",
    ));
    out.extend(simple_reach(
        ws,
        g,
        max_depth,
        &roots(&|s| s.hot_module),
        |s| s.ban_wall_clock,
        DETERMINISM,
        |f| &f.facts.clocks,
        "reachable from the hot path",
    ));
    out.extend(simple_reach(
        ws,
        g,
        max_depth,
        &roots(&|s| s.kernel_module),
        |s| s.kernel_module,
        RECORDER_OFF_HOT_LOOP,
        |f| &f.facts.telemetry,
        "reachable from a kernel module",
    ));
    out.extend(alloc_taint(
        ws,
        g,
        max_depth,
        &roots(&|s| s.no_alloc_module),
    ));
    out
}

/// BFS with parent pointers; first visit wins, so chains are shortest.
/// Returns `(parent, depth)` per node; unvisited nodes keep
/// `usize::MAX` depth, roots are their own parent.
fn bfs(g: &CallGraph, roots: &[usize], max_depth: usize) -> (Vec<usize>, Vec<usize>) {
    let mut parent = vec![usize::MAX; g.n_nodes()];
    let mut depth = vec![usize::MAX; g.n_nodes()];
    let mut queue = VecDeque::new();
    for &r in roots {
        if depth[r] == usize::MAX {
            depth[r] = 0;
            parent[r] = r;
            queue.push_back(r);
        }
    }
    while let Some(v) = queue.pop_front() {
        if depth[v] >= max_depth {
            continue;
        }
        for e in &g.edges[v] {
            if depth[e.to] == usize::MAX {
                depth[e.to] = depth[v] + 1;
                parent[e.to] = v;
                queue.push_back(e.to);
            }
        }
    }
    (parent, depth)
}

/// `step2.rs:run_bucketed → util.rs:merge → .unwrap()`.
fn chain_string(
    ws: &Workspace,
    g: &CallGraph,
    parent: &[usize],
    node: usize,
    what: &str,
) -> String {
    let mut hops = Vec::new();
    let mut v = node;
    loop {
        let (fi, k) = g.loc(v);
        hops.push(format!(
            "{}:{}",
            ws.syms[fi].basename(),
            ws.syms[fi].fns[k].display()
        ));
        if parent[v] == v || parent[v] == usize::MAX {
            break;
        }
        v = parent[v];
    }
    hops.reverse();
    hops.push(what.to_string());
    hops.join(" → ")
}

/// The shared shape of the panic / clock / telemetry transitive lints:
/// flag `facts(fn)` on every fn reachable from `roots`, skipping files
/// where `covered_locally` says the file-local lint already polices
/// the same fact, honoring waivers at the fact's line.
#[allow(clippy::too_many_arguments)]
fn simple_reach<'a>(
    ws: &'a Workspace,
    g: &CallGraph,
    max_depth: usize,
    roots: &[usize],
    covered_locally: impl Fn(&LintSelection) -> bool,
    lint: &'static str,
    facts: impl Fn(&'a FnDef) -> &'a [crate::symbols::Fact],
    whence: &str,
) -> Vec<Diagnostic> {
    let (parent, depth) = bfs(g, roots, max_depth);
    let mut out = Vec::new();
    for (v, &d) in depth.iter().enumerate() {
        if d == usize::MAX || d == 0 {
            continue;
        }
        let (fi, k) = g.loc(v);
        if covered_locally(&ws.sels[fi]) {
            continue;
        }
        for fact in facts(&ws.syms[fi].fns[k]) {
            if ws.files[fi].waived(lint, fact.line) {
                continue;
            }
            out.push(Diagnostic::new(
                &ws.syms[fi].path,
                fact.line,
                lint,
                format!(
                    "{} {whence}: {}",
                    fact.what,
                    chain_string(ws, g, &parent, v, &fact.what)
                ),
            ));
        }
    }
    out
}

/// Two-level allocation taint over `(fn, called-inside-a-loop)` states.
/// A helper reached from inside a kernel loop inherits the full ban;
/// one reached from straight-line kernel code only has its *own* loop
/// allocations flagged (they run per-iteration wherever the helper
/// lands). States double the node space; parents are per-state so the
/// chain shown is the one that actually carries the loop context.
fn alloc_taint(
    ws: &Workspace,
    g: &CallGraph,
    max_depth: usize,
    roots: &[usize],
) -> Vec<Diagnostic> {
    let n = g.n_nodes();
    let state = |v: usize, in_loop: bool| v * 2 + in_loop as usize;
    let mut parent = vec![usize::MAX; n * 2];
    let mut depth = vec![usize::MAX; n * 2];
    let mut queue = VecDeque::new();
    for &r in roots {
        let s = state(r, false);
        if depth[s] == usize::MAX {
            depth[s] = 0;
            parent[s] = s;
            queue.push_back(s);
        }
    }
    while let Some(s) = queue.pop_front() {
        if depth[s] >= max_depth {
            continue;
        }
        let (v, in_loop) = (s / 2, s % 2 == 1);
        for e in &g.edges[v] {
            let ns = state(e.to, in_loop || e.in_loop);
            if depth[ns] == usize::MAX {
                depth[ns] = depth[s] + 1;
                parent[ns] = s;
                queue.push_back(ns);
            }
        }
    }

    // Per fact, prefer the in-loop state's chain (it explains the
    // stricter verdict); report each file:line once.
    let mut seen: BTreeSet<(usize, u32)> = BTreeSet::new();
    let mut out = Vec::new();
    for v in 0..n {
        let (fi, k) = g.loc(v);
        if ws.sels[fi].no_alloc_module {
            continue;
        }
        for &in_loop in &[true, false] {
            let s = state(v, in_loop);
            if depth[s] == usize::MAX || depth[s] == 0 {
                continue;
            }
            let chain_parent = |node_state: usize| -> Vec<usize> {
                // Decode the state chain into node hops for display.
                let mut hops = Vec::new();
                let mut cur = node_state;
                loop {
                    hops.push(cur / 2);
                    if parent[cur] == cur || parent[cur] == usize::MAX {
                        break;
                    }
                    cur = parent[cur];
                }
                hops.reverse();
                hops
            };
            for fact in &ws.syms[fi].fns[k].facts.allocs {
                if !in_loop && !fact.in_loop {
                    continue; // straight-line alloc in a helper called once
                }
                if !seen.insert((fi, fact.line)) {
                    continue;
                }
                if ws.files[fi].waived(HOT_PATH_NO_ALLOC, fact.line) {
                    continue;
                }
                let mut hops: Vec<String> = chain_parent(s)
                    .into_iter()
                    .map(|node| {
                        let (hfi, hk) = g.loc(node);
                        format!(
                            "{}:{}",
                            ws.syms[hfi].basename(),
                            ws.syms[hfi].fns[hk].display()
                        )
                    })
                    .collect();
                hops.push(fact.what.clone());
                let context = if in_loop {
                    "helper called from a kernel loop"
                } else {
                    "loop inside a helper on the kernel path"
                };
                out.push(Diagnostic::new(
                    &ws.syms[fi].path,
                    fact.line,
                    HOT_PATH_NO_ALLOC,
                    format!(
                        "{} allocates on a kernel path ({context}): {}",
                        fact.what,
                        hops.join(" → ")
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::scan;

    /// Build a tiny workspace from `(path, crate, src)` triples with
    /// the first file treated as the hot/kernel module.
    fn ws_check(sources: &[(&str, &str, &str)]) -> (Vec<Diagnostic>, CallGraph) {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(p, c, s)| SourceFile::new(p, c, false, s))
            .collect();
        let syms: Vec<FileSymbols> = files.iter().map(scan).collect();
        let sels: Vec<LintSelection> = sources
            .iter()
            .enumerate()
            .map(|(i, _)| LintSelection {
                hot_module: i == 0,
                kernel_module: i == 0,
                no_alloc_module: i == 0,
                ban_wall_clock: false,
                ..LintSelection::default()
            })
            .collect();
        let g = build(&syms);
        let ws = Workspace {
            files: &files,
            sels: &sels,
            syms: &syms,
        };
        let diags = transitive_check(&ws, &g, DEFAULT_MAX_DEPTH);
        (diags, g)
    }

    #[test]
    fn two_hop_unwrap_reports_the_full_chain() {
        let (diags, _) = ws_check(&[
            (
                "crates/core/src/step2.rs",
                "core",
                "pub fn run_bucketed() { middle(); }\n",
            ),
            (
                "crates/core/src/mid.rs",
                "core",
                "pub fn middle() { merge(); }\n",
            ),
            (
                "crates/core/src/util.rs",
                "core",
                "pub fn merge() { x.unwrap(); }\n",
            ),
        ]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        let d = &diags[0];
        assert_eq!(d.lint, HOT_PATH_NO_PANIC);
        assert_eq!(d.file, "crates/core/src/util.rs");
        assert!(
            d.message
                .contains("step2.rs:run_bucketed → mid.rs:middle → util.rs:merge → .unwrap()"),
            "{}",
            d.message
        );
    }

    #[test]
    fn cycles_terminate_and_still_report() {
        let (diags, _) = ws_check(&[
            (
                "crates/core/src/step2.rs",
                "core",
                "pub fn kernel() { ping(); }\n",
            ),
            (
                "crates/core/src/util.rs",
                "core",
                "pub fn ping() { pong(); }\npub fn pong() { ping(); leaf(); }\npub fn leaf() { panic!(\"boom\"); }\n",
            ),
        ]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("panic!"), "{}", diags[0].message);
    }

    #[test]
    fn depth_bound_cuts_reachability() {
        let sources = [
            (
                "crates/core/src/step2.rs",
                "core",
                "pub fn kernel() { h1(); }\n",
            ),
            (
                "crates/core/src/util.rs",
                "core",
                "pub fn h1() { h2(); }\npub fn h2() { h3(); }\npub fn h3() { x.unwrap(); }\n",
            ),
        ];
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(p, c, s)| SourceFile::new(p, c, false, s))
            .collect();
        let syms: Vec<FileSymbols> = files.iter().map(scan).collect();
        let sels = vec![
            LintSelection {
                hot_module: true,
                ..LintSelection::default()
            },
            LintSelection::default(),
        ];
        let g = build(&syms);
        let ws = Workspace {
            files: &files,
            sels: &sels,
            syms: &syms,
        };
        assert_eq!(transitive_check(&ws, &g, 3).len(), 1);
        assert_eq!(transitive_check(&ws, &g, 2).len(), 0);
    }

    #[test]
    fn alloc_taint_distinguishes_loop_context() {
        let (diags, _) = ws_check(&[
            (
                "crates/core/src/step2.rs",
                "core",
                "pub fn kernel() {\n    setup();\n    for i in 0..n {\n        inner();\n    }\n}\n",
            ),
            (
                "crates/core/src/util.rs",
                "core",
                "pub fn setup() {\n    let v = Vec::new();\n    for j in 0..m {\n        let w = vec![j];\n    }\n}\npub fn inner() {\n    let v = Vec::with_capacity(4);\n}\n",
            ),
        ]);
        // setup(): line-2 Vec::new is straight-line in a helper called
        // once — allowed; line-4 vec! is in setup's own loop — flagged.
        // inner(): called from the kernel loop — all allocs flagged.
        let lines: Vec<u32> = diags.iter().map(|d| d.line).collect();
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(lines.contains(&4) && lines.contains(&8), "{diags:?}");
        assert!(
            diags.iter().all(|d| d.lint == HOT_PATH_NO_ALLOC),
            "{diags:?}"
        );
    }

    #[test]
    fn method_and_self_calls_resolve_through_impls() {
        let (diags, g) = ws_check(&[
            (
                "crates/rasc/src/operator.rs",
                "rasc",
                "impl Operator {\n    pub fn run(&mut self) { self.drain_words(); }\n}\n",
            ),
            (
                "crates/rasc/src/fifo.rs",
                "rasc",
                "impl Operator {\n    pub fn drain_words(&mut self) { Self::tick(); }\n    fn tick() { q.expect(\"msg\"); }\n}\n",
            ),
        ]);
        assert!(g.n_edges >= 2, "edges: {}", g.n_edges);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0]
                .message
                .contains("fifo.rs:Operator::tick → .expect()"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn method_calls_skip_selfless_fns_and_prefer_same_file_impls() {
        // `p.build(…)` must not reach `SeedIndex::build` (no `self`
        // receiver), and `p.window_len()` must bind the same-file
        // method, not the same-named one on an unrelated type.
        let (diags, g) = ws_check(&[
            (
                "crates/core/src/step2.rs",
                "core",
                "fn run() { p.build(m); p.window_len(); }\nimpl Params {\n    fn window_len(&self) -> usize { 4 }\n}\n",
            ),
            (
                "crates/index/src/table.rs",
                "index",
                "impl SeedIndex {\n    pub fn build(flat: &Flat) { q.expect(\"io\"); }\n}\nimpl Config {\n    pub fn window_len(&self) -> usize { w.unwrap() }\n}\n",
            ),
        ]);
        assert_eq!(diags.len(), 0, "{diags:?}");
        assert_eq!(g.unresolved, 1, "p.build should be unresolved");
    }

    #[test]
    fn cross_crate_paths_resolve_by_crate_and_stem() {
        let (diags, _) = ws_check(&[
            (
                "crates/core/src/step2.rs",
                "core",
                "pub fn kernel() { psc_align::score_all(); ungapped::seed_scan(); }\n",
            ),
            (
                "crates/align/src/batch.rs",
                "align",
                "pub fn score_all() { a.unwrap(); }\n",
            ),
            (
                "crates/align/src/ungapped.rs",
                "align",
                "pub fn seed_scan() { b.unwrap(); }\n",
            ),
        ]);
        assert_eq!(diags.len(), 2, "{diags:?}");
    }

    #[test]
    fn std_methods_and_unknowns_are_counted_unresolved() {
        let (_, g) = ws_check(&[(
            "crates/core/src/step2.rs",
            "core",
            "pub fn kernel() { v.push(1); v.len(); external_fn(); }\n",
        )]);
        assert_eq!(g.n_edges, 0);
        assert_eq!(g.unresolved, 3);
    }

    #[test]
    fn waiver_at_the_fact_line_suppresses_the_transitive_finding() {
        let (diags, _) = ws_check(&[
            (
                "crates/core/src/step2.rs",
                "core",
                "pub fn kernel() { helper(); }\n",
            ),
            (
                "crates/core/src/util.rs",
                "core",
                "pub fn helper() {\n    // analyzer: allow(hot-path-no-panic) -- slot checked by caller\n    x.unwrap();\n}\n",
            ),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn telemetry_reach_flags_recorder_touches() {
        let (diags, _) = ws_check(&[
            (
                "crates/core/src/step2.rs",
                "core",
                "pub fn kernel() { notify(); }\n",
            ),
            (
                "crates/core/src/pipeline.rs",
                "core",
                "pub fn notify() { rec.observe(\"step2.pairs\", 1); }\n",
            ),
        ]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].lint, RECORDER_OFF_HOT_LOOP);
    }
}
