//! Diagnostics: what a lint reports and how it is printed.

use std::fmt;

/// One finding, anchored to a workspace-relative `file:line`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    pub file: String,
    pub line: u32,
    /// Lint slug (`hot-path-no-panic`, …) — the name a waiver uses.
    pub lint: &'static str,
    pub message: String,
}

impl Diagnostic {
    pub fn new(file: &str, line: u32, lint: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            file: file.to_string(),
            line,
            lint,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}
