//! Hand-rolled parser for `analyzer.toml`.
//!
//! The build container is offline, so no TOML crate: this reads exactly
//! the subset the checked-in config uses — `[section]` headers, string
//! scalars, and (possibly multi-line) string arrays, with `#` comments.
//! Unknown sections and keys are errors: a typoed lint name must not
//! silently disable a gate. Every item remembers the config line it
//! was written on, so the `config-integrity` lint can anchor "this
//! path does not exist" diagnostics to `analyzer.toml:<line>`.

use std::collections::BTreeMap;

/// One configured value: a scalar is a one-element list. `lines[i]` is
/// the 1-based config line `items[i]` sits on.
#[derive(Clone, Debug, Default)]
struct Value {
    items: Vec<String>,
    lines: Vec<u32>,
}

/// Parsed configuration: every value is a list of strings (a scalar is
/// a one-element list).
#[derive(Clone, Debug, Default)]
pub struct Config {
    sections: BTreeMap<String, BTreeMap<String, Value>>,
}

/// Section/key names the analyzer understands, used to reject typos.
const KNOWN: &[(&str, &[&str])] = &[
    ("workspace", &["crate_dirs", "max_call_depth"]),
    ("lint.unsafe-scope", &["allow_unsafe_crates"]),
    ("lint.hot-path-no-panic", &["hot_modules"]),
    (
        "lint.determinism",
        &["time_allowed_crates", "ordered_modules"],
    ),
    ("lint.recorder-off-hot-loop", &["kernel_modules"]),
    ("lint.hot-path-no-alloc", &["kernel_modules"]),
    ("lint.telemetry-key-registry", &["registry"]),
];

impl Config {
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((i, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                section = name.trim().to_string();
                if !KNOWN.iter().any(|(s, _)| *s == section) {
                    return Err(format!("line {}: unknown section [{section}]", i + 1));
                }
                cfg.sections.entry(section.clone()).or_default();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "line {}: expected `key = value`, got {raw:?}",
                    i + 1
                ));
            };
            let key = key.trim().to_string();
            let known_keys = KNOWN
                .iter()
                .find(|(s, _)| *s == section)
                .map(|(_, keys)| *keys)
                .ok_or_else(|| format!("line {}: key outside any section", i + 1))?;
            if !known_keys.contains(&key.as_str()) {
                return Err(format!(
                    "line {}: unknown key {key:?} in [{section}]",
                    i + 1
                ));
            }
            // Gather the value as (text, line) segments: a scalar or
            // one-line array is a single segment; a multi-line array
            // contributes one segment per physical line, so each item
            // keeps the line it was written on.
            let mut segments: Vec<(String, u32)> = vec![(value.trim().to_string(), i as u32 + 1)];
            if value.trim().starts_with('[') {
                while !segments
                    .last()
                    .map(|(s, _)| s.as_str())
                    .unwrap_or("")
                    .ends_with(']')
                {
                    let Some((j, next)) = lines.next() else {
                        return Err(format!("line {}: unterminated array for {key}", i + 1));
                    };
                    segments.push((strip_comment(next).trim().to_string(), j as u32 + 1));
                }
            }
            let parsed = parse_segments(&segments)
                .map_err(|e| format!("line {}: bad value for {key}: {e}", i + 1))?;
            cfg.sections
                .entry(section.clone())
                .or_default()
                .insert(key, parsed);
        }
        Ok(cfg)
    }

    /// The list under `[section] key`, empty if absent.
    pub fn list(&self, section: &str, key: &str) -> &[String] {
        self.sections
            .get(section)
            .and_then(|s| s.get(key))
            .map(|v| v.items.as_slice())
            .unwrap_or(&[])
    }

    /// The same list with each item's `analyzer.toml` line.
    pub fn items(&self, section: &str, key: &str) -> Vec<(&str, u32)> {
        self.sections
            .get(section)
            .and_then(|s| s.get(key))
            .map(|v| {
                v.items
                    .iter()
                    .map(String::as_str)
                    .zip(v.lines.iter().copied())
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// Drop a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// A quoted scalar, or an array of quoted scalars split across the
/// given `(text, line)` segments.
fn parse_segments(segments: &[(String, u32)]) -> Result<Value, String> {
    let first = segments[0].0.trim();
    if !first.starts_with('[') {
        let mut v = Value::default();
        v.items.push(unquote(first)?);
        v.lines.push(segments[0].1);
        return Ok(v);
    }
    let mut v = Value::default();
    for (idx, (text, line)) in segments.iter().enumerate() {
        let mut text = text.trim();
        if idx == 0 {
            text = text.strip_prefix('[').unwrap_or(text).trim();
        }
        if idx == segments.len() - 1 {
            text = text
                .strip_suffix(']')
                .ok_or_else(|| format!("expected `]`, got {text:?}"))?
                .trim();
        }
        for part in text.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            v.items.push(unquote(part)?);
            v.lines.push(*line);
        }
    }
    Ok(v)
}

fn unquote(s: &str) -> Result<String, String> {
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a quoted string, got {s:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_scalars_and_arrays() {
        let cfg = Config::parse(
            r#"
# comment
[lint.unsafe-scope]
allow_unsafe_crates = ["align", "index"] # trailing comment

[lint.hot-path-no-panic]
hot_modules = [
    "crates/core/src/step2.rs",
    "crates/align/src/batch.rs",
]
"#,
        )
        .unwrap();
        assert_eq!(
            cfg.list("lint.unsafe-scope", "allow_unsafe_crates"),
            ["align", "index"]
        );
        assert_eq!(
            cfg.list("lint.hot-path-no-panic", "hot_modules"),
            ["crates/core/src/step2.rs", "crates/align/src/batch.rs"]
        );
        assert!(cfg.list("lint.determinism", "ordered_modules").is_empty());
    }

    #[test]
    fn items_carry_their_config_lines() {
        let cfg = Config::parse(
            "[workspace]\ncrate_dirs = \"crates\"\n[lint.hot-path-no-panic]\nhot_modules = [\n    \"a.rs\",\n    \"b.rs\", \"c.rs\",\n]\n",
        )
        .unwrap();
        assert_eq!(cfg.items("workspace", "crate_dirs"), [("crates", 2)]);
        assert_eq!(
            cfg.items("lint.hot-path-no-panic", "hot_modules"),
            [("a.rs", 5), ("b.rs", 6), ("c.rs", 6)]
        );
    }

    #[test]
    fn rejects_unknown_sections_and_keys() {
        assert!(Config::parse("[lint.nonsense]\n").is_err());
        assert!(Config::parse("[lint.determinism]\ntypo = [\"x\"]\n").is_err());
        assert!(Config::parse("orphan = \"x\"\n").is_err());
    }

    #[test]
    fn rejects_unquoted_values() {
        assert!(Config::parse("[workspace]\ncrate_dirs = crates\n").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = Config::parse("[workspace]\ncrate_dirs = \"cra#tes\"\n").unwrap();
        assert_eq!(cfg.list("workspace", "crate_dirs"), ["cra#tes"]);
    }
}
