//! Hand-rolled parser for `analyzer.toml`.
//!
//! The build container is offline, so no TOML crate: this reads exactly
//! the subset the checked-in config uses — `[section]` headers, string
//! scalars, and (possibly multi-line) string arrays, with `#` comments.
//! Unknown sections and keys are errors: a typoed lint name must not
//! silently disable a gate.

use std::collections::BTreeMap;

/// Parsed configuration: every value is a list of strings (a scalar is
/// a one-element list).
#[derive(Clone, Debug, Default)]
pub struct Config {
    sections: BTreeMap<String, BTreeMap<String, Vec<String>>>,
}

/// Section/key names the analyzer understands, used to reject typos.
const KNOWN: &[(&str, &[&str])] = &[
    ("workspace", &["crate_dirs"]),
    ("lint.unsafe-scope", &["allow_unsafe_crates"]),
    ("lint.hot-path-no-panic", &["hot_modules"]),
    (
        "lint.determinism",
        &["time_allowed_crates", "ordered_modules"],
    ),
    ("lint.recorder-off-hot-loop", &["kernel_modules"]),
    ("lint.hot-path-no-alloc", &["kernel_modules"]),
];

impl Config {
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((i, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                section = name.trim().to_string();
                if !KNOWN.iter().any(|(s, _)| *s == section) {
                    return Err(format!("line {}: unknown section [{section}]", i + 1));
                }
                cfg.sections.entry(section.clone()).or_default();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "line {}: expected `key = value`, got {raw:?}",
                    i + 1
                ));
            };
            let key = key.trim().to_string();
            let known_keys = KNOWN
                .iter()
                .find(|(s, _)| *s == section)
                .map(|(_, keys)| *keys)
                .ok_or_else(|| format!("line {}: key outside any section", i + 1))?;
            if !known_keys.contains(&key.as_str()) {
                return Err(format!(
                    "line {}: unknown key {key:?} in [{section}]",
                    i + 1
                ));
            }
            // Gather a multi-line array until the closing bracket.
            let mut value = value.trim().to_string();
            if value.starts_with('[') {
                while !value.ends_with(']') {
                    let Some((_, next)) = lines.next() else {
                        return Err(format!("line {}: unterminated array for {key}", i + 1));
                    };
                    value.push(' ');
                    value.push_str(strip_comment(next).trim());
                }
            }
            let items = parse_value(&value)
                .map_err(|e| format!("line {}: bad value for {key}: {e}", i + 1))?;
            cfg.sections
                .entry(section.clone())
                .or_default()
                .insert(key, items);
        }
        Ok(cfg)
    }

    /// The list under `[section] key`, empty if absent.
    pub fn list(&self, section: &str, key: &str) -> &[String] {
        self.sections
            .get(section)
            .and_then(|s| s.get(key))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

/// Drop a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// A quoted scalar or an array of quoted scalars.
fn parse_value(value: &str) -> Result<Vec<String>, String> {
    let value = value.trim();
    if let Some(inner) = value.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
        let mut items = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            items.push(unquote(part)?);
        }
        return Ok(items);
    }
    Ok(vec![unquote(value)?])
}

fn unquote(s: &str) -> Result<String, String> {
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a quoted string, got {s:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_scalars_and_arrays() {
        let cfg = Config::parse(
            r#"
# comment
[lint.unsafe-scope]
allow_unsafe_crates = ["align", "index"] # trailing comment

[lint.hot-path-no-panic]
hot_modules = [
    "crates/core/src/step2.rs",
    "crates/align/src/batch.rs",
]
"#,
        )
        .unwrap();
        assert_eq!(
            cfg.list("lint.unsafe-scope", "allow_unsafe_crates"),
            ["align", "index"]
        );
        assert_eq!(
            cfg.list("lint.hot-path-no-panic", "hot_modules"),
            ["crates/core/src/step2.rs", "crates/align/src/batch.rs"]
        );
        assert!(cfg.list("lint.determinism", "ordered_modules").is_empty());
    }

    #[test]
    fn rejects_unknown_sections_and_keys() {
        assert!(Config::parse("[lint.nonsense]\n").is_err());
        assert!(Config::parse("[lint.determinism]\ntypo = [\"x\"]\n").is_err());
        assert!(Config::parse("orphan = \"x\"\n").is_err());
    }

    #[test]
    fn rejects_unquoted_values() {
        assert!(Config::parse("[workspace]\ncrate_dirs = crates\n").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = Config::parse("[workspace]\ncrate_dirs = \"cra#tes\"\n").unwrap();
        assert_eq!(cfg.list("workspace", "crate_dirs"), ["cra#tes"]);
    }
}
