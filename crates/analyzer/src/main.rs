//! `psc-analyzer` — run the workspace lint pass.
//!
//! ```text
//! cargo run -p psc-analyzer [-- --root DIR] [--config FILE]
//! ```
//!
//! Exits 0 when the workspace is clean, 1 with `file:line` diagnostics
//! when any lint fires, 2 on usage or configuration errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use psc_analyzer::{analyze_workspace, Config};

fn main() -> ExitCode {
    match run() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("psc-analyzer: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = PathBuf::from(args.next().ok_or("--root needs a value")?),
            "--config" => {
                config_path = Some(PathBuf::from(args.next().ok_or("--config needs a value")?));
            }
            "--help" | "-h" => {
                eprintln!("usage: psc-analyzer [--root DIR] [--config FILE]");
                return Ok(true);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    let config_path = config_path.unwrap_or_else(|| root.join("analyzer.toml"));
    let text = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("read {}: {e}", config_path.display()))?;
    let config = Config::parse(&text).map_err(|e| format!("{}: {e}", config_path.display()))?;

    let report = analyze_workspace(&root, &config)?;
    if report.files_checked == 0 {
        // A gate that silently checks nothing would pass CI on a wrong
        // --root; make the misconfiguration loud instead.
        return Err(format!(
            "no .rs files found under {} — wrong --root?",
            root.display()
        ));
    }
    for d in &report.diagnostics {
        println!("{d}");
    }
    eprintln!(
        "psc-analyzer: {} file(s) checked, {} violation(s)",
        report.files_checked,
        report.diagnostics.len()
    );
    Ok(report.is_clean())
}
