//! `psc-analyzer` — run the workspace lint pass.
//!
//! ```text
//! cargo run -p psc-analyzer [-- --root DIR] [--config FILE]
//!                           [--format text|json|sarif] [--output FILE]
//! ```
//!
//! Exits 0 when the workspace is clean, 1 with `file:line` diagnostics
//! when any lint fires, 2 on usage or configuration errors.
//!
//! `--format json|sarif` replaces the text diagnostics on stdout with
//! the machine-readable form; with `--output FILE` the machine form
//! goes to the file and the text diagnostics stay on stdout (what CI
//! does: humans read the log, code scanning reads the SARIF artifact).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use psc_analyzer::{analyze_workspace, sarif, Config};

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    match run() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("psc-analyzer: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut output: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = PathBuf::from(args.next().ok_or("--root needs a value")?),
            "--config" => {
                config_path = Some(PathBuf::from(args.next().ok_or("--config needs a value")?));
            }
            "--format" => {
                format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some("sarif") => Format::Sarif,
                    other => {
                        return Err(format!(
                            "--format must be text, json or sarif (got {other:?})"
                        ))
                    }
                };
            }
            "--output" => {
                output = Some(PathBuf::from(args.next().ok_or("--output needs a value")?));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: psc-analyzer [--root DIR] [--config FILE] [--format text|json|sarif] [--output FILE]"
                );
                return Ok(true);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if output.is_some() && format == Format::Text {
        return Err("--output requires --format json or --format sarif".into());
    }
    let config_path = config_path.unwrap_or_else(|| root.join("analyzer.toml"));
    let text = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("read {}: {e}", config_path.display()))?;
    let config = Config::parse(&text).map_err(|e| format!("{}: {e}", config_path.display()))?;

    let report = analyze_workspace(&root, &config)?;
    if report.files_checked == 0 {
        // A gate that silently checks nothing would pass CI on a wrong
        // --root; make the misconfiguration loud instead.
        return Err(format!(
            "no .rs files found under {} — wrong --root?",
            root.display()
        ));
    }
    let rendered = match format {
        Format::Text => None,
        Format::Json => Some(sarif::to_json(&report)),
        Format::Sarif => Some(sarif::to_sarif(&report)),
    };
    match (&rendered, &output) {
        (Some(body), Some(path)) => {
            std::fs::write(path, body).map_err(|e| format!("write {}: {e}", path.display()))?;
            for d in &report.diagnostics {
                println!("{d}");
            }
        }
        (Some(body), None) => print!("{body}"),
        (None, _) => {
            for d in &report.diagnostics {
                println!("{d}");
            }
        }
    }
    eprintln!(
        "psc-analyzer: {} file(s) checked, {} fn(s), {} call edge(s), {} unresolved call(s) assumed safe, {} violation(s)",
        report.files_checked,
        report.functions,
        report.call_edges,
        report.unresolved_calls,
        report.diagnostics.len()
    );
    Ok(report.is_clean())
}
