//! Machine-readable output: SARIF 2.1.0 for CI code-scanning upload,
//! and a flat JSON form for scripting. Both are hand-rolled writers —
//! the analyzer is std-only by design — emitting deterministic,
//! sorted output so two runs over the same tree are byte-identical.

use crate::lints;
use crate::Report;

/// Every lint the analyzer can emit, with a one-line description —
/// the SARIF `rules` catalogue. Kept complete (not just the lints that
/// fired) so rule metadata is stable across runs.
pub const RULES: &[(&str, &str)] = &[
    (
        lints::SAFETY_COMMENT,
        "every `unsafe` needs a `// SAFETY:` justification",
    ),
    (
        lints::UNSAFE_SCOPE,
        "crates outside the allow-list must forbid unsafe code",
    ),
    (
        lints::HOT_PATH_NO_PANIC,
        "no panicking calls on the hot path, directly or transitively",
    ),
    (
        lints::HOT_PATH_NO_ALLOC,
        "no heap allocation in kernel loops, directly or transitively",
    ),
    (
        lints::DETERMINISM,
        "no wall-clock reads or unordered maps where results must be reproducible",
    ),
    (
        lints::RECORDER_OFF_HOT_LOOP,
        "kernel modules must not touch the telemetry surface",
    ),
    (
        lints::PLACEHOLDER_URL,
        "Cargo manifests must not ship template placeholder hosts",
    ),
    (
        lints::MANIFEST_STUB,
        "Cargo manifests must not ship stub version/description fields",
    ),
    (
        lints::TELEMETRY_KEY_REGISTRY,
        "telemetry names must be declared in the shared keys registry",
    ),
    (
        lints::WAIVER_HYGIENE,
        "inline waivers that suppress nothing are stale and must go",
    ),
    (
        lints::CONFIG_INTEGRITY,
        "every analyzer.toml path and knob must resolve",
    ),
    ("bad-waiver", "inline waivers must carry a `-- reason`"),
];

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// SARIF 2.1.0 (`--format sarif`): one run, one result per diagnostic.
pub fn to_sarif(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n",
    );
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"psc-analyzer\",\n");
    out.push_str("          \"informationUri\": \"https://github.com/psc/psc\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, (id, desc)) in RULES.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}{}\n",
            esc(id),
            esc(desc),
            if i + 1 < RULES.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, d) in report.diagnostics.iter().enumerate() {
        out.push_str(&format!(
            "        {{\"ruleId\": \"{}\", \"level\": \"error\", \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]}}{}\n",
            esc(d.lint),
            esc(&d.message),
            esc(&d.file),
            d.line.max(1),
            if i + 1 < report.diagnostics.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// Flat JSON (`--format json`): the summary counters plus every
/// diagnostic, for scripts that don't want to parse SARIF.
pub fn to_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"files_checked\": {},\n  \"functions\": {},\n  \"call_edges\": {},\n  \"unresolved_calls\": {},\n",
        report.files_checked, report.functions, report.call_edges, report.unresolved_calls
    ));
    out.push_str("  \"diagnostics\": [\n");
    for (i, d) in report.diagnostics.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"lint\": \"{}\", \"message\": \"{}\"}}{}\n",
            esc(&d.file),
            d.line,
            esc(d.lint),
            esc(&d.message),
            if i + 1 < report.diagnostics.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostic;

    fn report() -> Report {
        Report {
            diagnostics: vec![
                Diagnostic::new(
                    "crates/core/src/util.rs",
                    7,
                    lints::HOT_PATH_NO_PANIC,
                    ".unwrap() reachable from the hot path: step2.rs:run → util.rs:merge → .unwrap()",
                ),
                Diagnostic::new("analyzer.toml", 12, lints::CONFIG_INTEGRITY, "path \"x\" missing"),
            ],
            files_checked: 2,
            functions: 3,
            call_edges: 4,
            unresolved_calls: 5,
        }
    }

    #[test]
    fn sarif_has_the_2_1_0_shape() {
        let s = to_sarif(&report());
        for needle in [
            "\"version\": \"2.1.0\"",
            "sarif-schema-2.1.0.json",
            "\"name\": \"psc-analyzer\"",
            "\"ruleId\": \"hot-path-no-panic\"",
            "\"startLine\": 7",
            "\"uri\": \"crates/core/src/util.rs\"",
        ] {
            assert!(s.contains(needle), "missing {needle}\n{s}");
        }
        // Every emitted ruleId is declared in the rules catalogue.
        for (id, _) in RULES {
            assert!(s.contains(&format!("\"id\": \"{id}\"")), "{id}");
        }
    }

    #[test]
    fn json_escapes_and_counts() {
        let mut r = report();
        r.diagnostics[1].message = "quote \" backslash \\ tab\t".into();
        let s = to_json(&r);
        assert!(s.contains("\"files_checked\": 2"), "{s}");
        assert!(s.contains("\"unresolved_calls\": 5"), "{s}");
        assert!(s.contains("quote \\\" backslash \\\\ tab\\t"), "{s}");
    }

    #[test]
    fn empty_report_is_valid_output() {
        let r = Report::default();
        assert!(to_sarif(&r).contains("\"results\": [\n      ]"));
        assert!(to_json(&r).contains("\"diagnostics\": [\n  ]"));
    }
}
