//! Per-file source model shared by every lint: the token stream, a
//! per-line classification, `#[cfg(test)]` region tracking, and inline
//! waivers.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

use crate::diag::Diagnostic;
use crate::lexer::{lex, Tok, TokKind};

/// How a line reads to someone scanning upward for a justification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LineKind {
    Blank,
    /// Only comments (line or block) on this line.
    CommentOnly,
    /// First code token is `#` — an attribute such as `#[inline]`.
    Attr,
    Code,
}

/// An inline waiver: `// analyzer: allow(<lint>) -- <reason>`.
#[derive(Clone, Debug)]
pub struct Waiver {
    pub lint: String,
    pub reason: String,
}

/// A lexed source file plus everything the lints ask about it.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Crate directory name under `crates/` (e.g. `core`).
    pub crate_name: String,
    /// True for `src/lib.rs`, `src/main.rs`, and `src/bin/*.rs`.
    pub is_crate_root: bool,
    pub toks: Vec<Tok>,
    line_kinds: Vec<LineKind>,
    /// Comment texts per line (a line can hold several).
    comments: BTreeMap<u32, Vec<String>>,
    /// Lines covered by a `#[cfg(test)]` / `#[test]` item.
    test_lines: Vec<bool>,
    waivers: BTreeMap<u32, Vec<Waiver>>,
    /// `(waiver line, lint)` pairs some lint actually consulted — what
    /// is left over at the end of the pass is a stale waiver.
    used_waivers: RefCell<BTreeSet<(u32, String)>>,
}

impl SourceFile {
    pub fn new(path: &str, crate_name: &str, is_crate_root: bool, src: &str) -> SourceFile {
        let toks = lex(src);
        let n_lines = src.lines().count().max(1);
        let line_kinds = classify_lines(&toks, n_lines);
        let mut comments: BTreeMap<u32, Vec<String>> = BTreeMap::new();
        for t in &toks {
            if let Some(c) = t.comment() {
                comments.entry(t.line).or_default().push(c.to_string());
            }
        }
        let test_lines = mark_test_regions(&toks, n_lines);
        let waivers = collect_waivers(&comments);
        SourceFile {
            path: path.to_string(),
            crate_name: crate_name.to_string(),
            is_crate_root,
            toks,
            line_kinds,
            comments,
            test_lines,
            waivers,
            used_waivers: RefCell::new(BTreeSet::new()),
        }
    }

    pub fn line_kind(&self, line: u32) -> LineKind {
        self.line_kinds
            .get(line.saturating_sub(1) as usize)
            .copied()
            .unwrap_or(LineKind::Blank)
    }

    /// Comments sitting on `line`.
    pub fn comments_on(&self, line: u32) -> &[String] {
        self.comments.get(&line).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Is `line` inside a `#[cfg(test)]`-gated item or `#[test]` fn?
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_lines
            .get(line.saturating_sub(1) as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Does a waiver for `lint` cover `line`? A waiver covers its own
    /// line and the line directly below it, so it works both trailing
    /// (`stmt; // analyzer: allow(…) -- why`) and preceding (its own
    /// comment line above the statement). A hit is remembered: the
    /// `waiver-hygiene` lint reports waivers nothing consulted.
    pub fn waived(&self, lint: &str, line: u32) -> bool {
        let mut hit = false;
        for l in [line.saturating_sub(1), line] {
            if l == 0 {
                continue;
            }
            for w in self.waivers.get(&l).into_iter().flatten() {
                if w.lint == lint {
                    self.used_waivers.borrow_mut().insert((l, w.lint.clone()));
                    hit = true;
                }
            }
        }
        hit
    }

    /// Malformed waivers (missing `-- reason`) are themselves findings:
    /// an unjustified exemption is exactly what the lints exist to stop.
    pub fn waiver_problems(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for (&line, ws) in &self.waivers {
            for w in ws {
                if w.reason.is_empty() {
                    out.push(Diagnostic::new(
                        &self.path,
                        line,
                        "bad-waiver",
                        format!("waiver for `{}` lacks a `-- reason`", w.lint),
                    ));
                }
            }
        }
        out
    }

    /// `waiver-hygiene`: waivers that suppressed nothing. Must run
    /// *after* every pass (file-local and transitive) has had its
    /// chance to consult them — the driver calls this last. A waiver
    /// naming a lint that never fires on its lines is dead weight at
    /// best and a typoed lint slug at worst; both are findings.
    pub fn stale_waivers(&self) -> Vec<Diagnostic> {
        let used = self.used_waivers.borrow();
        let mut out = Vec::new();
        for (&line, ws) in &self.waivers {
            for w in ws {
                if w.reason.is_empty() {
                    continue; // already reported as bad-waiver
                }
                if !used.contains(&(line, w.lint.clone())) {
                    out.push(Diagnostic::new(
                        &self.path,
                        line,
                        crate::lints::WAIVER_HYGIENE,
                        format!(
                            "stale waiver: `{}` suppresses no diagnostic here (remove it, or fix the lint name)",
                            w.lint
                        ),
                    ));
                }
            }
        }
        out
    }
}

fn classify_lines(toks: &[Tok], n_lines: usize) -> Vec<LineKind> {
    #[derive(Clone, Copy, PartialEq)]
    enum Seen {
        Nothing,
        Comment,
        AttrFirst,
        Code,
    }
    let mut seen = vec![Seen::Nothing; n_lines];
    for t in toks {
        let i = (t.line as usize - 1).min(n_lines - 1);
        match &t.kind {
            TokKind::LineComment(_) | TokKind::BlockComment(_) => {
                if seen[i] == Seen::Nothing {
                    seen[i] = Seen::Comment;
                }
            }
            TokKind::Punct('#') if matches!(seen[i], Seen::Nothing | Seen::Comment) => {
                seen[i] = Seen::AttrFirst;
            }
            _ => {
                if matches!(seen[i], Seen::Nothing | Seen::Comment) {
                    seen[i] = Seen::Code;
                }
            }
        }
    }
    seen.into_iter()
        .map(|s| match s {
            Seen::Nothing => LineKind::Blank,
            Seen::Comment => LineKind::CommentOnly,
            Seen::AttrFirst => LineKind::Attr,
            Seen::Code => LineKind::Code,
        })
        .collect()
}

/// Mark every line covered by an item annotated `#[cfg(test)]` (any
/// `cfg` whose argument mentions `test`) or `#[test]`: from the
/// attribute itself to the closing brace of the item (or its `;`).
fn mark_test_regions(toks: &[Tok], n_lines: usize) -> Vec<bool> {
    let mut test = vec![false; n_lines];
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_punct('#') || !matches!(toks.get(i + 1), Some(t) if t.is_punct('[')) {
            i += 1;
            continue;
        }
        // Bracket-match the attribute, remembering the idents inside.
        let attr_start_line = toks[i].line;
        let mut j = i + 1;
        let mut depth = 0usize;
        let mut idents: Vec<&str> = Vec::new();
        while j < toks.len() {
            match &toks[j].kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokKind::Ident(s) => idents.push(s),
                _ => {}
            }
            j += 1;
        }
        let is_test_attr = idents
            .first()
            .is_some_and(|&first| first == "test" || (first == "cfg" && idents.contains(&"test")));
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        // Skip to the item body: the first `{` (or a `;` for an
        // extern/use-like item) past any further attributes.
        let mut k = j + 1;
        let mut paren = 0i32;
        let end_line = loop {
            match toks.get(k).map(|t| &t.kind) {
                None => break toks.last().map(|t| t.line).unwrap_or(attr_start_line),
                Some(TokKind::Punct('(')) => paren += 1,
                Some(TokKind::Punct(')')) => paren -= 1,
                Some(TokKind::Punct(';')) if paren == 0 => break toks[k].line,
                Some(TokKind::Punct('{')) if paren == 0 => {
                    // Brace-match the body.
                    let mut bdepth = 0usize;
                    while k < toks.len() {
                        match &toks[k].kind {
                            TokKind::Punct('{') => bdepth += 1,
                            TokKind::Punct('}') => {
                                bdepth -= 1;
                                if bdepth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    break toks.get(k).map(|t| t.line).unwrap_or(attr_start_line);
                }
                Some(_) => {}
            }
            k += 1;
        };
        for line in attr_start_line..=end_line {
            if let Some(slot) = test.get_mut(line as usize - 1) {
                *slot = true;
            }
        }
        i = k + 1;
    }
    test
}

fn collect_waivers(comments: &BTreeMap<u32, Vec<String>>) -> BTreeMap<u32, Vec<Waiver>> {
    let mut out: BTreeMap<u32, Vec<Waiver>> = BTreeMap::new();
    for (&line, texts) in comments {
        for text in texts {
            let Some(rest) = text.trim().strip_prefix("analyzer: allow(") else {
                continue;
            };
            let Some((lint, tail)) = rest.split_once(')') else {
                continue;
            };
            let reason = tail
                .trim()
                .strip_prefix("--")
                .map(|r| r.trim().to_string())
                .unwrap_or_default();
            out.entry(line).or_default().push(Waiver {
                lint: lint.trim().to_string(),
                reason,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::new("crates/x/src/lib.rs", "x", true, src)
    }

    #[test]
    fn line_classification() {
        let f = file("// only a comment\n#[inline]\nfn f() {}\n\n");
        assert_eq!(f.line_kind(1), LineKind::CommentOnly);
        assert_eq!(f.line_kind(2), LineKind::Attr);
        assert_eq!(f.line_kind(3), LineKind::Code);
        assert_eq!(f.line_kind(4), LineKind::Blank);
    }

    #[test]
    fn cfg_test_region_covers_module() {
        let src = "fn real() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn after() {}\n";
        let f = file(src);
        assert!(!f.in_test_code(1));
        assert!(f.in_test_code(2));
        assert!(f.in_test_code(4));
        assert!(f.in_test_code(5));
        assert!(!f.in_test_code(6));
    }

    #[test]
    fn test_attr_on_fn() {
        let src = "#[test]\nfn t() {\n    panic!();\n}\nfn real() {}\n";
        let f = file(src);
        assert!(f.in_test_code(3));
        assert!(!f.in_test_code(5));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let f = file("#[cfg(target_arch = \"x86_64\")]\nmod x86 {\n    fn f() {}\n}\n");
        assert!(!f.in_test_code(3));
    }

    #[test]
    fn waivers_cover_their_line_and_the_next() {
        let src = "// analyzer: allow(hot-path-no-panic) -- join only fails on a panicked worker\nh.join().unwrap();\nh2.join().unwrap();\n";
        let f = file(src);
        assert!(f.waived("hot-path-no-panic", 1));
        assert!(f.waived("hot-path-no-panic", 2));
        assert!(!f.waived("hot-path-no-panic", 3));
        assert!(!f.waived("determinism", 2));
        assert!(f.waiver_problems().is_empty());
    }

    #[test]
    fn unconsulted_waivers_are_stale() {
        let f = file(
            "// analyzer: allow(hot-path-no-panic) -- checked above\nx.unwrap();\n// analyzer: allow(hot-path-nopanic) -- typoed slug\ny.unwrap();\n",
        );
        // Only the first waiver is consulted (correct slug, right line).
        assert!(f.waived("hot-path-no-panic", 2));
        assert!(!f.waived("hot-path-no-panic", 4));
        let stale = f.stale_waivers();
        assert_eq!(stale.len(), 1, "{stale:?}");
        assert_eq!(stale[0].line, 3);
        assert_eq!(stale[0].lint, "waiver-hygiene");
        assert!(stale[0].message.contains("hot-path-nopanic"));
    }

    #[test]
    fn waiver_without_reason_is_flagged() {
        let f = file("x(); // analyzer: allow(determinism)\n");
        let problems = f.waiver_problems();
        assert_eq!(problems.len(), 1);
        assert_eq!(problems[0].lint, "bad-waiver");
    }
}
