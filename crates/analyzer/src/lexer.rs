//! A small hand-rolled Rust tokenizer.
//!
//! The lints only need a faithful separation of *code* from *comments
//! and literals* — `unsafe` inside a string must not trip the
//! safety-comment lint, a `// SAFETY:` inside a string must not satisfy
//! it. So the lexer handles exactly the lexical features that matter
//! for that separation: line and (nested) block comments, string /
//! raw-string / byte-string / char literals, lifetimes vs char
//! literals, identifiers and single-character punctuation. Everything
//! else (numeric literal forms, multi-character operators) degrades to
//! a benign token stream without affecting any lint.

/// What a token is. Comment *text* is kept — the safety-comment lint
/// and the waiver scanner read it. String-literal *content* is kept
/// too (escapes unprocessed) — the telemetry-key-registry lint reads
/// the key names passed to the Recorder/Tracer surface.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers `r#ident` normalize to
    /// their bare name, so keyword checks never see the `r#`).
    Ident(String),
    /// One punctuation character (`.`, `!`, `(`, `{`, …).
    Punct(char),
    /// `// …` comment, text without the slashes (doc comments too).
    LineComment(String),
    /// `/* … */` comment, text without the delimiters.
    BlockComment(String),
    /// A string / raw-string / byte-string literal; content without the
    /// delimiters, escape sequences left as written.
    Str(String),
    /// A char or byte-char literal (content discarded).
    Literal,
    /// A lifetime such as `'a`.
    Lifetime,
    /// Numeric literal (content discarded).
    Number,
}

/// One token with the 1-based line it starts on.
#[derive(Clone, Debug)]
pub struct Tok {
    pub line: u32,
    pub kind: TokKind,
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// The comment text, if this token is a comment of either flavor.
    pub fn comment(&self) -> Option<&str> {
        match &self.kind {
            TokKind::LineComment(s) | TokKind::BlockComment(s) => Some(s),
            _ => None,
        }
    }

    /// True for `'a`-style lifetime (or char-literal) tokens.
    pub fn is_lifetime(&self) -> bool {
        matches!(self.kind, TokKind::Lifetime)
    }

    /// The literal content, if this token is a string-flavored literal.
    pub fn str_lit(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Tokenize `src`. Unterminated constructs consume to end of input
/// rather than erroring: the analyzer lints plausible Rust that `rustc`
/// already accepted, so recovery beats rejection.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer {
    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                'r' if self.raw_string_ahead(1) => {
                    self.bump();
                    self.raw_string(line);
                }
                // Raw identifier `r#ident`: normalize to the bare name
                // so downstream keyword/symbol scans never see a stray
                // `#` + keyword pair desyncing their token patterns.
                'r' if self.peek(1) == Some('#')
                    && self
                        .peek(2)
                        .is_some_and(|c| c == '_' || c.is_alphanumeric()) =>
                {
                    self.bump();
                    self.bump();
                    self.ident(line);
                }
                'b' => match (self.peek(1), self.peek(2)) {
                    (Some('"'), _) => {
                        self.bump();
                        self.string(line);
                    }
                    (Some('\''), _) => {
                        self.bump();
                        self.char_literal(line);
                    }
                    (Some('r'), _) if self.raw_string_ahead(2) => {
                        self.bump();
                        self.bump();
                        self.raw_string(line);
                    }
                    _ => self.ident(line),
                },
                '\'' => self.quote(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c == '_' || c.is_alphanumeric() => self.ident(line),
                c => {
                    self.bump();
                    self.push(line, TokKind::Punct(c));
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, line: u32, kind: TokKind) {
        self.out.push(Tok { line, kind });
    }

    /// Is `r`/`br` at offset `from` the start of a raw string, i.e.
    /// followed by zero or more `#` then `"`?
    fn raw_string_ahead(&self, from: usize) -> bool {
        let mut i = from;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(line, TokKind::LineComment(text));
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
                text.push_str("/*");
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(line, TokKind::BlockComment(text));
    }

    /// A `"…"` string (the opening quote is at the cursor). Escape
    /// sequences are kept as written: the lints compare literal keys
    /// that never contain escapes, so decoding would be dead weight.
    fn string(&mut self, line: u32) {
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    text.push(c);
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                '"' => break,
                _ => text.push(c),
            }
        }
        self.push(line, TokKind::Str(text));
    }

    /// A raw string `#…#"…"#…#` (cursor on the first `#` or the quote;
    /// the `r`/`br` prefix is already consumed).
    fn raw_string(&mut self, line: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let mut text = String::new();
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        text.push(c);
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            text.push(c);
        }
        self.push(line, TokKind::Str(text));
    }

    /// `'` — either a char literal or a lifetime.
    fn quote(&mut self, line: u32) {
        // Lifetime: 'ident not followed by a closing quote.
        let mut i = 1;
        let mut saw_ident = false;
        while let Some(c) = self.peek(i) {
            if c == '_' || c.is_alphanumeric() {
                saw_ident = true;
                i += 1;
            } else {
                break;
            }
        }
        if saw_ident && self.peek(i) != Some('\'') {
            for _ in 0..i {
                self.bump();
            }
            self.push(line, TokKind::Lifetime);
            return;
        }
        self.char_literal(line);
    }

    /// A char/byte literal (cursor on the opening quote).
    fn char_literal(&mut self, line: u32) {
        self.bump();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(line, TokKind::Literal);
    }

    fn number(&mut self, line: u32) {
        // Consume the alphanumeric run (covers 0x…, 1e3, 1_000u64); a
        // trailing `.` digit sequence is folded in so `1.5` is one token.
        while let Some(c) = self.peek(0) {
            let continues = c == '_'
                || c.is_alphanumeric()
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()));
            if !continues {
                break;
            }
            self.bump();
        }
        self.push(line, TokKind::Number);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(line, TokKind::Ident(text));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = lex("fn f() { x.unwrap() }");
        let idents: Vec<&str> = toks.iter().filter_map(|t| t.ident()).collect();
        assert_eq!(idents, ["fn", "f", "x", "unwrap"]);
        assert!(toks.iter().any(|t| t.is_punct('.')));
    }

    fn strs(src: &str) -> Vec<String> {
        lex(src)
            .iter()
            .filter_map(|t| t.str_lit().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "unsafe { panic!() }";"#);
        assert!(!toks
            .iter()
            .any(|k| matches!(k, TokKind::Ident(s) if s == "unsafe" || s == "panic")));
        assert!(matches!(&toks[3], TokKind::Str(s) if s == "unsafe { panic!() }"));
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = kinds(r##"let s = r#"an "unsafe" quote"#; let b = b"unwrap"; let c = br"x";"##);
        assert!(!toks
            .iter()
            .any(|k| matches!(k, TokKind::Ident(s) if s == "unsafe" || s == "unwrap")));
        assert_eq!(
            toks.iter().filter(|k| matches!(k, TokKind::Str(_))).count(),
            3,
            "{toks:?}"
        );
    }

    #[test]
    fn string_content_is_kept_for_the_key_lints() {
        assert_eq!(strs(r#"rec.add("step2.pairs", n);"#), ["step2.pairs"]);
        // Escapes stay as written; keys never contain them anyway.
        assert_eq!(strs(r#"let s = "a\"b\\c";"#), [r#"a\"b\\c"#]);
    }

    /// Regression battery (ISSUE 8 satellite): raw strings with hash
    /// guards must not desync the token stream or line numbers —
    /// everything after the literal must lex at its true position.
    #[test]
    fn raw_string_regressions_keep_positions() {
        // Embedded quote, embedded quote+hash shorter than the guard,
        // zero-hash raw string with a backslash (raw strings have no
        // escapes), and a byte-raw string.
        for (src, content) in [
            (r###"let s = r#"a"b"#; after();"###, r#"a"b"#),
            (r####"let s = r##"x"#y"##; after();"####, r##"x"#y"##),
            ("let s = r\"\\\"; after();", "\\"),
            (
                r###"let s = br#"raw "bytes""#; after();"###,
                r#"raw "bytes""#,
            ),
        ] {
            let toks = lex(src);
            assert_eq!(strs(src), [content], "{src}");
            let after = toks.iter().find(|t| t.ident() == Some("after"));
            assert!(after.is_some(), "token stream desynced on {src}: {toks:?}");
            assert_eq!(after.unwrap().line, 1, "{src}");
        }
        // Multi-line raw string: line counting resumes correctly.
        let toks = lex("let a = r#\"multi\nline\"#;\nzap();");
        let zap = toks.iter().find(|t| t.ident() == Some("zap")).unwrap();
        assert_eq!(zap.line, 3);
        // Unterminated raw string recovers by consuming to EOF.
        assert_eq!(strs("let s = r#\"never closed"), ["never closed"]);
    }

    /// Regression battery (ISSUE 8 satellite): nested block comments.
    #[test]
    fn nested_block_comment_regressions_keep_positions() {
        // Two levels, text preserved, following token at position.
        let toks = lex("/* a /* b */ c */ qux();");
        assert_eq!(toks[0].comment(), Some(" a /* b */ c "));
        assert_eq!(toks[1].ident(), Some("qux"));
        // Three levels across lines.
        let toks = lex("/* 1 /* 2\n/* 3 */ 2 */ 1 */\nmarker();");
        let marker = toks.iter().find(|t| t.ident() == Some("marker")).unwrap();
        assert_eq!(marker.line, 3);
        // `/*/` does not self-close (the `/` belongs to the text).
        let toks = lex("/*/ tricky */ w();");
        assert_eq!(toks[0].comment(), Some("/ tricky "));
        assert_eq!(toks[1].ident(), Some("w"));
        // A `*/` inside a string inside code after the comment is inert.
        assert_eq!(strs("/* c */ let s = \"*/\";"), ["*/"]);
    }

    /// Raw identifiers normalize to their bare name: `r#fn` must not
    /// leak a `fn` keyword token into the symbol scanner.
    #[test]
    fn raw_identifiers_lex_as_one_ident() {
        let toks = lex("let r#fn = r#type; r#match();");
        let idents: Vec<&str> = toks.iter().filter_map(|t| t.ident()).collect();
        assert_eq!(idents, ["let", "fn", "type", "match"]);
        assert!(!toks.iter().any(|t| t.is_punct('#')));
        // But `r` alone, and raw strings, still lex as before.
        let toks = lex(r##"let r = 1; let s = r#"x"#;"##);
        assert!(toks.iter().any(|t| t.ident() == Some("r")));
        assert_eq!(strs(r##"let r = 1; let s = r#"x"#;"##), ["x"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(toks.iter().filter(|k| **k == TokKind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|k| **k == TokKind::Literal).count(), 2);
    }

    #[test]
    fn comments_keep_text_and_lines() {
        let toks = lex("// SAFETY: fine\nlet x = 1; /* outer /* nested */ still */\n");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[0].comment(), Some(" SAFETY: fine"));
        let block = toks.iter().find(|t| t.comment().is_some() && t.line == 2);
        assert!(block.is_some());
        assert!(block
            .and_then(|t| t.comment())
            .is_some_and(|c| c.contains("nested")));
    }

    #[test]
    fn line_numbers_advance_through_literals() {
        let toks = lex("let a = \"multi\nline\";\nfoo();");
        let foo = toks.iter().find(|t| t.ident() == Some("foo")).unwrap();
        assert_eq!(foo.line, 3);
    }

    #[test]
    fn comment_inside_string_is_not_a_comment() {
        let toks = lex(r#"let s = "// SAFETY: not a comment";"#);
        assert!(toks.iter().all(|t| t.comment().is_none()));
    }
}
