//! A small hand-rolled Rust tokenizer.
//!
//! The lints only need a faithful separation of *code* from *comments
//! and literals* — `unsafe` inside a string must not trip the
//! safety-comment lint, a `// SAFETY:` inside a string must not satisfy
//! it. So the lexer handles exactly the lexical features that matter
//! for that separation: line and (nested) block comments, string /
//! raw-string / byte-string / char literals, lifetimes vs char
//! literals, identifiers and single-character punctuation. Everything
//! else (numeric literal forms, multi-character operators) degrades to
//! a benign token stream without affecting any lint.

/// What a token is. Comment *text* is kept — the safety-comment lint
/// and the waiver scanner read it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// One punctuation character (`.`, `!`, `(`, `{`, …).
    Punct(char),
    /// `// …` comment, text without the slashes (doc comments too).
    LineComment(String),
    /// `/* … */` comment, text without the delimiters.
    BlockComment(String),
    /// Any string/char/byte literal (content discarded).
    Literal,
    /// A lifetime such as `'a`.
    Lifetime,
    /// Numeric literal (content discarded).
    Number,
}

/// One token with the 1-based line it starts on.
#[derive(Clone, Debug)]
pub struct Tok {
    pub line: u32,
    pub kind: TokKind,
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// The comment text, if this token is a comment of either flavor.
    pub fn comment(&self) -> Option<&str> {
        match &self.kind {
            TokKind::LineComment(s) | TokKind::BlockComment(s) => Some(s),
            _ => None,
        }
    }
}

/// Tokenize `src`. Unterminated constructs consume to end of input
/// rather than erroring: the analyzer lints plausible Rust that `rustc`
/// already accepted, so recovery beats rejection.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer {
    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                'r' if self.raw_string_ahead(1) => {
                    self.bump();
                    self.raw_string(line);
                }
                'b' => match (self.peek(1), self.peek(2)) {
                    (Some('"'), _) => {
                        self.bump();
                        self.string(line);
                    }
                    (Some('\''), _) => {
                        self.bump();
                        self.char_literal(line);
                    }
                    (Some('r'), _) if self.raw_string_ahead(2) => {
                        self.bump();
                        self.bump();
                        self.raw_string(line);
                    }
                    _ => self.ident(line),
                },
                '\'' => self.quote(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c == '_' || c.is_alphanumeric() => self.ident(line),
                c => {
                    self.bump();
                    self.push(line, TokKind::Punct(c));
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, line: u32, kind: TokKind) {
        self.out.push(Tok { line, kind });
    }

    /// Is `r`/`br` at offset `from` the start of a raw string, i.e.
    /// followed by zero or more `#` then `"`?
    fn raw_string_ahead(&self, from: usize) -> bool {
        let mut i = from;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(line, TokKind::LineComment(text));
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
                text.push_str("/*");
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(line, TokKind::BlockComment(text));
    }

    /// A `"…"` string (the opening quote is at the cursor).
    fn string(&mut self, line: u32) {
        self.bump();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(line, TokKind::Literal);
    }

    /// A raw string `#…#"…"#…#` (cursor on the first `#` or the quote;
    /// the `r`/`br` prefix is already consumed).
    fn raw_string(&mut self, line: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(line, TokKind::Literal);
    }

    /// `'` — either a char literal or a lifetime.
    fn quote(&mut self, line: u32) {
        // Lifetime: 'ident not followed by a closing quote.
        let mut i = 1;
        let mut saw_ident = false;
        while let Some(c) = self.peek(i) {
            if c == '_' || c.is_alphanumeric() {
                saw_ident = true;
                i += 1;
            } else {
                break;
            }
        }
        if saw_ident && self.peek(i) != Some('\'') {
            for _ in 0..i {
                self.bump();
            }
            self.push(line, TokKind::Lifetime);
            return;
        }
        self.char_literal(line);
    }

    /// A char/byte literal (cursor on the opening quote).
    fn char_literal(&mut self, line: u32) {
        self.bump();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(line, TokKind::Literal);
    }

    fn number(&mut self, line: u32) {
        // Consume the alphanumeric run (covers 0x…, 1e3, 1_000u64); a
        // trailing `.` digit sequence is folded in so `1.5` is one token.
        while let Some(c) = self.peek(0) {
            let continues = c == '_'
                || c.is_alphanumeric()
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()));
            if !continues {
                break;
            }
            self.bump();
        }
        self.push(line, TokKind::Number);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(line, TokKind::Ident(text));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = lex("fn f() { x.unwrap() }");
        let idents: Vec<&str> = toks.iter().filter_map(|t| t.ident()).collect();
        assert_eq!(idents, ["fn", "f", "x", "unwrap"]);
        assert!(toks.iter().any(|t| t.is_punct('.')));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "unsafe { panic!() }";"#);
        assert!(!toks
            .iter()
            .any(|k| matches!(k, TokKind::Ident(s) if s == "unsafe" || s == "panic")));
        assert!(toks.contains(&TokKind::Literal));
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = kinds(r##"let s = r#"an "unsafe" quote"#; let b = b"unwrap"; let c = br"x";"##);
        assert!(!toks
            .iter()
            .any(|k| matches!(k, TokKind::Ident(s) if s == "unsafe" || s == "unwrap")));
        assert_eq!(
            toks.iter().filter(|k| **k == TokKind::Literal).count(),
            3,
            "{toks:?}"
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(toks.iter().filter(|k| **k == TokKind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|k| **k == TokKind::Literal).count(), 2);
    }

    #[test]
    fn comments_keep_text_and_lines() {
        let toks = lex("// SAFETY: fine\nlet x = 1; /* outer /* nested */ still */\n");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[0].comment(), Some(" SAFETY: fine"));
        let block = toks.iter().find(|t| t.comment().is_some() && t.line == 2);
        assert!(block.is_some());
        assert!(block
            .and_then(|t| t.comment())
            .is_some_and(|c| c.contains("nested")));
    }

    #[test]
    fn line_numbers_advance_through_literals() {
        let toks = lex("let a = \"multi\nline\";\nfoo();");
        let foo = toks.iter().find(|t| t.ident() == Some("foo")).unwrap();
        assert_eq!(foo.line, 3);
    }

    #[test]
    fn comment_inside_string_is_not_a_comment() {
        let toks = lex(r#"let s = "// SAFETY: not a comment";"#);
        assert!(toks.iter().all(|t| t.comment().is_none()));
    }
}
