//! The lint suite. Each lint walks the token stream of one
//! [`SourceFile`] and reports [`Diagnostic`]s; inline waivers
//! (`// analyzer: allow(<lint>) -- reason`) and `#[cfg(test)]` regions
//! are honored where documented.

use std::collections::BTreeSet;

use crate::diag::Diagnostic;
use crate::source::{LineKind, SourceFile};

pub const SAFETY_COMMENT: &str = "safety-comment";
pub const UNSAFE_SCOPE: &str = "unsafe-scope";
pub const HOT_PATH_NO_PANIC: &str = "hot-path-no-panic";
pub const HOT_PATH_NO_ALLOC: &str = "hot-path-no-alloc";
pub const DETERMINISM: &str = "determinism";
pub const RECORDER_OFF_HOT_LOOP: &str = "recorder-off-hot-loop";
pub const PLACEHOLDER_URL: &str = "placeholder-url";
pub const MANIFEST_STUB: &str = "manifest-stub";
pub const TELEMETRY_KEY_REGISTRY: &str = "telemetry-key-registry";
pub const WAIVER_HYGIENE: &str = "waiver-hygiene";
pub const CONFIG_INTEGRITY: &str = "config-integrity";

/// Which lints apply to the file being checked, derived from
/// `analyzer.toml` by the driver (or built directly by fixture tests).
#[derive(Clone, Copy, Debug, Default)]
pub struct LintSelection {
    /// `unsafe-scope`: this crate may use `unsafe` (skips the
    /// `#![forbid(unsafe_code)]` requirement on its roots).
    pub allow_unsafe: bool,
    /// `hot-path-no-panic` applies (file is a designated hot module).
    pub hot_module: bool,
    /// `determinism` clock ban applies (crate is not telemetry/bench/cli).
    pub ban_wall_clock: bool,
    /// `determinism` HashMap ban applies (file produces reports/JSON).
    pub ordered_module: bool,
    /// `recorder-off-hot-loop` applies (file is a kernel module).
    pub kernel_module: bool,
    /// `hot-path-no-alloc` applies (file holds kernel inner loops).
    pub no_alloc_module: bool,
}

/// Run every applicable lint over `file`.
pub fn check_file(file: &SourceFile, sel: &LintSelection) -> Vec<Diagnostic> {
    let mut out = file.waiver_problems();
    out.extend(safety_comment(file));
    if !sel.allow_unsafe && file.is_crate_root {
        out.extend(unsafe_scope(file));
    }
    if sel.hot_module {
        out.extend(hot_path_no_panic(file));
    }
    out.extend(determinism(file, sel));
    if sel.kernel_module {
        out.extend(recorder_off_hot_loop(file));
    }
    if sel.no_alloc_module {
        out.extend(hot_path_no_alloc(file));
    }
    out.sort();
    out
}

/// `safety-comment`: every `unsafe` keyword must be justified by a
/// `// SAFETY:` comment on the same line or in the contiguous
/// comment/attribute block directly above (a `# Safety` doc section
/// also counts, matching rustdoc convention for `unsafe fn`).
fn safety_comment(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for t in &file.toks {
        if t.ident() != Some("unsafe") {
            continue;
        }
        if file.waived(SAFETY_COMMENT, t.line) {
            continue;
        }
        if has_safety_comment(file, t.line) {
            continue;
        }
        out.push(Diagnostic::new(
            &file.path,
            t.line,
            SAFETY_COMMENT,
            "`unsafe` without a `// SAFETY:` comment directly above",
        ));
    }
    out
}

fn is_safety_text(text: &str) -> bool {
    text.contains("SAFETY:") || text.contains("# Safety")
}

fn has_safety_comment(file: &SourceFile, line: u32) -> bool {
    if file.comments_on(line).iter().any(|c| is_safety_text(c)) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l >= 1 {
        match file.line_kind(l) {
            LineKind::CommentOnly | LineKind::Attr => {
                if file.comments_on(l).iter().any(|c| is_safety_text(c)) {
                    return true;
                }
                l -= 1;
            }
            _ => break,
        }
    }
    false
}

/// `unsafe-scope`: crate roots outside the unsafe allow-list must
/// declare `#![forbid(unsafe_code)]`.
fn unsafe_scope(file: &SourceFile) -> Vec<Diagnostic> {
    let toks = &file.toks;
    let mut i = 0;
    while i + 7 < toks.len() {
        if toks[i].is_punct('#')
            && toks[i + 1].is_punct('!')
            && toks[i + 2].is_punct('[')
            && toks[i + 3].ident() == Some("forbid")
            && toks[i + 4].is_punct('(')
            && toks[i + 5].ident() == Some("unsafe_code")
            && toks[i + 6].is_punct(')')
            && toks[i + 7].is_punct(']')
        {
            return Vec::new();
        }
        i += 1;
    }
    vec![Diagnostic::new(
        &file.path,
        1,
        UNSAFE_SCOPE,
        "crate root must declare #![forbid(unsafe_code)] (crate is not on the unsafe allow-list)",
    )]
}

/// `hot-path-no-panic`: `.unwrap()`, `.expect(`, `panic!`, `todo!`,
/// `unimplemented!` are banned in hot modules outside `#[cfg(test)]`.
fn hot_path_no_panic(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let toks = &file.toks;
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        let call = match name {
            "unwrap" | "expect" => {
                let method = i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('));
                if !method {
                    continue;
                }
                format!(".{name}()")
            }
            "panic" | "todo" | "unimplemented" => {
                if !toks.get(i + 1).is_some_and(|n| n.is_punct('!')) {
                    continue;
                }
                format!("{name}!")
            }
            _ => continue,
        };
        if file.in_test_code(t.line) || file.waived(HOT_PATH_NO_PANIC, t.line) {
            continue;
        }
        out.push(Diagnostic::new(
            &file.path,
            t.line,
            HOT_PATH_NO_PANIC,
            format!(
                "{call} in a hot module (return a Result or add a waiver with a justification)"
            ),
        ));
    }
    out
}

/// Constructor names that heap-allocate when reached through a
/// `Type::ctor` path (`Vec::new`, `String::with_capacity`, …). Shared
/// with the pass-1 symbol scanner ([`crate::symbols`]).
pub(crate) const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from"];
/// Allocating method calls, flagged when invoked as methods.
pub(crate) const ALLOC_METHODS: &[&str] = &["to_vec", "to_owned", "to_string", "collect"];

/// `hot-path-no-alloc`: heap-allocating idioms (`Vec::new`, `vec!`,
/// `format!`, `.collect()`, …) inside `for`/`while`/`loop` bodies of
/// kernel modules. The kernels amortize buffers by hoisting them into
/// scratch structs; an allocation that genuinely belongs in a loop
/// (e.g. a per-work-item result vector that is moved out) takes a
/// waiver with a justification.
fn hot_path_no_alloc(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let toks = &file.toks;
    // Brace stack: `true` marks a `{` that opened a loop body. Any
    // `true` on the stack means the current token is in a loop,
    // including closures defined inside one (they run per iteration).
    let mut stack: Vec<bool> = Vec::new();
    let mut loops_open = 0usize;
    let mut pending_loop = false;
    // `impl Trait for Type {` uses `for` as a keyword that opens the
    // impl body, not a loop; suppress until that header's brace.
    let mut in_impl_header = false;
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct('{') {
            stack.push(pending_loop);
            loops_open += pending_loop as usize;
            pending_loop = false;
            in_impl_header = false;
            continue;
        }
        if t.is_punct('}') {
            loops_open -= stack.pop().unwrap_or(false) as usize;
            continue;
        }
        if t.is_punct(';') {
            in_impl_header = false;
            continue;
        }
        let Some(name) = t.ident() else { continue };
        match name {
            "impl" => {
                in_impl_header = true;
                continue;
            }
            "for" | "while" | "loop" => {
                if !in_impl_header {
                    pending_loop = true;
                }
                continue;
            }
            _ => {}
        }
        if loops_open == 0 {
            continue;
        }
        let alloc = match name {
            "Vec" | "String" | "Box" => {
                let pathed = toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|a| a.is_punct(':'));
                match toks.get(i + 3).and_then(|a| a.ident()) {
                    Some(ctor) if pathed && ALLOC_CTORS.contains(&ctor) => {
                        format!("{name}::{ctor}")
                    }
                    _ => continue,
                }
            }
            "vec" | "format" => {
                if !toks.get(i + 1).is_some_and(|n| n.is_punct('!')) {
                    continue;
                }
                format!("{name}!")
            }
            m if ALLOC_METHODS.contains(&m) => {
                let method = i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('));
                if !method {
                    continue;
                }
                format!(".{m}()")
            }
            _ => continue,
        };
        if file.in_test_code(t.line) || file.waived(HOT_PATH_NO_ALLOC, t.line) {
            continue;
        }
        out.push(Diagnostic::new(
            &file.path,
            t.line,
            HOT_PATH_NO_ALLOC,
            format!(
                "{alloc} inside a loop in a kernel module (hoist the buffer into scratch \
                 or add a waiver with a justification)"
            ),
        ));
    }
    out
}

/// `determinism`: wall-clock reads outside the crates whose job is
/// timing, and `HashMap`/`HashSet` (unstable iteration order) in
/// modules that produce reports or JSON.
fn determinism(file: &SourceFile, sel: &LintSelection) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let toks = &file.toks;
    for (i, t) in toks.iter().enumerate() {
        match t.ident() {
            Some(ty @ ("Instant" | "SystemTime")) if sel.ban_wall_clock => {
                let is_now = toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|a| a.is_punct(':'))
                    && toks.get(i + 3).and_then(|a| a.ident()) == Some("now");
                if !is_now || file.in_test_code(t.line) || file.waived(DETERMINISM, t.line) {
                    continue;
                }
                out.push(Diagnostic::new(
                    &file.path,
                    t.line,
                    DETERMINISM,
                    format!("{ty}::now() outside the timing crates (telemetry/bench/cli)"),
                ));
            }
            Some(map @ ("HashMap" | "HashSet")) if sel.ordered_module => {
                if file.in_test_code(t.line) || file.waived(DETERMINISM, t.line) {
                    continue;
                }
                out.push(Diagnostic::new(
                    &file.path,
                    t.line,
                    DETERMINISM,
                    format!(
                        "{map} in a report/JSON-producing module (use BTreeMap/BTreeSet for stable order)"
                    ),
                ));
            }
            _ => {}
        }
    }
    out
}

/// Hosts that mark a manifest URL as an unedited template leftover.
const PLACEHOLDER_HOSTS: &[&str] = &["example.org", "example.com", "example.net"];

/// `placeholder-url` / `manifest-stub`: Cargo manifests must not ship
/// template leftovers. RFC 2606 example hosts in a `repository`/
/// `homepage` URL, a `version = "0.0.0"` never bumped off the stub
/// value, and an empty `description = ""` all mean the field was
/// scaffolded and forgotten. Checked line-by-line on the raw manifest
/// text (no waivers; fill in the field instead).
pub fn check_manifest(rel: &str, text: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if let Some(host) = PLACEHOLDER_HOSTS.iter().find(|h| line.contains(*h)) {
            out.push(Diagnostic::new(
                rel,
                i as u32 + 1,
                PLACEHOLDER_URL,
                format!("placeholder host `{host}` in a Cargo manifest"),
            ));
        }
        let trimmed = line.trim();
        let value_is = |key: &str, value: &str| -> bool {
            trimmed
                .strip_prefix(key)
                .map(str::trim_start)
                .and_then(|rest| rest.strip_prefix('='))
                .is_some_and(|rest| rest.trim() == value)
        };
        if value_is("version", "\"0.0.0\"") {
            out.push(Diagnostic::new(
                rel,
                i as u32 + 1,
                MANIFEST_STUB,
                "stub version `0.0.0` in a Cargo manifest".to_string(),
            ));
        }
        if value_is("description", "\"\"") {
            out.push(Diagnostic::new(
                rel,
                i as u32 + 1,
                MANIFEST_STUB,
                "empty `description` in a Cargo manifest".to_string(),
            ));
        }
    }
    out
}

/// Identifiers that mean telemetry crossed into a kernel module.
pub(crate) const RECORDER_IDENTS: &[&str] = &[
    "Recorder",
    "SpanGuard",
    "MemRecorder",
    "NullRecorder",
    "psc_telemetry",
    // The flight-recorder surface is held to the same discipline: a
    // kernel returns plain timing structs, the driver commits them.
    "Tracer",
    "RingTracer",
    "NullTracer",
    "UnitTrace",
    "UnitEvent",
    "TraceClock",
];
/// Recorder/Tracer method names, flagged when invoked as methods.
pub(crate) const RECORDER_METHODS: &[&str] = &["record_span", "set_meta", "observe", "commit"];

/// `recorder-off-hot-loop`: kernel modules must not touch the telemetry
/// surface at all — PR 2's zero-overhead promise, mechanized, and since
/// PR 7 covering the flight recorder (`Tracer`) too. No waivers:
/// instrumentation belongs in the drivers around the kernels.
fn recorder_off_hot_loop(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let toks = &file.toks;
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        let hit = RECORDER_IDENTS.contains(&name)
            || (RECORDER_METHODS.contains(&name)
                && i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|n| n.is_punct('(')));
        if !hit || file.in_test_code(t.line) {
            continue;
        }
        out.push(Diagnostic::new(
            &file.path,
            t.line,
            RECORDER_OFF_HOT_LOOP,
            format!("`{name}` inside a kernel module — telemetry must stay off the hot loop"),
        ));
    }
    out
}

/// Recorder/Tracer entry points that take a telemetry *name*, and
/// which argument position carries it.
const KEY_SINKS_METHOD: &[&str] = &["add", "observe", "record_span", "set_meta"];
const KEY_SINKS_PATH: &[(&str, &str, usize)] = &[
    ("SpanGuard", "enter", 1),
    ("UnitEvent", "span", 0),
    ("UnitEvent", "mark", 0),
];

/// The declared key set: every string literal in the registry module,
/// outside test code. Helper fns for dynamic key families live in the
/// same module, so their format templates register too.
pub fn registry_keys(file: &SourceFile) -> BTreeSet<String> {
    file.toks
        .iter()
        .filter(|t| !file.in_test_code(t.line))
        .filter_map(|t| t.str_lit())
        .map(str::to_string)
        .collect()
}

/// `telemetry-key-registry`: a string literal passed as the *name*
/// argument of a Recorder/Tracer sink must be declared in the keys
/// registry. Names that arrive through a const or a helper fn are
/// trusted (the registry module is where those live) — the lint exists
/// to stop ad-hoc literals from drifting the emitter vocabulary away
/// from what `psc report` and `--compare` read.
pub fn telemetry_keys(file: &SourceFile, keys: &BTreeSet<String>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let toks = &file.toks;
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        if !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        let method = i > 0 && toks[i - 1].is_punct('.');
        let arg_index = if method && KEY_SINKS_METHOD.contains(&name) {
            0
        } else if i >= 3 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
            let qual = toks[i - 3].ident();
            match KEY_SINKS_PATH
                .iter()
                .find(|(q, m, _)| qual == Some(q) && *m == name)
            {
                Some((_, _, idx)) => *idx,
                None => continue,
            }
        } else {
            continue;
        };
        // Walk the argument list; literals in the name position must
        // be registered. A `format!` in that position is scanned too:
        // dynamic key families belong in the registry as helper fns.
        let mut depth = 1usize;
        let mut arg = 0usize;
        let mut j = i + 2;
        while depth > 0 {
            let Some(tok) = toks.get(j) else { break };
            match &tok.kind {
                crate::lexer::TokKind::Punct('(' | '[' | '{') => depth += 1,
                crate::lexer::TokKind::Punct(')' | ']' | '}') => depth -= 1,
                crate::lexer::TokKind::Punct(',') if depth == 1 => arg += 1,
                _ => {
                    if arg == arg_index {
                        if let Some(s) = tok.str_lit() {
                            if !keys.contains(s)
                                && !file.in_test_code(tok.line)
                                && !file.waived(TELEMETRY_KEY_REGISTRY, tok.line)
                            {
                                out.push(Diagnostic::new(
                                    &file.path,
                                    tok.line,
                                    TELEMETRY_KEY_REGISTRY,
                                    format!(
                                        "telemetry key {s:?} is not declared in the keys registry \
                                         (add it to psc-telemetry's `keys` module and use the const)"
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::new("crates/x/src/lib.rs", "x", true, src)
    }

    fn lints(d: &[Diagnostic]) -> Vec<&str> {
        d.iter().map(|d| d.lint).collect()
    }

    #[test]
    fn safety_comment_accepts_preceding_and_doc_forms() {
        let ok = file(
            "// SAFETY: pointer is valid\nlet x = unsafe { *p };\n\n/// # Safety\n/// Caller checks AVX2.\n#[target_feature(enable = \"avx2\")]\npub unsafe fn k() {}\n",
        );
        assert!(safety_comment(&ok).is_empty());
        let bad = file("let x = unsafe { *p };\n");
        assert_eq!(lints(&safety_comment(&bad)), [SAFETY_COMMENT]);
    }

    #[test]
    fn safety_comment_not_satisfied_across_code() {
        let f = file("// SAFETY: stale comment\nlet y = 1;\nlet x = unsafe { *p };\n");
        assert_eq!(safety_comment(&f).len(), 1);
    }

    #[test]
    fn unsafe_scope_requires_forbid() {
        let missing = file("//! docs\npub fn f() {}\n");
        assert_eq!(
            lints(&check_file(&missing, &LintSelection::default())),
            [UNSAFE_SCOPE]
        );
        let ok = file("//! docs\n#![forbid(unsafe_code)]\npub fn f() {}\n");
        assert!(check_file(&ok, &LintSelection::default()).is_empty());
        let allowed = LintSelection {
            allow_unsafe: true,
            ..LintSelection::default()
        };
        assert!(check_file(&missing, &allowed).is_empty());
    }

    #[test]
    fn hot_path_flags_panics_outside_tests() {
        let f = file(
            "fn hot() {\n    x.unwrap();\n    y.expect(\"m\");\n    panic!(\"no\");\n    todo!();\n    unimplemented!();\n}\n#[cfg(test)]\nmod tests {\n    fn t() { z.unwrap(); }\n}\n",
        );
        assert_eq!(hot_path_no_panic(&f).len(), 5);
    }

    #[test]
    fn hot_path_ignores_non_method_unwrap_idents() {
        // A fn *named* unwrap, or unwrap_or, must not trip the lint.
        let f = file("fn unwrap() {}\nfn g() { x.unwrap_or(0); h.unwrap_or_default(); }\n");
        assert!(hot_path_no_panic(&f).is_empty());
    }

    #[test]
    fn hot_path_waiver_with_reason() {
        let f = file(
            "fn hot() {\n    // analyzer: allow(hot-path-no-panic) -- full FIFO implies pop succeeds\n    fifo.pop().unwrap();\n}\n",
        );
        assert!(hot_path_no_panic(&f).is_empty());
        assert!(f.waiver_problems().is_empty());
    }

    #[test]
    fn determinism_clock_and_hashmap() {
        let sel = LintSelection {
            ban_wall_clock: true,
            ordered_module: true,
            ..LintSelection::default()
        };
        let f = file(
            "use std::collections::HashMap;\nfn f() -> std::time::Instant { std::time::Instant::now() }\n",
        );
        let found = determinism(&f, &sel);
        assert_eq!(lints(&found), [DETERMINISM, DETERMINISM]);
        // `Instant` alone (no ::now) is fine: storing one is harmless.
        let store = file("struct S { t0: std::time::Instant }\n");
        assert!(determinism(&store, &sel).is_empty());
    }

    #[test]
    fn manifest_placeholder_hosts_flagged() {
        let bad = "[package]\nname = \"x\"\nrepository = \"https://example.org/x\"\n";
        let found = check_manifest("crates/x/Cargo.toml", bad);
        assert_eq!(lints(&found), [PLACEHOLDER_URL]);
        assert_eq!(found[0].line, 3);
        let ok = "[package]\nname = \"x\"\nrepository = \"https://github.com/org/x\"\n";
        assert!(check_manifest("crates/x/Cargo.toml", ok).is_empty());
    }

    #[test]
    fn manifest_stub_fields_flagged() {
        let bad = "[package]\nname = \"x\"\nversion = \"0.0.0\"\ndescription = \"\"\n";
        let found = check_manifest("crates/x/Cargo.toml", bad);
        assert_eq!(lints(&found), [MANIFEST_STUB, MANIFEST_STUB]);
        assert_eq!(found[0].line, 3);
        assert!(found[0].message.contains("0.0.0"));
        assert_eq!(found[1].line, 4);
        assert!(found[1].message.contains("description"));
        // Real values, workspace inheritance, spacing variants, and
        // unrelated keys that merely end in the watched names all pass.
        for ok in [
            "version = \"0.1.0\"\ndescription = \"a crate\"\n",
            "version.workspace = true\n",
            "version=\"0.0.0-alpha\"\n",
            "api-version = \"0.0.0\"\n",
            "# version = \"0.0.0\"\n",
        ] {
            assert!(check_manifest("crates/x/Cargo.toml", ok).is_empty(), "{ok}");
        }
        // Spacing does not dodge the lint.
        let spaced = "version   =   \"0.0.0\"\n";
        assert_eq!(
            lints(&check_manifest("c/Cargo.toml", spaced)),
            [MANIFEST_STUB]
        );
    }

    #[test]
    fn no_alloc_flags_only_loop_bodies() {
        let f = file(
            "fn k() {\n    let mut scratch = Vec::new();\n    for i in 0..n {\n        let v = vec![0; 4];\n        let s = format!(\"{i}\");\n        let w: Vec<u32> = xs.iter().collect();\n        let t = Vec::with_capacity(8);\n    }\n    while go {\n        let b = Box::new(1);\n    }\n    let after = Vec::new();\n}\n",
        );
        let found = hot_path_no_alloc(&f);
        assert_eq!(found.len(), 5, "{found:?}");
        assert!(found.iter().all(|d| d.lint == HOT_PATH_NO_ALLOC));
        // Setup allocations outside loops (lines 2 and 12) stay clean.
        assert!(found.iter().all(|d| d.line != 2 && d.line != 12));
    }

    #[test]
    fn no_alloc_ignores_impl_for_and_tests() {
        // `impl Trait for Type` must not count the impl body as a loop.
        let f = file(
            "impl Iterator for K {\n    fn next(&mut self) -> Option<u8> {\n        let v = Vec::new();\n        None\n    }\n}\n#[cfg(test)]\nmod tests {\n    fn t() { for _ in 0..2 { let v = vec![1]; } }\n}\n",
        );
        assert!(hot_path_no_alloc(&f).is_empty());
    }

    #[test]
    fn no_alloc_waiver_with_reason() {
        let f = file(
            "fn k() {\n    loop {\n        // analyzer: allow(hot-path-no-alloc) -- per-item result vector, moved out on send\n        let out = Vec::new();\n    }\n}\n",
        );
        assert!(hot_path_no_alloc(&f).is_empty());
    }

    #[test]
    fn telemetry_keys_flag_unregistered_name_literals() {
        let keys: BTreeSet<String> = ["step2.pairs", "step1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = file(
            "fn drive(rec: &dyn Recorder) {\n    rec.observe(\"step2.pairs\", 1);\n    rec.add(\"step2.typo\", 1);\n    let _g = SpanGuard::enter(rec, \"step1\");\n    let e = UnitEvent::mark(\"unregistered\", 2);\n    rec.set_meta(name_var, \"free-text value\");\n    rec.observe(&format!(\"step2.b{i:02}\"), 1);\n    plain.observe_like(\"not-a-sink\");\n}\n",
        );
        let found = telemetry_keys(&f, &keys);
        let lines: Vec<u32> = found.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![3, 5, 7], "{found:?}");
        assert!(found.iter().all(|d| d.lint == TELEMETRY_KEY_REGISTRY));
        // Registered names, non-literal names, and value-position
        // literals all pass; test code is exempt.
        let test_only = file(
            "#[cfg(test)]\nmod tests {\n    fn t(rec: &dyn Recorder) { rec.observe(\"anything\", 1); }\n}\n",
        );
        assert!(telemetry_keys(&test_only, &keys).is_empty());
    }

    #[test]
    fn registry_keys_collects_nontest_literals() {
        let reg = file(
            "pub const STEP1: &str = \"step1\";\npub fn lane(b: usize) -> String { format!(\"step2.lane.b{b:02}\") }\n#[cfg(test)]\nmod tests { const T: &str = \"test-only\"; }\n",
        );
        let keys = registry_keys(&reg);
        assert!(keys.contains("step1"));
        assert!(keys.contains("step2.lane.b{b:02}"));
        assert!(!keys.contains("test-only"));
    }

    #[test]
    fn recorder_banned_in_kernel_modules() {
        let f =
            file("use psc_telemetry::Recorder;\nfn k(r: &dyn Recorder) { r.observe(\"x\", 1); }\n");
        let found = recorder_off_hot_loop(&f);
        assert!(found.len() >= 3, "{found:?}");
        // And it has no waiver escape hatch.
        let waived = file(
            "// analyzer: allow(recorder-off-hot-loop) -- please\nuse psc_telemetry::Recorder;\n",
        );
        assert!(!recorder_off_hot_loop(&waived).is_empty());
    }
}
