//! Pass 1 of the workspace analysis: extract every `fn` definition
//! from a file's token stream, together with the *facts* the transitive
//! lints care about (panic sites, allocation sites with loop context,
//! wall-clock reads, telemetry-surface touches) and every call site.
//!
//! This is a scanner, not a parser: it tracks just enough structure —
//! a brace stack distinguishing fn bodies, loop bodies and `impl`
//! blocks — to attribute each fact and call to the innermost enclosing
//! function and to know whether it sits inside a loop. Exotic shapes
//! the workspace does not use (braces in const-generic positions,
//! manually implemented `Fn` traits) degrade to missing attribution,
//! never to a crash; the call-graph layer treats anything it cannot
//! see as unresolved-and-assumed-safe, and counts it.

use crate::lexer::Tok;
use crate::source::SourceFile;

/// One `fn` definition found in a file.
#[derive(Clone, Debug)]
pub struct FnDef {
    pub name: String,
    /// `impl` target type for methods and associated fns (`Fifo` for
    /// `impl Fifo { fn push … }`, also set for `impl Trait for Fifo`);
    /// `None` for free fns and trait default methods.
    pub qual: Option<String>,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// False for bodyless signatures (trait method declarations).
    pub has_body: bool,
    /// True when the first parameter is a `self` receiver — a `x.m(…)`
    /// method call can only land on these; associated constructors
    /// (`SeedIndex::build(flat, …)`) are unreachable from method syntax.
    pub has_self: bool,
    /// True when the definition sits under `#[cfg(test)]` / `#[test]`.
    pub is_test: bool,
    pub facts: Facts,
    pub calls: Vec<CallSite>,
}

impl FnDef {
    /// Display name for call chains: `Fifo::push` or `merge`.
    pub fn display(&self) -> String {
        match &self.qual {
            Some(q) => format!("{q}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A line-anchored observation inside a fn body.
#[derive(Clone, Debug)]
pub struct Fact {
    pub line: u32,
    /// What was seen, as the diagnostic prints it (`.unwrap()`,
    /// `Instant::now()`, `Vec::new`, `Recorder`, …).
    pub what: String,
}

/// An allocation fact additionally records loop context: `Vec::new`
/// at the top of a helper is amortizable, the same call inside the
/// helper's own loop is per-iteration work wherever the helper runs.
#[derive(Clone, Debug)]
pub struct AllocFact {
    pub line: u32,
    pub what: String,
    pub in_loop: bool,
}

/// Everything the transitive lints check on a reachable fn.
#[derive(Clone, Debug, Default)]
pub struct Facts {
    /// `.unwrap()` / `.expect(` / `panic!` / `todo!` / `unimplemented!`.
    pub panics: Vec<Fact>,
    /// Heap-allocating idioms, with loop context.
    pub allocs: Vec<AllocFact>,
    /// `Instant::now()` / `SystemTime::now()`.
    pub clocks: Vec<Fact>,
    /// Recorder/Tracer identifiers and method calls.
    pub telemetry: Vec<Fact>,
}

/// How a call site names its target, which decides resolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// `helper(…)` — a free fn, same file first, then workspace-unique.
    Bare,
    /// `qual::helper(…)` — resolved through the qualifier.
    Path,
    /// `x.helper(…)` — resolved by method name across all impls.
    Method,
}

/// One call expression inside a fn body.
#[derive(Clone, Debug)]
pub struct CallSite {
    pub line: u32,
    pub name: String,
    /// Immediate qualifier for [`CallKind::Path`] (`Fifo` in
    /// `Fifo::push(…)`, `Self`, a module name, `crate`, …).
    pub qual: Option<String>,
    pub kind: CallKind,
    /// The call sits inside a loop of the *calling* fn.
    pub in_loop: bool,
}

/// The pass-1 product for one file.
#[derive(Clone, Debug)]
pub struct FileSymbols {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    pub crate_name: String,
    pub fns: Vec<FnDef>,
}

impl FileSymbols {
    /// `step2.rs` for `crates/core/src/step2.rs` — chain display and
    /// module-qualifier matching both use the basename.
    pub fn basename(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }

    /// File stem (`step2`), the token a `step2::helper(…)` path uses.
    pub fn stem(&self) -> &str {
        self.basename()
            .strip_suffix(".rs")
            .unwrap_or(self.basename())
    }
}

/// `fn name<G>(&mut self, …)` — does the parameter list open with a
/// `self` receiver? `j` points just past the fn name; generics before
/// the `(` are skipped by angle-depth.
fn takes_self(toks: &[Tok], mut j: usize) -> bool {
    let mut angle = 0i32;
    while let Some(t) = toks.get(j) {
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if angle == 0 {
            if t.is_punct('(') {
                j += 1;
                while let Some(p) = toks.get(j) {
                    if p.is_punct('&') || p.ident() == Some("mut") || p.is_lifetime() {
                        j += 1;
                        continue;
                    }
                    return p.ident() == Some("self");
                }
                return false;
            }
            if t.is_punct('{') || t.is_punct(';') {
                return false;
            }
        }
        j += 1;
    }
    false
}

/// Identifiers that cannot open a bare call expression.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "move", "ref", "mut", "let", "pub", "use", "mod", "where", "impl", "trait", "struct", "enum",
    "union", "const", "static", "type", "dyn", "unsafe", "async", "await", "fn", "self", "super",
    "crate", "Self",
];

/// Scan one lexed file into its symbol table.
pub fn scan(file: &SourceFile) -> FileSymbols {
    Scanner {
        file,
        fns: Vec::new(),
        stack: Vec::new(),
        fn_stack: Vec::new(),
        impl_stack: Vec::new(),
        pending: Pending::None,
    }
    .run()
}

/// What the next `{` opens.
enum Pending {
    None,
    Fn(usize),
    Loop,
    Impl(Option<String>),
}

/// One open `{` on the scanner's stack.
enum Frame {
    Fn,
    Loop,
    Impl,
    Other,
}

struct Scanner<'a> {
    file: &'a SourceFile,
    fns: Vec<FnDef>,
    stack: Vec<Frame>,
    fn_stack: Vec<usize>,
    impl_stack: Vec<Option<String>>,
    pending: Pending,
}

impl Scanner<'_> {
    fn run(mut self) -> FileSymbols {
        let toks = &self.file.toks;
        for (i, t) in toks.iter().enumerate() {
            if t.is_punct('{') {
                self.open_brace();
                continue;
            }
            if t.is_punct('}') {
                self.close_brace();
                continue;
            }
            if t.is_punct(';') {
                // A `;` before the body brace means the signature was a
                // bodyless declaration (trait method, extern).
                if matches!(self.pending, Pending::Fn(_)) {
                    self.pending = Pending::None;
                }
                continue;
            }
            let Some(name) = t.ident() else { continue };
            match name {
                "fn" => {
                    // Skip `fn` in type position (`fn(u32) -> u32`).
                    if let Some(fname) = toks.get(i + 1).and_then(|n| n.ident()) {
                        let idx = self.fns.len();
                        self.fns.push(FnDef {
                            name: fname.to_string(),
                            qual: self.impl_stack.last().cloned().flatten(),
                            line: t.line,
                            has_body: false,
                            has_self: takes_self(toks, i + 2),
                            is_test: self.file.in_test_code(t.line),
                            facts: Facts::default(),
                            calls: Vec::new(),
                        });
                        self.pending = Pending::Fn(idx);
                    }
                    continue;
                }
                "impl" => {
                    self.pending = Pending::Impl(impl_target(self.file, i));
                    continue;
                }
                "for" | "while" | "loop" => {
                    // `impl Trait for Type` and HRTB `for<'a>` use the
                    // keyword without opening a loop body.
                    let hrtb = name == "for" && toks.get(i + 1).is_some_and(|n| n.is_punct('<'));
                    if !matches!(self.pending, Pending::Impl(_)) && !hrtb {
                        self.pending = Pending::Loop;
                    }
                    continue;
                }
                _ => {}
            }
            if self.fn_stack.is_empty() || self.file.in_test_code(t.line) {
                continue;
            }
            self.fact_or_call(i, name, t.line);
        }
        FileSymbols {
            path: self.file.path.clone(),
            crate_name: self.file.crate_name.clone(),
            fns: self.fns,
        }
    }

    fn open_brace(&mut self) {
        let frame = match std::mem::replace(&mut self.pending, Pending::None) {
            Pending::Fn(idx) => {
                self.fns[idx].has_body = true;
                self.fn_stack.push(idx);
                Frame::Fn
            }
            Pending::Loop => Frame::Loop,
            Pending::Impl(target) => {
                self.impl_stack.push(target);
                Frame::Impl
            }
            Pending::None => Frame::Other,
        };
        self.stack.push(frame);
    }

    fn close_brace(&mut self) {
        match self.stack.pop() {
            Some(Frame::Fn) => {
                self.fn_stack.pop();
            }
            Some(Frame::Impl) => {
                self.impl_stack.pop();
            }
            _ => {}
        }
    }

    /// In a loop of the innermost fn?
    fn in_loop(&self) -> bool {
        for frame in self.stack.iter().rev() {
            match frame {
                Frame::Loop => return true,
                Frame::Fn => return false,
                _ => {}
            }
        }
        false
    }

    fn cur_fn(&mut self) -> &mut FnDef {
        let idx = *self.fn_stack.last().expect("caller checked fn_stack");
        &mut self.fns[idx]
    }

    /// Classify the ident at `i` as a fact or a call site (or neither).
    fn fact_or_call(&mut self, i: usize, name: &str, line: u32) {
        let toks = &self.file.toks;
        let prev_dot = i > 0 && toks[i - 1].is_punct('.');
        let next_paren = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        let next_bang = toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
        let in_loop = self.in_loop();
        let fact = |what: String| Fact { line, what };

        match name {
            "unwrap" | "expect" if prev_dot && next_paren => {
                self.cur_fn().facts.panics.push(fact(format!(".{name}()")));
                return;
            }
            "panic" | "todo" | "unimplemented" if next_bang => {
                self.cur_fn().facts.panics.push(fact(format!("{name}!")));
                return;
            }
            "Vec" | "String" | "Box" => {
                let pathed = toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|a| a.is_punct(':'));
                if let Some(ctor) = toks.get(i + 3).and_then(|a| a.ident()) {
                    if pathed && crate::lints::ALLOC_CTORS.contains(&ctor) {
                        self.cur_fn().facts.allocs.push(AllocFact {
                            line,
                            what: format!("{name}::{ctor}"),
                            in_loop,
                        });
                        return;
                    }
                }
            }
            "vec" | "format" if next_bang => {
                self.cur_fn().facts.allocs.push(AllocFact {
                    line,
                    what: format!("{name}!"),
                    in_loop,
                });
                return;
            }
            m if crate::lints::ALLOC_METHODS.contains(&m) && prev_dot && next_paren => {
                self.cur_fn().facts.allocs.push(AllocFact {
                    line,
                    what: format!(".{m}()"),
                    in_loop,
                });
                return;
            }
            "Instant" | "SystemTime" => {
                let is_now = toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|a| a.is_punct(':'))
                    && toks.get(i + 3).and_then(|a| a.ident()) == Some("now");
                if is_now {
                    self.cur_fn()
                        .facts
                        .clocks
                        .push(fact(format!("{name}::now()")));
                    return;
                }
            }
            m if crate::lints::RECORDER_IDENTS.contains(&m) => {
                self.cur_fn()
                    .facts
                    .telemetry
                    .push(fact(format!("`{name}`")));
                return;
            }
            m if crate::lints::RECORDER_METHODS.contains(&m) && prev_dot && next_paren => {
                self.cur_fn().facts.telemetry.push(fact(format!(".{m}()")));
                return;
            }
            _ => {}
        }

        // Call sites: `name(` with the macro (`name!`), definition
        // (`fn name(`), and keyword forms already excluded above or
        // here. Turbofish (`name::<T>(`) is left unresolved by design:
        // the workspace style spells concrete types at the binding.
        if !next_paren || KEYWORDS.contains(&name) {
            return;
        }
        let prev_ident = i.checked_sub(1).and_then(|p| toks[p].ident());
        if prev_ident == Some("fn") {
            return;
        }
        let (kind, qual) = if prev_dot {
            (CallKind::Method, None)
        } else if i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
            let qual = i.checked_sub(3).and_then(|p| toks[p].ident());
            // The qualifier token already became a fact (`Vec::new`,
            // `Instant::now`, `SpanGuard::enter`): don't double-count
            // the path as a call edge on top of it.
            if let Some(q) = qual {
                let alloc_ctor = matches!(q, "Vec" | "String" | "Box")
                    && crate::lints::ALLOC_CTORS.contains(&name);
                let clock = matches!(q, "Instant" | "SystemTime") && name == "now";
                if alloc_ctor || clock || crate::lints::RECORDER_IDENTS.contains(&q) {
                    return;
                }
            }
            (CallKind::Path, qual.map(str::to_string))
        } else {
            // Capitalized bare parens are tuple-struct / enum-variant
            // constructors (`Some(…)`, `Anchor(…)`), not fn calls.
            if name.chars().next().is_some_and(|c| c.is_uppercase()) {
                return;
            }
            (CallKind::Bare, None)
        };
        self.cur_fn().calls.push(CallSite {
            line,
            name: name.to_string(),
            qual,
            kind,
            in_loop,
        });
    }
}

/// The impl target type from the header starting at the `impl` keyword
/// (token index `i`): the last depth-0 ident of the type position —
/// after `for` in `impl Trait for Type`, before any `where`.
fn impl_target(file: &SourceFile, i: usize) -> Option<String> {
    let toks = &file.toks;
    let mut angle = 0i32;
    let mut target: Option<&str> = None;
    let mut j = i + 1;
    while let Some(t) = toks.get(j) {
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if angle == 0 {
            if t.is_punct('{') || t.is_punct(';') {
                break;
            }
            if let Some(s) = t.ident() {
                match s {
                    "where" => break,
                    "for" => target = None,
                    "dyn" | "crate" | "self" | "super" => {}
                    _ => target = Some(s),
                }
            }
        }
        j += 1;
    }
    target.map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn syms(src: &str) -> FileSymbols {
        scan(&SourceFile::new("crates/x/src/util.rs", "x", false, src))
    }

    fn by_name<'a>(s: &'a FileSymbols, name: &str) -> &'a FnDef {
        s.fns.iter().find(|f| f.name == name).unwrap()
    }

    #[test]
    fn fn_defs_capture_name_qual_and_body() {
        let s = syms(
            "pub fn free() {}\nimpl Fifo {\n    pub fn push(&mut self) {}\n}\nimpl Iterator for Walker {\n    fn next(&mut self) -> Option<u8> { None }\n}\ntrait T {\n    fn sig(&self);\n    fn with_default(&self) {}\n}\n",
        );
        assert_eq!(by_name(&s, "free").qual, None);
        assert_eq!(by_name(&s, "push").qual.as_deref(), Some("Fifo"));
        assert_eq!(by_name(&s, "next").qual.as_deref(), Some("Walker"));
        assert!(!by_name(&s, "sig").has_body);
        assert!(by_name(&s, "with_default").has_body);
        assert_eq!(by_name(&s, "with_default").qual, None);
    }

    #[test]
    fn facts_attach_to_the_innermost_fn_with_loop_context() {
        let s = syms(
            "fn outer() {\n    let a = Vec::new();\n    for _ in 0..3 {\n        let b = vec![1];\n        helper();\n    }\n    x.unwrap();\n}\nfn helper() {\n    let t = std::time::Instant::now();\n}\n",
        );
        let outer = by_name(&s, "outer");
        assert_eq!(outer.facts.panics.len(), 1);
        assert_eq!(outer.facts.allocs.len(), 2);
        assert!(!outer.facts.allocs[0].in_loop, "{:?}", outer.facts);
        assert!(outer.facts.allocs[1].in_loop, "{:?}", outer.facts);
        assert_eq!(outer.calls.len(), 1);
        assert!(outer.calls[0].in_loop);
        let helper = by_name(&s, "helper");
        assert_eq!(helper.facts.clocks.len(), 1);
        assert!(outer.facts.clocks.is_empty());
    }

    #[test]
    fn call_kinds_and_quals() {
        let s = syms(
            "fn f() {\n    bare();\n    module::pathed();\n    Fifo::push_raw();\n    Self::assoc();\n    x.method();\n    Some(1);\n    mac!(arg);\n    if (a) {}\n}\n",
        );
        let calls = &by_name(&s, "f").calls;
        let kinds: Vec<(&str, CallKind, Option<&str>)> = calls
            .iter()
            .map(|c| (c.name.as_str(), c.kind, c.qual.as_deref()))
            .collect();
        assert_eq!(
            kinds,
            vec![
                ("bare", CallKind::Bare, None),
                ("pathed", CallKind::Path, Some("module")),
                ("push_raw", CallKind::Path, Some("Fifo")),
                ("assoc", CallKind::Path, Some("Self")),
                ("method", CallKind::Method, None),
            ]
        );
    }

    #[test]
    fn test_code_yields_no_facts_and_marks_fns() {
        let s = syms(
            "fn real() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); helper(); }\n}\n",
        );
        assert!(!by_name(&s, "real").is_test);
        let t = by_name(&s, "t");
        assert!(t.is_test);
        assert!(t.facts.panics.is_empty());
        assert!(t.calls.is_empty());
    }

    #[test]
    fn impl_for_is_not_a_loop_and_hrtb_is_skipped() {
        let s = syms(
            "impl Drop for Guard {\n    fn drop(&mut self) {\n        let v = Vec::new();\n    }\n}\nfn hr(f: impl for<'a> Fn(&'a u8)) {\n    let v = Vec::new();\n}\n",
        );
        assert!(by_name(&s, "drop").facts.allocs.iter().all(|a| !a.in_loop));
        assert!(by_name(&s, "hr").facts.allocs.iter().all(|a| !a.in_loop));
    }

    #[test]
    fn fact_tokens_are_not_double_counted_as_calls() {
        let s = syms("fn f() {\n    x.unwrap();\n    y.collect();\n    r.observe();\n}\n");
        assert!(by_name(&s, "f").calls.is_empty());
    }
}
