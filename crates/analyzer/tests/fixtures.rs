//! Fixture-driven lint tests: every lint has a violating, a clean, and
//! (where waivers are allowed) a waived fixture under
//! `tests/fixtures/`, exercised through the public [`analyze_source`]
//! entry point exactly as the workspace driver uses it.

use psc_analyzer::{analyze_source, Diagnostic, LintSelection};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn check(name: &str, is_crate_root: bool, sel: &LintSelection) -> Vec<Diagnostic> {
    analyze_source(
        &format!("crates/fix/src/{name}"),
        "fix",
        is_crate_root,
        &fixture(name),
        sel,
    )
}

/// Non-root module file: unsafe-scope does not apply.
fn module_sel(sel: LintSelection) -> LintSelection {
    LintSelection {
        allow_unsafe: true,
        ..sel
    }
}

#[test]
fn safety_comment_fixtures() {
    let sel = module_sel(LintSelection::default());
    let bad = check("safety_comment_bad.rs", false, &sel);
    assert_eq!(bad.len(), 3, "{bad:?}");
    assert!(bad.iter().all(|d| d.lint == "safety-comment"));
    // Diagnostics carry the file:line anchors of the unsafe tokens.
    assert_eq!(
        bad.iter().map(|d| d.line).collect::<Vec<_>>(),
        [4, 7, 12],
        "{bad:?}"
    );
    assert!(check("safety_comment_ok.rs", false, &sel).is_empty());
    assert!(check("safety_comment_waived.rs", false, &sel).is_empty());
}

#[test]
fn unsafe_scope_fixtures() {
    let sel = LintSelection::default();
    let bad = check("unsafe_scope_bad.rs", true, &sel);
    assert_eq!(bad.len(), 1, "{bad:?}");
    assert_eq!(bad[0].lint, "unsafe-scope");
    assert!(check("unsafe_scope_ok.rs", true, &sel).is_empty());
    // The same file as a non-root module needs no declaration.
    assert!(check("unsafe_scope_bad.rs", false, &sel).is_empty());
    // Crates on the unsafe allow-list are exempt.
    let allowed = LintSelection {
        allow_unsafe: true,
        ..LintSelection::default()
    };
    assert!(check("unsafe_scope_bad.rs", true, &allowed).is_empty());
}

#[test]
fn hot_path_fixtures() {
    let sel = module_sel(LintSelection {
        hot_module: true,
        ..LintSelection::default()
    });
    let bad = check("hot_path_bad.rs", false, &sel);
    assert_eq!(bad.len(), 5, "{bad:?}");
    assert!(bad.iter().all(|d| d.lint == "hot-path-no-panic"));
    assert!(check("hot_path_ok.rs", false, &sel).is_empty());
    assert!(check("hot_path_waived.rs", false, &sel).is_empty());
    // Outside a hot module the same source is clean.
    let cold = module_sel(LintSelection::default());
    assert!(check("hot_path_bad.rs", false, &cold).is_empty());
}

#[test]
fn determinism_fixtures() {
    let sel = module_sel(LintSelection {
        ban_wall_clock: true,
        ordered_module: true,
        ..LintSelection::default()
    });
    let bad = check("determinism_bad.rs", false, &sel);
    // Instant::now once; HashMap named three times (use + two sites).
    assert_eq!(bad.len(), 4, "{bad:?}");
    assert!(bad.iter().all(|d| d.lint == "determinism"));
    assert!(check("determinism_ok.rs", false, &sel).is_empty());
    assert!(check("determinism_waived.rs", false, &sel).is_empty());
    // The timing crates may read the clock.
    let timing = module_sel(LintSelection {
        ordered_module: true,
        ..LintSelection::default()
    });
    assert_eq!(check("determinism_bad.rs", false, &timing).len(), 3);
}

#[test]
fn hot_alloc_fixtures() {
    let sel = module_sel(LintSelection {
        no_alloc_module: true,
        ..LintSelection::default()
    });
    let bad = check("hot_alloc_bad.rs", false, &sel);
    // vec!, format!, Vec::with_capacity, .to_string(), Box::new.
    assert_eq!(bad.len(), 5, "{bad:?}");
    assert!(bad.iter().all(|d| d.lint == "hot-path-no-alloc"));
    assert!(check("hot_alloc_ok.rs", false, &sel).is_empty());
    assert!(check("hot_alloc_waived.rs", false, &sel).is_empty());
    // Outside the kernel-module list the same source is clean.
    let cold = module_sel(LintSelection::default());
    assert!(check("hot_alloc_bad.rs", false, &cold).is_empty());
}

#[test]
fn recorder_fixtures() {
    let sel = module_sel(LintSelection {
        kernel_module: true,
        ..LintSelection::default()
    });
    let bad = check("recorder_bad.rs", false, &sel);
    assert!(!bad.is_empty());
    assert!(bad.iter().all(|d| d.lint == "recorder-off-hot-loop"));
    assert!(check("recorder_ok.rs", false, &sel).is_empty());
}

#[test]
fn tracer_fixtures() {
    let sel = module_sel(LintSelection {
        kernel_module: true,
        ..LintSelection::default()
    });
    let bad = check("tracer_bad.rs", false, &sel);
    // psc_telemetry, Tracer x2, UnitTrace x2, .commit(.
    assert_eq!(bad.len(), 6, "{bad:?}");
    assert!(bad.iter().all(|d| d.lint == "recorder-off-hot-loop"));
    // The epoch-in, timings-out shape the step-2 kernel uses is clean,
    // and so is the same file outside the kernel-module list.
    assert!(check("tracer_ok.rs", false, &sel).is_empty());
    let outside = module_sel(LintSelection::default());
    assert!(check("tracer_bad.rs", false, &outside).is_empty());
}

#[test]
fn diagnostics_render_file_line_format() {
    let sel = module_sel(LintSelection {
        hot_module: true,
        ..LintSelection::default()
    });
    let bad = check("hot_path_bad.rs", false, &sel);
    let rendered = bad[0].to_string();
    assert!(
        rendered.starts_with("crates/fix/src/hot_path_bad.rs:4: [hot-path-no-panic]"),
        "{rendered}"
    );
}
