// Clean under recorder-off-hot-loop: the kernel reads a caller-owned
// epoch and returns plain timing rows; the driver outside this module
// owns the tracer and commits units.

pub struct Timing {
    pub item: usize,
    pub kernel_seconds: f64,
}

pub fn kernel(epoch: &std::time::Instant, items: &[u64]) -> Vec<Timing> {
    let mut out = Vec::with_capacity(items.len());
    for (item, _) in items.iter().enumerate() {
        let t0 = epoch.elapsed().as_secs_f64();
        out.push(Timing {
            item,
            kernel_seconds: epoch.elapsed().as_secs_f64() - t0,
        });
    }
    out
}
