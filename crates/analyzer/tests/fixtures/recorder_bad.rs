// Violates recorder-off-hot-loop: telemetry named inside a kernel.

use psc_telemetry::Recorder;

pub fn kernel(rec: &dyn Recorder, pairs: &[u64]) {
    for &p in pairs {
        rec.observe("step2.pairs_per_key", p);
    }
}
