//! Clean: allocations stay outside the loops, the loop body reuses
//! hoisted scratch, and `impl Trait for Type` is not a loop.

pub struct Scratch {
    buf: Vec<u32>,
}

impl Iterator for Scratch {
    type Item = u32;
    fn next(&mut self) -> Option<u32> {
        // Inside an impl body but not a loop: allocation is fine.
        let spare = Vec::new();
        self.buf.pop().or(spare.first().copied())
    }
}

pub fn kernel(xs: &[u32]) -> u32 {
    let mut scratch = Vec::with_capacity(xs.len());
    let mut acc = 0;
    for &x in xs {
        scratch.clear();
        scratch.push(x);
        acc += scratch.len() as u32;
    }
    acc
}

#[cfg(test)]
mod tests {
    #[test]
    fn alloc_in_test_loops_is_fine() {
        for i in 0..3 {
            let v = vec![i; 2];
            assert_eq!(v.len(), 2);
        }
    }
}
