// Violates determinism: a wall-clock read in a simulator crate and a
// HashMap in a report-producing module.

use std::collections::HashMap;
use std::time::Instant;

pub fn simulate() -> f64 {
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}

pub fn report() -> HashMap<String, u64> {
    HashMap::new()
}
