// Clean under safety-comment: every unsafe site is justified.

pub fn deref(p: *const u8) -> u8 {
    // SAFETY: caller handed us a valid, aligned pointer.
    unsafe { *p }
}

/// Reads one byte.
///
/// # Safety
/// `p` must be valid for reads.
#[inline]
pub unsafe fn documented(p: *const u8) -> u8 {
    *p
}

struct W(*mut u8);
// SAFETY: W's pointer is only dereferenced on the owning thread.
unsafe impl Send for W {}
