// Clean under hot-path-no-panic: fallible paths return early, test
// code may panic freely.

pub fn kernel(xs: &[i32]) -> Option<i32> {
    let first = xs.first()?;
    let last = xs.last().copied().unwrap_or_default();
    Some(first + last)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panics_are_fine_here() {
        assert_eq!(kernel(&[1, 2]).unwrap(), 3);
        let v: Vec<i32> = Vec::new();
        v.first().expect("empty is fine to assert in tests");
    }
}
