// Waived: an infallible-by-construction expect with a justification.

pub fn drain(fifo: &mut Fifo) -> Hit {
    // analyzer: allow(hot-path-no-panic) -- checked full above, pop cannot fail
    fifo.pop().expect("full FIFO drains")
}
