// Violates recorder-off-hot-loop: the flight recorder named inside a
// kernel.

use psc_telemetry::{Tracer, UnitTrace};

pub fn kernel(tracer: &dyn Tracer, pairs: &[u64]) {
    for &p in pairs {
        let unit = UnitTrace {
            stage: "step2".into(),
            index: p,
            lane: 0,
            start_seconds: None,
            sim_clock: false,
            events: Vec::new(),
        };
        tracer.commit(unit);
    }
}
