// Violates hot-path-no-panic: five banned calls outside tests.

pub fn kernel(xs: &[i32]) -> i32 {
    let first = xs.first().unwrap();
    let last = xs.last().expect("non-empty");
    if *first > *last {
        panic!("unsorted");
    }
    match xs.len() {
        0 => todo!(),
        1 => unimplemented!(),
        _ => first + last,
    }
}
