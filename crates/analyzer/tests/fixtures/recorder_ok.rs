// Clean under recorder-off-hot-loop: the kernel returns counts; the
// driver outside this module does the recording.

pub struct Counters {
    pub pairs: u64,
}

pub fn kernel(pairs: &[u64]) -> Counters {
    Counters {
        pairs: pairs.iter().sum(),
    }
}
