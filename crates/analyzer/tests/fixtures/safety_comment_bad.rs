// Violates safety-comment: three unsafe sites, none justified.

pub fn deref(p: *const u8) -> u8 {
    unsafe { *p }
}

pub unsafe fn no_docs(p: *const u8) -> u8 {
    *p
}

struct W(*mut u8);
unsafe impl Send for W {}
