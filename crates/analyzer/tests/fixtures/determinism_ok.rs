// Clean under determinism: cycle-derived time, ordered maps.

use std::collections::BTreeMap;

pub fn simulate(cycles: u64, clock_hz: u64) -> f64 {
    cycles as f64 / clock_hz as f64
}

pub fn report() -> BTreeMap<String, u64> {
    BTreeMap::new()
}
