// Waived: the unsafe block is exempted with a justified waiver.

pub fn deref(p: *const u8) -> u8 {
    // analyzer: allow(safety-comment) -- justification lives on the caller
    unsafe { *p }
}
