// Waived: the step profile is allowed to read the wall clock.

use std::time::Instant;

pub fn profile() -> f64 {
    // analyzer: allow(determinism) -- step profile is wall-clock by definition
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}
