//! Waived: a per-iteration allocation with a written justification.

pub fn worker(items: &[u32]) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    for &item in items {
        // analyzer: allow(hot-path-no-alloc) -- per-item result vector, moved into the merge
        let mut mine = Vec::new();
        mine.push(item);
        out.push(mine);
    }
    out
}
