//! Violations: heap allocations inside kernel loop bodies.

pub fn kernel(xs: &[u32]) -> u32 {
    let mut acc = 0;
    for &x in xs {
        let v = vec![x; 4];
        let s = format!("{x}");
        let w = Vec::with_capacity(8);
        let o = s.to_string();
        acc += v.len() as u32 + w.capacity() as u32 + o.len() as u32;
    }
    while acc > 100 {
        acc -= Box::new(1u32).as_ref();
    }
    acc
}
